/**
 * @file
 * Extension evaluation: metastable failure / retry-storm shootout —
 * what each layer of the resilience stack buys when a fault meets an
 * open-loop retry ladder.
 *
 * Every cell runs a service chain behind the switch with the failure
 * detector armed and clients retrying on a 2 ms timeout, then crashes
 * hosts mid-window and recovers them: a 2-tier chain loses one of its
 * two back-end hosts, and a 4-tier chain loses one host in *each* of
 * its two fanned mid-tiers (fault.crash_host takes a list). During the
 * outage the survivors run past capacity, the backlog in their queues
 * goes stale, and every timeout feeds the retry storm that keeps them
 * there — the metastable trap: the fault clears but the system does
 * not. The sweep crosses that against four resilience stacks:
 *
 *   none     retries only (the storm, undamped)
 *   budgets  client retry budgets (resilience.retry_budget)
 *   breakers per-(tier,host) circuit breakers in the switch
 *   full     budgets + breakers + queue-deadline admission +
 *            chain-wide deadline propagation (deadline = the client
 *            timeout: serving older work is pure waste)
 *
 * Recovery is measured, not eyeballed: each cell runs twice — the full
 * window, and a twin truncated exactly at the recovery tick (byte-
 * identical prefix, by the determinism contract) — so post-clearance
 * availability is the exact quotient of the two runs' counter deltas.
 * The bench exits nonzero if shed-aware conservation breaks anywhere,
 * if the full stack fails to recover the 4-tier cell to >= 90%
 * post-clearance availability, or if the undamped cell recovers anyway
 * (then there is no storm left to shoot).
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Stack
{
    const char *name;
    bool budgets;
    bool breakers;
    bool admission;
    bool deadline;
};

struct Shape
{
    const char *name;
    int depth;
    const char *crash; // fault.crash_host list
};

Tick
intoWindow(const ClusterConfig &cfg, double frac)
{
    return cfg.base.warmup +
           static_cast<Tick>(static_cast<double>(cfg.base.duration) *
                             frac);
}

/**
 * The chain under test: every tier runs two hosts (so one can die and
 * leave a survivor) at a fixed heavy per-stage cost. Detector armed,
 * clients retrying.
 */
ClusterConfig
stormConfig(const Shape &shape, const Stack &stack)
{
    ClusterConfig cfg;
    // `performance` keeps the healthy chain comfortably inside the
    // 2 ms retry timeout (p99 ~0.4 ms) so every timeout in the run is
    // the fault's doing, not a frequency-ramp artefact.
    cfg.base = bench::cellConfig(AppProfile::memcached(),
                                 LoadLevel::kMed, "performance");
    // Continuous 500K rps against two 4-core hosts per tier at heavy
    // per-stage cost (~9.4 us): each host runs near 60% service
    // utilisation while the chain is whole, and the packet rate stays
    // under the NIC/softirq cliff, so when one host of a pair dies
    // its survivor lands at ~120% *service* utilisation — the backlog
    // piles into the unbounded app queues (not ring drops), goes
    // stale behind the 2 ms client timeout, and the retry storm feeds
    // on it. That is the metastable trap the stacks are shot at.
    cfg.base.numCores = 4;
    cfg.base.rpsOverride = 5e5;
    cfg.base.dutyOverride = 1.0;
    cfg.dispatch = "round-robin";
    cfg.clientGroups = 2;
    cfg.fabric.healthInterval = microseconds(200);
    cfg.fabric.healthTimeout = milliseconds(1);
    cfg.fabric.ejectDuration = milliseconds(2);

    cfg.base.params.set("topology.tiers", shape.depth);
    int hosts = 0;
    for (int t = 0; t < shape.depth; ++t) {
        const std::string tier =
            "topology.tier" + std::to_string(t) + ".";
        cfg.base.params.set(tier + "name",
                            "stage" + std::to_string(t));
        cfg.base.params.set(tier + "hosts", 2);
        cfg.base.params.set(tier + "service_scale", 7.5);
        hosts += 2;
    }
    cfg.numHosts = hosts; // derived; pinned for the record sink

    cfg.base.params.setTick("client.timeout", milliseconds(2));
    cfg.base.params.set("client.retries", 3);
    cfg.base.params.setTick("client.backoff_cap", milliseconds(4));

    cfg.base.params.set("fault.crash_host", shape.crash);
    cfg.base.params.setTick("fault.crash_at", intoWindow(cfg, 0.3));
    cfg.base.params.setTick("fault.recover_at", intoWindow(cfg, 0.6));

    if (stack.budgets)
        cfg.base.params.set("resilience.retry_budget", "0.1");
    if (stack.breakers)
        cfg.base.params.setTick("resilience.breaker_window",
                                milliseconds(1));
    if (stack.admission) {
        cfg.base.params.set("resilience.admission", "queue-deadline");
        cfg.base.params.setTick("resilience.admit_target",
                                microseconds(500));
        cfg.base.params.setTick("resilience.admit_interval",
                                milliseconds(2));
    }
    if (stack.deadline)
        cfg.base.params.setTick("resilience.deadline",
                                milliseconds(2));
    return cfg;
}

/**
 * The truncated twin: same config, window cut exactly at the recovery
 * tick, no drain. Its end-of-run counters equal the full run's
 * counters *at* that tick (identical event prefix), so the tail
 * window's availability is (received_full - received_cut) /
 * (sent_full - sent_cut).
 */
ClusterConfig
truncatedAtRecovery(const ClusterConfig &cfg)
{
    ClusterConfig cut = cfg;
    cut.drain = 0;
    cut.base.duration =
        cfg.base.params.getTick("fault.recover_at", 0) -
        cfg.base.warmup;
    return cut;
}

double
tailAvailability(const ClusterResult &full, const ClusterResult &cut)
{
    const std::uint64_t sent = full.requestsSent - cut.requestsSent;
    const std::uint64_t recv =
        full.responsesReceived - cut.responsesReceived;
    return sent == 0 ? 1.0
                     : static_cast<double>(recv) /
                           static_cast<double>(sent);
}

/** Shed-aware conservation: everything the clients sent is answered,
 *  timed out, shed, or still in flight — exactly. */
bool
conserved(const ClusterResult &r)
{
    return r.requestsSent == r.responsesReceived + r.requestsTimedOut +
                                 r.requestsShed + r.requestsInFlight;
}

} // namespace

int
main()
{
    bench::banner("Extension",
                  "metastable failure: resilience stack x faulted "
                  "chain (retry-storm shootout)");

    const std::vector<Stack> stacks = {
        {"none", false, false, false, false},
        {"budgets", true, false, false, false},
        {"breakers", false, true, false, false},
        {"full", true, true, true, true},
    };
    // Host ids run tier-major: tier0 = {0,1}, tier1 = {2,3}, ... so
    // "2" faults one tier-1 host and "2,4" faults one host in each of
    // tiers 1 and 2.
    const std::vector<Shape> shapes = {
        {"2-tier/1-faulted", 2, "2"},
        {"4-tier/2-faulted", 4, "2,4"},
    };

    // Interleave full window and truncated twin per cell.
    std::vector<ClusterConfig> configs;
    for (const Shape &shape : shapes) {
        for (const Stack &stack : stacks) {
            const ClusterConfig cfg = stormConfig(shape, stack);
            configs.push_back(cfg);
            configs.push_back(truncatedAtRecovery(cfg));
        }
    }

    std::vector<std::function<ClusterResult()>> tasks;
    tasks.reserve(configs.size());
    for (const ClusterConfig &cfg : configs)
        tasks.emplace_back(
            [&cfg] { return ClusterExperiment(cfg).run(); });
    SweepOptions opts;
    opts.tag = "ext_metastable";
    std::vector<SweepSlot<ClusterResult>> slots =
        runParallel(tasks, opts);

    // Only the full-window runs are results; the twins are probes.
    if (ResultWriter *sink = bench::jsonSink())
        for (std::size_t i = 0; i < configs.size(); i += 2)
            appendClusterResultRecord(*sink, configs[i],
                                      slots[i].value());

    int bad_conservation = 0;
    double none_tail = 1.0;
    double full_tail = 0.0;
    std::size_t idx = 0;
    for (const Shape &shape : shapes) {
        std::printf("\n--- %s: crash %s at 30%%, recover at 60%% of "
                    "the window (memcached med, detector + "
                    "retries) ---\n",
                    shape.name, shape.crash);
        Table table({"stack", "avail", "avail after clear", "P99 (us)",
                     "retx", "budget exhausted", "shed", "breaker",
                     "short-circuit", "energy (J)"});
        for (const Stack &stack : stacks) {
            const ClusterResult &full = slots[idx].value();
            const ClusterResult &cut = slots[idx + 1].value();
            idx += 2;
            if (!conserved(full) || !conserved(cut))
                ++bad_conservation;
            const double tail = tailAvailability(full, cut);
            if (shape.depth == 4 && std::string(stack.name) == "none")
                none_tail = tail;
            if (shape.depth == 4 && std::string(stack.name) == "full")
                full_tail = tail;
            const std::uint64_t shed =
                full.requestsShed + full.switchDeadlineSheds;
            table.addRow({
                stack.name,
                Table::num(full.availability, 4),
                Table::num(tail, 4),
                Table::num(toMicroseconds(full.p99), 0),
                Table::num(static_cast<double>(full.retransmits), 0),
                Table::num(static_cast<double>(
                               full.retryBudgetExhausted),
                           0),
                Table::num(static_cast<double>(shed), 0),
                Table::num(static_cast<double>(
                               full.breakerTransitions),
                           0),
                Table::num(static_cast<double>(
                               full.breakerShortCircuits),
                           0),
                Table::num(full.energyJoules, 1),
            });
        }
        table.print(std::cout);
    }

    if (bad_conservation != 0) {
        std::fprintf(stderr,
                     "ext_metastable: %d runs broke shed-aware "
                     "conservation\n",
                     bad_conservation);
        return 1;
    }
    if (full_tail < 0.90) {
        std::fprintf(stderr,
                     "ext_metastable: full stack recovered only %.4f "
                     "of post-clearance traffic (< 0.90) on the "
                     "4-tier cell\n",
                     full_tail);
        return 1;
    }
    if (none_tail >= 0.90) {
        std::fprintf(stderr,
                     "ext_metastable: undamped cell recovered to "
                     "%.4f — no metastable regime to shoot at\n",
                     none_tail);
        return 1;
    }

    std::cout
        << "\nFindings: the undamped cell demonstrates the metastable "
           "trap — while half of each mid tier is down the survivors "
           "run past capacity, their queues fill with work whose "
           "clients have already timed out, and the 4x retry "
           "amplification keeps feeding the backlog, so availability "
           "stays on the floor after the hosts come back: the fault "
           "clears, the failure does not. Retry budgets alone break "
           "the feedback loop — amplification is capped, so the "
           "survivors never build a standing backlog and post-"
           "clearance traffic recovers — but every shed retry is a "
           "client-visible timeout, so availability during the outage "
           "is mediocre and the tail latency rides the 2 ms timeout. "
           "Breakers alone fail fast instead: a survivor whose "
           "responses outrun the fabric health timeout trips its own "
           "breaker, the dark tier short-circuits at the switch, and "
           "the storm is shed before it queues (note the lowest "
           "energy of any cell) — that fully recovers the shallow "
           "chain, but with two flapping tiers in series the deep "
           "chain's post-clearance availability multiplies away. The "
           "full stack layers budgets, breakers, queue-deadline "
           "admission and deadline propagation, so work that can no "
           "longer meet its deadline is dropped at the first queue it "
           "would have rotted in while fresh work flows: it holds the "
           "best availability and a P99 at the timeout floor through "
           "the outage, and recovers past 90% after clearance.\n";
    return 0;
}
