/**
 * @file
 * Extension evaluation: graceful degradation under injected faults —
 * what each frequency policy's latency/energy trade costs once the
 * network stops being perfect.
 *
 * A 2-host cluster (least-outstanding dispatch, failure detector on,
 * clients retrying with capped exponential backoff) serves high
 * memcached load through four fault scenarios: a clean baseline,
 * random wire loss + corruption, a flapping host uplink, and a
 * whole-host crash with mid-run recovery. Every scenario runs the
 * same seeded fault plan for every policy, so the *policies* are the
 * only variable inside a scenario.
 *
 * The interesting question is whether power management amplifies
 * faults: a host that NMAP has put in polling-off/deep-idle state
 * answers a retransmission slower than a performance-policy host, so
 * retries land on a cold path. Availability, goodput and retry
 * volume quantify that interaction per (policy x scenario) cell.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    std::string policy;
    double ni;
    double cu;
};

struct Scenario
{
    const char *name;
    /** Applies the scenario's fault.* keys; times are expressed as
     *  fractions of the (scaled) measurement window so the plan stays
     *  meaningful under NMAPSIM_BENCH_SCALE. */
    void (*apply)(ClusterConfig &cfg);
};

Tick
intoWindow(const ClusterConfig &cfg, double frac)
{
    return cfg.base.warmup +
           static_cast<Tick>(static_cast<double>(cfg.base.duration) *
                             frac);
}

void
applyBaseline(ClusterConfig &)
{
}

void
applyLoss(ClusterConfig &cfg)
{
    cfg.base.params.set("fault.wire_loss", 0.05);
    cfg.base.params.set("fault.wire_corrupt", 0.01);
}

void
applyFlap(ClusterConfig &cfg)
{
    cfg.base.params.set("fault.flap_host", 1);
    cfg.base.params.setTick("fault.flap_start", intoWindow(cfg, 0.2));
    cfg.base.params.setTick("fault.flap_down",
                            static_cast<Tick>(
                                static_cast<double>(cfg.base.duration) *
                                0.08));
    cfg.base.params.setTick("fault.flap_period",
                            static_cast<Tick>(
                                static_cast<double>(cfg.base.duration) *
                                0.25));
    cfg.base.params.set("fault.flap_cycles", 2);
}

void
applyCrash(ClusterConfig &cfg)
{
    cfg.base.params.set("fault.crash_host", 1);
    cfg.base.params.setTick("fault.crash_at", intoWindow(cfg, 0.3));
    cfg.base.params.setTick("fault.recover_at", intoWindow(cfg, 0.6));
}

ClusterConfig
pointConfig(const Scenario &scenario, const Variant &v)
{
    ClusterConfig cfg;
    cfg.base = bench::cellConfig(AppProfile::memcached(),
                                 LoadLevel::kHigh, v.policy);
    if (v.policy == "NMAP") {
        cfg.base.params.set("nmap.ni_th", v.ni);
        cfg.base.params.set("nmap.cu_th", v.cu);
    }
    cfg.numHosts = 2;
    cfg.dispatch = "least-outstanding";
    cfg.clientGroups = 2;
    cfg.drain = milliseconds(2);

    // Failure detector: sized so a crashed host is ejected well
    // within its outage and retried periodically for readmission.
    cfg.fabric.healthInterval = microseconds(200);
    cfg.fabric.healthTimeout = milliseconds(1);
    cfg.fabric.ejectDuration = milliseconds(2);

    // Clients give a request three retransmissions before writing it
    // off; the cap keeps the backoff ladder at 2-4-4 ms.
    cfg.base.params.setTick("client.timeout", milliseconds(2));
    cfg.base.params.set("client.retries", 3);
    cfg.base.params.setTick("client.backoff_cap", milliseconds(4));

    scenario.apply(cfg);
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Extension",
                  "fault scenario x power policy (chaos sweep)");

    auto [mc_ni, mc_cu] =
        bench::profileApps({AppProfile::memcached()}, "ext_chaos")[0];

    const std::vector<Variant> variants = {
        {"performance", "performance", 0, 0},
        {"ondemand", "ondemand", 0, 0},
        {"NMAP", "NMAP", mc_ni, mc_cu},
    };
    const std::vector<Scenario> scenarios = {
        {"baseline", &applyBaseline},
        {"loss", &applyLoss},
        {"flap", &applyFlap},
        {"crash", &applyCrash},
    };

    std::vector<ClusterConfig> configs;
    std::vector<const char *> labels;
    for (const Scenario &scenario : scenarios)
        for (const Variant &v : variants) {
            configs.push_back(pointConfig(scenario, v));
            labels.push_back(scenario.name);
        }

    std::vector<std::function<ClusterResult()>> tasks;
    tasks.reserve(configs.size());
    for (const ClusterConfig &cfg : configs)
        tasks.emplace_back(
            [&cfg] { return ClusterExperiment(cfg).run(); });
    SweepOptions opts;
    opts.tag = "ext_chaos";
    std::vector<SweepSlot<ClusterResult>> slots =
        runParallel(tasks, opts);

    if (ResultWriter *sink = bench::jsonSink())
        for (std::size_t i = 0; i < configs.size(); ++i)
            appendClusterResultRecord(*sink, configs[i],
                                      slots[i].value());

    std::printf("\n--- 2 hosts, least-outstanding dispatch, "
                "memcached high, detector + client retry on ---\n");
    Table table({"scenario", "policy", "avail", "goodput (rps)",
                 "P99 (us)", "retx", "timeouts", "ejections",
                 "energy (J)"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const ClusterResult &r = slots[i].value();
        table.addRow({
            labels[i],
            configs[i].base.freqPolicy,
            Table::num(r.availability, 4),
            Table::num(r.goodputRps, 0),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.retransmits), 0),
            Table::num(static_cast<double>(r.requestsTimedOut), 0),
            Table::num(static_cast<double>(r.ejections), 0),
            Table::num(r.energyJoules, 1),
        });
    }
    table.print(std::cout);

    std::cout
        << "\nFindings: random loss is absorbed almost entirely by "
           "the client retry ladder — availability stays near 1 and "
           "the cost shows up as retransmissions and a fattened P99 "
           "(the retry timeout dominates the tail), roughly equally "
           "for every policy. Host-scoped faults are different: "
           "during a flap window or crash the detector ejects the "
           "dead host and least-outstanding concentrates the full "
           "load on the survivor, so DVFS-down policies (ondemand, "
           "NMAP) ride the load spike up and lose part of their "
           "energy edge exactly when the cluster is degraded, while "
           "the retries that bridge the ejection gap land on whatever "
           "power state the survivor was in. NMAP's mode-transition "
           "logic tracks the shifted traffic quickly enough that "
           "availability matches performance's; the residual gap is "
           "the handful of requests stranded on the dead host between "
           "crash and ejection, which no frequency policy can buy "
           "back. The retry timeout is itself a policy stressor: "
           "ondemand's congestion tail crosses the 2 ms deadline even "
           "fault-free, so its clients retransmit into an already "
           "slow cluster and availability dips with no fault "
           "injected at all.\n";
    return 0;
}
