/**
 * @file
 * Extension evaluation: the TEO-style cpuidle governor against the
 * paper's three sleep policies (menu, disable, c6only), under both the
 * performance governor and NMAP.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation", "cpuidle governors incl. TEO extension");

    AppProfile app = AppProfile::memcached();
    ExperimentConfig base;
    base.app = app;
    auto [ni, cu] = Experiment::profileThresholds(base);

    for (FreqPolicy policy :
         {FreqPolicy::kPerformance, FreqPolicy::kNmap}) {
        std::printf("\n--- %s governor, medium load ---\n",
                    freqPolicyName(policy));
        Table table({"sleep policy", "P99 (us)", "energy (J)",
                     "CC6 wakes", "CC1 wakes"});
        for (IdlePolicy idle :
             {IdlePolicy::kMenu, IdlePolicy::kTeo, IdlePolicy::kC6Only,
              IdlePolicy::kDisable}) {
            ExperimentConfig cfg =
                bench::cellConfig(app, LoadLevel::kMed, policy, idle);
            cfg.nmap.niThreshold = ni;
            cfg.nmap.cuThreshold = cu;
            ExperimentResult r = Experiment(cfg).run();
            table.addRow({
                idlePolicyName(idle),
                Table::num(toMicroseconds(r.p99), 0),
                Table::num(r.energyJoules, 1),
                std::to_string(r.cc6Wakes),
                std::to_string(r.cc1Wakes),
            });
        }
        table.print(std::cout);
    }
    std::cout
        << "\nFinding: under this workload TEO is indistinguishable "
           "from menu — both take C1 for the short in-burst gaps and "
           "reach CC6 through the tick-driven promotion path, so the "
           "selection heuristic rarely gets to disagree. The spread "
           "that matters is menu/teo vs c6only (-8% energy, slight "
           "P99 cost from wake penalties) vs disable (+90%), "
           "reaffirming the paper's conclusion that ms-scale SLOs "
           "are insensitive to the sleep policy while energy is "
           "not.\n";
    return 0;
}
