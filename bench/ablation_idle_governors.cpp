/**
 * @file
 * Extension evaluation: the TEO-style cpuidle governor against the
 * paper's three sleep policies (menu, disable, c6only), under both the
 * performance governor and NMAP. The eight (policy x sleep) points run
 * as one parallel sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation", "cpuidle governors incl. TEO extension");

    AppProfile app = AppProfile::memcached();
    auto [ni, cu] =
        bench::profileApps({app}, "ablation_idle_governors")[0];

    const std::vector<std::string> policies = {
        "performance", "NMAP"};
    const std::vector<std::string> idles = {
        "menu", "teo", "c6only",
        "disable"};

    ExperimentConfig base =
        bench::cellConfig(app, LoadLevel::kMed, "NMAP");
    base.params.set("nmap.ni_th", ni);
    base.params.set("nmap.cu_th", cu);
    SweepSpec spec(base);
    spec.policies(policies).idlePolicies(idles);
    std::vector<ExperimentResult> results =
        bench::runAll(spec.build(), "ablation_idle_governors");

    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        std::printf("\n--- %s governor, medium load ---\n",
                    policies[pi].c_str());
        Table table({"sleep policy", "P99 (us)", "energy (J)",
                     "CC6 wakes", "CC1 wakes"});
        for (std::size_t ii = 0; ii < idles.size(); ++ii) {
            const ExperimentResult &r = results[spec.index(pi, ii)];
            table.addRow({
                idles[ii].c_str(),
                Table::num(toMicroseconds(r.p99), 0),
                Table::num(r.energyJoules, 1),
                std::to_string(r.cc6Wakes),
                std::to_string(r.cc1Wakes),
            });
        }
        table.print(std::cout);
    }
    std::cout
        << "\nFinding: under this workload TEO is indistinguishable "
           "from menu — both take C1 for the short in-burst gaps and "
           "reach CC6 through the tick-driven promotion path, so the "
           "selection heuristic rarely gets to disagree. The spread "
           "that matters is menu/teo vs c6only (-8% energy, slight "
           "P99 cost from wake penalties) vs disable (+90%), "
           "reaffirming the paper's conclusion that ms-scale SLOs "
           "are insensitive to the sleep policy while energy is "
           "not.\n";
    return 0;
}
