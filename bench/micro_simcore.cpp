/**
 * @file
 * google-benchmark micro-benchmarks of the simulation substrate: event
 * queue throughput, NIC+NAPI packet processing rate, and full-rig
 * simulation speed. These keep the harness honest — every figure bench
 * is built on these paths.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "harness/experiment.hh"
#include "net/nic.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace nmapsim;

namespace {

void
BM_EventQueueScheduleProcess(benchmark::State &state)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "noop");
    for (auto _ : state) {
        eq.scheduleIn(&ev, 10);
        eq.step();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleProcess);

void
BM_EventQueueRescheduleStorm(benchmark::State &state)
{
    // The hot pattern of the core scheduler: deschedule + reschedule.
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "noop");
    Tick t = 100;
    for (auto _ : state) {
        eq.reschedule(&ev, t);
        t += 1;
    }
    eq.deschedule(&ev);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueRescheduleStorm);

void
BM_RngLognormal(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.lognormal(8.0, 0.5));
}
BENCHMARK(BM_RngLognormal);

void
BM_NicReceiveSteer(benchmark::State &state)
{
    EventQueue eq;
    NicConfig cfg;
    cfg.numQueues = 8;
    Nic nic(eq, cfg);
    nic.setIrqHandler([&nic](int q) { nic.disableIrq(q); });
    Packet p;
    p.kind = Packet::Kind::kRequest;
    p.sizeBytes = 128;
    std::uint32_t flow = 0;
    for (auto _ : state) {
        p.flowHash = flow++;
        nic.receive(p);
        Packet out;
        nic.popRx(nic.rssQueue(p.flowHash), out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NicReceiveSteer);

void
BM_FullRigSimulatedMillisecond(benchmark::State &state)
{
    // Wall-clock cost of simulating 1 ms of the full 8-core server at
    // the paper's high load.
    for (auto _ : state) {
        state.PauseTiming();
        ExperimentConfig cfg;
        cfg.app = AppProfile::memcached();
        cfg.load = LoadLevel::kHigh;
        cfg.freqPolicy = "ondemand";
        cfg.warmup = 0;
        cfg.duration = milliseconds(1);
        Experiment experiment(cfg);
        state.ResumeTiming();
        benchmark::DoNotOptimize(experiment.run());
    }
}
BENCHMARK(BM_FullRigSimulatedMillisecond)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
