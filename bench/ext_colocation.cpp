/**
 * @file
 * Extension evaluation: two latency-critical tenants colocated on one
 * server — the deployment Parties targets and an open question for
 * NMAP, whose thresholds are profiled per application.
 *
 * Scenario A (homogeneous): two memcached tenants (medium + low load)
 * share the cores. Every SLO is achievable, so the scenario isolates
 * the power-management question: NMAP (either tenant's offline
 * thresholds, or the online-adaptive variant) must keep both tenants
 * compliant at less energy than `performance`.
 *
 * Scenario B (heterogeneous): memcached (1 ms SLO) colocated with
 * nginx (~19 us requests). Even the `performance` governor cannot hold
 * memcached's SLO: the tail is dominated by head-of-line blocking
 * behind nginx's long request slices, not by DVFS — the isolation
 * problem that motivates partitioning controllers like Parties and
 * Heracles, beyond what any frequency policy can fix.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/colocation.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    FreqPolicy policy;
    double ni;
    double cu;
};

void
runScenario(const char *title, const TenantConfig &a,
            const TenantConfig &b, const std::vector<Variant> &variants)
{
    std::printf("\n--- %s ---\n", title);
    Table table({"policy", "tenant0 P99 (us)", "xSLO",
                 "tenant1 P99 (us)", "xSLO", "energy (J)"});
    for (const Variant &v : variants) {
        ColocationConfig cfg;
        cfg.tenants = {a, b};
        cfg.freqPolicy = v.policy;
        cfg.duration = static_cast<Tick>(
            static_cast<double>(seconds(1)) * bench::durationScale());
        if (v.policy == FreqPolicy::kNmap) {
            cfg.nmap.niThreshold = v.ni;
            cfg.nmap.cuThreshold = v.cu;
        }
        ColocationResult r = ColocationExperiment(cfg).run();
        table.addRow({
            v.name,
            Table::num(toMicroseconds(r.tenants[0].p99), 0),
            Table::num(static_cast<double>(r.tenants[0].p99) /
                           static_cast<double>(r.tenants[0].slo),
                       2),
            Table::num(toMicroseconds(r.tenants[1].p99), 0),
            Table::num(static_cast<double>(r.tenants[1].p99) /
                           static_cast<double>(r.tenants[1].slo),
                       2),
            Table::num(r.energyJoules, 1),
        });
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Extension", "colocated latency-critical tenants");

    ExperimentConfig mc_base;
    mc_base.app = AppProfile::memcached();
    auto [mc_ni, mc_cu] = Experiment::profileThresholds(mc_base);
    ExperimentConfig ng_base;
    ng_base.app = AppProfile::nginx();
    auto [ng_ni, ng_cu] = Experiment::profileThresholds(ng_base);

    const std::vector<Variant> variants = {
        {"performance", FreqPolicy::kPerformance, 0, 0},
        {"ondemand", FreqPolicy::kOndemand, 0, 0},
        {"NMAP (mc thresholds)", FreqPolicy::kNmap, mc_ni, mc_cu},
        {"NMAP (nginx thresholds)", FreqPolicy::kNmap, ng_ni, ng_cu},
        {"NMAP-adaptive", FreqPolicy::kNmapAdaptive, 0, 0},
    };

    TenantConfig mc_med;
    mc_med.app = AppProfile::memcached();
    mc_med.load = LoadLevel::kMed;

    TenantConfig mc_low;
    mc_low.app = AppProfile::memcached();
    mc_low.load = LoadLevel::kLow;

    TenantConfig ng_low;
    ng_low.app = AppProfile::nginx();
    ng_low.load = LoadLevel::kLow;

    runScenario("Scenario A: memcached(med) + memcached(low), "
                "homogeneous",
                mc_med, mc_low, variants);
    runScenario("Scenario B: memcached(med) + nginx(low), "
                "heterogeneous",
                mc_med, ng_low, variants);

    std::cout
        << "\nFindings: (A) with compatible tenants, colocated NMAP "
           "keeps both SLOs at less energy than performance, and the "
           "choice of whose offline thresholds to inherit barely "
           "matters (the adaptive variant removes the choice "
           "entirely). (B) with a heavyweight tenant, memcached's "
           "1 ms SLO is broken by head-of-line blocking behind ~19 us "
           "nginx requests *even at P0* — power management cannot "
           "substitute for the core/cache isolation that controllers "
           "like Parties provide. DVFS policy choice still decides the "
           "energy bill and nginx's own SLO.\n";
    return 0;
}
