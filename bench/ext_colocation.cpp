/**
 * @file
 * Extension evaluation: two latency-critical tenants colocated on one
 * server — the deployment Parties targets and an open question for
 * NMAP, whose thresholds are profiled per application.
 *
 * Scenario A (homogeneous): two memcached tenants (medium + low load)
 * share the cores. Every SLO is achievable, so the scenario isolates
 * the power-management question: NMAP (either tenant's offline
 * thresholds, or the online-adaptive variant) must keep both tenants
 * compliant at less energy than `performance`.
 *
 * Scenario B (heterogeneous): memcached (1 ms SLO) colocated with
 * nginx (~19 us requests). Even the `performance` governor cannot hold
 * memcached's SLO: the tail is dominated by head-of-line blocking
 * behind nginx's long request slices, not by DVFS — the isolation
 * problem that motivates partitioning controllers like Parties and
 * Heracles, beyond what any frequency policy can fix.
 *
 * Colocation runs are not plain Experiments, so this bench fans out
 * through the sweep subsystem's generic runParallel() engine.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "harness/colocation.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    std::string policy;
    double ni;
    double cu;
};

ColocationConfig
variantConfig(const TenantConfig &a, const TenantConfig &b,
              const Variant &v)
{
    ColocationConfig cfg;
    cfg.tenants = {a, b};
    cfg.freqPolicy = v.policy;
    cfg.duration = static_cast<Tick>(
        static_cast<double>(seconds(1)) * bench::durationScale());
    if (v.policy == "NMAP") {
        cfg.params.set("nmap.ni_th", v.ni);
        cfg.params.set("nmap.cu_th", v.cu);
    }
    return cfg;
}

void
printScenario(const char *title, const std::vector<Variant> &variants,
              const std::vector<SweepSlot<ColocationResult>> &slots,
              std::size_t offset)
{
    std::printf("\n--- %s ---\n", title);
    Table table({"policy", "tenant0 P99 (us)", "xSLO",
                 "tenant1 P99 (us)", "xSLO", "energy (J)"});
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const ColocationResult &r = slots[offset + vi].value();
        table.addRow({
            variants[vi].name,
            Table::num(toMicroseconds(r.tenants[0].p99), 0),
            Table::num(static_cast<double>(r.tenants[0].p99) /
                           static_cast<double>(r.tenants[0].slo),
                       2),
            Table::num(toMicroseconds(r.tenants[1].p99), 0),
            Table::num(static_cast<double>(r.tenants[1].p99) /
                           static_cast<double>(r.tenants[1].slo),
                       2),
            Table::num(r.energyJoules, 1),
        });
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Extension", "colocated latency-critical tenants");

    std::vector<std::pair<double, double>> thresholds =
        bench::profileApps(
            {AppProfile::memcached(), AppProfile::nginx()},
            "ext_colocation");
    auto [mc_ni, mc_cu] = thresholds[0];
    auto [ng_ni, ng_cu] = thresholds[1];

    const std::vector<Variant> variants = {
        {"performance", "performance", 0, 0},
        {"ondemand", "ondemand", 0, 0},
        {"NMAP (mc thresholds)", "NMAP", mc_ni, mc_cu},
        {"NMAP (nginx thresholds)", "NMAP", ng_ni, ng_cu},
        {"NMAP-adaptive", "NMAP-adaptive", 0, 0},
    };

    TenantConfig mc_med;
    mc_med.app = AppProfile::memcached();
    mc_med.load = LoadLevel::kMed;

    TenantConfig mc_low;
    mc_low.app = AppProfile::memcached();
    mc_low.load = LoadLevel::kLow;

    TenantConfig ng_low;
    ng_low.app = AppProfile::nginx();
    ng_low.load = LoadLevel::kLow;

    // Both scenarios' variants fan out as one batch of colocation
    // tasks on the generic parallel engine.
    std::vector<ColocationConfig> configs;
    for (const Variant &v : variants)
        configs.push_back(variantConfig(mc_med, mc_low, v));
    for (const Variant &v : variants)
        configs.push_back(variantConfig(mc_med, ng_low, v));

    std::vector<std::function<ColocationResult()>> tasks;
    for (const ColocationConfig &cfg : configs)
        tasks.emplace_back(
            [&cfg] { return ColocationExperiment(cfg).run(); });
    SweepOptions opts;
    opts.tag = "ext_colocation";
    std::vector<SweepSlot<ColocationResult>> slots =
        runParallel(tasks, opts);

    printScenario("Scenario A: memcached(med) + memcached(low), "
                  "homogeneous",
                  variants, slots, 0);
    printScenario("Scenario B: memcached(med) + nginx(low), "
                  "heterogeneous",
                  variants, slots, variants.size());

    std::cout
        << "\nFindings: (A) with compatible tenants, colocated NMAP "
           "keeps both SLOs at less energy than performance, and the "
           "choice of whose offline thresholds to inherit barely "
           "matters (the adaptive variant removes the choice "
           "entirely). (B) with a heavyweight tenant, memcached's "
           "1 ms SLO is broken by head-of-line blocking behind ~19 us "
           "nginx requests *even at P0* — power management cannot "
           "substitute for the core/cache isolation that controllers "
           "like Parties provide. DVFS policy choice still decides the "
           "energy bill and nginx's own SLO.\n";
    return 0;
}
