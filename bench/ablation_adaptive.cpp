/**
 * @file
 * Extension evaluation: online threshold adaptation (the paper's
 * Section 4.2 future work) vs the offline profiling procedure.
 *
 * For each application, three variants:
 *  1. offline NMAP with the application's own profiled thresholds
 *     (the paper's deployment),
 *  2. offline NMAP with *stale* thresholds profiled for the other
 *     application — the paper requires "resetting the values via the
 *     profiling for running another application"; this row shows what
 *     happens when that reset is skipped,
 *  3. NMAP-adaptive, which needs no profiling pass at all.
 *
 * The dangerous stale direction is inheriting thresholds that are too
 * *high* for the new application (NI_TH above anything its sessions
 * reach): the Network Intensive trigger then fires late or never.
 *
 * Both profiling passes and all 18 variant runs fan out on the sweep
 * pool.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    std::string policy;
    double ni;
    double cu;
};

std::vector<ExperimentConfig>
appPoints(const AppProfile &app, const std::vector<Variant> &variants)
{
    std::vector<ExperimentConfig> points;
    for (const Variant &v : variants) {
        for (LoadLevel load :
             {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
            ExperimentConfig cfg = bench::cellConfig(app, load,
                                                     v.policy);
            if (v.policy == "NMAP") {
                cfg.params.set("nmap.ni_th", v.ni);
                cfg.params.set("nmap.cu_th", v.cu);
            }
            points.push_back(cfg);
        }
    }
    return points;
}

void
printApp(const AppProfile &app, double own_ni, double own_cu,
         double stale_ni, double stale_cu,
         const std::vector<Variant> &variants,
         const std::vector<ExperimentResult> &results,
         std::size_t offset)
{
    std::printf("\n--- %s (SLO %.0f ms; own NI_TH=%.1f CU_TH=%.2f, "
                "stale NI_TH=%.1f CU_TH=%.2f) ---\n",
                app.name.c_str(), toMilliseconds(app.slo), own_ni,
                own_cu, stale_ni, stale_cu);

    Table table({"variant", "load", "P99 (us)", "xSLO", "> SLO (%)",
                 "energy (J)", "NI_TH end", "CU_TH end"});
    std::size_t idx = offset;
    for (const Variant &v : variants) {
        for (LoadLevel load :
             {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
            const ExperimentResult &r = results[idx++];
            table.addRow({
                v.name,
                loadLevelName(load),
                Table::num(toMicroseconds(r.p99), 0),
                Table::num(static_cast<double>(r.p99) /
                               static_cast<double>(app.slo),
                           2),
                Table::num(r.fracOverSlo * 100.0, 2),
                Table::num(r.energyJoules, 1),
                Table::num(r.niThresholdUsed, 1),
                Table::num(r.cuThresholdUsed, 2),
            });
        }
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Ablation",
                  "offline vs stale vs online NMAP thresholds");

    AppProfile mc = AppProfile::memcached();
    AppProfile ng = AppProfile::nginx();
    std::vector<std::pair<double, double>> thresholds =
        bench::profileApps({mc, ng}, "ablation_adaptive");
    auto [mc_ni, mc_cu] = thresholds[0];
    auto [ng_ni, ng_cu] = thresholds[1];

    const std::vector<Variant> mc_variants = {
        {"offline (correct)", "NMAP", mc_ni, mc_cu},
        {"offline (stale)", "NMAP", ng_ni, ng_cu},
        {"online adaptive", "NMAP-adaptive", 0, 0},
    };
    const std::vector<Variant> ng_variants = {
        {"offline (correct)", "NMAP", ng_ni, ng_cu},
        {"offline (stale)", "NMAP", mc_ni, mc_cu},
        {"online adaptive", "NMAP-adaptive", 0, 0},
    };

    std::vector<ExperimentConfig> points = appPoints(mc, mc_variants);
    const std::size_t ng_offset = points.size();
    std::vector<ExperimentConfig> ng_points =
        appPoints(ng, ng_variants);
    points.insert(points.end(), ng_points.begin(), ng_points.end());
    std::vector<ExperimentResult> results =
        bench::runAll(points, "ablation_adaptive");

    printApp(mc, mc_ni, mc_cu, ng_ni, ng_cu, mc_variants, results, 0);
    printApp(ng, ng_ni, ng_cu, mc_ni, mc_cu, ng_variants, results,
             ng_offset);

    std::cout
        << "\nExpected: the adaptive variant meets the SLO on both "
           "applications with no profiling pass (thresholds converge "
           "during the run). Stale thresholds are harmless when they "
           "are too low (over-eager NI trigger, slight energy cost) "
           "but degrade the tail when too high for the application's "
           "session sizes — the case the paper's per-application "
           "re-profiling requirement exists for and the adaptive "
           "variant eliminates.\n";
    return 0;
}
