/**
 * @file
 * Reproduces Fig. 10: per-request response latency over 0.5 s with
 * NMAP at high load, for memcached and nginx — the counterpart of
 * Fig. 3 showing NMAP keeps every burst inside the SLO.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 10",
                  "per-request response latency over 0.5 s with NMAP");

    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP");
        cfg.collectLatencyTrace = true;
        cfg.duration = milliseconds(500);
        ExperimentResult r = Experiment(cfg).run();

        std::printf("\n--- %s, NMAP (SLO %.0f ms) ---\n",
                    app.name.c_str(), toMilliseconds(app.slo));
        std::map<Tick, std::vector<Tick>> buckets;
        for (const LatencySample &s : r.latencyTrace)
            buckets[(s.completionTime - cfg.warmup) / milliseconds(10)]
                .push_back(s.latency);

        Table table({"t (ms)", "requests", "median (us)", "max (us)",
                     "> SLO"});
        for (auto &[bucket, lats] : buckets) {
            std::sort(lats.begin(), lats.end());
            std::size_t over = 0;
            for (Tick l : lats)
                if (l > app.slo)
                    ++over;
            table.addRow({
                std::to_string(bucket * 10),
                std::to_string(lats.size()),
                Table::num(toMicroseconds(lats[lats.size() / 2]), 0),
                Table::num(toMicroseconds(lats.back()), 0),
                std::to_string(over),
            });
        }
        table.print(std::cout);
        std::printf("window total: %zu requests, P99 %.0f us, %.2f%% "
                    "over SLO\n",
                    r.latencyTrace.size(), toMicroseconds(r.p99),
                    r.fracOverSlo * 100.0);
    }
    std::cout << "\nPaper shape: compared with Fig. 3's ondemand "
                 "spikes, NMAP holds per-burst latency near the "
                 "performance governor's level.\n";
    return 0;
}
