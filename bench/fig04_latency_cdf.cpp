/**
 * @file
 * Reproduces Fig. 4: CDF of response latency at high load for
 * memcached and nginx under the ondemand and performance governors,
 * including the paper's headline percentages (fraction of requests
 * faster than the SLO).
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
printCdf(const AppProfile &app, FreqPolicy policy)
{
    ExperimentConfig cfg =
        bench::cellConfig(app, LoadLevel::kHigh, policy);
    ExperimentResult r = Experiment(cfg).run();

    std::printf("\n--- %s, %s governor ---\n", app.name.c_str(),
                freqPolicyName(policy));
    Table table({"latency (us)", "CDF"});
    // Print a compact 20-point CDF.
    std::size_t step = r.cdf.size() / 20;
    if (step == 0)
        step = 1;
    for (std::size_t i = step - 1; i < r.cdf.size(); i += step) {
        table.addRow({Table::num(toMicroseconds(r.cdf[i].first), 0),
                      Table::num(r.cdf[i].second, 3)});
    }
    table.print(std::cout);
    std::printf("fraction of requests within the %.0f ms SLO: %.2f%% "
                "(P99 = %.0f us)\n",
                toMilliseconds(app.slo),
                (1.0 - r.fracOverSlo) * 100.0, toMicroseconds(r.p99));
}

} // namespace

int
main()
{
    bench::banner("Fig. 4",
                  "CDF of response latency, ondemand vs performance");
    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        printCdf(app, FreqPolicy::kOndemand);
        printCdf(app, FreqPolicy::kPerformance);
    }
    std::cout << "\nPaper shape: with ondemand only 18.1% (memcached) "
                 "and 57.2% (nginx) of requests met the SLO; with "
                 "performance, 99.86% and 100% did. The reproduction "
                 "must show ondemand far below the 99% target and "
                 "performance above it.\n";
    return 0;
}
