/**
 * @file
 * Reproduces Fig. 4: CDF of response latency at high load for
 * memcached and nginx under the ondemand and performance governors,
 * including the paper's headline percentages (fraction of requests
 * faster than the SLO). The four cells run as one parallel sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
printCdf(const AppProfile &app, const std::string &policy,
         const ExperimentResult &r)
{
    std::printf("\n--- %s, %s governor ---\n", app.name.c_str(),
                policy.c_str());
    Table table({"latency (us)", "CDF"});
    // Print a compact 20-point CDF.
    std::size_t step = r.cdf.size() / 20;
    if (step == 0)
        step = 1;
    for (std::size_t i = step - 1; i < r.cdf.size(); i += step) {
        table.addRow({Table::num(toMicroseconds(r.cdf[i].first), 0),
                      Table::num(r.cdf[i].second, 3)});
    }
    table.print(std::cout);
    std::printf("fraction of requests within the %.0f ms SLO: %.2f%% "
                "(P99 = %.0f us)\n",
                toMilliseconds(app.slo),
                (1.0 - r.fracOverSlo) * 100.0, toMicroseconds(r.p99));
}

} // namespace

int
main()
{
    bench::banner("Fig. 4",
                  "CDF of response latency, ondemand vs performance");
    const std::vector<AppProfile> apps = {AppProfile::memcached(),
                                          AppProfile::nginx()};
    const std::vector<std::string> policies = {"ondemand",
                                              "performance"};

    std::vector<ExperimentConfig> points;
    for (const AppProfile &app : apps)
        for (const std::string &policy : policies)
            points.push_back(
                bench::cellConfig(app, LoadLevel::kHigh, policy));
    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig04");

    std::size_t idx = 0;
    for (const AppProfile &app : apps)
        for (const std::string &policy : policies)
            printCdf(app, policy, results[idx++]);
    std::cout << "\nPaper shape: with ondemand only 18.1% (memcached) "
                 "and 57.2% (nginx) of requests met the SLO; with "
                 "performance, 99.86% and 100% did. The reproduction "
                 "must show ondemand far below the 99% target and "
                 "performance above it.\n";
    return 0;
}
