/**
 * @file
 * Reproduces Fig. 15: energy of NCAP-menu, NCAP, NMAP-simpl and NMAP,
 * normalised to performance+menu, plus NMAP's savings relative to
 * NCAP (the paper's 4.2-14.8% numbers). Baseline cells and both apps'
 * grids run as one parallel sweep.
 *
 * Extended with a dataplane shootout appendix (memcached): the energy
 * of kernel-bypass busy polling under the spin and Metronome sleep
 * policies on the same performance+menu-normalised axis, with the
 * wasted-poll-energy column that explains the spin/Metronome gap.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner(
        "Fig. 15",
        "energy vs state of the art (normalised to performance+menu)");

    const std::vector<std::string> policies = {
        "NCAP-menu",
        "NCAP",
        "NMAP-simpl",
        "NMAP",
    };
    const std::vector<LoadLevel> loads = {
        LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh};
    const std::vector<AppProfile> apps = {AppProfile::memcached(),
                                          AppProfile::nginx()};

    std::vector<std::pair<double, double>> thresholds =
        bench::profileApps(apps, "fig15");

    // Per app: 3 baseline points (performance+menu per load), then the
    // 4x3 policy grid.
    std::vector<ExperimentConfig> points;
    std::vector<SweepSpec> specs;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        for (LoadLevel load : loads)
            points.push_back(bench::cellConfig(
                apps[ai], load, "performance",
                "menu"));
        ExperimentConfig base = bench::cellConfig(
            apps[ai], LoadLevel::kLow, "NMAP");
        base.params.set("nmap.ni_th", thresholds[ai].first);
        base.params.set("nmap.cu_th", thresholds[ai].second);
        SweepSpec spec(base);
        spec.policies(policies).loads(loads);
        std::vector<ExperimentConfig> grid = spec.build();
        points.insert(points.end(), grid.begin(), grid.end());
        specs.push_back(std::move(spec));
    }

    // Appendix cells: kernel-bypass dataplane variants (memcached),
    // appended after the grids so the grid indexing is untouched.
    const std::vector<std::pair<const char *, bool>> dataplanes = {
        {"spin", false},
        {"metronome", true}, // sleep with armed wakeups
    };
    const std::size_t bypass_at = points.size();
    for (const auto &[policy, armed] : dataplanes)
        for (LoadLevel load : loads) {
            ExperimentConfig cfg = bench::cellConfig(
                AppProfile::memcached(), load, "ondemand");
            cfg.params.set("dataplane.mode", "bypass");
            cfg.params.set("dataplane.policy", policy);
            if (armed)
                cfg.params.set("dataplane.sleep_armed_irq", "true");
            points.push_back(cfg);
        }

    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig15");

    std::size_t offset = 0;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const AppProfile &app = apps[ai];
        const SweepSpec &spec = specs[ai];

        double base[3];
        double ncap[3] = {0, 0, 0};
        double nmap[3] = {0, 0, 0};
        for (std::size_t li = 0; li < loads.size(); ++li)
            base[li] = results[offset + li].energyJoules;
        const std::size_t grid_offset = offset + loads.size();

        std::printf("\n--- %s ---\n", app.name.c_str());
        Table table({"policy", "low", "med", "high"});
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            std::vector<std::string> row{
                policies[pi].c_str()};
            for (std::size_t li = 0; li < loads.size(); ++li) {
                const ExperimentResult &r =
                    results[grid_offset + spec.index(pi, 0, li)];
                if (policies[pi] == "NCAP")
                    ncap[li] = r.energyJoules;
                if (policies[pi] == "NMAP")
                    nmap[li] = r.energyJoules;
                row.push_back(
                    Table::num(r.energyJoules / base[li], 2));
            }
            table.addRow(row);
        }
        table.print(std::cout);

        std::printf("NMAP energy vs NCAP: %s / %s / %s "
                    "(paper: %s)\n",
                    Table::pct(nmap[0] / ncap[0] - 1.0).c_str(),
                    Table::pct(nmap[1] / ncap[1] - 1.0).c_str(),
                    Table::pct(nmap[2] / ncap[2] - 1.0).c_str(),
                    app.name == "memcached" ? "-4.2/-8.8/-9.0%"
                                            : "-12.0/-14.7/-11.0%");
        offset = grid_offset + spec.numPoints();
    }

    // The memcached performance+menu baselines are the first three
    // points; reuse them to normalise the bypass appendix.
    std::printf("\n--- memcached, kernel-bypass dataplane "
                "(1 poll core, ondemand workers; energy / "
                "performance+menu) ---\n");
    Table bypass({"dataplane", "low", "med", "high",
                  "wasted poll (J), l/m/h"});
    for (std::size_t di = 0; di < dataplanes.size(); ++di) {
        std::vector<std::string> row{
            std::string("bypass/") + dataplanes[di].first +
            (dataplanes[di].second ? "+irq" : "")};
        std::string wasted;
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const ExperimentResult &r =
                results[bypass_at + di * loads.size() + li];
            row.push_back(Table::num(
                r.energyJoules / results[li].energyJoules, 2));
            if (!wasted.empty())
                wasted += "/";
            wasted += Table::num(r.bypassWastedPollEnergy, 2);
        }
        row.push_back(wasted);
        bypass.addRow(row);
    }
    bypass.print(std::cout);

    std::cout << "\nPaper shape: NMAP consumes less than NCAP at every "
                 "load (per-core DVFS falls back faster and never "
                 "disables the sleep states); NMAP-simpl is also "
                 "cheaper than NCAP but pays for it at high load "
                 "(Fig. 14). Dataplane appendix: at low load spin "
                 "pays the busy-poll tax (the wasted-poll column is "
                 "the whole premium over the baseline), but from "
                 "medium load up the user-space stack's per-packet "
                 "cycle savings dominate and even spin undercuts the "
                 "kernel baseline; Metronome's sleeps reclaim the "
                 "idle-poll energy and are cheapest at every load — "
                 "see ext_bypass for the latency side.\n";
    return 0;
}
