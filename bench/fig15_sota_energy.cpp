/**
 * @file
 * Reproduces Fig. 15: energy of NCAP-menu, NCAP, NMAP-simpl and NMAP,
 * normalised to performance+menu, plus NMAP's savings relative to
 * NCAP (the paper's 4.2-14.8% numbers).
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner(
        "Fig. 15",
        "energy vs state of the art (normalised to performance+menu)");
    bench::NmapThresholdCache thresholds;

    const FreqPolicy policies[] = {
        FreqPolicy::kNcapMenu,
        FreqPolicy::kNcap,
        FreqPolicy::kNmapSimpl,
        FreqPolicy::kNmap,
    };

    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        auto [ni, cu] = thresholds.get(app);

        double base[3];
        double ncap[3] = {0, 0, 0};
        double nmap[3] = {0, 0, 0};
        int bi = 0;
        for (LoadLevel load :
             {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
            ExperimentConfig cfg = bench::cellConfig(
                app, load, FreqPolicy::kPerformance, IdlePolicy::kMenu);
            base[bi++] = Experiment(cfg).run().energyJoules;
        }

        std::printf("\n--- %s ---\n", app.name.c_str());
        Table table({"policy", "low", "med", "high"});
        for (FreqPolicy policy : policies) {
            std::vector<std::string> row{freqPolicyName(policy)};
            int li = 0;
            for (LoadLevel load :
                 {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
                ExperimentConfig cfg =
                    bench::cellConfig(app, load, policy);
                cfg.nmap.niThreshold = ni;
                cfg.nmap.cuThreshold = cu;
                ExperimentResult r = Experiment(cfg).run();
                if (policy == FreqPolicy::kNcap)
                    ncap[li] = r.energyJoules;
                if (policy == FreqPolicy::kNmap)
                    nmap[li] = r.energyJoules;
                row.push_back(
                    Table::num(r.energyJoules / base[li], 2));
                ++li;
            }
            table.addRow(row);
        }
        table.print(std::cout);

        std::printf("NMAP energy vs NCAP: %s / %s / %s "
                    "(paper: %s)\n",
                    Table::pct(nmap[0] / ncap[0] - 1.0).c_str(),
                    Table::pct(nmap[1] / ncap[1] - 1.0).c_str(),
                    Table::pct(nmap[2] / ncap[2] - 1.0).c_str(),
                    app.name == "memcached" ? "-4.2/-8.8/-9.0%"
                                            : "-12.0/-14.7/-11.0%");
    }
    std::cout << "\nPaper shape: NMAP consumes less than NCAP at every "
                 "load (per-core DVFS falls back faster and never "
                 "disables the sleep states); NMAP-simpl is also "
                 "cheaper than NCAP but pays for it at high load "
                 "(Fig. 14).\n";
    return 0;
}
