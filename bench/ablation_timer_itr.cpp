/**
 * @file
 * Ablation: NMAP's decision-timer interval (the paper fixes it at
 * 10 ms, Section 6.1) and the NIC's interrupt moderation period (the
 * 82599's 10 us, Section 5.1).
 *
 * The timer interval bounds how fast NMAP falls back to CPU mode
 * (energy) but not how fast it reacts to bursts (that is the
 * notification path, which is asynchronous). The ITR shapes the very
 * signal NMAP consumes: very long moderation periods batch packets
 * into fewer, larger sessions and inflate the polling counts.
 *
 * Two parallel stages: the per-ITR profiling passes fan out first
 * (each ITR changes the signal, so each needs its own thresholds),
 * then the timer and ITR experiment points run as one sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation",
                  "NMAP timer interval and NIC interrupt moderation");

    AppProfile app = AppProfile::memcached();
    auto [ni, cu] = bench::profileApps({app}, "ablation_timer_itr")[0];

    const std::vector<double> timer_ms = {1.0,  5.0,  10.0,
                                          20.0, 50.0, 100.0};
    const std::vector<double> itr_us = {1.0, 5.0, 10.0, 50.0, 200.0};

    // Stage 1: per-ITR profiling (the signal changes with the ITR, so
    // re-run the offline profiling under the same moderation setting).
    std::vector<ExperimentConfig> itr_bases;
    for (double us : itr_us) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP");
        cfg.nic.itr = microseconds(us);
        itr_bases.push_back(cfg);
    }
    SweepOptions opts;
    opts.tag = "ablation_timer_itr";
    std::vector<SweepSlot<std::pair<double, double>>> itr_thresholds =
        SweepRunner(opts).profile(itr_bases);

    // Stage 2: all experiment points in one sweep.
    std::vector<ExperimentConfig> points;
    for (double ms : timer_ms) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP");
        cfg.params.setTick("nmap.timer_interval", milliseconds(ms));
        cfg.params.set("nmap.ni_th", ni);
        cfg.params.set("nmap.cu_th", cu);
        points.push_back(cfg);
    }
    for (std::size_t i = 0; i < itr_us.size(); ++i) {
        ExperimentConfig cfg = itr_bases[i];
        auto [ni2, cu2] = itr_thresholds[i].value();
        cfg.params.set("nmap.ni_th", ni2);
        cfg.params.set("nmap.cu_th", cu2);
        points.push_back(cfg);
    }
    std::vector<ExperimentResult> results =
        bench::runAll(points, "ablation_timer_itr");

    std::cout << "decision-timer sweep (high load):\n";
    Table timer_table({"timer (ms)", "P99 (us)", "xSLO", "energy (J)",
                       "mode switches"});
    std::size_t idx = 0;
    for (double ms : timer_ms) {
        const ExperimentResult &r = results[idx++];
        timer_table.addRow({
            Table::num(ms, 0),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.p99) /
                           static_cast<double>(app.slo),
                       2),
            Table::num(r.energyJoules, 1),
            std::to_string(r.pstateTransitions),
        });
    }
    timer_table.print(std::cout);

    std::cout << "\nNIC interrupt-moderation (ITR) sweep (high load, "
                 "NMAP re-profiled per ITR):\n";
    Table itr_table({"ITR (us)", "P99 (us)", "poll/intr ratio",
                     "ksoftirqd wakes", "energy (J)"});
    for (double us : itr_us) {
        const ExperimentResult &r = results[idx++];
        double ratio =
            r.pktsIntrMode
                ? static_cast<double>(r.pktsPollMode) /
                      static_cast<double>(r.pktsIntrMode)
                : 0.0;
        itr_table.addRow({
            Table::num(us, 0),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(ratio, 2),
            std::to_string(r.ksoftirqdWakes),
            Table::num(r.energyJoules, 1),
        });
    }
    itr_table.print(std::cout);

    std::cout
        << "\nFinding: the paper's 10 ms timer sits on a broad "
           "plateau. A very short timer (1 ms) actively *hurts* the "
           "tail: single-window ratio estimates are noisy, so NMAP "
           "dithers back to CPU mode mid-burst; long timers only cost "
           "energy (late fallback) because the burst *trigger* is "
           "asynchronous and unaffected. The ITR sweep moves the "
           "polling share and interrupt counts, but NMAP re-profiled "
           "per setting keeps meeting the SLO from 5 us to 50 us of "
           "moderation, degrading only at the 1 us (interrupt storm) "
           "and 200 us (batching delay) extremes.\n";
    return 0;
}
