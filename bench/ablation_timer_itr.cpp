/**
 * @file
 * Ablation: NMAP's decision-timer interval (the paper fixes it at
 * 10 ms, Section 6.1) and the NIC's interrupt moderation period (the
 * 82599's 10 us, Section 5.1).
 *
 * The timer interval bounds how fast NMAP falls back to CPU mode
 * (energy) but not how fast it reacts to bursts (that is the
 * notification path, which is asynchronous). The ITR shapes the very
 * signal NMAP consumes: very long moderation periods batch packets
 * into fewer, larger sessions and inflate the polling counts.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation",
                  "NMAP timer interval and NIC interrupt moderation");

    AppProfile app = AppProfile::memcached();
    ExperimentConfig base;
    base.app = app;
    auto [ni, cu] = Experiment::profileThresholds(base);

    std::cout << "decision-timer sweep (high load):\n";
    Table timer_table({"timer (ms)", "P99 (us)", "xSLO", "energy (J)",
                       "mode switches"});
    for (double ms : {1.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, FreqPolicy::kNmap);
        cfg.nmap.timerInterval = milliseconds(ms);
        cfg.nmap.niThreshold = ni;
        cfg.nmap.cuThreshold = cu;
        ExperimentResult r = Experiment(cfg).run();
        timer_table.addRow({
            Table::num(ms, 0),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.p99) /
                           static_cast<double>(app.slo),
                       2),
            Table::num(r.energyJoules, 1),
            std::to_string(r.pstateTransitions),
        });
    }
    timer_table.print(std::cout);

    std::cout << "\nNIC interrupt-moderation (ITR) sweep (high load, "
                 "NMAP re-profiled per ITR):\n";
    Table itr_table({"ITR (us)", "P99 (us)", "poll/intr ratio",
                     "ksoftirqd wakes", "energy (J)"});
    for (double us : {1.0, 5.0, 10.0, 50.0, 200.0}) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, FreqPolicy::kNmap);
        cfg.nic.itr = microseconds(us);
        // The signal changes with the ITR, so re-run the offline
        // profiling under the same moderation setting.
        auto [ni2, cu2] = Experiment::profileThresholds(cfg);
        cfg.nmap.niThreshold = ni2;
        cfg.nmap.cuThreshold = cu2;
        ExperimentResult r = Experiment(cfg).run();
        double ratio =
            r.pktsIntrMode
                ? static_cast<double>(r.pktsPollMode) /
                      static_cast<double>(r.pktsIntrMode)
                : 0.0;
        itr_table.addRow({
            Table::num(us, 0),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(ratio, 2),
            std::to_string(r.ksoftirqdWakes),
            Table::num(r.energyJoules, 1),
        });
    }
    itr_table.print(std::cout);

    std::cout
        << "\nFinding: the paper's 10 ms timer sits on a broad "
           "plateau. A very short timer (1 ms) actively *hurts* the "
           "tail: single-window ratio estimates are noisy, so NMAP "
           "dithers back to CPU mode mid-burst; long timers only cost "
           "energy (late fallback) because the burst *trigger* is "
           "asynchronous and unaffected. The ITR sweep moves the "
           "polling share and interrupt counts, but NMAP re-profiled "
           "per setting keeps meeting the SLO from 5 us to 50 us of "
           "moderation, degrading only at the 1 us (interrupt storm) "
           "and 200 us (batching delay) extremes.\n";
    return 0;
}
