/**
 * @file
 * Extension evaluation: multi-tier service topologies — what request
 * chaining does to the latency/energy trade of each power policy.
 *
 * Every cell runs an N-stage service chain behind the switch
 * (topology.* keys): tier 0 fronts the clients and each stage forwards
 * east-west until the last stage replies. Per-stage service cost is
 * normalised by 1/depth, so the *total* service demand per request is
 * constant across depths and the differences come from the chain
 * itself: N switch traversals, N dispatch decisions, N chances for a
 * stage's power state to be wrong when the request arrives.
 *
 * The sweep crosses chain depth x dispatch x frequency policy and
 * reports the end-to-end tail next to the per-tier hop-p99 breakdown
 * (which stage owns the tail, and how much of the end-to-end p99 the
 * per-hop sum explains). A final chaos cell crashes a mid-chain host
 * with the failure detector armed: ejection must stay tier-local and
 * the upstream retry ladder must bridge the gap.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    std::string policy;
    double ni;
    double cu;
};

Tick
intoWindow(const ClusterConfig &cfg, double frac)
{
    return cfg.base.warmup +
           static_cast<Tick>(static_cast<double>(cfg.base.duration) *
                             frac);
}

/**
 * An N-stage chain: one host per stage, except stage 1 runs two hosts
 * from depth 3 up (the classic LB -> app pool -> cache shape). Stage
 * cost is 1/depth so total service demand matches a single-tier run.
 */
ClusterConfig
chainConfig(int depth, const std::string &dispatch, const Variant &v)
{
    ClusterConfig cfg;
    cfg.base = bench::cellConfig(AppProfile::memcached(),
                                 LoadLevel::kHigh, v.policy);
    if (v.policy == "NMAP") {
        cfg.base.params.set("nmap.ni_th", v.ni);
        cfg.base.params.set("nmap.cu_th", v.cu);
    }
    cfg.dispatch = dispatch;
    cfg.clientGroups = 2;
    cfg.drain = milliseconds(2);

    cfg.base.params.set("topology.tiers", depth);
    int hosts = 0;
    for (int t = 0; t < depth; ++t) {
        const std::string tier =
            "topology.tier" + std::to_string(t) + ".";
        cfg.base.params.set(tier + "name",
                            "stage" + std::to_string(t));
        const int tier_hosts = (t == 1 && depth >= 3) ? 2 : 1;
        cfg.base.params.set(tier + "hosts", tier_hosts);
        cfg.base.params.set(tier + "service_scale",
                            1.0 / static_cast<double>(depth));
        hosts += tier_hosts;
    }
    cfg.numHosts = hosts; // derived; pinned for the record sink
    return cfg;
}

/** The chaos cell: crash one of the two stage-1 hosts mid-window with
 *  the detector armed and clients retrying. */
ClusterConfig
chaosConfig(const Variant &v)
{
    ClusterConfig cfg = chainConfig(3, "least-outstanding", v);
    cfg.fabric.healthInterval = microseconds(200);
    cfg.fabric.healthTimeout = milliseconds(1);
    cfg.fabric.ejectDuration = milliseconds(2);
    cfg.base.params.setTick("client.timeout", milliseconds(2));
    cfg.base.params.set("client.retries", 3);
    cfg.base.params.setTick("client.backoff_cap", milliseconds(4));
    cfg.base.params.set("fault.crash_host", 1);
    cfg.base.params.setTick("fault.crash_at", intoWindow(cfg, 0.3));
    cfg.base.params.setTick("fault.recover_at", intoWindow(cfg, 0.6));
    return cfg;
}

std::string
tierP99s(const ClusterResult &r)
{
    std::string out;
    for (const ClusterTierResult &tier : r.tiers) {
        if (!out.empty())
            out += "/";
        out += Table::num(toMicroseconds(tier.hopP99), 0);
    }
    return out;
}

/** Chain conservation: every request crosses every stage exactly once
 *  and comes back exactly once (fault-free cells only). */
bool
conserved(const ClusterConfig &cfg, const ClusterResult &r)
{
    const auto depth = static_cast<std::uint64_t>(
        cfg.base.params.getInt("topology.tiers", 1));
    return r.responsesReceived == r.requestsSent &&
           r.eastWestForwards == r.requestsSent * (depth - 1) &&
           r.requestsForwarded == r.requestsSent * depth &&
           r.responsesReturned == r.requestsSent &&
           r.switchPortDrops == 0 && r.hostNicDrops == 0 &&
           r.strayResponses == 0;
}

} // namespace

int
main()
{
    bench::banner("Extension",
                  "chain depth x dispatch x power policy (service "
                  "topologies)");

    auto [mc_ni, mc_cu] =
        bench::profileApps({AppProfile::memcached()}, "ext_tiers")[0];

    const std::vector<Variant> variants = {
        {"performance", "performance", 0, 0},
        {"NMAP", "NMAP", mc_ni, mc_cu},
    };
    const std::vector<int> depths = {2, 3, 4};
    const std::vector<std::string> dispatches = {"round-robin",
                                                 "least-outstanding"};

    std::vector<ClusterConfig> configs;
    for (int depth : depths)
        for (const std::string &dispatch : dispatches)
            for (const Variant &v : variants)
                configs.push_back(chainConfig(depth, dispatch, v));
    const std::size_t chaos_at = configs.size();
    for (const Variant &v : variants)
        configs.push_back(chaosConfig(v));

    std::vector<std::function<ClusterResult()>> tasks;
    tasks.reserve(configs.size());
    for (const ClusterConfig &cfg : configs)
        tasks.emplace_back(
            [&cfg] { return ClusterExperiment(cfg).run(); });
    SweepOptions opts;
    opts.tag = "ext_tiers";
    std::vector<SweepSlot<ClusterResult>> slots =
        runParallel(tasks, opts);

    if (ResultWriter *sink = bench::jsonSink())
        for (std::size_t i = 0; i < configs.size(); ++i)
            appendClusterResultRecord(*sink, configs[i],
                                      slots[i].value());

    int bad_conservation = 0;
    std::printf("\n--- memcached high, per-stage cost 1/depth, "
                "stage1 runs 2 hosts from depth 3 ---\n");
    Table table({"depth", "dispatch", "policy", "P99 (us)",
                 "hopP99 sum", "tier p99s (us)", "tail tier",
                 "energy (J)"});
    for (std::size_t i = 0; i < chaos_at; ++i) {
        const ClusterResult &r = slots[i].value();
        if (!conserved(configs[i], r))
            ++bad_conservation;
        std::size_t tail = 0;
        for (std::size_t t = 1; t < r.tiers.size(); ++t)
            if (r.tiers[t].hopP99 > r.tiers[tail].hopP99)
                tail = t;
        table.addRow({
            std::to_string(r.tiers.size()),
            configs[i].dispatch,
            configs[i].base.freqPolicy,
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(toMicroseconds(r.hopP99Sum), 0),
            tierP99s(r),
            r.tiers[tail].name,
            Table::num(r.energyJoules, 1),
        });
    }
    table.print(std::cout);
    if (bad_conservation != 0) {
        std::fprintf(stderr,
                     "ext_tiers: %d cells broke chain conservation\n",
                     bad_conservation);
        return 1;
    }

    std::printf("\n--- chaos: crash one stage-1 host mid-window "
                "(3-stage chain, detector + retries) ---\n");
    Table chaos({"policy", "avail", "P99 (us)", "retx", "ejections",
                 "rerouted", "tier p99s (us)", "energy (J)"});
    for (std::size_t i = chaos_at; i < configs.size(); ++i) {
        const ClusterResult &r = slots[i].value();
        chaos.addRow({
            configs[i].base.freqPolicy,
            Table::num(r.availability, 4),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.retransmits), 0),
            Table::num(static_cast<double>(r.ejections), 0),
            Table::num(static_cast<double>(r.requestsRerouted), 0),
            tierP99s(r),
            Table::num(r.energyJoules, 1),
        });
    }
    chaos.print(std::cout);

    std::cout
        << "\nFindings: with total service demand held constant, "
           "deeper chains fatten the end-to-end tail superlinearly "
           "(roughly 1.2 ms at depth 2 to 3.8 ms at depth 4): every "
           "extra stage adds a fabric+port round trip and another "
           "chance to catch a stage's power state wrong, and each "
           "stage's completion train arrives at the next stage more "
           "clumped than the client burst that produced it, so hop "
           "p99 grows along the chain and the *last* single-host "
           "stage owns the tail at every depth. The two-host stage "
           "is the exception — halving per-host arrivals keeps its "
           "hop p99 at a fraction of its neighbours' — which is the "
           "per-tier SLO attribution working as intended: the "
           "breakdown says which stage to scale out. The per-tier "
           "hop-p99 sum consistently *exceeds* the end-to-end p99, "
           "i.e. the stages do not hit their tails on the same "
           "requests; budgeting a chain SLO as the sum of per-hop "
           "p99s is conservative. NMAP keeps a small energy edge "
           "over performance at matched tails, but chaining dilutes "
           "it: per-stage utilisation is 1/depth of the single-tier "
           "equivalent, so every stage idles more and the policies "
           "converge. In the chaos cell the detector ejects the "
           "crashed stage-1 host (exactly one ejection, no other "
           "stage ejected) and least-outstanding's health guard "
           "steers new work to the survivor before the switch's "
           "affinity-reroute path is ever needed (rerouted = 0); "
           "availability lands near the fraction of the window the "
           "host was up, the written-off work returns as "
           "retransmissions, and the retry storm's congestion shows "
           "up where the topology concentrates it — the single "
           "front stage's hop p99, not the crashed tier's.\n";
    return 0;
}
