/**
 * @file
 * Reproduces Fig. 13: package energy of intel_powersave, ondemand,
 * performance, NMAP-simpl and NMAP across sleep policies and loads,
 * normalised to performance+menu (the paper's baseline). The grid runs
 * as one parallel sweep; the baseline is read from its own grid cells.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 13",
                  "energy comparison (normalised to performance+menu)");

    const std::vector<std::string> policies = {
        "intel_powersave", "ondemand",
        "performance",    "NMAP-simpl",
        "NMAP",
    };
    const std::size_t kPerformanceIdx = 2;
    const std::size_t kMenuIdx = 0;
    const std::vector<std::string> idles = {
        "menu", "disable", "c6only"};
    const std::vector<LoadLevel> loads = {
        LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh};
    const std::vector<AppProfile> apps = {AppProfile::memcached(),
                                          AppProfile::nginx()};

    std::vector<std::pair<double, double>> thresholds =
        bench::profileApps(apps, "fig13");

    std::vector<ExperimentConfig> points;
    std::vector<SweepSpec> specs;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        ExperimentConfig base = bench::cellConfig(
            apps[ai], LoadLevel::kLow, "ondemand");
        base.params.set("nmap.ni_th", thresholds[ai].first);
        base.params.set("nmap.cu_th", thresholds[ai].second);
        SweepSpec spec(base);
        spec.policies(policies).idlePolicies(idles).loads(loads);
        std::vector<ExperimentConfig> grid = spec.build();
        points.insert(points.end(), grid.begin(), grid.end());
        specs.push_back(std::move(spec));
    }
    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig13");

    std::size_t offset = 0;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const AppProfile &app = apps[ai];
        const SweepSpec &spec = specs[ai];

        // Baseline: the grid's own performance+menu cells per load.
        double base[3];
        for (std::size_t li = 0; li < loads.size(); ++li)
            base[li] = results[offset + spec.index(kPerformanceIdx,
                                                   kMenuIdx, li)]
                           .energyJoules;

        std::printf("\n--- %s (baseline: performance+menu = 1.00; "
                    "absolute %.1f / %.1f / %.1f J) ---\n",
                    app.name.c_str(), base[0], base[1], base[2]);
        Table table({"policy", "sleep", "low", "med", "high"});
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            for (std::size_t ii = 0; ii < idles.size(); ++ii) {
                std::vector<std::string> row{
                    policies[pi].c_str(),
                    idles[ii].c_str()};
                for (std::size_t li = 0; li < loads.size(); ++li) {
                    const ExperimentResult &r =
                        results[offset + spec.index(pi, ii, li)];
                    row.push_back(Table::num(
                        r.energyJoules / base[li], 2));
                }
                table.addRow(row);
            }
        }
        table.print(std::cout);
        offset += spec.numPoints();
    }
    std::cout
        << "\nPaper shape: c6only rows are the cheapest and disable "
           "rows much more expensive at every policy; NMAP saves vs "
           "performance at every load (paper: 35.7/31.4/9.1% for "
           "memcached, 30.4/31.3/28.6% for nginx), with the biggest "
           "relative savings at low load; the utilisation governors "
           "are cheapest but violate the SLO (Fig. 12).\n";
    return 0;
}
