/**
 * @file
 * Reproduces Fig. 13: package energy of intel_powersave, ondemand,
 * performance, NMAP-simpl and NMAP across sleep policies and loads,
 * normalised to performance+menu (the paper's baseline).
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 13",
                  "energy comparison (normalised to performance+menu)");
    bench::NmapThresholdCache thresholds;

    const FreqPolicy policies[] = {
        FreqPolicy::kIntelPowersave, FreqPolicy::kOndemand,
        FreqPolicy::kPerformance,    FreqPolicy::kNmapSimpl,
        FreqPolicy::kNmap,
    };
    const IdlePolicy idles[] = {IdlePolicy::kMenu, IdlePolicy::kDisable,
                                IdlePolicy::kC6Only};

    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        auto [ni, cu] = thresholds.get(app);

        // Baseline: performance + menu per load level.
        double base[3];
        int bi = 0;
        for (LoadLevel load :
             {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
            ExperimentConfig cfg = bench::cellConfig(
                app, load, FreqPolicy::kPerformance, IdlePolicy::kMenu);
            base[bi++] = Experiment(cfg).run().energyJoules;
        }

        std::printf("\n--- %s (baseline: performance+menu = 1.00; "
                    "absolute %.1f / %.1f / %.1f J) ---\n",
                    app.name.c_str(), base[0], base[1], base[2]);
        Table table({"policy", "sleep", "low", "med", "high"});
        for (FreqPolicy policy : policies) {
            for (IdlePolicy idle : idles) {
                std::vector<std::string> row{freqPolicyName(policy),
                                             idlePolicyName(idle)};
                int li = 0;
                for (LoadLevel load :
                     {LoadLevel::kLow, LoadLevel::kMed,
                      LoadLevel::kHigh}) {
                    ExperimentConfig cfg =
                        bench::cellConfig(app, load, policy, idle);
                    cfg.nmap.niThreshold = ni;
                    cfg.nmap.cuThreshold = cu;
                    ExperimentResult r = Experiment(cfg).run();
                    row.push_back(Table::num(
                        r.energyJoules / base[li], 2));
                    ++li;
                }
                table.addRow(row);
            }
        }
        table.print(std::cout);
    }
    std::cout
        << "\nPaper shape: c6only rows are the cheapest and disable "
           "rows much more expensive at every policy; NMAP saves vs "
           "performance at every load (paper: 35.7/31.4/9.1% for "
           "memcached, 30.4/31.3/28.6% for nginx), with the biggest "
           "relative savings at low load; the utilisation governors "
           "are cheapest but violate the SLO (Fig. 12).\n";
    return 0;
}
