/**
 * @file
 * Simulator-core performance benchmark — the perf trajectory's anchor.
 *
 * Runs one fixed single-host rig and one fixed cluster rig and reports
 * how fast the *simulator* is: simulated events per wall-clock second
 * and wall-clock milliseconds per simulated second. The simulated
 * results stay pinned by the golden/parity suite; this bench pins the
 * speed at which they are produced.
 *
 *   ./bench/perf_core                    # table on stdout
 *   ./bench/perf_core --json PATH        # also write machine-readable
 *   ./bench/perf_core --check PATH       # compare against a committed
 *                                        # baseline (BENCH_perf.json),
 *                                        # exit 1 on a large regression
 *   ./bench/perf_core --check PATH --tolerance 0.4
 *
 * Event counts are byte-deterministic; only wall-clock times vary
 * between hosts and runs. Each rig runs NMAPSIM_PERF_REPEATS times
 * (default 3) and the best wall time is reported, which filters most
 * scheduler noise; the --check gate is deliberately generous (default
 * 40%) to tolerate the rest on shared CI runners.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/cluster.hh"
#include "harness/experiment.hh"

using namespace nmapsim;

namespace {

/** One rig's measured speed. */
struct PerfPoint
{
    std::string name;
    std::uint64_t events = 0;   //!< deterministic event count
    double simSeconds = 0.0;    //!< simulated time covered
    double wallSeconds = 0.0;   //!< best-of-repeats wall time
    double eventsPerSec = 0.0;
    double wallMsPerSimSec = 0.0;
};

double
wallNow()
{
    using clk = std::chrono::steady_clock; // lint: nondet-ok(bench-only wall clock; sim results never depend on it)
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

int
repeats()
{
    const char *env = std::getenv("NMAPSIM_PERF_REPEATS");
    if (!env)
        return 3;
    int v = std::atoi(env);
    return v > 0 ? v : 3;
}

/** The pinned single-host rig: the paper's full 8-core server under
 *  high memcached load with the NMAP policy (thresholds pinned so the
 *  bench never profiles). */
ExperimentConfig
singleHostConfig()
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.load = LoadLevel::kHigh;
    cfg.freqPolicy = "NMAP";
    cfg.idlePolicy = "menu";
    cfg.params.set("nmap.ni_th", "400");
    cfg.params.set("nmap.cu_th", "0.7");
    cfg.numCores = 8;
    cfg.warmup = milliseconds(50);
    cfg.duration = static_cast<Tick>(
        static_cast<double>(milliseconds(400)) *
        bench::durationScale());
    cfg.seed = 42;
    return cfg;
}

/** The pinned cluster rig: 4 full hosts behind the ToR switch, two
 *  client groups, flow-hash dispatch — the configuration class the
 *  million-client roadmap scales up. */
ClusterConfig
clusterConfig()
{
    ClusterConfig cfg;
    cfg.base = singleHostConfig();
    cfg.base.freqPolicy = "ondemand";
    cfg.base.numCores = 4;
    cfg.base.duration = static_cast<Tick>(
        static_cast<double>(milliseconds(300)) *
        bench::durationScale());
    cfg.numHosts = 4;
    cfg.clientGroups = 2;
    cfg.dispatch = "flow-hash";
    cfg.drain = milliseconds(5);
    return cfg;
}

template <typename RunFn>
PerfPoint
measure(const std::string &name, Tick sim_ticks, RunFn run)
{
    PerfPoint p;
    p.name = name;
    p.simSeconds = toSeconds(sim_ticks);
    double best = 0.0;
    const int n = repeats();
    for (int i = 0; i < n; ++i) {
        const double t0 = wallNow();
        const std::uint64_t events = run();
        const double wall = wallNow() - t0;
        if (i == 0 || wall < best)
            best = wall;
        if (p.events != 0 && p.events != events) {
            std::fprintf(stderr,
                         "perf_core: %s event count varied between "
                         "repeats (%llu vs %llu) — determinism bug\n",
                         name.c_str(),
                         static_cast<unsigned long long>(p.events),
                         static_cast<unsigned long long>(events));
            std::exit(1);
        }
        p.events = events;
    }
    p.wallSeconds = best;
    p.eventsPerSec = static_cast<double>(p.events) / best;
    p.wallMsPerSimSec = best * 1e3 / p.simSeconds;
    return p;
}

std::vector<PerfPoint>
runAllRigs()
{
    std::vector<PerfPoint> points;

    const ExperimentConfig host_cfg = singleHostConfig();
    points.push_back(measure(
        "single_host", host_cfg.warmup + host_cfg.duration, [&] {
            return Experiment(host_cfg).run().eventsProcessed;
        }));

    const ClusterConfig cluster_cfg = clusterConfig();
    points.push_back(measure(
        "cluster",
        cluster_cfg.base.warmup + cluster_cfg.base.duration +
            cluster_cfg.drain,
        [&] {
            return ClusterExperiment(cluster_cfg).run().eventsProcessed;
        }));

    return points;
}

void
printTable(const std::vector<PerfPoint> &points)
{
    bench::banner("perf_core",
                  "simulator-core speed (events/sec, wall per sim-sec)");
    std::printf("%-14s %14s %10s %10s %16s %14s\n", "rig", "events",
                "sim (s)", "wall (s)", "events/sec", "ms/sim-sec");
    std::printf("%s\n", std::string(84, '-').c_str());
    for (const PerfPoint &p : points)
        std::printf("%-14s %14llu %10.3f %10.3f %16.0f %14.1f\n",
                    p.name.c_str(),
                    static_cast<unsigned long long>(p.events),
                    p.simSeconds, p.wallSeconds, p.eventsPerSec,
                    p.wallMsPerSimSec);
}

void
writeJson(const std::vector<PerfPoint> &points, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "perf_core: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PerfPoint &p = points[i];
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"events\": %llu, "
                      "\"sim_seconds\": %.6f, \"wall_seconds\": %.6f, "
                      "\"events_per_sec\": %.0f, "
                      "\"wall_ms_per_sim_second\": %.3f}%s\n",
                      p.name.c_str(),
                      static_cast<unsigned long long>(p.events),
                      p.simSeconds, p.wallSeconds, p.eventsPerSec,
                      p.wallMsPerSimSec,
                      i + 1 < points.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
}

/** Minimal extractor for the baseline file this bench itself writes:
 *  finds `"name": "<rig>"` records and their `"events_per_sec"`. */
double
baselineEventsPerSec(const std::string &json, const std::string &rig)
{
    const std::string needle = "\"name\": \"" + rig + "\"";
    std::size_t at = json.find(needle);
    if (at == std::string::npos)
        return 0.0;
    const std::string key = "\"events_per_sec\": ";
    at = json.find(key, at);
    if (at == std::string::npos)
        return 0.0;
    return std::atof(json.c_str() + at + key.size());
}

int
check(const std::vector<PerfPoint> &points, const std::string &path,
      double tolerance)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "perf_core: cannot read baseline %s\n",
                     path.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();

    int failures = 0;
    for (const PerfPoint &p : points) {
        const double base = baselineEventsPerSec(json, p.name);
        if (base <= 0.0) {
            std::fprintf(stderr,
                         "perf_core: rig '%s' missing from %s\n",
                         p.name.c_str(), path.c_str());
            ++failures;
            continue;
        }
        const double floor = base * (1.0 - tolerance);
        const bool ok = p.eventsPerSec >= floor;
        std::printf("check %-14s %10.0f events/sec vs baseline %10.0f "
                    "(floor %10.0f): %s\n",
                    p.name.c_str(), p.eventsPerSec, base, floor,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            ++failures;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string check_path;
    double tolerance = 0.4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tolerance") == 0 &&
                   i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: perf_core [--json PATH] "
                         "[--check PATH [--tolerance X]]\n");
            return 2;
        }
    }

    const std::vector<PerfPoint> points = runAllRigs();
    printTable(points);
    if (!json_path.empty())
        writeJson(points, json_path);
    if (!check_path.empty())
        return check(points, check_path, tolerance);
    return 0;
}
