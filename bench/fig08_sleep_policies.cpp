/**
 * @file
 * Reproduces Fig. 8: the memcached latency-load curve and energy
 * consumption under the three sleep policies (menu, disable, c6only)
 * with the performance governor (Section 5.2). SLO = 1 ms. The
 * 21-point (load x sleep policy) grid runs as one parallel sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 8", "latency-load curve + energy for "
                            "menu/disable/c6only (performance gov)");

    AppProfile app = AppProfile::memcached();
    // Load sweep: burst height from light to past the paper's 750K
    // average (the x axis of the latency-load curve), at the high
    // level's duty cycle.
    const double duties = app.high.duty;
    std::vector<double> avg_loads{100e3, 250e3, 400e3, 550e3,
                                  650e3, 750e3, 820e3};
    const std::vector<std::string> idles = {
        "menu", "disable", "c6only"};

    // Keep the duty, vary the in-burst height.
    std::vector<double> rps_overrides;
    for (double avg : avg_loads)
        rps_overrides.push_back(avg / duties);
    SweepSpec spec(bench::cellConfig(app, LoadLevel::kHigh,
                                     "performance"));
    spec.idlePolicies(idles).rpsList(rps_overrides);
    std::vector<ExperimentResult> results =
        bench::runAll(spec.build(), "fig08");

    Table lat({"avg load (KRPS)", "menu P99 (us)", "disable P99 (us)",
               "c6only P99 (us)"});
    Table energy({"avg load (KRPS)", "menu (J)", "disable", "c6only",
                  "disable vs menu", "c6only vs menu"});

    for (std::size_t ri = 0; ri < avg_loads.size(); ++ri) {
        double p99[3];
        double joules[3];
        for (std::size_t ii = 0; ii < idles.size(); ++ii) {
            const ExperimentResult &r =
                results[spec.index(0, ii, 0, ri)];
            p99[ii] = toMicroseconds(r.p99);
            joules[ii] = r.energyJoules;
        }
        double avg = avg_loads[ri];
        lat.addRow({Table::num(avg / 1e3, 0), Table::num(p99[0], 0),
                    Table::num(p99[1], 0), Table::num(p99[2], 0)});
        energy.addRow({Table::num(avg / 1e3, 0),
                       Table::num(joules[0], 1),
                       Table::num(joules[1], 1),
                       Table::num(joules[2], 1),
                       Table::pct(joules[1] / joules[0] - 1.0),
                       Table::pct(joules[2] / joules[0] - 1.0)});
    }

    std::cout << "\nP99 latency vs load (SLO = 1000 us):\n";
    lat.print(std::cout);
    std::cout << "\nEnergy (normalised deltas vs menu):\n";
    energy.print(std::cout);
    std::cout << "\nPaper shape: no notable P99 difference between the "
                 "sleep policies; disable consumes ~53% more energy "
                 "than menu while c6only saves ~10%.\n";
    return 0;
}
