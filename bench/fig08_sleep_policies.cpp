/**
 * @file
 * Reproduces Fig. 8: the memcached latency-load curve and energy
 * consumption under the three sleep policies (menu, disable, c6only)
 * with the performance governor (Section 5.2). SLO = 1 ms.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 8", "latency-load curve + energy for "
                            "menu/disable/c6only (performance gov)");

    AppProfile app = AppProfile::memcached();
    // Load sweep: burst height from light to past the paper's 750K
    // average (the x axis of the latency-load curve), at the high
    // level's duty cycle.
    const double duties = app.high.duty;
    std::vector<double> avg_loads{100e3, 250e3, 400e3, 550e3,
                                  650e3, 750e3, 820e3};

    Table lat({"avg load (KRPS)", "menu P99 (us)", "disable P99 (us)",
               "c6only P99 (us)"});
    Table energy({"avg load (KRPS)", "menu (J)", "disable", "c6only",
                  "disable vs menu", "c6only vs menu"});

    for (double avg : avg_loads) {
        double p99[3];
        double joules[3];
        int i = 0;
        for (IdlePolicy idle :
             {IdlePolicy::kMenu, IdlePolicy::kDisable,
              IdlePolicy::kC6Only}) {
            ExperimentConfig cfg = bench::cellConfig(
                app, LoadLevel::kHigh, FreqPolicy::kPerformance, idle);
            cfg.rpsOverride = avg / duties; // keep the duty, vary height
            ExperimentResult r = Experiment(cfg).run();
            p99[i] = toMicroseconds(r.p99);
            joules[i] = r.energyJoules;
            ++i;
        }
        lat.addRow({Table::num(avg / 1e3, 0), Table::num(p99[0], 0),
                    Table::num(p99[1], 0), Table::num(p99[2], 0)});
        energy.addRow({Table::num(avg / 1e3, 0),
                       Table::num(joules[0], 1),
                       Table::num(joules[1], 1),
                       Table::num(joules[2], 1),
                       Table::pct(joules[1] / joules[0] - 1.0),
                       Table::pct(joules[2] / joules[0] - 1.0)});
    }

    std::cout << "\nP99 latency vs load (SLO = 1000 us):\n";
    lat.print(std::cout);
    std::cout << "\nEnergy (normalised deltas vs menu):\n";
    energy.print(std::cout);
    std::cout << "\nPaper shape: no notable P99 difference between the "
                 "sleep policies; disable consumes ~53% more energy "
                 "than menu while c6only saves ~10%.\n";
    return 0;
}
