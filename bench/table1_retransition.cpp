/**
 * @file
 * Reproduces Table 1: re-transition latency of repetitive V/F state
 * updates, four processors x six transition classes, 10,000 repetitions
 * each (Section 5.1).
 */

#include <iostream>

#include "bench_util.hh"
#include "cpu/dvfs_actuator.hh"
#include "sim/event_queue.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct TransitionCase
{
    const char *label;
    int fromOf(int pmin) const { return from < 0 ? pmin + from + 1 : from; }
    int toOf(int pmin) const { return to < 0 ? pmin + to + 1 : to; }
    int from; // negative = offset from Pmin (-1 == Pmin)
    int to;
};

// The six rows of Table 1 per processor.
const TransitionCase kCases[] = {
    {"Pmax   -> Pmax-1", 0, 1},
    {"Pmax-1 -> Pmax", 1, 0},
    {"Pmax   -> Pmin", 0, -1},
    {"Pmin   -> Pmax", -1, 0},
    {"Pmin+1 -> Pmin", -2, -1},
    {"Pmin   -> Pmin+1", -1, -2},
};

SummaryStats
measure(const CpuProfile &profile, const TransitionCase &tc, int reps)
{
    EventQueue eq;
    Rng rng(1234);
    int pmin = profile.pstates.maxIndex();
    int from = tc.fromOf(pmin);
    int to = tc.toOf(pmin);

    DvfsActuator actuator(eq, profile, rng.fork(), from);
    // Prime the settle window: the paper measures *repetitive* updates.
    actuator.requestPState(to);
    eq.runAll();
    actuator.requestPState(from);
    eq.runAll();

    SummaryStats stats;
    for (int i = 0; i < reps; ++i) {
        actuator.requestPState(to);
        eq.runAll();
        stats.add(toMicroseconds(actuator.lastTransitionLatency()));
        actuator.requestPState(from);
        eq.runAll();
    }
    return stats;
}

} // namespace

int
main()
{
    bench::banner("Table 1",
                  "re-transition latency, 10,000 experiments per row");

    int reps = static_cast<int>(10000 * bench::durationScale());
    if (reps < 100)
        reps = 100;

    Table table({"Processor", "P state transition", "Mean (us)",
                 "Stdev (us)"});
    for (const CpuProfile *profile :
         {&CpuProfile::i76700(), &CpuProfile::i77700(),
          &CpuProfile::xeonE52620v4(), &CpuProfile::xeonGold6134()}) {
        for (const TransitionCase &tc : kCases) {
            SummaryStats s = measure(*profile, tc, reps);
            table.addRow({profile->name, tc.label,
                          Table::num(s.mean(), 1),
                          Table::num(s.stdev(), 1)});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: desktop parts 2-5x the 10 us ACPI "
                 "latency, directional asymmetry (up > down, far > "
                 "near); server parts flat ~516-528 us for all cases.\n";
    return 0;
}
