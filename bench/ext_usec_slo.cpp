/**
 * @file
 * Extension evaluation: the microsecond-SLO regime (the paper's
 * Section 7 future work, "attack of the killer microseconds").
 *
 * The paper shows that at millisecond SLOs the sleep policy barely
 * moves the tail (Fig. 8) because the ~27 us CC6 exit (+ cache refill)
 * is two orders of magnitude below the SLO. This bench re-runs the
 * sleep-policy comparison on a key/value workload with a 100 us P99
 * SLO, where that wake-up penalty is a quarter of the budget — the
 * regime where the paper expects "more sophisticated sleep state
 * management" to be required. The (load x sleep) grid runs as one
 * parallel sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Extension",
                  "sleep policies at a 100 us SLO (Section 7)");

    AppProfile app = AppProfile::keyvalueUs();
    std::printf("workload: %s, mean service %.0f cycles, SLO %.0f us\n",
                app.name.c_str(), app.meanServiceCycles(),
                toMicroseconds(app.slo));

    const std::vector<LoadLevel> loads = {LoadLevel::kLow,
                                          LoadLevel::kMed};
    const std::vector<std::string> idles = {
        "menu", "teo", "c6only",
        "disable"};
    SweepSpec spec(bench::cellConfig(app, LoadLevel::kLow,
                                     "performance"));
    spec.idlePolicies(idles).loads(loads);
    std::vector<ExperimentResult> results =
        bench::runAll(spec.build(), "ext_usec_slo");

    for (std::size_t li = 0; li < loads.size(); ++li) {
        std::printf("\n--- %s load (avg %.0fK RPS), performance "
                    "governor ---\n",
                    loadLevelName(loads[li]),
                    app.level(loads[li]).avgRps() / 1e3);
        Table table({"sleep policy", "P99 (us)", "xSLO", "> SLO (%)",
                     "energy (J)", "CC6 wakes", "CC1 wakes"});
        for (std::size_t ii = 0; ii < idles.size(); ++ii) {
            const ExperimentResult &r =
                results[spec.index(0, ii, li)];
            table.addRow({
                idles[ii].c_str(),
                Table::num(toMicroseconds(r.p99), 1),
                Table::num(static_cast<double>(r.p99) /
                               static_cast<double>(app.slo),
                           2),
                Table::num(r.fracOverSlo * 100.0, 2),
                Table::num(r.energyJoules, 1),
                std::to_string(r.cc6Wakes),
                std::to_string(r.cc1Wakes),
            });
        }
        table.print(std::cout);
    }

    std::cout
        << "\nContrast with Fig. 8: at a 1 ms SLO all sleep policies "
           "had equal tails. At 100 us, c6only's wake penalty shows up "
           "directly in P99 (roughly the CC6 exit latency), while "
           "disable buys the flattest tail at a large energy premium — "
           "the trade the paper predicts will demand smarter sleep "
           "management in the microsecond era.\n";
    return 0;
}
