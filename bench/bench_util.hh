/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: it runs the relevant experiments and prints the same
 * rows/series the paper plots. Absolute values come from the simulator
 * and will differ from the authors' testbed; the *shape* (who meets the
 * SLO, who wins energy, where crossovers fall) is the reproduction
 * target — see EXPERIMENTS.md.
 */

#ifndef NMAPSIM_BENCH_BENCH_UTIL_HH_
#define NMAPSIM_BENCH_BENCH_UTIL_HH_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/result_io.hh"
#include "harness/sweep.hh"
#include "stats/result_writer.hh"

namespace nmapsim {
namespace bench {

/** Print a standard bench banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

/**
 * Duration scale: NMAPSIM_BENCH_SCALE (default 1.0) multiplies the
 * measurement window of every bench so CI can run them fast and a
 * paper-grade run can use longer windows.
 */
inline double
durationScale()
{
    const char *env = std::getenv("NMAPSIM_BENCH_SCALE");
    if (!env)
        return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

/** Default experiment config for one app/load/policy cell. */
inline ExperimentConfig
cellConfig(const AppProfile &app, LoadLevel load,
           const std::string &policy, const std::string &idle = "menu")
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.load = load;
    cfg.freqPolicy = policy;
    cfg.idlePolicy = idle;
    cfg.warmup = milliseconds(200);
    cfg.duration =
        static_cast<Tick>(static_cast<double>(seconds(1)) *
                          durationScale());
    cfg.seed = 42;
    return cfg;
}

/**
 * Optional machine-readable sink: when NMAPSIM_BENCH_JSON=PATH is set,
 * every (config, result) pair a bench runs through runAll() is also
 * recorded and written to PATH as a JSON array at process exit. The
 * table output on stdout is unchanged either way.
 */
inline ResultWriter *
jsonSink()
{
    static ResultWriter *sink = []() -> ResultWriter * {
        const char *path = std::getenv("NMAPSIM_BENCH_JSON");
        if (path == nullptr || *path == '\0')
            return nullptr;
        static ResultWriter writer;
        static std::string out = path;
        std::atexit([] { writer.writeJsonFile(out); });
        return &writer;
    }();
    return sink;
}

/** Record (config, result) pairs into the NMAPSIM_BENCH_JSON sink. */
inline void
recordResults(const std::vector<ExperimentConfig> &points,
              const std::vector<ExperimentResult> &results)
{
    ResultWriter *sink = jsonSink();
    if (sink == nullptr)
        return;
    for (std::size_t i = 0;
         i < points.size() && i < results.size(); ++i)
        appendResultRecord(*sink, points[i], results[i]);
}

/**
 * Run every point on the shared sweep thread pool (NMAPSIM_JOBS wide)
 * and unwrap the outcomes in submission order. A failed point rethrows
 * its own exception here — a bench wants a config error to abort.
 */
inline std::vector<ExperimentResult>
runAll(const std::vector<ExperimentConfig> &points,
       const std::string &tag)
{
    SweepOptions opts;
    opts.tag = tag;
    std::vector<SweepOutcome> outcomes = SweepRunner(opts).run(points);
    std::vector<ExperimentResult> results;
    results.reserve(outcomes.size());
    for (SweepOutcome &outcome : outcomes)
        results.push_back(std::move(outcome.value()));
    recordResults(points, results);
    return results;
}

/**
 * Profile the Section 4.2 thresholds for several applications
 * concurrently (each profiling pass is itself a full simulation).
 * Returns (NI_TH, CU_TH) per application, in argument order.
 */
inline std::vector<std::pair<double, double>>
profileApps(const std::vector<AppProfile> &apps,
            const std::string &tag = "bench")
{
    std::vector<ExperimentConfig> points;
    points.reserve(apps.size());
    for (const AppProfile &app : apps)
        points.push_back(
            cellConfig(app, LoadLevel::kHigh, "NMAP"));
    SweepOptions opts;
    opts.tag = tag;
    std::vector<SweepSlot<std::pair<double, double>>> slots =
        SweepRunner(opts).profile(points);
    std::vector<std::pair<double, double>> thresholds;
    thresholds.reserve(slots.size());
    for (SweepSlot<std::pair<double, double>> &slot : slots)
        thresholds.push_back(slot.value());
    return thresholds;
}

} // namespace bench
} // namespace nmapsim

#endif // NMAPSIM_BENCH_BENCH_UTIL_HH_
