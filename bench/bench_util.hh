/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: it runs the relevant experiments and prints the same
 * rows/series the paper plots. Absolute values come from the simulator
 * and will differ from the authors' testbed; the *shape* (who meets the
 * SLO, who wins energy, where crossovers fall) is the reproduction
 * target — see EXPERIMENTS.md.
 */

#ifndef NMAPSIM_BENCH_BENCH_UTIL_HH_
#define NMAPSIM_BENCH_BENCH_UTIL_HH_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"

namespace nmapsim {
namespace bench {

/** Print a standard bench banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

/**
 * Duration scale: NMAPSIM_BENCH_SCALE (default 1.0) multiplies the
 * measurement window of every bench so CI can run them fast and a
 * paper-grade run can use longer windows.
 */
inline double
durationScale()
{
    const char *env = std::getenv("NMAPSIM_BENCH_SCALE");
    if (!env)
        return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

/** Default experiment config for one app/load/policy cell. */
inline ExperimentConfig
cellConfig(const AppProfile &app, LoadLevel load, FreqPolicy policy,
           IdlePolicy idle = IdlePolicy::kMenu)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.load = load;
    cfg.freqPolicy = policy;
    cfg.idlePolicy = idle;
    cfg.warmup = milliseconds(200);
    cfg.duration =
        static_cast<Tick>(static_cast<double>(seconds(1)) *
                          durationScale());
    cfg.seed = 42;
    return cfg;
}

/**
 * Profile the Section 4.2 thresholds once per app and cache them so
 * the matrix benches do not re-run the profiling simulation per cell.
 */
class NmapThresholdCache
{
  public:
    std::pair<double, double>
    get(const AppProfile &app)
    {
        if (app.name == "memcached") {
            if (!haveMc_) {
                mc_ = profileFor(app);
                haveMc_ = true;
            }
            return mc_;
        }
        if (!haveNg_) {
            ng_ = profileFor(app);
            haveNg_ = true;
        }
        return ng_;
    }

  private:
    static std::pair<double, double>
    profileFor(const AppProfile &app)
    {
        ExperimentConfig cfg =
            cellConfig(app, LoadLevel::kHigh, FreqPolicy::kNmap);
        return Experiment::profileThresholds(cfg);
    }

    bool haveMc_ = false;
    bool haveNg_ = false;
    std::pair<double, double> mc_{};
    std::pair<double, double> ng_{};
};

} // namespace bench
} // namespace nmapsim

#endif // NMAPSIM_BENCH_BENCH_UTIL_HH_
