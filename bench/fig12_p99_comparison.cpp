/**
 * @file
 * Reproduces Fig. 12: P99 latency of intel_powersave, ondemand,
 * performance, NMAP-simpl and NMAP across {menu, disable, c6only}
 * sleep policies and {low, med, high} loads, for memcached and nginx.
 * Values are reported both in microseconds and normalised to the SLO.
 *
 * The 90-cell grid runs on the parallel sweep pool (NMAPSIM_JOBS).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 12", "P99 latency comparison (x SLO)");

    const std::vector<std::string> policies = {
        "intel_powersave", "ondemand",
        "performance",    "NMAP-simpl",
        "NMAP",
    };
    const std::vector<std::string> idles = {
        "menu", "disable", "c6only"};
    const std::vector<LoadLevel> loads = {
        LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh};
    const std::vector<AppProfile> apps = {AppProfile::memcached(),
                                          AppProfile::nginx()};

    std::vector<std::pair<double, double>> thresholds =
        bench::profileApps(apps, "fig12");

    // One combined sweep: both apps' full grids fan out together.
    std::vector<ExperimentConfig> points;
    std::vector<SweepSpec> specs;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        ExperimentConfig base = bench::cellConfig(
            apps[ai], LoadLevel::kLow, "ondemand");
        base.params.set("nmap.ni_th", thresholds[ai].first);
        base.params.set("nmap.cu_th", thresholds[ai].second);
        SweepSpec spec(base);
        spec.policies(policies).idlePolicies(idles).loads(loads);
        std::vector<ExperimentConfig> grid = spec.build();
        points.insert(points.end(), grid.begin(), grid.end());
        specs.push_back(std::move(spec));
    }
    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig12");

    std::size_t offset = 0;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const AppProfile &app = apps[ai];
        auto [ni, cu] = thresholds[ai];
        std::printf("\n--- %s (SLO %.0f ms; NI_TH=%.1f CU_TH=%.2f) "
                    "---\n",
                    app.name.c_str(), toMilliseconds(app.slo), ni, cu);
        Table table({"policy", "sleep", "low P99(us)", "xSLO",
                     "med P99(us)", "xSLO", "high P99(us)", "xSLO"});
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            for (std::size_t ii = 0; ii < idles.size(); ++ii) {
                std::vector<std::string> row{
                    policies[pi].c_str(),
                    idles[ii].c_str()};
                for (std::size_t li = 0; li < loads.size(); ++li) {
                    const ExperimentResult &r =
                        results[offset + specs[ai].index(pi, ii, li)];
                    row.push_back(
                        Table::num(toMicroseconds(r.p99), 0));
                    row.push_back(Table::num(
                        static_cast<double>(r.p99) /
                            static_cast<double>(app.slo),
                        2));
                }
                table.addRow(row);
            }
        }
        table.print(std::cout);
        offset += specs[ai].numPoints();
    }
    std::cout
        << "\nPaper shape: performance and NMAP stay at or below 1.0x "
           "SLO everywhere; NMAP-simpl passes low/med but fails high; "
           "ondemand and intel_powersave blow past the SLO at med and "
           "high (intel_powersave worst, except with `disable`, where "
           "its 100% C0 residency pegs P0 and it passes). Sleep "
           "policies barely move P99.\n";
    return 0;
}
