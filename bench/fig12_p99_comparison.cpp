/**
 * @file
 * Reproduces Fig. 12: P99 latency of intel_powersave, ondemand,
 * performance, NMAP-simpl and NMAP across {menu, disable, c6only}
 * sleep policies and {low, med, high} loads, for memcached and nginx.
 * Values are reported both in microseconds and normalised to the SLO.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 12", "P99 latency comparison (x SLO)");
    bench::NmapThresholdCache thresholds;

    const FreqPolicy policies[] = {
        FreqPolicy::kIntelPowersave, FreqPolicy::kOndemand,
        FreqPolicy::kPerformance,    FreqPolicy::kNmapSimpl,
        FreqPolicy::kNmap,
    };
    const IdlePolicy idles[] = {IdlePolicy::kMenu, IdlePolicy::kDisable,
                                IdlePolicy::kC6Only};

    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        auto [ni, cu] = thresholds.get(app);
        std::printf("\n--- %s (SLO %.0f ms; NI_TH=%.1f CU_TH=%.2f) "
                    "---\n",
                    app.name.c_str(), toMilliseconds(app.slo), ni, cu);
        Table table({"policy", "sleep", "low P99(us)", "xSLO",
                     "med P99(us)", "xSLO", "high P99(us)", "xSLO"});
        for (FreqPolicy policy : policies) {
            for (IdlePolicy idle : idles) {
                std::vector<std::string> row{freqPolicyName(policy),
                                             idlePolicyName(idle)};
                for (LoadLevel load :
                     {LoadLevel::kLow, LoadLevel::kMed,
                      LoadLevel::kHigh}) {
                    ExperimentConfig cfg =
                        bench::cellConfig(app, load, policy, idle);
                    cfg.nmap.niThreshold = ni;
                    cfg.nmap.cuThreshold = cu;
                    ExperimentResult r = Experiment(cfg).run();
                    row.push_back(
                        Table::num(toMicroseconds(r.p99), 0));
                    row.push_back(Table::num(
                        static_cast<double>(r.p99) /
                            static_cast<double>(app.slo),
                        2));
                }
                table.addRow(row);
            }
        }
        table.print(std::cout);
    }
    std::cout
        << "\nPaper shape: performance and NMAP stay at or below 1.0x "
           "SLO everywhere; NMAP-simpl passes low/med but fails high; "
           "ondemand and intel_powersave blow past the SLO at med and "
           "high (intel_powersave worst, except with `disable`, where "
           "its 100% C0 residency pegs P0 and it passes). Sleep "
           "policies barely move P99.\n";
    return 0;
}
