/**
 * @file
 * Reproduces Fig. 7: CC6 (deepest sleep) entries together with the
 * interrupt/polling packet counts for memcached at low (30K RPS) and
 * high (750K RPS) load, menu governor + performance V/F (Section 5.2).
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
printTrace(LoadLevel load, Tick window)
{
    ExperimentConfig cfg = bench::cellConfig(
        AppProfile::memcached(), load, "performance",
        "menu");
    cfg.collectTraces = true;
    cfg.duration = window + milliseconds(50);
    ExperimentResult r = Experiment(cfg).run();

    std::printf("\n--- memcached, %s load, performance + menu ---\n",
                loadLevelName(load));
    Table table({"t (ms)", "pkts intr", "pkts poll",
                 "CC6 entries (core0)"});
    const TraceCollector &tc = *r.traces;
    EventMarkSeries cc6;
    for (Tick t : r.cc6Entries)
        cc6.mark(t);
    Tick start = cfg.warmup;
    for (Tick t = start; t < start + window; t += milliseconds(1)) {
        table.addRow({
            Table::num(toMilliseconds(t - start), 0),
            Table::num(tc.intrSeries().at(t), 0),
            Table::num(tc.pollSeries().at(t), 0),
            std::to_string(
                cc6.countInWindow(t, t + milliseconds(1))),
        });
    }
    table.print(std::cout);

    // Quantify the paper's claim: CC6 entries happen when the core is
    // not processing packets or at the early stage of a burst, not in
    // the middle of one. "Mid-burst" = a 1 ms bucket above half the
    // peak packet rate whose predecessor was also above it.
    double peak = 0.0;
    for (Tick t = start; t < start + window; t += milliseconds(1))
        peak = std::max(peak, tc.intrSeries().at(t) +
                                  tc.pollSeries().at(t));
    auto rate = [&](Tick t) {
        return tc.intrSeries().at(t) + tc.pollSeries().at(t);
    };
    std::size_t mid_burst = 0;
    std::size_t edge_or_idle = 0;
    for (Tick t : r.cc6Entries) {
        if (t < start || t >= start + window)
            continue;
        bool now_busy = rate(t) > 0.5 * peak;
        bool was_busy = rate(t - milliseconds(1)) > 0.5 * peak;
        if (now_busy && was_busy)
            ++mid_burst;
        else
            ++edge_or_idle;
    }
    std::printf("CC6 entries at idle/burst-edge: %zu, mid-burst: "
                "%zu (peak %.0f pkts/ms)\n",
                edge_or_idle, mid_burst, peak);
}

} // namespace

int
main()
{
    bench::banner("Fig. 7",
                  "CC6 entries vs packet processing (menu governor)");
    Tick window = static_cast<Tick>(
        static_cast<double>(milliseconds(200)) * bench::durationScale());
    printTrace(LoadLevel::kLow, window);
    printTrace(LoadLevel::kHigh, window);
    std::cout << "\nPaper shape: the processor enters CC6 when idle or "
                 "at the early stage of a burst, and stops entering it "
                 "from the middle of the bursts.\n";
    return 0;
}
