/**
 * @file
 * Reproduces Fig. 9: the same trace as Fig. 2 but under NMAP —
 * ksoftirqd wake-ups, P-state, and interrupt/polling packet counts.
 * NMAP must maximise V/F at the *early* part of each burst and drop it
 * quickly once the polling-to-interrupt ratio falls.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 9", "NAPI mode transitions under NMAP");
    Tick window = static_cast<Tick>(
        static_cast<double>(milliseconds(200)) * bench::durationScale());

    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP");
        cfg.collectTraces = true;
        cfg.duration = window + milliseconds(50);
        ExperimentResult r = Experiment(cfg).run();

        std::printf("\n--- %s, NMAP (NI_TH=%.1f, CU_TH=%.2f), high "
                    "load ---\n",
                    app.name.c_str(), r.niThresholdUsed,
                    r.cuThresholdUsed);
        Table table({"t (ms)", "pkts intr", "pkts poll",
                     "P-state(core0)", "ksoftirqd wakes"});
        const TraceCollector &tc = *r.traces;
        Tick start = cfg.warmup;
        for (Tick t = start; t < start + window; t += milliseconds(1)) {
            table.addRow({
                Table::num(toMilliseconds(t - start), 0),
                Table::num(tc.intrSeries().at(t), 0),
                Table::num(tc.pollSeries().at(t), 0),
                Table::num(tc.pstateSeries().at(t), 0),
                std::to_string(tc.ksoftirqdWakes().countInWindow(
                    t, t + milliseconds(1))),
            });
        }
        table.print(std::cout);
        std::printf("P-state transitions over the run: %llu "
                    "(NMAP switches once per burst edge, not per "
                    "packet)\n",
                    static_cast<unsigned long long>(
                        r.pstateTransitions));
    }
    std::cout << "\nPaper shape: unlike Fig. 2's ondemand, NMAP sits at "
                 "P0 from the first milliseconds of each burst and "
                 "falls back between bursts.\n";
    return 0;
}
