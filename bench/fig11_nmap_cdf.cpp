/**
 * @file
 * Reproduces Fig. 11: CDF of response latency with NMAP at high load.
 * The paper reports that only 0.92% (memcached) and 0.06% (nginx) of
 * requests exceed the 1 ms / 10 ms SLOs. Both apps run concurrently.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 11", "CDF of response latency with NMAP");

    const std::vector<AppProfile> apps = {AppProfile::memcached(),
                                          AppProfile::nginx()};
    std::vector<ExperimentConfig> points;
    for (const AppProfile &app : apps)
        points.push_back(
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP"));
    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig11");

    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const AppProfile &app = apps[ai];
        const ExperimentResult &r = results[ai];

        std::printf("\n--- %s, NMAP ---\n", app.name.c_str());
        Table table({"latency (us)", "CDF"});
        std::size_t step = r.cdf.size() / 20;
        if (step == 0)
            step = 1;
        for (std::size_t i = step - 1; i < r.cdf.size(); i += step)
            table.addRow(
                {Table::num(toMicroseconds(r.cdf[i].first), 0),
                 Table::num(r.cdf[i].second, 3)});
        table.print(std::cout);
        std::printf("requests over the %.0f ms SLO: %.2f%% "
                    "(paper: %.2f%%), P99 = %.0f us\n",
                    toMilliseconds(app.slo), r.fracOverSlo * 100.0,
                    app.name == "memcached" ? 0.92 : 0.06,
                    toMicroseconds(r.p99));
    }
    std::cout << "\nPaper shape: under 1% of requests exceed the SLO "
                 "for both applications, i.e. the P99 target holds.\n";
    return 0;
}
