/**
 * @file
 * Reproduces Table 2: sleep-state wake-up time (CC6->CC0 and
 * CC1->CC0) for four processors, 100 experiments each (Section 5.2).
 * Also reports the CC6 private-cache refill cost the paper measures
 * separately (7 us for 256 KB L2, 26.4 us for 1 MB L2).
 */

#include <iostream>

#include "bench_util.hh"
#include "cpu/cstate.hh"
#include "sim/rng.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

SummaryStats
measureWake(const CpuProfile &profile, CState state, int reps)
{
    // The paper's method: a wake-up thread signals a sleeping thread
    // and times the wake; here the controller's wake latency is
    // sampled directly with no cache touch (the refill is reported
    // separately, as in the paper).
    Rng rng(99);
    CStateController ctl(profile, rng.fork(), 0.0);
    SummaryStats stats;
    Tick t = 0;
    for (int i = 0; i < reps; ++i) {
        ctl.enterSleep(state, t);
        t += milliseconds(1);
        stats.add(toMicroseconds(ctl.wake(t)));
        t += milliseconds(1);
    }
    return stats;
}

} // namespace

int
main()
{
    bench::banner("Table 2", "wake-up time, 100 experiments per row");

    int reps = static_cast<int>(100 * bench::durationScale());
    if (reps < 20)
        reps = 20;

    Table table({"Processor", "C state transition", "Mean (us)",
                 "Stdev (us)"});
    for (const CpuProfile *profile :
         {&CpuProfile::i76700(), &CpuProfile::i77700(),
          &CpuProfile::xeonE52620v4(), &CpuProfile::xeonGold6134()}) {
        SummaryStats c6 = measureWake(*profile, CState::kC6, reps);
        SummaryStats c1 = measureWake(*profile, CState::kC1, reps);
        table.addRow({profile->name, "CC6->CC0",
                      Table::num(c6.mean(), 2),
                      Table::num(c6.stdev(), 2)});
        table.addRow({profile->name, "CC1->CC0",
                      Table::num(c1.mean(), 2),
                      Table::num(c1.stdev(), 2)});
    }
    table.print(std::cout);

    std::cout << "\nCC6 cache-refill worst case (Section 5.2):\n";
    Table refill({"Processor", "L2 refill (us)"});
    refill.addRow({CpuProfile::xeonE52620v4().name,
                   Table::num(toMicroseconds(
                                  CpuProfile::xeonE52620v4()
                                      .cstates.c6CacheRefillWorst),
                              1)});
    refill.addRow({CpuProfile::xeonGold6134().name,
                   Table::num(toMicroseconds(
                                  CpuProfile::xeonGold6134()
                                      .cstates.c6CacheRefillWorst),
                              1)});
    refill.print(std::cout);
    std::cout << "\nPaper shape: ~27.5 us CC6 exits and sub-us CC1 "
                 "exits on every part; total worst-case CC6 penalty "
                 "(exit + refill) ~53.8 us on the Gold 6134 — "
                 "negligible against millisecond SLOs.\n";
    return 0;
}
