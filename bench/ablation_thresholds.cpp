/**
 * @file
 * Ablation: sensitivity of NMAP to its two thresholds (Section 4.2).
 *
 * Sweeps NI_TH and CU_TH around the profiled values at high load and
 * reports P99 and energy. Shape of interest: a broad plateau around
 * the profiled point (the thresholds need only land in the right
 * decade), SLO violations when NI_TH is far too high (late Network
 * Intensive trigger) and wasted energy when CU_TH is far too low
 * (never falls back). Both sweeps run as one parallel batch.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation", "NMAP threshold sensitivity");

    AppProfile app = AppProfile::memcached();
    auto [ni0, cu0] =
        bench::profileApps({app}, "ablation_thresholds")[0];
    std::printf("profiled point: NI_TH=%.1f CU_TH=%.2f\n\n", ni0, cu0);

    const std::vector<double> ni_mults = {0.25, 0.5, 1.0, 2.0,
                                          4.0,  16.0, 64.0};
    const std::vector<double> cu_mults = {0.1, 0.5, 1.0,
                                          2.0, 4.0, 8.0};

    std::vector<ExperimentConfig> points;
    for (double mult : ni_mults) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP");
        cfg.params.set("nmap.ni_th", ni0 * mult);
        cfg.params.set("nmap.cu_th", cu0);
        points.push_back(cfg);
    }
    for (double mult : cu_mults) {
        ExperimentConfig cfg =
            bench::cellConfig(app, LoadLevel::kHigh, "NMAP");
        cfg.params.set("nmap.ni_th", ni0);
        cfg.params.set("nmap.cu_th", cu0 * mult);
        points.push_back(cfg);
    }
    std::vector<ExperimentResult> results =
        bench::runAll(points, "ablation_thresholds");

    std::cout << "NI_TH sweep (CU_TH fixed at the profiled value):\n";
    Table ni_table({"NI_TH", "P99 (us)", "xSLO", "> SLO (%)",
                    "energy (J)", "NI entries"});
    std::size_t idx = 0;
    for (double mult : ni_mults) {
        const ExperimentResult &r = results[idx++];
        ni_table.addRow({
            Table::num(ni0 * mult, 1),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.p99) /
                           static_cast<double>(app.slo),
                       2),
            Table::num(r.fracOverSlo * 100.0, 2),
            Table::num(r.energyJoules, 1),
            std::to_string(r.pstateTransitions),
        });
    }
    ni_table.print(std::cout);

    std::cout << "\nCU_TH sweep (NI_TH fixed at the profiled value):\n";
    Table cu_table({"CU_TH", "P99 (us)", "xSLO", "> SLO (%)",
                    "energy (J)", "NI entries"});
    for (double mult : cu_mults) {
        const ExperimentResult &r = results[idx++];
        cu_table.addRow({
            Table::num(cu0 * mult, 2),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.p99) /
                           static_cast<double>(app.slo),
                       2),
            Table::num(r.fracOverSlo * 100.0, 2),
            Table::num(r.energyJoules, 1),
            std::to_string(r.pstateTransitions),
        });
    }
    cu_table.print(std::cout);

    std::cout << "\nExpected: P99 degrades only when NI_TH is an order "
                 "of magnitude too high; very high CU_TH causes "
                 "mid-burst fallbacks (tail risk), very low CU_TH "
                 "wastes energy by never leaving NI mode.\n";
    return 0;
}
