/**
 * @file
 * Reproduces Fig. 14: P99 latency of the state-of-the-art comparison —
 * NCAP-menu, NCAP, NMAP-simpl and NMAP — normalised to the SLO, for
 * both applications at the three load levels (Section 6.3).
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 14",
                  "P99 latency vs state of the art (normalised to SLO)");
    bench::NmapThresholdCache thresholds;

    const FreqPolicy policies[] = {
        FreqPolicy::kNcapMenu,
        FreqPolicy::kNcap,
        FreqPolicy::kNmapSimpl,
        FreqPolicy::kNmap,
    };

    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        auto [ni, cu] = thresholds.get(app);
        std::printf("\n--- %s (SLO %.0f ms) ---\n", app.name.c_str(),
                    toMilliseconds(app.slo));
        Table table({"policy", "low (xSLO)", "med (xSLO)",
                     "high (xSLO)"});
        for (FreqPolicy policy : policies) {
            std::vector<std::string> row{freqPolicyName(policy)};
            for (LoadLevel load :
                 {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
                ExperimentConfig cfg =
                    bench::cellConfig(app, load, policy);
                cfg.nmap.niThreshold = ni;
                cfg.nmap.cuThreshold = cu;
                ExperimentResult r = Experiment(cfg).run();
                row.push_back(
                    Table::num(static_cast<double>(r.p99) /
                                   static_cast<double>(app.slo),
                               2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
    }
    std::cout << "\nPaper shape: NCAP-menu and NCAP are nearly "
                 "identical (the processor rarely sleeps mid-burst); "
                 "NMAP and NCAP meet the SLO at every load; NMAP-simpl "
                 "fails at high load.\n";
    return 0;
}
