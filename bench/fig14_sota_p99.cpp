/**
 * @file
 * Reproduces Fig. 14: P99 latency of the state-of-the-art comparison —
 * NCAP-menu, NCAP, NMAP-simpl and NMAP — normalised to the SLO, for
 * both applications at the three load levels (Section 6.3). Both
 * apps' grids run as one parallel sweep.
 *
 * Extended with a dataplane shootout appendix (memcached): the same
 * grid's NMAP row next to kernel-bypass busy polling with the spin and
 * Metronome sleep policies — where a dedicated poll core lands on the
 * normalised-tail axis the SOTA policies compete on.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Fig. 14",
                  "P99 latency vs state of the art (normalised to SLO)");

    const std::vector<std::string> policies = {
        "NCAP-menu",
        "NCAP",
        "NMAP-simpl",
        "NMAP",
    };
    const std::vector<LoadLevel> loads = {
        LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh};
    const std::vector<AppProfile> apps = {AppProfile::memcached(),
                                          AppProfile::nginx()};

    std::vector<std::pair<double, double>> thresholds =
        bench::profileApps(apps, "fig14");

    std::vector<ExperimentConfig> points;
    std::vector<SweepSpec> specs;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        ExperimentConfig base = bench::cellConfig(
            apps[ai], LoadLevel::kLow, "NMAP");
        base.params.set("nmap.ni_th", thresholds[ai].first);
        base.params.set("nmap.cu_th", thresholds[ai].second);
        SweepSpec spec(base);
        spec.policies(policies).loads(loads);
        std::vector<ExperimentConfig> grid = spec.build();
        points.insert(points.end(), grid.begin(), grid.end());
        specs.push_back(std::move(spec));
    }

    // Appendix cells: kernel-bypass dataplane variants (memcached),
    // appended after the grids so the grid indexing is untouched.
    const std::vector<std::pair<const char *, bool>> dataplanes = {
        {"spin", false},
        {"metronome", true}, // sleep with armed wakeups
    };
    const std::size_t bypass_at = points.size();
    for (const auto &[policy, armed] : dataplanes)
        for (LoadLevel load : loads) {
            ExperimentConfig cfg = bench::cellConfig(
                AppProfile::memcached(), load, "ondemand");
            cfg.params.set("dataplane.mode", "bypass");
            cfg.params.set("dataplane.policy", policy);
            if (armed)
                cfg.params.set("dataplane.sleep_armed_irq", "true");
            points.push_back(cfg);
        }

    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig14");

    std::size_t offset = 0;
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
        const AppProfile &app = apps[ai];
        std::printf("\n--- %s (SLO %.0f ms) ---\n", app.name.c_str(),
                    toMilliseconds(app.slo));
        Table table({"policy", "low (xSLO)", "med (xSLO)",
                     "high (xSLO)"});
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
            std::vector<std::string> row{
                policies[pi].c_str()};
            for (std::size_t li = 0; li < loads.size(); ++li) {
                const ExperimentResult &r =
                    results[offset + specs[ai].index(pi, 0, li)];
                row.push_back(
                    Table::num(static_cast<double>(r.p99) /
                                   static_cast<double>(app.slo),
                               2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        offset += specs[ai].numPoints();
    }

    std::printf("\n--- memcached, kernel-bypass dataplane "
                "(1 poll core, ondemand workers) ---\n");
    Table bypass({"dataplane", "low (xSLO)", "med (xSLO)",
                  "high (xSLO)"});
    for (std::size_t di = 0; di < dataplanes.size(); ++di) {
        std::vector<std::string> row{
            std::string("bypass/") + dataplanes[di].first +
            (dataplanes[di].second ? "+irq" : "")};
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const ExperimentResult &r =
                results[bypass_at + di * loads.size() + li];
            row.push_back(Table::num(
                static_cast<double>(r.p99) /
                    static_cast<double>(AppProfile::memcached().slo),
                2));
        }
        bypass.addRow(row);
    }
    bypass.print(std::cout);

    std::cout << "\nPaper shape: NCAP-menu and NCAP are nearly "
                 "identical (the processor rarely sleeps mid-burst); "
                 "NMAP and NCAP meet the SLO at every load; NMAP-simpl "
                 "fails at high load. Dataplane appendix: a dedicated "
                 "spin poll core undercuts every kernel policy's tail "
                 "at every load (no interrupt, softirq or wake "
                 "latency left to pay), while Metronome's intermittent "
                 "sleep holds the SLO only at low load — its batched "
                 "wakeups inflate the tail once traffic is steady. "
                 "See ext_bypass for the energy side of the trade.\n";
    return 0;
}
