/**
 * @file
 * Reproduces Fig. 3: end-to-end response latency of every request over
 * a 0.5 second interval, memcached and nginx at high load, ondemand vs
 * performance governors. The full scatter is summarised per
 * 10 ms bucket (count / median / max) so the burst-shaped latency
 * spikes the paper plots are visible in text form.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
printLatencyTrace(const AppProfile &app, const std::string &policy)
{
    ExperimentConfig cfg =
        bench::cellConfig(app, LoadLevel::kHigh, policy);
    cfg.collectLatencyTrace = true;
    cfg.duration = milliseconds(500); // the paper's 0.5 s window
    ExperimentResult r = Experiment(cfg).run();

    std::printf("\n--- %s, %s governor (SLO %.0f ms) ---\n",
                app.name.c_str(), policy.c_str(),
                toMilliseconds(app.slo));

    // Bucket the scatter into 10 ms windows.
    std::map<Tick, std::vector<Tick>> buckets;
    for (const LatencySample &s : r.latencyTrace)
        buckets[(s.completionTime - cfg.warmup) / milliseconds(10)]
            .push_back(s.latency);

    Table table({"t (ms)", "requests", "median (us)", "max (us)",
                 "> SLO"});
    for (auto &[bucket, lats] : buckets) {
        std::sort(lats.begin(), lats.end());
        std::size_t over = 0;
        for (Tick l : lats)
            if (l > app.slo)
                ++over;
        table.addRow({
            std::to_string(bucket * 10),
            std::to_string(lats.size()),
            Table::num(toMicroseconds(lats[lats.size() / 2]), 0),
            Table::num(toMicroseconds(lats.back()), 0),
            std::to_string(over),
        });
    }
    table.print(std::cout);
    std::printf("window total: %zu requests, P99 %.0f us, %.2f%% over "
                "SLO\n",
                r.latencyTrace.size(), toMicroseconds(r.p99),
                r.fracOverSlo * 100.0);
}

} // namespace

int
main()
{
    bench::banner("Fig. 3", "per-request response latency over 0.5 s, "
                            "ondemand vs performance");
    for (const AppProfile &app :
         {AppProfile::memcached(), AppProfile::nginx()}) {
        printLatencyTrace(app, "ondemand");
        printLatencyTrace(app, "performance");
    }
    std::cout << "\nPaper shape: ondemand shows multi-millisecond "
                 "latency spikes aligned with the bursts; performance "
                 "keeps every burst's latency within the SLO.\n";
    return 0;
}
