/**
 * @file
 * Ablation: per-core vs chip-wide NMAP (the paper's Section 6.3
 * argument for why NMAP beats the chip-wide NCAP).
 *
 * With RSS spreading load evenly the two modes are close; the per-core
 * advantage appears when traffic is skewed onto a subset of cores —
 * chip-wide DVFS must then burn every core at P0 for the hottest
 * core's sake. The bench sweeps connection skew at medium load; the
 * six (skew x mode) points run as one parallel sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation",
                  "per-core vs chip-wide NMAP under load skew");

    AppProfile app = AppProfile::memcached();
    auto [ni, cu] = bench::profileApps({app}, "ablation_chipwide")[0];

    const std::vector<double> skews = {0.0, 0.5, 1.0};
    const std::vector<std::string> policies = {
        "NMAP", "NMAP-chipwide"};
    std::vector<ExperimentConfig> points;
    for (double skew : skews) {
        for (const std::string &policy : policies) {
            ExperimentConfig cfg =
                bench::cellConfig(app, LoadLevel::kMed, policy);
            cfg.connectionSkew = skew;
            cfg.params.set("nmap.ni_th", ni);
            cfg.params.set("nmap.cu_th", cu);
            points.push_back(cfg);
        }
    }
    std::vector<ExperimentResult> results =
        bench::runAll(points, "ablation_chipwide");

    Table table({"skew", "mode", "P99 (us)", "xSLO", "energy (J)",
                 "delta vs per-core"});
    std::size_t idx = 0;
    for (double skew : skews) {
        double percore_energy = 0.0;
        for (const std::string &policy : policies) {
            const ExperimentResult &r = results[idx++];
            if (policy == "NMAP")
                percore_energy = r.energyJoules;
            table.addRow({
                Table::num(skew, 1),
                policy == "NMAP" ? "per-core" : "chip-wide",
                Table::num(toMicroseconds(r.p99), 0),
                Table::num(static_cast<double>(r.p99) /
                               static_cast<double>(app.slo),
                           2),
                Table::num(r.energyJoules, 1),
                policy == "NMAP"
                    ? "-"
                    : Table::pct(r.energyJoules / percore_energy - 1.0),
            });
        }
    }
    table.print(std::cout);
    std::cout
        << "\nFinding: with RSS balancing the load (skew 0, the "
           "paper's setup) chip-wide actuation costs only ~1% extra "
           "energy — bursts hit every core, so all cores want P0 "
           "anyway. The penalty grows with skew (and reaches ~6% by "
           "skew 6, where the hot queue itself saturates). This "
           "supports the paper's reading that NMAP's win over NCAP "
           "comes mostly from its faster fallback and from not "
           "disabling sleep states, with per-core DVFS as the "
           "additional margin under imbalance.\n";
    return 0;
}
