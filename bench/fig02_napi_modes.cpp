/**
 * @file
 * Reproduces Fig. 2: ksoftirqd wake-ups, the P-state chosen by the
 * ondemand governor, and the number of packets processed in interrupt
 * vs polling mode (1 ms samples) while serving memcached (750K RPS avg)
 * and nginx (56K RPS avg) at high load.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
printTrace(const AppProfile &app, const std::string &policy, Tick window)
{
    ExperimentConfig cfg =
        bench::cellConfig(app, LoadLevel::kHigh, policy);
    cfg.collectTraces = true;
    cfg.duration = window + milliseconds(50);
    ExperimentResult r = Experiment(cfg).run();

    std::printf("\n--- %s, %s governor, high load ---\n",
                app.name.c_str(), policy.c_str());
    Table table({"t (ms)", "pkts intr", "pkts poll", "P-state(core0)",
                 "ksoftirqd wakes"});
    const TraceCollector &tc = *r.traces;
    Tick start = cfg.warmup;
    for (Tick t = start; t < start + window; t += milliseconds(1)) {
        table.addRow({
            Table::num(toMilliseconds(t - start), 0),
            Table::num(tc.intrSeries().at(t), 0),
            Table::num(tc.pollSeries().at(t), 0),
            Table::num(tc.pstateSeries().at(t), 0),
            std::to_string(tc.ksoftirqdWakes().countInWindow(
                t, t + milliseconds(1))),
        });
    }
    table.print(std::cout);

    // Summary row: the paper's observation that interrupt-mode packet
    // counts are capped while polling scales with the burst.
    double max_intr = 0.0;
    double max_poll = 0.0;
    for (Tick t = start; t < start + window; t += milliseconds(1)) {
        max_intr = std::max(max_intr, tc.intrSeries().at(t));
        max_poll = std::max(max_poll, tc.pollSeries().at(t));
    }
    std::printf("peak pkts/ms: interrupt mode %.0f, polling mode %.0f "
                "(paper: interrupt capped, polling tracks load)\n",
                max_intr, max_poll);
}

} // namespace

int
main()
{
    bench::banner("Fig. 2",
                  "NAPI mode transitions under the ondemand governor");
    Tick window = static_cast<Tick>(
        static_cast<double>(milliseconds(200)) * bench::durationScale());
    printTrace(AppProfile::memcached(), "ondemand", window);
    printTrace(AppProfile::nginx(), "ondemand", window);
    std::cout << "\nPaper shape: polling-mode packets dominate at the "
                 "burst peaks and ksoftirqd wakes there, while the "
                 "ondemand governor raises the P-state only in the "
                 "middle/late part of each burst.\n";
    return 0;
}
