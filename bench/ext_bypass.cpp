/**
 * @file
 * Extension evaluation: the dataplane shootout — kernel NAPI versus a
 * kernel-bypass busy-poll dataplane, with Metronome's intermittent
 * sleep (arxiv 2103.13263) between the two extremes.
 *
 * Every cell is the same single-host rig; only the dataplane modality
 * and its sleep policy change. `napi` cells run the paper's
 * interrupt/NAPI stack. `bypass` cells dedicate one PMD poll core:
 * `spin` never sleeps (the DPDK anchor — lowest latency, a full core
 * of poll energy), `metronome` sleeps adaptively toward a
 * ring-occupancy setpoint, and `metronome+irq` additionally re-arms
 * the queue interrupts during each sleep so an arrival cuts the sleep
 * short. The table reports the tail, the energy, and the poll-loop
 * accounting that explains them: how many polls came up empty, how
 * long the poll core slept, and how much package energy went into
 * polls that harvested nothing (the busy-poll tax Metronome reclaims).
 *
 * Conservation is asserted for every cell: interrupt-mode plus
 * polling-mode packets must equal the NIC harvest exactly, and bypass
 * cells must keep the interrupt-mode counter at zero.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    bool bypass;
    const char *policy; // dataplane policy (bypass cells only)
    bool armedIrq;
};

ExperimentConfig
shootoutConfig(const Variant &v, LoadLevel load,
               const std::pair<double, double> &nmap_thresholds)
{
    const std::string freq =
        std::string(v.name) == "napi NMAP" ? "NMAP" : "ondemand";
    ExperimentConfig cfg = bench::cellConfig(AppProfile::memcached(),
                                             load, freq);
    if (freq == "NMAP") {
        cfg.params.set("nmap.ni_th", nmap_thresholds.first);
        cfg.params.set("nmap.cu_th", nmap_thresholds.second);
    }
    if (v.bypass) {
        cfg.params.set("dataplane.mode", "bypass");
        cfg.params.set("dataplane.policy", v.policy);
        if (v.armedIrq)
            cfg.params.set("dataplane.sleep_armed_irq", "true");
    }
    return cfg;
}

bool
conserved(const ExperimentResult &r, bool bypass)
{
    if (r.pktsIntrMode + r.pktsPollMode !=
        r.nicRxHarvested + r.nicTxConsumed)
        return false;
    return !bypass || r.pktsIntrMode == 0;
}

} // namespace

int
main()
{
    bench::banner("Extension",
                  "dataplane shootout: NAPI vs kernel-bypass busy "
                  "poll vs Metronome intermittent sleep");

    auto nmap_thresholds =
        bench::profileApps({AppProfile::memcached()}, "ext_bypass")[0];

    const std::vector<Variant> variants = {
        {"napi ondemand", false, "", false},
        {"napi NMAP", false, "", false},
        {"bypass spin", true, "spin", false},
        {"bypass metronome", true, "metronome", false},
        {"bypass metronome+irq", true, "metronome", true},
    };
    const std::vector<LoadLevel> loads = {LoadLevel::kMed,
                                          LoadLevel::kHigh};

    std::vector<ExperimentConfig> points;
    for (const Variant &v : variants)
        for (LoadLevel load : loads)
            points.push_back(shootoutConfig(v, load, nmap_thresholds));
    std::vector<ExperimentResult> results =
        bench::runAll(points, "ext_bypass");

    int bad_conservation = 0;
    const AppProfile app = AppProfile::memcached();
    for (LoadLevel load : loads) {
        std::printf("\n--- memcached %s (SLO %.0f ms, 8 cores, "
                    "bypass cells dedicate 1 poll core) ---\n",
                    loadLevelName(load),
                    toMilliseconds(app.slo));
        Table table({"dataplane", "P99 (xSLO)", "energy (J)",
                     "drops", "poll loops", "empty (%)", "sleeps",
                     "slept (ms)", "wasted poll (J)"});
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const std::size_t li = load == loads.front() ? 0 : 1;
            const ExperimentResult &r =
                results[vi * loads.size() + li];
            if (!conserved(r, variants[vi].bypass))
                ++bad_conservation;
            const double empty_share =
                r.bypassPollLoops > 0
                    ? 100.0 * static_cast<double>(r.bypassEmptyPolls) /
                          static_cast<double>(r.bypassPollLoops)
                    : 0.0;
            table.addRow({
                variants[vi].name,
                Table::num(static_cast<double>(r.p99) /
                               static_cast<double>(app.slo),
                           2),
                Table::num(r.energyJoules, 2),
                Table::num(static_cast<double>(r.nicDrops), 0),
                Table::num(static_cast<double>(r.bypassPollLoops), 0),
                Table::num(empty_share, 1),
                Table::num(static_cast<double>(r.bypassSleeps), 0),
                Table::num(toMilliseconds(r.bypassSleepResidency), 1),
                Table::num(r.bypassWastedPollEnergy, 3),
            });
        }
        table.print(std::cout);
    }
    if (bad_conservation != 0) {
        std::fprintf(stderr,
                     "ext_bypass: %d cells broke the dataplane "
                     "conservation identity\n",
                     bad_conservation);
        return 1;
    }

    std::cout
        << "\nFindings: spin holds the flattest tail on the board and "
           "— the surprise — *beats the kernel cells on energy at "
           "high load*: the user-space datapath spends a fraction of "
           "the kernel stack's cycles per packet, and once there is "
           "real traffic that per-packet saving outweighs the "
           "busy-poll tax even with ~95% of polls coming up empty. "
           "That tax is still real — it is the wasted-poll column, "
           "and it is what keeps spin merely level with ondemand at "
           "medium load — which is exactly what Metronome reclaims: "
           "poll loops drop by two orders of magnitude, the poll "
           "core sleeps through most of the window, wasted poll "
           "energy collapses to milli-joules, and the cells are the "
           "cheapest in their load row. The price is the tail: the "
           "sleeps batch arrivals, and the accumulated bursts defeat "
           "the worker cores' ondemand governor in the same way NAPI "
           "+ ondemand already struggles. Arming the queue "
           "interrupts during the sleep halves the empty-poll share "
           "(wakes line up with traffic) but buys almost no tail at "
           "these SLOs — the NIC's interrupt moderation delays the "
           "wake by roughly a sleep length anyway — so its value is "
           "accounting, not latency. NMAP on the kernel path still "
           "meets the SLO without dedicating a core, but the spin "
           "column is the DPDK bargain stated plainly: spend a core "
           "polling, save the whole kernel stack, and at high load "
           "the ledger comes out ahead on both axes.\n";
    return 0;
}
