/**
 * @file
 * Reproduces Fig. 16: memcached with a load level chosen at random
 * among {low, med, high} every period for 5 seconds — NMAP vs the
 * long-term feedback controller Parties. The paper reports 0.18% of
 * requests over the SLO for NMAP vs 26.62% for Parties. The two
 * 5-second runs execute concurrently on the sweep pool.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "sim/rng.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

std::vector<LoadChange>
randomSchedule(const AppProfile &app, Tick start, Tick end, Tick step,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<LoadChange> schedule;
    const LoadLevelSpec *levels[] = {&app.low, &app.med, &app.high};
    for (Tick t = start; t < end; t += step) {
        schedule.push_back(
            {t, *levels[rng.uniformInt(0, 2)]});
    }
    return schedule;
}

ExperimentConfig
policyConfig(const std::string &policy)
{
    AppProfile app = AppProfile::memcached();
    ExperimentConfig cfg =
        bench::cellConfig(app, LoadLevel::kLow, policy);
    cfg.collectTraces = true;
    cfg.collectLatencyTrace = true;
    cfg.duration = seconds(5);
    cfg.loadSchedule = randomSchedule(
        app, cfg.warmup, cfg.warmup + cfg.duration, milliseconds(500),
        /*seed=*/777);
    return cfg;
}

void
printPolicy(const std::string &policy, const ExperimentConfig &cfg,
            const ExperimentResult &r)
{
    std::printf("\n--- %s, randomly varying load over 5 s ---\n",
                policy.c_str());
    // 250 ms summary buckets: median/max latency + P-state of core 0.
    std::map<Tick, std::vector<Tick>> buckets;
    for (const LatencySample &s : r.latencyTrace)
        buckets[(s.completionTime - cfg.warmup) / milliseconds(250)]
            .push_back(s.latency);
    Table table({"t (ms)", "requests", "median (us)", "max (us)",
                 "P-state(core0)"});
    for (auto &[bucket, lats] : buckets) {
        std::sort(lats.begin(), lats.end());
        table.addRow({
            std::to_string(bucket * 250),
            std::to_string(lats.size()),
            Table::num(toMicroseconds(lats[lats.size() / 2]), 0),
            Table::num(toMicroseconds(lats.back()), 0),
            Table::num(r.traces->pstateSeries().at(
                           cfg.warmup + bucket * milliseconds(250) +
                           milliseconds(125)),
                       0),
        });
    }
    table.print(std::cout);
    std::printf("requests over the 1 ms SLO: %.2f%%  (P99 = %.0f us, "
                "P-state transitions = %llu)\n",
                r.fracOverSlo * 100.0, toMicroseconds(r.p99),
                static_cast<unsigned long long>(r.pstateTransitions));
}

} // namespace

int
main()
{
    bench::banner("Fig. 16",
                  "varying load: NMAP vs Parties (500 ms feedback)");
    const std::vector<std::string> policies = {"NMAP",
                                              "Parties"};
    std::vector<ExperimentConfig> points;
    for (const std::string &policy : policies)
        points.push_back(policyConfig(policy));
    std::vector<ExperimentResult> results =
        bench::runAll(points, "fig16");
    for (std::size_t i = 0; i < policies.size(); ++i)
        printPolicy(policies[i], points[i], results[i]);
    std::cout
        << "\nPaper shape: NMAP rides the load changes (only 0.18% of "
           "requests over the SLO; thresholds need no re-tuning as "
           "load changes) while Parties' 500 ms decisions leave it at "
           "mid P-states during bursts (26.62% over the SLO).\n";
    return 0;
}
