/**
 * @file
 * Extension evaluation: power management at cluster scope — how the
 * ToR switch's dispatch policy interacts with each host's frequency
 * policy.
 *
 * A fixed cluster offered load (one host's worth of high memcached
 * traffic) is served by 2 or 4 hosts. Spreading policies (flow-hash,
 * round-robin, least-outstanding) dilute the per-host packet rate as
 * the cluster grows, which moves every NIC *away* from polling mode —
 * the regime where NMAP's mode-transition signal lives. The packing
 * policy (power-pack) concentrates the same load on as few hosts as
 * the spill knee allows, so spare hosts see zero traffic and their
 * packages sleep; the question is what that concentration costs in
 * tail latency under each frequency policy.
 *
 * Cluster runs are not plain Experiments, so this bench fans out
 * through the sweep subsystem's generic runParallel() engine and
 * records machine-readable output via the cluster record schema.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

struct Variant
{
    const char *name;
    std::string policy;
    double ni;
    double cu;
};

ClusterConfig
pointConfig(int hosts, const std::string &dispatch, const Variant &v)
{
    ClusterConfig cfg;
    cfg.base = bench::cellConfig(AppProfile::memcached(),
                                 LoadLevel::kHigh, v.policy);
    if (v.policy == "NMAP") {
        cfg.base.params.set("nmap.ni_th", v.ni);
        cfg.base.params.set("nmap.cu_th", v.cu);
    }
    cfg.numHosts = hosts;
    cfg.dispatch = dispatch;
    // The default spill knee (16 in-flight) is sized for closed-loop
    // RPC fan-out; under this open-loop burst load every host blows
    // through it and power-pack degrades to least-outstanding. A knee
    // near one host's burst backlog makes the packing visible.
    if (dispatch == "power-pack")
        cfg.base.params.set("dispatch.pack_limit", 256.0);
    // One client machine per host keeps the flow population growing
    // with the cluster, so affinity policies have enough flows to
    // split; the *total* offered load stays one host's worth.
    cfg.clientGroups = hosts;
    cfg.drain = milliseconds(2);
    return cfg;
}

/** Served-request imbalance: busiest host over the even share. */
double
imbalance(const ClusterResult &r)
{
    std::uint64_t max_served = 0;
    std::uint64_t total = 0;
    for (const ClusterHostResult &host : r.hosts) {
        max_served = std::max(max_served, host.served);
        total += host.served;
    }
    if (total == 0)
        return 0.0;
    double even = static_cast<double>(total) /
                  static_cast<double>(r.hosts.size());
    return static_cast<double>(max_served) / even;
}

} // namespace

int
main()
{
    bench::banner("Extension",
                  "cluster dispatch policy x per-host power policy");

    auto [mc_ni, mc_cu] =
        bench::profileApps({AppProfile::memcached()}, "ext_cluster")[0];

    const std::vector<Variant> variants = {
        {"performance", "performance", 0, 0},
        {"ondemand", "ondemand", 0, 0},
        {"NMAP", "NMAP", mc_ni, mc_cu},
    };
    const std::vector<std::string> dispatches = {
        "flow-hash", "round-robin", "least-outstanding", "power-pack"};
    const std::vector<int> host_counts = {2, 4};

    std::vector<ClusterConfig> configs;
    for (int hosts : host_counts)
        for (const std::string &dispatch : dispatches)
            for (const Variant &v : variants)
                configs.push_back(pointConfig(hosts, dispatch, v));

    std::vector<std::function<ClusterResult()>> tasks;
    tasks.reserve(configs.size());
    for (const ClusterConfig &cfg : configs)
        tasks.emplace_back(
            [&cfg] { return ClusterExperiment(cfg).run(); });
    SweepOptions opts;
    opts.tag = "ext_cluster";
    std::vector<SweepSlot<ClusterResult>> slots =
        runParallel(tasks, opts);

    if (ResultWriter *sink = bench::jsonSink())
        for (std::size_t i = 0; i < configs.size(); ++i)
            appendClusterResultRecord(*sink, configs[i],
                                      slots[i].value());

    for (int hosts : host_counts) {
        std::printf("\n--- %d hosts, fixed cluster load "
                    "(memcached high, 1 host's worth) ---\n",
                    hosts);
        Table table({"dispatch", "policy", "P99 (us)", "xSLO",
                     "energy (J)", "power (W)", "imbalance"});
        for (std::size_t i = 0; i < configs.size(); ++i) {
            if (configs[i].numHosts != hosts)
                continue;
            const ClusterResult &r = slots[i].value();
            table.addRow({
                configs[i].dispatch,
                configs[i].base.freqPolicy,
                Table::num(toMicroseconds(r.p99), 0),
                Table::num(static_cast<double>(r.p99) /
                               static_cast<double>(r.slo),
                           2),
                Table::num(r.energyJoules, 1),
                Table::num(r.avgPowerWatts, 1),
                Table::num(imbalance(r), 2),
            });
        }
        table.print(std::cout);
    }

    std::cout
        << "\nFindings: spreading dispatch (flow-hash, round-robin, "
           "least-outstanding) dilutes the per-host packet rate as "
           "hosts are added, so NICs sit in interrupt mode and "
           "DVFS-down policies (ondemand, NMAP) bank most of the "
           "idle-host savings automatically — but every added host "
           "still pays its uncore floor, so cluster power grows with "
           "size even at constant load. power-pack concentrates the "
           "load on the low-id hosts (imbalance ~= hosts), keeping "
           "the spares' packages in deep idle: the cheapest "
           "configuration at every size, at a modest P99 cost from "
           "the induced queueing. The dispatch x policy interaction "
           "is multiplicative — packing decides how many packages pay "
           "the floor, the frequency policy decides what the loaded "
           "ones pay above it.\n";
    return 0;
}
