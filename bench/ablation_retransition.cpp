/**
 * @file
 * Ablation: how much of the governors' behaviour is caused by the
 * Section 5.1 re-transition latency?
 *
 * Runs NMAP-simpl, NMAP and ondemand at high load on the real Gold
 * 6134 (back-to-back V/F updates cost ~520 us) and on a hypothetical
 * part with ideal fast regulators (every update costs the ACPI nominal
 * 10 us). NMAP-simpl's oscillation between ksoftirqd wake/sleep issues
 * frequent transitions, so the re-transition penalty should account
 * for most of its high-load failure; NMAP switches rarely and should
 * barely notice. The six (policy x CPU) points run as one sweep.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    bench::banner("Ablation",
                  "re-transition latency on vs off (Section 5.1)");

    AppProfile app = AppProfile::memcached();
    auto [ni, cu] =
        bench::profileApps({app}, "ablation_retransition")[0];

    const std::vector<std::string> policies = {
        "ondemand", "NMAP-simpl",
        "NMAP"};
    const std::vector<const char *> cpus = {
        "Xeon Gold 6134", "Xeon Gold 6134 (fast VR)"};
    std::vector<ExperimentConfig> points;
    for (const std::string &policy : policies) {
        for (const char *cpu : cpus) {
            ExperimentConfig cfg =
                bench::cellConfig(app, LoadLevel::kHigh, policy);
            cfg.cpuProfile = cpu;
            cfg.params.set("nmap.ni_th", ni);
            cfg.params.set("nmap.cu_th", cu);
            points.push_back(cfg);
        }
    }
    std::vector<ExperimentResult> results =
        bench::runAll(points, "ablation_retransition");

    Table table({"policy", "CPU", "P99 (us)", "xSLO", "> SLO (%)",
                 "V/F transitions", "energy (J)"});
    std::size_t idx = 0;
    for (const std::string &policy : policies) {
        for (const char *cpu : cpus) {
            const ExperimentResult &r = results[idx++];
            table.addRow({
                policy.c_str(),
                cpu,
                Table::num(toMicroseconds(r.p99), 0),
                Table::num(static_cast<double>(r.p99) /
                               static_cast<double>(app.slo),
                           2),
                Table::num(r.fracOverSlo * 100.0, 2),
                std::to_string(r.pstateTransitions),
                Table::num(r.energyJoules, 1),
            });
        }
    }
    table.print(std::cout);
    std::cout
        << "\nFinding: NMAP and ondemand are insensitive to the "
           "re-transition latency (both switch rarely). NMAP-simpl is "
           "highly sensitive — and, notably, *worse* with ideal fast "
           "regulators: every ksoftirqd sleep then lands instantly on "
           "the stale-low ondemand state mid-burst, whereas the real "
           "520 us penalty accidentally keeps the core at P0 longer. "
           "The instability of the ksoftirqd trigger, not merely slow "
           "regulators, is what breaks NMAP-simpl at high load; "
           "NMAP's sticky ratio-based fallback avoids both failure "
           "modes.\n";
    return 0;
}
