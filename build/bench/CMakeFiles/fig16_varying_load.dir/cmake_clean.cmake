file(REMOVE_RECURSE
  "CMakeFiles/fig16_varying_load.dir/fig16_varying_load.cpp.o"
  "CMakeFiles/fig16_varying_load.dir/fig16_varying_load.cpp.o.d"
  "fig16_varying_load"
  "fig16_varying_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_varying_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
