
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_varying_load.cpp" "bench/CMakeFiles/fig16_varying_load.dir/fig16_varying_load.cpp.o" "gcc" "bench/CMakeFiles/fig16_varying_load.dir/fig16_varying_load.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nmapsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nmapsim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nmap/CMakeFiles/nmapsim_nmap.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nmapsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/governors/CMakeFiles/nmapsim_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/nmapsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nmapsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/nmapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nmapsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nmapsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
