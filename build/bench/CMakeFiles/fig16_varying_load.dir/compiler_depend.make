# Empty compiler generated dependencies file for fig16_varying_load.
# This may be replaced when dependencies are built.
