file(REMOVE_RECURSE
  "CMakeFiles/fig09_nmap_trace.dir/fig09_nmap_trace.cpp.o"
  "CMakeFiles/fig09_nmap_trace.dir/fig09_nmap_trace.cpp.o.d"
  "fig09_nmap_trace"
  "fig09_nmap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nmap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
