# Empty dependencies file for fig09_nmap_trace.
# This may be replaced when dependencies are built.
