# Empty compiler generated dependencies file for ablation_retransition.
# This may be replaced when dependencies are built.
