file(REMOVE_RECURSE
  "CMakeFiles/ablation_retransition.dir/ablation_retransition.cpp.o"
  "CMakeFiles/ablation_retransition.dir/ablation_retransition.cpp.o.d"
  "ablation_retransition"
  "ablation_retransition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retransition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
