# Empty dependencies file for table2_wakeup.
# This may be replaced when dependencies are built.
