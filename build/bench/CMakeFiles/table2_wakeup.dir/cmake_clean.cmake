file(REMOVE_RECURSE
  "CMakeFiles/table2_wakeup.dir/table2_wakeup.cpp.o"
  "CMakeFiles/table2_wakeup.dir/table2_wakeup.cpp.o.d"
  "table2_wakeup"
  "table2_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
