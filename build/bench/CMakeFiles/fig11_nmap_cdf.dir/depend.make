# Empty dependencies file for fig11_nmap_cdf.
# This may be replaced when dependencies are built.
