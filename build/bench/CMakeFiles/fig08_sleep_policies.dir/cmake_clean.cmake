file(REMOVE_RECURSE
  "CMakeFiles/fig08_sleep_policies.dir/fig08_sleep_policies.cpp.o"
  "CMakeFiles/fig08_sleep_policies.dir/fig08_sleep_policies.cpp.o.d"
  "fig08_sleep_policies"
  "fig08_sleep_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sleep_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
