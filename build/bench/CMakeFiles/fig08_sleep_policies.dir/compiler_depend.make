# Empty compiler generated dependencies file for fig08_sleep_policies.
# This may be replaced when dependencies are built.
