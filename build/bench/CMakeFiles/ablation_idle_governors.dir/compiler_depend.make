# Empty compiler generated dependencies file for ablation_idle_governors.
# This may be replaced when dependencies are built.
