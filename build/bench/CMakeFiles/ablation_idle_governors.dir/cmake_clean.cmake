file(REMOVE_RECURSE
  "CMakeFiles/ablation_idle_governors.dir/ablation_idle_governors.cpp.o"
  "CMakeFiles/ablation_idle_governors.dir/ablation_idle_governors.cpp.o.d"
  "ablation_idle_governors"
  "ablation_idle_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idle_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
