file(REMOVE_RECURSE
  "CMakeFiles/ablation_chipwide.dir/ablation_chipwide.cpp.o"
  "CMakeFiles/ablation_chipwide.dir/ablation_chipwide.cpp.o.d"
  "ablation_chipwide"
  "ablation_chipwide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chipwide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
