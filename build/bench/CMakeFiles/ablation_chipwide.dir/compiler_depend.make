# Empty compiler generated dependencies file for ablation_chipwide.
# This may be replaced when dependencies are built.
