file(REMOVE_RECURSE
  "CMakeFiles/ext_colocation.dir/ext_colocation.cpp.o"
  "CMakeFiles/ext_colocation.dir/ext_colocation.cpp.o.d"
  "ext_colocation"
  "ext_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
