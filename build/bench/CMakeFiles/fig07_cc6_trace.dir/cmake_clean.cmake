file(REMOVE_RECURSE
  "CMakeFiles/fig07_cc6_trace.dir/fig07_cc6_trace.cpp.o"
  "CMakeFiles/fig07_cc6_trace.dir/fig07_cc6_trace.cpp.o.d"
  "fig07_cc6_trace"
  "fig07_cc6_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cc6_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
