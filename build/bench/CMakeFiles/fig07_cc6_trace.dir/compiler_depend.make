# Empty compiler generated dependencies file for fig07_cc6_trace.
# This may be replaced when dependencies are built.
