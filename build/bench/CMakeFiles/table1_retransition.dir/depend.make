# Empty dependencies file for table1_retransition.
# This may be replaced when dependencies are built.
