file(REMOVE_RECURSE
  "CMakeFiles/table1_retransition.dir/table1_retransition.cpp.o"
  "CMakeFiles/table1_retransition.dir/table1_retransition.cpp.o.d"
  "table1_retransition"
  "table1_retransition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_retransition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
