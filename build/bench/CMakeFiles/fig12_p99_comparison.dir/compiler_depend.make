# Empty compiler generated dependencies file for fig12_p99_comparison.
# This may be replaced when dependencies are built.
