# Empty dependencies file for fig03_latency_trace.
# This may be replaced when dependencies are built.
