# Empty dependencies file for fig10_nmap_latency_trace.
# This may be replaced when dependencies are built.
