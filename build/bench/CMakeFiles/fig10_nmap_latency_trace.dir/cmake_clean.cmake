file(REMOVE_RECURSE
  "CMakeFiles/fig10_nmap_latency_trace.dir/fig10_nmap_latency_trace.cpp.o"
  "CMakeFiles/fig10_nmap_latency_trace.dir/fig10_nmap_latency_trace.cpp.o.d"
  "fig10_nmap_latency_trace"
  "fig10_nmap_latency_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nmap_latency_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
