file(REMOVE_RECURSE
  "CMakeFiles/fig13_energy_comparison.dir/fig13_energy_comparison.cpp.o"
  "CMakeFiles/fig13_energy_comparison.dir/fig13_energy_comparison.cpp.o.d"
  "fig13_energy_comparison"
  "fig13_energy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_energy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
