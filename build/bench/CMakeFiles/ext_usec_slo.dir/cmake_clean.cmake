file(REMOVE_RECURSE
  "CMakeFiles/ext_usec_slo.dir/ext_usec_slo.cpp.o"
  "CMakeFiles/ext_usec_slo.dir/ext_usec_slo.cpp.o.d"
  "ext_usec_slo"
  "ext_usec_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_usec_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
