# Empty compiler generated dependencies file for ext_usec_slo.
# This may be replaced when dependencies are built.
