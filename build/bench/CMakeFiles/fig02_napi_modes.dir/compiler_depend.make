# Empty compiler generated dependencies file for fig02_napi_modes.
# This may be replaced when dependencies are built.
