file(REMOVE_RECURSE
  "CMakeFiles/fig02_napi_modes.dir/fig02_napi_modes.cpp.o"
  "CMakeFiles/fig02_napi_modes.dir/fig02_napi_modes.cpp.o.d"
  "fig02_napi_modes"
  "fig02_napi_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_napi_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
