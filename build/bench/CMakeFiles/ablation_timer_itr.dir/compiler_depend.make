# Empty compiler generated dependencies file for ablation_timer_itr.
# This may be replaced when dependencies are built.
