file(REMOVE_RECURSE
  "CMakeFiles/ablation_timer_itr.dir/ablation_timer_itr.cpp.o"
  "CMakeFiles/ablation_timer_itr.dir/ablation_timer_itr.cpp.o.d"
  "ablation_timer_itr"
  "ablation_timer_itr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timer_itr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
