file(REMOVE_RECURSE
  "CMakeFiles/fig04_latency_cdf.dir/fig04_latency_cdf.cpp.o"
  "CMakeFiles/fig04_latency_cdf.dir/fig04_latency_cdf.cpp.o.d"
  "fig04_latency_cdf"
  "fig04_latency_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_latency_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
