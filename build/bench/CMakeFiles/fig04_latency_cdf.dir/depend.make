# Empty dependencies file for fig04_latency_cdf.
# This may be replaced when dependencies are built.
