# Empty dependencies file for fig14_sota_p99.
# This may be replaced when dependencies are built.
