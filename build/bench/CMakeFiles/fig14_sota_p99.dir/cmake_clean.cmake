file(REMOVE_RECURSE
  "CMakeFiles/fig14_sota_p99.dir/fig14_sota_p99.cpp.o"
  "CMakeFiles/fig14_sota_p99.dir/fig14_sota_p99.cpp.o.d"
  "fig14_sota_p99"
  "fig14_sota_p99.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sota_p99.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
