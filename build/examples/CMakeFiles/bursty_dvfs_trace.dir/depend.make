# Empty dependencies file for bursty_dvfs_trace.
# This may be replaced when dependencies are built.
