file(REMOVE_RECURSE
  "CMakeFiles/bursty_dvfs_trace.dir/bursty_dvfs_trace.cpp.o"
  "CMakeFiles/bursty_dvfs_trace.dir/bursty_dvfs_trace.cpp.o.d"
  "bursty_dvfs_trace"
  "bursty_dvfs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_dvfs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
