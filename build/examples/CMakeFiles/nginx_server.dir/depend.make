# Empty dependencies file for nginx_server.
# This may be replaced when dependencies are built.
