file(REMOVE_RECURSE
  "CMakeFiles/nginx_server.dir/nginx_server.cpp.o"
  "CMakeFiles/nginx_server.dir/nginx_server.cpp.o.d"
  "nginx_server"
  "nginx_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nginx_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
