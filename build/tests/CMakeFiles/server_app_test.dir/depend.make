# Empty dependencies file for server_app_test.
# This may be replaced when dependencies are built.
