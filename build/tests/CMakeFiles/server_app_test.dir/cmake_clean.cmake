file(REMOVE_RECURSE
  "CMakeFiles/server_app_test.dir/server_app_test.cc.o"
  "CMakeFiles/server_app_test.dir/server_app_test.cc.o.d"
  "server_app_test"
  "server_app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
