file(REMOVE_RECURSE
  "CMakeFiles/cpuidle_test.dir/cpuidle_test.cc.o"
  "CMakeFiles/cpuidle_test.dir/cpuidle_test.cc.o.d"
  "cpuidle_test"
  "cpuidle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpuidle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
