
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpuidle_test.cc" "tests/CMakeFiles/cpuidle_test.dir/cpuidle_test.cc.o" "gcc" "tests/CMakeFiles/cpuidle_test.dir/cpuidle_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/governors/CMakeFiles/nmapsim_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nmapsim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nmapsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/nmapsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/nmapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nmapsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nmapsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nmapsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
