file(REMOVE_RECURSE
  "CMakeFiles/nmap_monitor_test.dir/nmap_monitor_test.cc.o"
  "CMakeFiles/nmap_monitor_test.dir/nmap_monitor_test.cc.o.d"
  "nmap_monitor_test"
  "nmap_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmap_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
