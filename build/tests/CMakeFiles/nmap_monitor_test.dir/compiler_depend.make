# Empty compiler generated dependencies file for nmap_monitor_test.
# This may be replaced when dependencies are built.
