file(REMOVE_RECURSE
  "CMakeFiles/colocation_test.dir/colocation_test.cc.o"
  "CMakeFiles/colocation_test.dir/colocation_test.cc.o.d"
  "colocation_test"
  "colocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
