file(REMOVE_RECURSE
  "CMakeFiles/nmap_profiler_test.dir/nmap_profiler_test.cc.o"
  "CMakeFiles/nmap_profiler_test.dir/nmap_profiler_test.cc.o.d"
  "nmap_profiler_test"
  "nmap_profiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmap_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
