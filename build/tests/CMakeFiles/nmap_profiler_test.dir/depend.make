# Empty dependencies file for nmap_profiler_test.
# This may be replaced when dependencies are built.
