# Empty dependencies file for nmap_adaptive_test.
# This may be replaced when dependencies are built.
