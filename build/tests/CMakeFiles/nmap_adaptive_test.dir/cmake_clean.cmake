file(REMOVE_RECURSE
  "CMakeFiles/nmap_adaptive_test.dir/nmap_adaptive_test.cc.o"
  "CMakeFiles/nmap_adaptive_test.dir/nmap_adaptive_test.cc.o.d"
  "nmap_adaptive_test"
  "nmap_adaptive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmap_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
