# Empty dependencies file for napi_test.
# This may be replaced when dependencies are built.
