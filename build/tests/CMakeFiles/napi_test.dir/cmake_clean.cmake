file(REMOVE_RECURSE
  "CMakeFiles/napi_test.dir/napi_test.cc.o"
  "CMakeFiles/napi_test.dir/napi_test.cc.o.d"
  "napi_test"
  "napi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/napi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
