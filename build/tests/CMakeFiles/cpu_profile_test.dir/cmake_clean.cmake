file(REMOVE_RECURSE
  "CMakeFiles/cpu_profile_test.dir/cpu_profile_test.cc.o"
  "CMakeFiles/cpu_profile_test.dir/cpu_profile_test.cc.o.d"
  "cpu_profile_test"
  "cpu_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
