# Empty compiler generated dependencies file for cpu_profile_test.
# This may be replaced when dependencies are built.
