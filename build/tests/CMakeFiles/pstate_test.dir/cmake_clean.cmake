file(REMOVE_RECURSE
  "CMakeFiles/pstate_test.dir/pstate_test.cc.o"
  "CMakeFiles/pstate_test.dir/pstate_test.cc.o.d"
  "pstate_test"
  "pstate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
