# Empty dependencies file for pstate_test.
# This may be replaced when dependencies are built.
