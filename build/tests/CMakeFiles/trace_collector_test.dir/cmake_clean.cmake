file(REMOVE_RECURSE
  "CMakeFiles/trace_collector_test.dir/trace_collector_test.cc.o"
  "CMakeFiles/trace_collector_test.dir/trace_collector_test.cc.o.d"
  "trace_collector_test"
  "trace_collector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
