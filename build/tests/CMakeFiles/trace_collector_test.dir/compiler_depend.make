# Empty compiler generated dependencies file for trace_collector_test.
# This may be replaced when dependencies are built.
