# Empty compiler generated dependencies file for parties_test.
# This may be replaced when dependencies are built.
