file(REMOVE_RECURSE
  "CMakeFiles/parties_test.dir/parties_test.cc.o"
  "CMakeFiles/parties_test.dir/parties_test.cc.o.d"
  "parties_test"
  "parties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
