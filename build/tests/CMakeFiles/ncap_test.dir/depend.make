# Empty dependencies file for ncap_test.
# This may be replaced when dependencies are built.
