file(REMOVE_RECURSE
  "CMakeFiles/ncap_test.dir/ncap_test.cc.o"
  "CMakeFiles/ncap_test.dir/ncap_test.cc.o.d"
  "ncap_test"
  "ncap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
