# Empty dependencies file for energy_meter_test.
# This may be replaced when dependencies are built.
