# Empty dependencies file for dvfs_actuator_test.
# This may be replaced when dependencies are built.
