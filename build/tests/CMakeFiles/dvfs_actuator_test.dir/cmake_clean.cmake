file(REMOVE_RECURSE
  "CMakeFiles/dvfs_actuator_test.dir/dvfs_actuator_test.cc.o"
  "CMakeFiles/dvfs_actuator_test.dir/dvfs_actuator_test.cc.o.d"
  "dvfs_actuator_test"
  "dvfs_actuator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_actuator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
