# Empty compiler generated dependencies file for cstate_test.
# This may be replaced when dependencies are built.
