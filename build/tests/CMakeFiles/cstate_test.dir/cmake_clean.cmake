file(REMOVE_RECURSE
  "CMakeFiles/cstate_test.dir/cstate_test.cc.o"
  "CMakeFiles/cstate_test.dir/cstate_test.cc.o.d"
  "cstate_test"
  "cstate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
