file(REMOVE_RECURSE
  "CMakeFiles/governors_test.dir/governors_test.cc.o"
  "CMakeFiles/governors_test.dir/governors_test.cc.o.d"
  "governors_test"
  "governors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
