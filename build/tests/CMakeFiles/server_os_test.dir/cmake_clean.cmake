file(REMOVE_RECURSE
  "CMakeFiles/server_os_test.dir/server_os_test.cc.o"
  "CMakeFiles/server_os_test.dir/server_os_test.cc.o.d"
  "server_os_test"
  "server_os_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
