# Empty dependencies file for server_os_test.
# This may be replaced when dependencies are built.
