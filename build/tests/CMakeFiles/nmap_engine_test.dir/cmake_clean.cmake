file(REMOVE_RECURSE
  "CMakeFiles/nmap_engine_test.dir/nmap_engine_test.cc.o"
  "CMakeFiles/nmap_engine_test.dir/nmap_engine_test.cc.o.d"
  "nmap_engine_test"
  "nmap_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmap_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
