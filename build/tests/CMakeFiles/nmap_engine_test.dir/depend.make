# Empty dependencies file for nmap_engine_test.
# This may be replaced when dependencies are built.
