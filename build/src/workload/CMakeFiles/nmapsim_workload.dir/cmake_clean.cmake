file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_workload.dir/app_profile.cc.o"
  "CMakeFiles/nmapsim_workload.dir/app_profile.cc.o.d"
  "CMakeFiles/nmapsim_workload.dir/client.cc.o"
  "CMakeFiles/nmapsim_workload.dir/client.cc.o.d"
  "CMakeFiles/nmapsim_workload.dir/loadgen.cc.o"
  "CMakeFiles/nmapsim_workload.dir/loadgen.cc.o.d"
  "CMakeFiles/nmapsim_workload.dir/server_app.cc.o"
  "CMakeFiles/nmapsim_workload.dir/server_app.cc.o.d"
  "libnmapsim_workload.a"
  "libnmapsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
