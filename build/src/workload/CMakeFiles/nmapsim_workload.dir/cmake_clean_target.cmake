file(REMOVE_RECURSE
  "libnmapsim_workload.a"
)
