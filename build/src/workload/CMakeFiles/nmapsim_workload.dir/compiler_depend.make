# Empty compiler generated dependencies file for nmapsim_workload.
# This may be replaced when dependencies are built.
