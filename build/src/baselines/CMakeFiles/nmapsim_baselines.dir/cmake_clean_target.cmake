file(REMOVE_RECURSE
  "libnmapsim_baselines.a"
)
