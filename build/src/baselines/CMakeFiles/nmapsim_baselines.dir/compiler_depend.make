# Empty compiler generated dependencies file for nmapsim_baselines.
# This may be replaced when dependencies are built.
