file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_baselines.dir/ncap.cc.o"
  "CMakeFiles/nmapsim_baselines.dir/ncap.cc.o.d"
  "CMakeFiles/nmapsim_baselines.dir/parties.cc.o"
  "CMakeFiles/nmapsim_baselines.dir/parties.cc.o.d"
  "libnmapsim_baselines.a"
  "libnmapsim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
