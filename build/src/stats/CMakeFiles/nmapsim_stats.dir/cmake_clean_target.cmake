file(REMOVE_RECURSE
  "libnmapsim_stats.a"
)
