file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_stats.dir/energy_meter.cc.o"
  "CMakeFiles/nmapsim_stats.dir/energy_meter.cc.o.d"
  "CMakeFiles/nmapsim_stats.dir/latency_recorder.cc.o"
  "CMakeFiles/nmapsim_stats.dir/latency_recorder.cc.o.d"
  "CMakeFiles/nmapsim_stats.dir/table.cc.o"
  "CMakeFiles/nmapsim_stats.dir/table.cc.o.d"
  "CMakeFiles/nmapsim_stats.dir/timeseries.cc.o"
  "CMakeFiles/nmapsim_stats.dir/timeseries.cc.o.d"
  "libnmapsim_stats.a"
  "libnmapsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
