# Empty dependencies file for nmapsim_stats.
# This may be replaced when dependencies are built.
