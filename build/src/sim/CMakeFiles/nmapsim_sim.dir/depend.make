# Empty dependencies file for nmapsim_sim.
# This may be replaced when dependencies are built.
