file(REMOVE_RECURSE
  "libnmapsim_sim.a"
)
