file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/nmapsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/nmapsim_sim.dir/logging.cc.o"
  "CMakeFiles/nmapsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/nmapsim_sim.dir/rng.cc.o"
  "CMakeFiles/nmapsim_sim.dir/rng.cc.o.d"
  "libnmapsim_sim.a"
  "libnmapsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
