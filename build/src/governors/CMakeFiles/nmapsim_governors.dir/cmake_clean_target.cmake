file(REMOVE_RECURSE
  "libnmapsim_governors.a"
)
