# Empty dependencies file for nmapsim_governors.
# This may be replaced when dependencies are built.
