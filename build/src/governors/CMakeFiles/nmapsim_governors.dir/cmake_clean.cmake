file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_governors.dir/cpuidle_policies.cc.o"
  "CMakeFiles/nmapsim_governors.dir/cpuidle_policies.cc.o.d"
  "CMakeFiles/nmapsim_governors.dir/ondemand.cc.o"
  "CMakeFiles/nmapsim_governors.dir/ondemand.cc.o.d"
  "libnmapsim_governors.a"
  "libnmapsim_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
