file(REMOVE_RECURSE
  "libnmapsim_net.a"
)
