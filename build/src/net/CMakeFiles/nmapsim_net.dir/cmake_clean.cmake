file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_net.dir/nic.cc.o"
  "CMakeFiles/nmapsim_net.dir/nic.cc.o.d"
  "CMakeFiles/nmapsim_net.dir/wire.cc.o"
  "CMakeFiles/nmapsim_net.dir/wire.cc.o.d"
  "libnmapsim_net.a"
  "libnmapsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
