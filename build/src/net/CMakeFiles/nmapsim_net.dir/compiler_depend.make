# Empty compiler generated dependencies file for nmapsim_net.
# This may be replaced when dependencies are built.
