file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_cpu.dir/core.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/core.cc.o.d"
  "CMakeFiles/nmapsim_cpu.dir/cpu_profile.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/cpu_profile.cc.o.d"
  "CMakeFiles/nmapsim_cpu.dir/cstate.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/cstate.cc.o.d"
  "CMakeFiles/nmapsim_cpu.dir/dvfs_actuator.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/dvfs_actuator.cc.o.d"
  "CMakeFiles/nmapsim_cpu.dir/package_power.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/package_power.cc.o.d"
  "CMakeFiles/nmapsim_cpu.dir/power_model.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/power_model.cc.o.d"
  "CMakeFiles/nmapsim_cpu.dir/pstate.cc.o"
  "CMakeFiles/nmapsim_cpu.dir/pstate.cc.o.d"
  "libnmapsim_cpu.a"
  "libnmapsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
