
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/cpu_profile.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/cpu_profile.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/cpu_profile.cc.o.d"
  "/root/repo/src/cpu/cstate.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/cstate.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/cstate.cc.o.d"
  "/root/repo/src/cpu/dvfs_actuator.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/dvfs_actuator.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/dvfs_actuator.cc.o.d"
  "/root/repo/src/cpu/package_power.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/package_power.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/package_power.cc.o.d"
  "/root/repo/src/cpu/power_model.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/power_model.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/power_model.cc.o.d"
  "/root/repo/src/cpu/pstate.cc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/pstate.cc.o" "gcc" "src/cpu/CMakeFiles/nmapsim_cpu.dir/pstate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nmapsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nmapsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
