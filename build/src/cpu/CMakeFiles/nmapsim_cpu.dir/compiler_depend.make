# Empty compiler generated dependencies file for nmapsim_cpu.
# This may be replaced when dependencies are built.
