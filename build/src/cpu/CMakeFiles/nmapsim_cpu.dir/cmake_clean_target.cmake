file(REMOVE_RECURSE
  "libnmapsim_cpu.a"
)
