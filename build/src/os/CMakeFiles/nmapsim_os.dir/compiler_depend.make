# Empty compiler generated dependencies file for nmapsim_os.
# This may be replaced when dependencies are built.
