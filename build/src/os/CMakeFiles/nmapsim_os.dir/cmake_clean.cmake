file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_os.dir/core_sched.cc.o"
  "CMakeFiles/nmapsim_os.dir/core_sched.cc.o.d"
  "CMakeFiles/nmapsim_os.dir/napi.cc.o"
  "CMakeFiles/nmapsim_os.dir/napi.cc.o.d"
  "CMakeFiles/nmapsim_os.dir/server_os.cc.o"
  "CMakeFiles/nmapsim_os.dir/server_os.cc.o.d"
  "libnmapsim_os.a"
  "libnmapsim_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
