file(REMOVE_RECURSE
  "libnmapsim_os.a"
)
