file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_harness.dir/colocation.cc.o"
  "CMakeFiles/nmapsim_harness.dir/colocation.cc.o.d"
  "CMakeFiles/nmapsim_harness.dir/experiment.cc.o"
  "CMakeFiles/nmapsim_harness.dir/experiment.cc.o.d"
  "CMakeFiles/nmapsim_harness.dir/trace_collector.cc.o"
  "CMakeFiles/nmapsim_harness.dir/trace_collector.cc.o.d"
  "libnmapsim_harness.a"
  "libnmapsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
