# Empty dependencies file for nmapsim_harness.
# This may be replaced when dependencies are built.
