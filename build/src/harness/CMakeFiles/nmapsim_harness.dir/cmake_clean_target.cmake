file(REMOVE_RECURSE
  "libnmapsim_harness.a"
)
