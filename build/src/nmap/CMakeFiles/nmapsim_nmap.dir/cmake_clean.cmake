file(REMOVE_RECURSE
  "CMakeFiles/nmapsim_nmap.dir/adaptive.cc.o"
  "CMakeFiles/nmapsim_nmap.dir/adaptive.cc.o.d"
  "CMakeFiles/nmapsim_nmap.dir/decision_engine.cc.o"
  "CMakeFiles/nmapsim_nmap.dir/decision_engine.cc.o.d"
  "CMakeFiles/nmapsim_nmap.dir/monitor.cc.o"
  "CMakeFiles/nmapsim_nmap.dir/monitor.cc.o.d"
  "CMakeFiles/nmapsim_nmap.dir/nmap_governor.cc.o"
  "CMakeFiles/nmapsim_nmap.dir/nmap_governor.cc.o.d"
  "CMakeFiles/nmapsim_nmap.dir/profiler.cc.o"
  "CMakeFiles/nmapsim_nmap.dir/profiler.cc.o.d"
  "libnmapsim_nmap.a"
  "libnmapsim_nmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmapsim_nmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
