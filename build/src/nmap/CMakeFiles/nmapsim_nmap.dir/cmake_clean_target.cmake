file(REMOVE_RECURSE
  "libnmapsim_nmap.a"
)
