
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmap/adaptive.cc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/adaptive.cc.o" "gcc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/adaptive.cc.o.d"
  "/root/repo/src/nmap/decision_engine.cc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/decision_engine.cc.o" "gcc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/decision_engine.cc.o.d"
  "/root/repo/src/nmap/monitor.cc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/monitor.cc.o" "gcc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/monitor.cc.o.d"
  "/root/repo/src/nmap/nmap_governor.cc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/nmap_governor.cc.o" "gcc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/nmap_governor.cc.o.d"
  "/root/repo/src/nmap/profiler.cc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/profiler.cc.o" "gcc" "src/nmap/CMakeFiles/nmapsim_nmap.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/governors/CMakeFiles/nmapsim_governors.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/nmapsim_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nmapsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/nmapsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nmapsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nmapsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
