# Empty dependencies file for nmapsim_nmap.
# This may be replaced when dependencies are built.
