/**
 * @file
 * Policy-registry entries for the static cpufreq governors.
 */

#include "governors/static_governors.hh"

#include "harness/policy_registry.hh"

namespace nmapsim {

void
linkStaticGovernorPolicies()
{
}

namespace {

FreqPolicyInstance
makePerformance(PolicyContext &ctx)
{
    return {std::make_unique<PerformanceGovernor>(ctx.cores), nullptr};
}

FreqPolicyInstance
makePowersave(PolicyContext &ctx)
{
    return {std::make_unique<PowersaveGovernor>(ctx.cores), nullptr};
}

FreqPolicyInstance
makeUserspace(PolicyContext &ctx)
{
    return {std::make_unique<UserspaceGovernor>(
                ctx.cores, ctx.params.getInt("userspace.pstate", 0)),
            nullptr};
}

REGISTER_FREQ_POLICY(
    "performance", &makePerformance,
    "pin every core at P0 (latency-optimal, energy-hungry)");
REGISTER_FREQ_POLICY(
    "powersave", &makePowersave,
    "pin every core at the lowest P-state");
REGISTER_FREQ_POLICY(
    "userspace", &makeUserspace,
    "pin every core at userspace.pstate (default 0)");

} // namespace
} // namespace nmapsim
