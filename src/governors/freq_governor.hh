/**
 * @file
 * Base interface for P-state (cpufreq) governors.
 *
 * A governor owns the policy for every core of the package (mirroring a
 * cpufreq policy object per core in Linux, but kept together so
 * chip-wide policies like NCAP fit the same interface). Governors issue
 * requests through each core's DvfsActuator and therefore automatically
 * pay the nominal/re-transition latencies of Section 5.1.
 */

#ifndef NMAPSIM_GOVERNORS_FREQ_GOVERNOR_HH_
#define NMAPSIM_GOVERNORS_FREQ_GOVERNOR_HH_

#include <string>
#include <vector>

#include "cpu/core.hh"

namespace nmapsim {

/** Common tunables of the sampling (utilisation-based) governors. */
struct GovernorConfig
{
    Tick samplePeriod = milliseconds(10); //!< 10 ms as in the paper
    double upThreshold = 0.80;            //!< ondemand up_threshold
    double downThreshold = 0.20;          //!< conservative down trigger
    double ewmaAlpha = 0.35; //!< intel_powersave utilisation smoothing

    bool operator==(const GovernorConfig &) const = default;
};

/** Strategy that decides core P-states. */
class FreqGovernor
{
  public:
    virtual ~FreqGovernor() = default;

    /** Begin operating (schedule sampling, set initial states). */
    virtual void start() = 0;

    virtual std::string name() const = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_GOVERNORS_FREQ_GOVERNOR_HH_
