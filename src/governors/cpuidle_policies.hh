/**
 * @file
 * Sleep-state (cpuidle) policies: menu, disable, c6only.
 *
 * These are the three policies compared in Section 5.2 / Fig. 8 of the
 * paper: Linux's default menu governor (history-based idle prediction),
 * `disable` (never sleep — the core idles in C0), and `c6only` (always
 * take the deepest state). The paper's finding — and this simulator
 * reproduces it — is that with millisecond-scale SLOs the choice barely
 * moves tail latency but moves energy a lot.
 */

#ifndef NMAPSIM_GOVERNORS_CPUIDLE_POLICIES_HH_
#define NMAPSIM_GOVERNORS_CPUIDLE_POLICIES_HH_

#include <algorithm>
#include <array>
#include <vector>

#include "cpu/cpu_profile.hh"
#include "os/cpuidle.hh"

namespace nmapsim {

/** Never sleep: idle cores spin in C0. */
class DisableIdleGovernor : public CpuIdleGovernor
{
  public:
    CState
    selectState(int core, Tick now) override
    {
        (void)core;
        (void)now;
        return CState::kC0;
    }

    std::string name() const override { return "disable"; }
};

/** Always take the deepest sleep state (CC6). */
class C6OnlyIdleGovernor : public CpuIdleGovernor
{
  public:
    CState
    selectState(int core, Tick now) override
    {
        (void)core;
        (void)now;
        return CState::kC6;
    }

    std::string name() const override { return "c6only"; }
};

/**
 * Linux menu governor (simplified): predicts the next idle span from a
 * window of recent idle durations and picks the deepest C-state whose
 * target residency fits the prediction.
 */
class MenuIdleGovernor : public CpuIdleGovernor
{
  public:
    /**
     * @param profile   supplies per-state target residencies
     * @param num_cores history is tracked per core
     */
    MenuIdleGovernor(const CpuProfile &profile, int num_cores);

    CState selectState(int core, Tick now) override;
    void recordIdle(int core, Tick duration) override;

    /** Tick re-evaluation: a C1 idle outlasting the CC6 target
     *  residency is promoted into CC6. */
    Tick
    promoteToC6After(int core) const override
    {
        (void)core;
        return profile_.cstates.c6TargetResidency;
    }

    std::string name() const override { return "menu"; }

    /** Current idle-span prediction for @p core. */
    Tick predictedIdle(int core) const;

  private:
    static constexpr std::size_t kWindow = 8;

    struct History
    {
        std::array<Tick, kWindow> recent{};
        std::size_t next = 0;
        std::size_t filled = 0;
    };

    const CpuProfile &profile_;
    std::vector<History> history_;
};

/**
 * TEO-style (timer-events-oriented) governor, the modern Linux
 * alternative to menu: instead of predicting a duration, it counts how
 * many of the recent idle periods were long enough for the deep state
 * ("hits") versus too short ("misses"), and picks CC6 only when hits
 * dominate. More conservative than menu after bursty phases; an
 * extension beyond the paper's three policies, compared in
 * bench/ablation_idle_governors.
 */
class TeoIdleGovernor : public CpuIdleGovernor
{
  public:
    TeoIdleGovernor(const CpuProfile &profile, int num_cores);

    CState selectState(int core, Tick now) override;
    void recordIdle(int core, Tick duration) override;

    Tick
    promoteToC6After(int core) const override
    {
        (void)core;
        return profile_.cstates.c6TargetResidency;
    }

    std::string name() const override { return "teo"; }

    /** Fraction of the recent window that would have fit CC6. */
    double c6HitRate(int core) const;

  private:
    static constexpr std::size_t kWindow = 16;

    struct History
    {
        std::array<bool, kWindow> fitC6{};
        std::size_t next = 0;
        std::size_t filled = 0;
    };

    const CpuProfile &profile_;
    std::vector<History> history_;
};

} // namespace nmapsim

#endif // NMAPSIM_GOVERNORS_CPUIDLE_POLICIES_HH_
