/**
 * @file
 * The static cpufreq governors: performance, powersave, userspace.
 *
 * performance pins P0 (the paper's energy-hungry but SLO-safe baseline),
 * powersave pins the lowest state, and userspace pins a user-chosen
 * state — also the building block policies like NCAP use to force P0.
 */

#ifndef NMAPSIM_GOVERNORS_STATIC_GOVERNORS_HH_
#define NMAPSIM_GOVERNORS_STATIC_GOVERNORS_HH_

#include "governors/freq_governor.hh"

namespace nmapsim {

/** Pins every core at a fixed P-state index. */
class UserspaceGovernor : public FreqGovernor
{
  public:
    UserspaceGovernor(std::vector<Core *> cores, int pstate,
                      std::string name = "userspace")
        : cores_(std::move(cores)), pstate_(pstate),
          name_(std::move(name))
    {
    }

    void
    start() override
    {
        for (Core *core : cores_)
            core->dvfs().requestPState(pstate_);
    }

    /** Re-target all cores (the `userspace` set_speed knob). */
    void
    setPState(int pstate)
    {
        pstate_ = pstate;
        start();
    }

    std::string name() const override { return name_; }

  private:
    std::vector<Core *> cores_;
    int pstate_;
    std::string name_;
};

/** Always the highest V/F state (P0). */
class PerformanceGovernor : public UserspaceGovernor
{
  public:
    explicit PerformanceGovernor(std::vector<Core *> cores)
        : UserspaceGovernor(std::move(cores), 0, "performance")
    {
    }
};

/** Always the lowest V/F state (Pmin). */
class PowersaveGovernor : public UserspaceGovernor
{
  public:
    explicit PowersaveGovernor(const std::vector<Core *> &cores)
        : UserspaceGovernor(cores, pminOf(cores), "powersave")
    {
    }

  private:
    static int
    pminOf(const std::vector<Core *> &cores)
    {
        return cores.empty()
                   ? 0
                   : cores.front()->profile().pstates.maxIndex();
    }
};

} // namespace nmapsim

#endif // NMAPSIM_GOVERNORS_STATIC_GOVERNORS_HH_
