#include "governors/ondemand.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

OndemandGovernor::OndemandGovernor(EventQueue &eq,
                                   std::vector<Core *> cores,
                                   const GovernorConfig &config)
    : eq_(eq), cores_(std::move(cores)), config_(config)
{
    if (cores_.empty())
        fatal("OndemandGovernor requires at least one core");
    lastBusy_.resize(cores_.size(), 0);
    lastUtil_.resize(cores_.size(), 0.0);
    enabled_.resize(cores_.size(), true);
    tickEvent_ = std::make_unique<EventFunctionWrapper>(
        [this] { tick(); }, "governor.tick");
}

OndemandGovernor::~OndemandGovernor()
{
    eq_.deschedule(tickEvent_.get());
}

void
OndemandGovernor::start()
{
    lastSample_ = eq_.now();
    for (std::size_t i = 0; i < cores_.size(); ++i)
        lastBusy_[i] = cores_[i]->busyTime();
    eq_.scheduleIn(tickEvent_.get(), config_.samplePeriod);
}

double
OndemandGovernor::sampleUtil(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    Tick busy = cores_[i]->busyTime();
    Tick period = eq_.now() - lastSample_;
    double util = period > 0 ? static_cast<double>(busy - lastBusy_[i]) /
                                   static_cast<double>(period)
                             : 0.0;
    lastBusy_[i] = busy;
    return std::clamp(util, 0.0, 1.0);
}

int
OndemandGovernor::stateForUtil(int core, double util) const
{
    return cores_[static_cast<std::size_t>(core)]
        ->profile()
        .pstates.indexForUtil(util, config_.upThreshold);
}

int
OndemandGovernor::decide(int core, double util)
{
    return stateForUtil(core, util);
}

void
OndemandGovernor::tick()
{
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        int core = static_cast<int>(i);
        double util = sampleUtil(core);
        lastUtil_[i] = util;
        if (enabled_[i])
            cores_[i]->dvfs().requestPState(decide(core, util));
    }
    lastSample_ = eq_.now();
    eq_.scheduleIn(tickEvent_.get(), config_.samplePeriod);
}

void
OndemandGovernor::setEnabled(int core, bool enabled)
{
    enabled_[static_cast<std::size_t>(core)] = enabled;
}

void
OndemandGovernor::enforceNow(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    cores_[i]->dvfs().requestPState(
        decide(core, lastUtil_[i]));
}

int
ConservativeGovernor::decide(int core, double util)
{
    Core *c = cores_[static_cast<std::size_t>(core)];
    int cur = c->dvfs().targetPState();
    if (util > config_.upThreshold)
        return cur - 1; // one step faster (clamped by the actuator)
    if (util < config_.downThreshold)
        return cur + 1; // one step slower
    return cur;
}

IntelPowersaveGovernor::IntelPowersaveGovernor(
    EventQueue &eq, std::vector<Core *> cores,
    const GovernorConfig &config)
    : OndemandGovernor(eq, std::move(cores), config)
{
    lastC0_.resize(cores_.size(), 0);
    smoothed_.resize(cores_.size(), 0.0);
}

double
IntelPowersaveGovernor::sampleUtil(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    // Consume the busy-time sample too so the base bookkeeping stays
    // coherent, but decide from C0 residency (APERF/MPERF analogue).
    OndemandGovernor::sampleUtil(core);

    Tick c0 = cores_[i]->cstates().residency(CState::kC0, eq_.now());
    Tick period = eq_.now() - lastSampleTime();
    double util = period > 0
                      ? static_cast<double>(c0 - lastC0_[i]) /
                            static_cast<double>(period)
                      : 0.0;
    lastC0_[i] = c0;
    util = std::clamp(util, 0.0, 1.0);
    smoothed_[i] = config_.ewmaAlpha * util +
                   (1.0 - config_.ewmaAlpha) * smoothed_[i];
    return smoothed_[i];
}

} // namespace nmapsim

// --- Policy-registry entries -------------------------------------------

#include "harness/policy_registry.hh"

namespace nmapsim {

void
linkOndemandPolicies()
{
}

namespace {

FreqPolicyInstance
makeOndemand(PolicyContext &ctx)
{
    return {std::make_unique<OndemandGovernor>(ctx.eq, ctx.cores,
                                               ctx.gov),
            nullptr};
}

FreqPolicyInstance
makeConservative(PolicyContext &ctx)
{
    return {std::make_unique<ConservativeGovernor>(ctx.eq, ctx.cores,
                                                   ctx.gov),
            nullptr};
}

FreqPolicyInstance
makeIntelPowersave(PolicyContext &ctx)
{
    return {std::make_unique<IntelPowersaveGovernor>(ctx.eq, ctx.cores,
                                                     ctx.gov),
            nullptr};
}

REGISTER_FREQ_POLICY(
    "ondemand", &makeOndemand,
    "CPU-utilisation sampling governor (cpufreq ondemand)");
REGISTER_FREQ_POLICY(
    "conservative", &makeConservative,
    "one P-state step per sample period (cpufreq conservative)");
REGISTER_FREQ_POLICY(
    "intel_powersave", &makeIntelPowersave,
    "C0-residency EWMA governor (intel_pstate powersave analogue)");

} // namespace
} // namespace nmapsim
