/**
 * @file
 * Cpuidle wrapper that can disable deep sleep on demand.
 *
 * Forcing leaves only the C1 halt state (like a PM-QoS zero-latency
 * request), so wake-ups are instant but the deep power savings of CC6
 * are unavailable. The harness wraps whichever sleep policy a run
 * selects in one of these, and frequency policies that drive sleep
 * states (NCAP during a detected burst) request the handle through
 * their PolicyContext.
 */

#ifndef NMAPSIM_GOVERNORS_SWITCHABLE_IDLE_HH_
#define NMAPSIM_GOVERNORS_SWITCHABLE_IDLE_HH_

#include "os/cpuidle.hh"

namespace nmapsim {

/** Pass-through cpuidle governor with a force-awake (C1-only) mode. */
class SwitchableIdleGovernor : public CpuIdleGovernor
{
  public:
    explicit SwitchableIdleGovernor(CpuIdleGovernor &inner)
        : inner_(inner)
    {
    }

    void setForceAwake(bool force) { forceAwake_ = force; }
    bool forceAwake() const { return forceAwake_; }

    CState
    selectState(int core, Tick now) override
    {
        return forceAwake_ ? CState::kC1 : inner_.selectState(core, now);
    }

    void
    recordIdle(int core, Tick duration) override
    {
        inner_.recordIdle(core, duration);
    }

    Tick
    promoteToC6After(int core) const override
    {
        return forceAwake_ ? 0 : inner_.promoteToC6After(core);
    }

    std::string
    name() const override
    {
        return "switchable(" + inner_.name() + ")";
    }

  private:
    CpuIdleGovernor &inner_;
    bool forceAwake_ = false;
};

} // namespace nmapsim

#endif // NMAPSIM_GOVERNORS_SWITCHABLE_IDLE_HH_
