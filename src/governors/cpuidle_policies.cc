#include "governors/cpuidle_policies.hh"

#include "sim/logging.hh"

namespace nmapsim {

MenuIdleGovernor::MenuIdleGovernor(const CpuProfile &profile,
                                   int num_cores)
    : profile_(profile),
      history_(static_cast<std::size_t>(num_cores))
{
    if (num_cores < 1)
        fatal("MenuIdleGovernor requires at least one core");
}

void
MenuIdleGovernor::recordIdle(int core, Tick duration)
{
    History &h = history_[static_cast<std::size_t>(core)];
    h.recent[h.next] = duration;
    h.next = (h.next + 1) % kWindow;
    h.filled = std::min(h.filled + 1, kWindow);
}

Tick
MenuIdleGovernor::predictedIdle(int core) const
{
    const History &h = history_[static_cast<std::size_t>(core)];
    if (h.filled == 0) {
        // No history yet: optimistically assume a long idle, like menu
        // does when the next timer is far away.
        return profile_.cstates.c6TargetResidency * 2;
    }
    // Median of the window: robust to the occasional outlier, which is
    // the property menu's typical-interval detection is after.
    std::array<Tick, kWindow> sorted{};
    std::copy_n(h.recent.begin(), h.filled, sorted.begin());
    // Simple insertion sort over the filled prefix (kWindow is tiny and
    // this avoids libstdc++ false-positive bounds warnings).
    for (std::size_t i = 1; i < h.filled; ++i) {
        Tick v = sorted[i];
        std::size_t j = i;
        while (j > 0 && sorted[j - 1] > v) {
            sorted[j] = sorted[j - 1];
            --j;
        }
        sorted[j] = v;
    }
    return sorted[h.filled / 2];
}

CState
MenuIdleGovernor::selectState(int core, Tick now)
{
    (void)now;
    Tick predicted = predictedIdle(core);
    if (predicted >= profile_.cstates.c6TargetResidency)
        return CState::kC6;
    if (predicted >= profile_.cstates.c1TargetResidency)
        return CState::kC1;
    return CState::kC1; // menu never busy-spins; C1 is nearly free
}

TeoIdleGovernor::TeoIdleGovernor(const CpuProfile &profile,
                                 int num_cores)
    : profile_(profile),
      history_(static_cast<std::size_t>(num_cores))
{
    if (num_cores < 1)
        fatal("TeoIdleGovernor requires at least one core");
}

void
TeoIdleGovernor::recordIdle(int core, Tick duration)
{
    History &h = history_[static_cast<std::size_t>(core)];
    h.fitC6[h.next] =
        duration >= profile_.cstates.c6TargetResidency;
    h.next = (h.next + 1) % kWindow;
    h.filled = std::min(h.filled + 1, kWindow);
}

double
TeoIdleGovernor::c6HitRate(int core) const
{
    const History &h = history_[static_cast<std::size_t>(core)];
    if (h.filled == 0)
        return 1.0; // optimistic, like an empty menu history
    std::size_t hits = 0;
    for (std::size_t i = 0; i < h.filled; ++i)
        hits += h.fitC6[i] ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(h.filled);
}

CState
TeoIdleGovernor::selectState(int core, Tick now)
{
    (void)now;
    return c6HitRate(core) >= 0.5 ? CState::kC6 : CState::kC1;
}

} // namespace nmapsim

// --- Policy-registry entries -------------------------------------------

#include "harness/policy_registry.hh"

namespace nmapsim {

void
linkCpuidlePolicies()
{
}

namespace {

REGISTER_IDLE_POLICY(
    "menu",
    [](const IdleContext &ctx) -> std::unique_ptr<CpuIdleGovernor> {
        return std::make_unique<MenuIdleGovernor>(ctx.profile,
                                                  ctx.numCores);
    },
    "Linux menu governor: history-based idle prediction");
REGISTER_IDLE_POLICY(
    "disable",
    [](const IdleContext &) -> std::unique_ptr<CpuIdleGovernor> {
        return std::make_unique<DisableIdleGovernor>();
    },
    "never sleep: idle cores spin in C0");
REGISTER_IDLE_POLICY(
    "c6only",
    [](const IdleContext &) -> std::unique_ptr<CpuIdleGovernor> {
        return std::make_unique<C6OnlyIdleGovernor>();
    },
    "always take the deepest sleep state (CC6)");
REGISTER_IDLE_POLICY(
    "teo",
    [](const IdleContext &ctx) -> std::unique_ptr<CpuIdleGovernor> {
        return std::make_unique<TeoIdleGovernor>(ctx.profile,
                                                 ctx.numCores);
    },
    "timer-events-oriented governor: C6 only when hits dominate");

} // namespace
} // namespace nmapsim
