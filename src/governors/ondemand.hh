/**
 * @file
 * The ondemand and conservative cpufreq governors.
 *
 * Both sample per-core busy time every samplePeriod (10 ms in the
 * paper's setup). ondemand jumps to P0 when utilisation exceeds
 * up_threshold and otherwise picks the state proportional to
 * util/up_threshold; conservative steps one state at a time. The 10 ms
 * decision period against 100s-of-us packet bursts is precisely the
 * mismatch Section 3.2 blames for their SLO violations.
 *
 * OndemandGovernor additionally exposes the per-core enable/disable and
 * "enforce utilisation-based state now" operations that NMAP's Decision
 * Engine (Algorithm 2) performs when switching between Network
 * Intensive Mode and CPU Utilisation based Mode.
 */

#ifndef NMAPSIM_GOVERNORS_ONDEMAND_HH_
#define NMAPSIM_GOVERNORS_ONDEMAND_HH_

#include <memory>

#include "governors/freq_governor.hh"
#include "sim/event_queue.hh"

namespace nmapsim {

/** CPU-utilisation sampling governor (cpufreq ondemand). */
class OndemandGovernor : public FreqGovernor
{
  public:
    OndemandGovernor(EventQueue &eq, std::vector<Core *> cores,
                     const GovernorConfig &config = {});
    ~OndemandGovernor() override;

    void start() override;
    std::string name() const override { return "ondemand"; }

    /** Most recent utilisation sample of @p core, in [0, 1]. */
    double lastUtil(int core) const { return lastUtil_[core]; }

    /**
     * Enable/disable decisions for one core (NMAP's Algorithm 2 lines
     * 4 and 11). While disabled, sampling continues (so utilisation
     * history stays fresh) but no P-state requests are issued.
     */
    void setEnabled(int core, bool enabled);
    bool enabled(int core) const { return enabled_[core]; }

    /**
     * Immediately apply the utilisation-based P-state on @p core
     * (Algorithm 2 line 10: "enforce P state based on CPU util").
     */
    void enforceNow(int core);

    /** P-state index the policy picks for a utilisation value. */
    int stateForUtil(int core, double util) const;

  protected:
    /** Hook for subclasses to compute utilisation differently. */
    virtual double sampleUtil(int core);

    /** Hook for subclasses to map utilisation to a state. */
    virtual int decide(int core, double util);

    /** Start of the current sampling window. */
    Tick lastSampleTime() const { return lastSample_; }

    EventQueue &eq_;
    std::vector<Core *> cores_;
    GovernorConfig config_;

  private:
    void tick();

    std::vector<Tick> lastBusy_;
    std::vector<double> lastUtil_;
    std::vector<bool> enabled_;
    Tick lastSample_ = 0;
    std::unique_ptr<EventFunctionWrapper> tickEvent_;
};

/** Gradual variant: moves one P-state per period (cpufreq
 *  conservative). */
class ConservativeGovernor : public OndemandGovernor
{
  public:
    ConservativeGovernor(EventQueue &eq, std::vector<Core *> cores,
                         const GovernorConfig &config = {})
        : OndemandGovernor(eq, std::move(cores), config)
    {
    }

    std::string name() const override { return "conservative"; }

  protected:
    int decide(int core, double util) override;
};

/**
 * intel_pstate's powersave governor: utilisation derives from C0
 * residency (APERF/MPERF style) and is smoothed, which makes it ramp
 * slower than ondemand — and peg P0 when C-states are disabled, because
 * the core then never leaves C0 (the paper's footnote in Section 6.2).
 */
class IntelPowersaveGovernor : public OndemandGovernor
{
  public:
    IntelPowersaveGovernor(EventQueue &eq, std::vector<Core *> cores,
                           const GovernorConfig &config = {});

    std::string name() const override { return "intel_powersave"; }

  protected:
    double sampleUtil(int core) override;

  private:
    std::vector<Tick> lastC0_;
    std::vector<double> smoothed_;
};

} // namespace nmapsim

#endif // NMAPSIM_GOVERNORS_ONDEMAND_HH_
