/**
 * @file
 * Modeled top-of-rack switch / L4 load balancer.
 *
 * The switch sits between the client fleet and N server hosts. Both
 * directions pass through a shared forwarding fabric — a Wire whose
 * bandwidth models the switching capacity and whose propagation models
 * the forwarding pipeline latency — and then through a per-destination
 * egress port Wire that serialises at link rate and queues (output
 * queueing). Egress ports may be given finite queues; overflow drops
 * are accounted on the port wire, mirroring real shallow-buffer ToR
 * switches.
 *
 * Requests are steered by a pluggable DispatchPolicy resolved by name
 * through the DispatchRegistry; the switch feeds the policy its live
 * per-host in-flight request counts (incremented at dispatch,
 * decremented when the host's response re-enters the switch). The
 * response path needs no policy: responses are forwarded to the client
 * port, and a per-host tap lets the harness attribute each served
 * response to the host that produced it (per-host latency feeds).
 *
 * Hosts may be composed into service tiers (SwitchTier): each tier
 * owns a contiguous host-id range and its own DispatchPolicy instance,
 * requests carry the destination tier in Packet::tier, and a mid-chain
 * host's completed request re-enters the ingress fabric east-west,
 * addressed to the next tier, instead of returning to the client. The
 * failure detector stays per-host but reroutes strictly within a tier.
 *
 * Deviations from real ToR switches are documented in DESIGN.md
 * ("Cluster model").
 */

#ifndef NMAPSIM_CLUSTER_SWITCH_HH_
#define NMAPSIM_CLUSTER_SWITCH_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatch.hh"
#include "net/packet.hh"
#include "net/wire.hh"
#include "resilience/breaker.hh"
#include "resilience/plan.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Static switch/fabric configuration. */
struct SwitchConfig
{
    /** Forwarding-fabric capacity (shared by all flows per direction). */
    double fabricBandwidthBps = 40e9;
    /** Forwarding pipeline latency per traversal. */
    Tick fabricLatency = microseconds(2);
    /** Egress-port link rate toward each host and the clients. */
    double portBandwidthBps = 10e9;
    /** Egress-port propagation (cable + PHY). */
    Tick portPropagation = microseconds(5);
    /** Egress-port queue bound in packets; 0 = unbounded. */
    std::size_t portQueueLimit = 0;

    /**
     * @name Failure detector (0 = disabled)
     * Every healthInterval the switch checks each host: a host with
     * work pending that has been *silent* (no response at all) for
     * longer than healthTimeout is ejected — its pending work is
     * written off and new requests are steered around it — and
     * optimistically readmitted ejectDuration later. Silence, not
     * per-request age, is the signal, so a lossy-but-alive host that
     * keeps answering most requests is never ejected.
     */
    /**@{*/
    Tick healthInterval = 0; //!< detector tick period; 0 disables
    Tick healthTimeout = 0;  //!< silence threshold with work pending
    Tick ejectDuration = 0;  //!< how long an ejection lasts
    /**@}*/

    bool operator==(const SwitchConfig &) const = default;
};

/**
 * One contiguous run of host ids forming a service tier behind the
 * switch. An empty tier list means the classic single-tier cluster:
 * one dispatch policy over every host, no east-west traffic.
 */
struct SwitchTier
{
    std::string name;     //!< tier label for accounting
    int firstHost = 0;    //!< global id of the tier's first host
    int hosts = 0;        //!< host count (contiguous ids)
    std::string dispatch; //!< DispatchRegistry policy for this tier
};

/** The modeled switch: fabric, ports, dispatch, accounting. */
class ClusterSwitch
{
  public:
    /** Invoked for every response, with the host that served it, when
     *  the response leaves the fabric toward the client port. */
    using ResponseTap = std::function<void(int host, const Packet &)>;

    /** Invoked for every hop completion re-entering the switch from a
     *  host: the host, its tier, the dispatch-to-return hop latency,
     *  and whether the hop forwarded east-west (vs replied). */
    using HopTap =
        std::function<void(int host, int tier, Tick hopLatency,
                           bool forwarded)>;

    /**
     * @param eq       simulation event queue
     * @param config   fabric/port model parameters
     * @param dispatch DispatchRegistry name of the steering policy
     * @param weights  per-host load weights (empty = uniform)
     * @param params   policy tunables ("dispatch.<knob>")
     * @param tiers    service tiers over the hosts; empty = one tier
     *                 of all hosts running @p dispatch (the classic
     *                 single-tier path, preserved bit for bit)
     */
    ClusterSwitch(EventQueue &eq, const SwitchConfig &config,
                  const std::string &dispatch,
                  std::vector<double> weights,
                  const PolicyParams &params,
                  std::vector<SwitchTier> tiers = {});

    ~ClusterSwitch();

    ClusterSwitch(const ClusterSwitch &) = delete;
    ClusterSwitch &operator=(const ClusterSwitch &) = delete;

    int numHosts() const
    {
        return static_cast<int>(downlinks_.size());
    }

    /** Egress port toward host @p id; sink it into the host's NIC. */
    Wire &downlink(int id) { return *downlinks_[id]; }

    /** Egress port toward the clients; sink it into the client pool. */
    Wire &clientPort() { return clientPort_; }

    /** Ingress from the client side (sink of the client uplink). */
    void fromClient(const Packet &pkt);

    /** Ingress from host @p id (sink of the host's uplink). */
    void fromHost(int id, const Packet &pkt);

    /** Attach the per-host response tap (may be empty). */
    void setResponseTap(ResponseTap tap) { tap_ = std::move(tap); }

    /** Attach the per-hop completion tap (may be empty). */
    void setHopTap(HopTap tap) { hopTap_ = std::move(tap); }

    /**
     * Arm overload control from a validated plan: one circuit breaker
     * per (tier, host) driven by the outcome stream (a shed response
     * counts as a failure) plus the silence detector's ejections, and
     * deadline shedding for requests already past their budget when
     * they reach the fabric. Shed requests are answered straight to
     * the client port with a `rejected` control response. Nothing is
     * allocated when the plan wants neither. Call before traffic.
     */
    void enableResilience(const ResiliencePlan &plan);

    /** Tier 0's steering policy (the only one in single-tier mode). */
    const DispatchPolicy &dispatch() const { return *dispatchByTier_[0]; }

    /** @name Topology */
    /**@{*/
    int numTiers() const { return static_cast<int>(tiers_.size()); }
    bool multiTier() const { return tiers_.size() > 1; }
    const SwitchTier &tier(int t) const
    {
        return tiers_[static_cast<std::size_t>(t)];
    }
    int tierOfHost(int host) const
    {
        return hostTier_[static_cast<std::size_t>(host)];
    }
    /**@}*/

    /** @name Accounting */
    /**@{*/
    /** Requests steered to @p host (post-fabric, pre-port-queue). */
    std::uint64_t requestsForwarded(int host) const
    {
        return requestsForwarded_[host];
    }
    std::uint64_t
    totalRequestsForwarded() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : requestsForwarded_)
            sum += v;
        return sum;
    }
    /** Responses received back from @p host. */
    std::uint64_t responsesReturned(int host) const
    {
        return responsesReturned_[host];
    }
    std::uint64_t
    totalResponsesReturned() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : responsesReturned_)
            sum += v;
        return sum;
    }
    /** East-west forwards received back from mid-chain @p host. */
    std::uint64_t forwardsReturned(int host) const
    {
        return forwardsReturned_[static_cast<std::size_t>(host)];
    }
    std::uint64_t
    totalForwardsReturned() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : forwardsReturned_)
            sum += v;
        return sum;
    }

    /**
     * @name Byte-class accounting
     * Egress bytes toward the clients are split by class so
     * availability/goodput math never counts probe or east-west
     * traffic as served work: goodputBytes() is response payload
     * only, controlBytes() is probe/control-marked traffic wherever
     * the switch sees it, eastWestBytes() is host-to-host forwards
     * re-entering the fabric.
     */
    /**@{*/
    std::uint64_t goodputBytes() const { return goodputBytes_; }
    std::uint64_t controlBytes() const { return controlBytes_; }
    std::uint64_t eastWestBytes() const { return eastWestBytes_; }
    std::uint64_t eastWestForwards() const { return eastWestForwards_; }
    /**@}*/
    /** In-flight requests dispatched to @p host, not yet answered
     *  (requests written off at ejection no longer count). */
    std::uint64_t outstanding(int host) const
    {
        return pendingSince_[static_cast<std::size_t>(host)].size();
    }
    /** Egress-port queue overflow drops, all ports. */
    std::uint64_t portDrops() const;

    /** @name Failure-detector state and accounting */
    /**@{*/
    /** True while the detector has @p host ejected. */
    bool isEjected(int host) const
    {
        return ejected_[static_cast<std::size_t>(host)];
    }
    /** Times the detector ejected @p host. */
    std::uint64_t ejections(int host) const
    {
        return ejections_[static_cast<std::size_t>(host)];
    }
    std::uint64_t
    totalEjections() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : ejections_)
            sum += v;
        return sum;
    }
    /** Requests steered away from their policy-picked (ejected) host. */
    std::uint64_t requestsRerouted() const { return rerouted_; }
    /** Responses from hosts whose pending work was written off. */
    std::uint64_t lateResponses() const { return lateResponses_; }
    /**@}*/

    /** @name Resilience accounting (zero when resilience is off) */
    /**@{*/
    /** Breaker state transitions for @p host's breaker. */
    std::uint64_t
    breakerTransitions(int host) const
    {
        return breakers_.empty()
                   ? 0
                   : breakers_[static_cast<std::size_t>(host)]
                         .transitions();
    }
    std::uint64_t
    totalBreakerTransitions() const
    {
        std::uint64_t sum = 0;
        for (const CircuitBreaker &breaker : breakers_)
            sum += breaker.transitions();
        return sum;
    }
    /** Requests shed because a whole tier's breakers were open. */
    std::uint64_t breakerShortCircuits() const
    {
        return breakerShortCircuits_;
    }
    /** Requests shed at the fabric because their deadline had passed. */
    std::uint64_t deadlineSheds() const { return shedDeadline_; }
    /**@}*/
    /**@}*/

  private:
    void forwardRequest(const Packet &pkt);
    void forwardResponse(const Packet &pkt);
    void rejectToClient(const Packet &pkt);
    void healthCheck();
    int nextHealthyAfter(int host) const;

    EventQueue &eq_;
    SwitchConfig config_;

    Wire ingressFabric_; //!< client->hosts direction of the fabric
    Wire egressFabric_;  //!< hosts->client direction of the fabric
    Wire clientPort_;    //!< egress port toward the clients
    std::vector<std::unique_ptr<Wire>> downlinks_; //!< ports to hosts

    /** Tiers in request order; exactly one in single-tier mode. */
    std::vector<SwitchTier> tiers_;
    /** Tier index per global host id. */
    std::vector<int> hostTier_;
    /** One steering policy per tier, picking tier-local host ids. */
    std::vector<std::unique_ptr<DispatchPolicy>> dispatchByTier_;
    ResponseTap tap_;
    HopTap hopTap_;

    /** Host attribution for responses inside the egress fabric; the
     *  fabric wire is FIFO, so front() always names the host of the
     *  next response to leave it. */
    Ring<int> egressHosts_;

    std::vector<std::uint64_t> requestsForwarded_;
    std::vector<std::uint64_t> responsesReturned_;
    std::vector<std::uint64_t> forwardsReturned_;
    std::uint64_t goodputBytes_ = 0;
    std::uint64_t controlBytes_ = 0;
    std::uint64_t eastWestBytes_ = 0;
    std::uint64_t eastWestForwards_ = 0;

    /** Dispatch times of unanswered requests per host (count-FIFO:
     *  any response pops the oldest entry; the front is the oldest
     *  unmatched dispatch). */
    std::vector<Ring<Tick>> pendingSince_;
    /** Last time each host produced any response. */
    std::vector<Tick> lastResponseAt_;
    std::vector<bool> ejected_;
    std::vector<Tick> readmitAt_;
    std::vector<std::uint64_t> ejections_;
    std::uint64_t rerouted_ = 0;
    std::uint64_t lateResponses_ = 0;

    /** Per-host circuit breakers; empty when breakers are off. */
    std::vector<CircuitBreaker> breakers_;
    bool deadlineShedsEnabled_ = false;
    std::uint64_t breakerShortCircuits_ = 0;
    std::uint64_t shedDeadline_ = 0;

    EventFunctionWrapper healthEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_CLUSTER_SWITCH_HH_
