/**
 * @file
 * Modeled top-of-rack switch / L4 load balancer.
 *
 * The switch sits between the client fleet and N server hosts. Both
 * directions pass through a shared forwarding fabric — a Wire whose
 * bandwidth models the switching capacity and whose propagation models
 * the forwarding pipeline latency — and then through a per-destination
 * egress port Wire that serialises at link rate and queues (output
 * queueing). Egress ports may be given finite queues; overflow drops
 * are accounted on the port wire, mirroring real shallow-buffer ToR
 * switches.
 *
 * Requests are steered by a pluggable DispatchPolicy resolved by name
 * through the DispatchRegistry; the switch feeds the policy its live
 * per-host in-flight request counts (incremented at dispatch,
 * decremented when the host's response re-enters the switch). The
 * response path needs no policy: responses are forwarded to the client
 * port, and a per-host tap lets the harness attribute each served
 * response to the host that produced it (per-host latency feeds).
 *
 * Deviations from real ToR switches are documented in DESIGN.md
 * ("Cluster model").
 */

#ifndef NMAPSIM_CLUSTER_SWITCH_HH_
#define NMAPSIM_CLUSTER_SWITCH_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatch.hh"
#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Static switch/fabric configuration. */
struct SwitchConfig
{
    /** Forwarding-fabric capacity (shared by all flows per direction). */
    double fabricBandwidthBps = 40e9;
    /** Forwarding pipeline latency per traversal. */
    Tick fabricLatency = microseconds(2);
    /** Egress-port link rate toward each host and the clients. */
    double portBandwidthBps = 10e9;
    /** Egress-port propagation (cable + PHY). */
    Tick portPropagation = microseconds(5);
    /** Egress-port queue bound in packets; 0 = unbounded. */
    std::size_t portQueueLimit = 0;

    /**
     * @name Failure detector (0 = disabled)
     * Every healthInterval the switch checks each host: a host with
     * work pending that has been *silent* (no response at all) for
     * longer than healthTimeout is ejected — its pending work is
     * written off and new requests are steered around it — and
     * optimistically readmitted ejectDuration later. Silence, not
     * per-request age, is the signal, so a lossy-but-alive host that
     * keeps answering most requests is never ejected.
     */
    /**@{*/
    Tick healthInterval = 0; //!< detector tick period; 0 disables
    Tick healthTimeout = 0;  //!< silence threshold with work pending
    Tick ejectDuration = 0;  //!< how long an ejection lasts
    /**@}*/

    bool operator==(const SwitchConfig &) const = default;
};

/** The modeled switch: fabric, ports, dispatch, accounting. */
class ClusterSwitch
{
  public:
    /** Invoked for every response, with the host that served it, when
     *  the response leaves the fabric toward the client port. */
    using ResponseTap = std::function<void(int host, const Packet &)>;

    /**
     * @param eq       simulation event queue
     * @param config   fabric/port model parameters
     * @param dispatch DispatchRegistry name of the steering policy
     * @param weights  per-host load weights (empty = uniform)
     * @param params   policy tunables ("dispatch.<knob>")
     */
    ClusterSwitch(EventQueue &eq, const SwitchConfig &config,
                  const std::string &dispatch,
                  std::vector<double> weights,
                  const PolicyParams &params);

    ~ClusterSwitch();

    ClusterSwitch(const ClusterSwitch &) = delete;
    ClusterSwitch &operator=(const ClusterSwitch &) = delete;

    int numHosts() const
    {
        return static_cast<int>(downlinks_.size());
    }

    /** Egress port toward host @p id; sink it into the host's NIC. */
    Wire &downlink(int id) { return *downlinks_[id]; }

    /** Egress port toward the clients; sink it into the client pool. */
    Wire &clientPort() { return clientPort_; }

    /** Ingress from the client side (sink of the client uplink). */
    void fromClient(const Packet &pkt);

    /** Ingress from host @p id (sink of the host's uplink). */
    void fromHost(int id, const Packet &pkt);

    /** Attach the per-host response tap (may be empty). */
    void setResponseTap(ResponseTap tap) { tap_ = std::move(tap); }

    const DispatchPolicy &dispatch() const { return *dispatch_; }

    /** @name Accounting */
    /**@{*/
    /** Requests steered to @p host (post-fabric, pre-port-queue). */
    std::uint64_t requestsForwarded(int host) const
    {
        return requestsForwarded_[host];
    }
    std::uint64_t
    totalRequestsForwarded() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : requestsForwarded_)
            sum += v;
        return sum;
    }
    /** Responses received back from @p host. */
    std::uint64_t responsesReturned(int host) const
    {
        return responsesReturned_[host];
    }
    std::uint64_t
    totalResponsesReturned() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : responsesReturned_)
            sum += v;
        return sum;
    }
    /** In-flight requests dispatched to @p host, not yet answered
     *  (requests written off at ejection no longer count). */
    std::uint64_t outstanding(int host) const
    {
        return pendingSince_[static_cast<std::size_t>(host)].size();
    }
    /** Egress-port queue overflow drops, all ports. */
    std::uint64_t portDrops() const;

    /** @name Failure-detector state and accounting */
    /**@{*/
    /** True while the detector has @p host ejected. */
    bool isEjected(int host) const
    {
        return ejected_[static_cast<std::size_t>(host)];
    }
    /** Times the detector ejected @p host. */
    std::uint64_t ejections(int host) const
    {
        return ejections_[static_cast<std::size_t>(host)];
    }
    std::uint64_t
    totalEjections() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : ejections_)
            sum += v;
        return sum;
    }
    /** Requests steered away from their policy-picked (ejected) host. */
    std::uint64_t requestsRerouted() const { return rerouted_; }
    /** Responses from hosts whose pending work was written off. */
    std::uint64_t lateResponses() const { return lateResponses_; }
    /**@}*/
    /**@}*/

  private:
    void forwardRequest(const Packet &pkt);
    void forwardResponse(const Packet &pkt);
    void healthCheck();
    int nextHealthyAfter(int host) const;

    EventQueue &eq_;
    SwitchConfig config_;

    Wire ingressFabric_; //!< client->hosts direction of the fabric
    Wire egressFabric_;  //!< hosts->client direction of the fabric
    Wire clientPort_;    //!< egress port toward the clients
    std::vector<std::unique_ptr<Wire>> downlinks_; //!< ports to hosts

    std::unique_ptr<DispatchPolicy> dispatch_;
    ResponseTap tap_;

    /** Host attribution for responses inside the egress fabric; the
     *  fabric wire is FIFO, so front() always names the host of the
     *  next response to leave it. */
    Ring<int> egressHosts_;

    std::vector<std::uint64_t> requestsForwarded_;
    std::vector<std::uint64_t> responsesReturned_;

    /** Dispatch times of unanswered requests per host (count-FIFO:
     *  any response pops the oldest entry; the front is the oldest
     *  unmatched dispatch). */
    std::vector<Ring<Tick>> pendingSince_;
    /** Last time each host produced any response. */
    std::vector<Tick> lastResponseAt_;
    std::vector<bool> ejected_;
    std::vector<Tick> readmitAt_;
    std::vector<std::uint64_t> ejections_;
    std::uint64_t rerouted_ = 0;
    std::uint64_t lateResponses_ = 0;

    EventFunctionWrapper healthEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_CLUSTER_SWITCH_HH_
