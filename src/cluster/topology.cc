#include "cluster/topology.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace nmapsim {
namespace {

// Full `topology.tier<i>.<field>` spellings: the unknown-key error
// lists them, and nmaplint's config-doc-sync rule harvests these
// template literals to cross-check the README key tables.
constexpr const char *kTierKeyForms[] = {
    "topology.tier<i>.name",        "topology.tier<i>.hosts",
    "topology.tier<i>.dispatch",    "topology.tier<i>.freq_policy",
    "topology.tier<i>.idle_policy", "topology.tier<i>.service_scale",
    "topology.tier<i>.slo",         "topology.tier<i>.clients",
};
constexpr std::size_t kTierFieldOffset =
    sizeof("topology.tier<i>.") - 1;

bool
isKnownTierField(const std::string &field)
{
    for (const char *known : kTierKeyForms)
        if (field == known + kTierFieldOffset)
            return true;
    return false;
}

[[noreturn]] void
badTierKey(const std::string &key)
{
    std::string known;
    for (const char *form : kTierKeyForms) {
        if (!known.empty())
            known += ", ";
        known += form;
    }
    fatal("unknown topology key '" + key +
          "' (expected topology.tiers or one of: " + known + ")");
}

/**
 * Split "topology.tier<i>.<field>" into (i, field); fatal on any other
 * shape. `topology.tiers` is handled by the caller before this runs.
 */
std::pair<int, std::string>
splitTierKey(const std::string &key)
{
    const std::string prefix = "topology.tier";
    if (key.rfind(prefix, 0) != 0)
        badTierKey(key);
    const std::string rest = key.substr(prefix.size());
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos || dot == 0)
        badTierKey(key);
    const std::string index = rest.substr(0, dot);
    for (char c : index) {
        if (c < '0' || c > '9')
            badTierKey(key);
    }
    const std::string field = rest.substr(dot + 1);
    if (!isKnownTierField(field))
        badTierKey(key);
    return {std::atoi(index.c_str()), field};
}

void
validate(const TopologyPlan &plan)
{
    for (int t = 0; t < plan.numTiers(); ++t) {
        const TierSpec &tier = plan.tiers[t];
        const std::string label =
            "topology.tier" + std::to_string(t);
        if (tier.name.empty())
            fatal(label + ".name must not be empty");
        if (tier.hosts < 1)
            fatal(label + ".hosts must be >= 1");
        if (tier.serviceScale <= 0.0)
            fatal(label + ".service_scale must be positive");
        if (tier.slo < 0)
            fatal(label + ".slo must be >= 0");
        if (tier.clients < 0)
            fatal(label + ".clients must be >= 0");
        for (int u = 0; u < t; ++u) {
            if (plan.tiers[u].name == tier.name)
                fatal("duplicate topology tier name '" + tier.name +
                      "'");
        }
    }
}

} // namespace

int
TopologyPlan::totalHosts() const
{
    int total = 0;
    for (const TierSpec &tier : tiers)
        total += tier.hosts;
    return total;
}

int
TopologyPlan::firstHostOf(int tier) const
{
    int first = 0;
    for (int t = 0; t < tier; ++t)
        first += tiers[t].hosts;
    return first;
}

int
TopologyPlan::tierOf(int host) const
{
    int first = 0;
    for (int t = 0; t < numTiers(); ++t) {
        first += tiers[t].hosts;
        if (host < first)
            return t;
    }
    fatal("host id " + std::to_string(host) + " beyond topology");
    return -1;
}

TopologyPlan
TopologyPlan::fromParams(const PolicyParams &params)
{
    TopologyPlan plan;
    const int numTiers = params.getInt("topology.tiers", 0);
    bool sawTopologyKey = params.has("topology.tiers");
    for (const auto &[key, value] : params) {
        if (key.rfind("topology.", 0) != 0 || key == "topology.tiers")
            continue;
        sawTopologyKey = true;
        splitTierKey(key); // key-shape validation; fatal on typos
    }
    if (!sawTopologyKey)
        return plan;

    if (numTiers < 1)
        fatal("topology.tiers must be >= 1 when topology keys are set");
    if (numTiers > 16)
        fatal("topology.tiers must be <= 16");

    plan.tiers.resize(static_cast<std::size_t>(numTiers));
    for (int t = 0; t < numTiers; ++t)
        plan.tiers[t].name = "tier" + std::to_string(t);

    for (const auto &[key, value] : params) {
        if (key.rfind("topology.", 0) != 0 || key == "topology.tiers")
            continue;
        const auto [index, field] = splitTierKey(key);
        if (index >= numTiers) {
            fatal("'" + key + "' names tier " + std::to_string(index) +
                  " but topology.tiers=" + std::to_string(numTiers));
        }
        TierSpec &tier = plan.tiers[static_cast<std::size_t>(index)];
        if (field == "name")
            tier.name = value;
        else if (field == "hosts")
            tier.hosts = params.getInt(key, tier.hosts);
        else if (field == "dispatch")
            tier.dispatch = value;
        else if (field == "freq_policy")
            tier.freqPolicy = value;
        else if (field == "idle_policy")
            tier.idlePolicy = value;
        else if (field == "service_scale")
            tier.serviceScale = params.getDouble(key, tier.serviceScale);
        else if (field == "slo")
            tier.slo = params.getTick(key, tier.slo);
        else if (field == "clients")
            tier.clients = params.getInt(key, tier.clients);
    }
    validate(plan);
    return plan;
}

} // namespace nmapsim
