#include "cluster/host.hh"

#include <utility>

#include "cluster/switch.hh"
#include "cpu/core.hh"
#include "cpu/cpu_profile.hh"
#include "cpu/package_power.hh"
#include "dataplane/bypass.hh"
#include "dataplane/plan.hh"
#include "governors/switchable_idle.hh"
#include "os/server_os.hh"
#include "sim/logging.hh"
#include "stats/energy_meter.hh"

namespace nmapsim {

/** Counts ksoftirqd wake-ups across this host's cores. */
class ClusterHost::KsoftirqdCounter : public NapiObserver
{
  public:
    void
    onKsoftirqdWake(int core) override
    {
        (void)core;
        ++wakes_;
    }

    std::uint64_t wakes() const { return wakes_; }

  private:
    std::uint64_t wakes_ = 0;
};

ClusterHost::ClusterHost(
    int id, EventQueue &eq, const ExperimentConfig &config,
    std::function<std::pair<double, double>()> profile_fn, Rng rng,
    double link_bps, Tick link_prop)
    : id_(id), eq_(eq), config_(config), rng_(std::move(rng)),
      uplink_(eq, link_bps, link_prop)
{
    if (config_.numCores < 1)
        fatal("ClusterHost requires at least one core");
    uplink_.setLabel("host" + std::to_string(id) + ".uplink");

    const CpuProfile &profile = CpuProfile::byName(config_.cpuProfile);
    for (int i = 0; i < config_.numCores; ++i) {
        cores_.push_back(std::make_unique<Core>(
            i, eq, profile, rng_, config_.app.cacheTouch));
        corePtrs_.push_back(cores_.back().get());
    }

    NicConfig nic_config = config_.nic;
    nic_config.numQueues = config_.numCores;
    nic_ = std::make_unique<Nic>(eq, nic_config);
    nic_->setTxWire(&uplink_);

    os_ = std::make_unique<ServerOs>(corePtrs_, *nic_, config_.os);
    app_ = std::make_unique<ServerApp>(*os_, *nic_, config_.app,
                                       rng_.fork());
    // The feedback client never sends; it only records the latencies
    // of responses the switch attributes to this host.
    feedback_ = std::make_unique<Client>(eq, uplink_, config_.app,
                                         /*num_connections=*/1);

    IdleContext idle_ctx{profile, config_.numCores, config_.params};
    idle_ = PolicyRegistry::instance().makeIdle(config_.idlePolicy,
                                                idle_ctx);
    switchable_ = std::make_unique<SwitchableIdleGovernor>(*idle_);

    PolicyContext policy_ctx{eq,
                             corePtrs_,
                             *nic_,
                             *os_,
                             config_.app,
                             rng_,
                             config_.gov,
                             config_.params,
                             feedback_.get(),
                             std::move(profile_fn),
                             switchable_.get(),
                             /*switchableRequested_=*/false};
    policy_ = PolicyRegistry::instance().makeFreq(config_.freqPolicy,
                                                  policy_ctx);

    os_->setIdleGovernor(
        policy_ctx.switchableRequested()
            ? static_cast<CpuIdleGovernor *>(switchable_.get())
            : idle_.get());

    ksoft_ = std::make_unique<KsoftirqdCounter>();
    os_->addObserver(ksoft_.get());

    uncore_ = std::make_unique<PackagePower>(eq, corePtrs_);
    package_ = std::make_unique<PackageEnergyMeter>(0.0);
    package_->addMeter(&uncore_->meter());
    for (Core *core : corePtrs_)
        package_->addMeter(&core->meter());

    // Per-host dataplane modality: a bypass host repurposes its first
    // poll_cores cores as PMD pollers; NAPI hosts construct nothing
    // (mixed NAPI/bypass clusters are just heterogeneous configs). The
    // engine forks no random stream, so NAPI hosts stay byte-identical.
    const DataplanePlan dplan = DataplanePlan::fromParams(config_.params);
    if (dplan.bypass())
        bypass_ = std::make_unique<BypassEngine>(*os_, *nic_, dplan,
                                                 config_.params);
}

ClusterHost::~ClusterHost() = default;

void
ClusterHost::setTierRole(const TierRole &role)
{
    role_ = role;
    app_->setForwardDownstream(role.forward);
    app_->setServiceScale(role.serviceScale);
}

void
ClusterHost::setResilience(const ResiliencePlan &plan)
{
    resilient_ = plan.wantsAdmission() || plan.wantsDeadline();
    app_->setResilience(plan);
}

void
ClusterHost::connect(ClusterSwitch &sw)
{
    sw.downlink(id_).setSink(
        [this](const Packet &pkt) { nic_->receive(pkt); });
    uplink_.setSink([this, &sw](const Packet &pkt) {
        sw.fromHost(id_, pkt);
    });
}

void
ClusterHost::onServedResponse(const Packet &pkt)
{
    feedback_->onResponse(pkt);
}

void
ClusterHost::start()
{
    os_->start();
    if (bypass_)
        bypass_->start();
    policy_.governor->start();
}

void
ClusterHost::beginMeasurement(Tick now)
{
    feedback_->latencies().clear();
    package_->startMeasurement(now);
    if (bypass_)
        bypass_->startMeasurement(now);
}

ClusterHostResult
ClusterHost::collect(Tick end) const
{
    ClusterHostResult r;
    r.id = id_;
    r.freqPolicy = config_.freqPolicy;
    r.idlePolicy = config_.idlePolicy;
    r.tier = role_.tier;
    r.tierName = role_.tierName;
    r.forwarded = app_->requestsForwarded();

    const LatencyRecorder &lat = feedback_->latencies();
    r.served = feedback_->responsesReceived();
    r.p50 = lat.percentile(50.0);
    r.p99 = lat.percentile(99.0);

    r.energyJoules = package_->energyJoules(end);

    r.nicRx = nic_->packetsReceived();
    r.nicDrops = nic_->packetsDropped();
    r.ksoftirqdWakes = ksoft_->wakes();
    for (int i = 0; i < config_.numCores; ++i) {
        Core *core = corePtrs_[static_cast<std::size_t>(i)];
        r.pktsIntrMode += os_->napi(i).pktsInterruptMode();
        r.pktsPollMode += os_->napi(i).pktsPollingMode();
        r.pstateTransitions += core->dvfs().numTransitions();
        r.cc6Wakes += core->cstates().wakeCount(CState::kC6);
        r.cc1Wakes += core->cstates().wakeCount(CState::kC1);
        r.busyFraction += static_cast<double>(core->busyTime()) /
                          static_cast<double>(end) /
                          static_cast<double>(config_.numCores);
    }

    if (resilient_) {
        r.resilient = true;
        r.shedAdmission = app_->shedAdmission();
        r.shedSojourn = app_->shedSojourn();
        r.shedDeadline = app_->shedDeadline();
    }

    if (bypass_) {
        BypassEngine::Stats dp = bypass_->stats();
        r.bypass = true;
        r.pktsPollMode += dp.pktsHarvested;
        r.bypassPollLoops = dp.pollLoops;
        r.bypassEmptyPolls = dp.emptyPolls;
        r.bypassSleeps = dp.sleeps;
        r.bypassSleepResidency = dp.sleepResidency;
        r.bypassWastedPollEnergy = bypass_->wastedPollEnergyJoules(end);
    }

    // Policy-specific outputs (e.g. the thresholds NMAP resolved) are
    // reported through the standard finalize hook.
    if (policy_.finalize) {
        ExperimentResult tmp;
        policy_.finalize(tmp);
        r.niThresholdUsed = tmp.niThresholdUsed;
        r.cuThresholdUsed = tmp.cuThresholdUsed;
    }
    return r;
}

} // namespace nmapsim
