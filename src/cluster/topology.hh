/**
 * @file
 * Declarative service topology: how hosts compose into tiers.
 *
 * A TopologyPlan is parsed from the ordinary key=value config pipeline
 * (`topology.*` namespace in ExperimentConfig::params), validated once,
 * and handed to ClusterExperiment, which materialises it as contiguous
 * host-id ranges behind the ClusterSwitch. Tier 0 fronts the clients;
 * every host in tiers 0..N-2 forwards completed requests east-west to
 * the next tier, and only the last tier replies. The plan itself holds
 * no state and draws no randomness.
 *
 * An empty plan (`enabled() == false`) is the single-tier bypass: no
 * east-west wiring exists, the switch runs one dispatch policy over
 * all hosts, and the simulation is bit-for-bit the same as before the
 * topology subsystem existed.
 */

#ifndef NMAPSIM_CLUSTER_TOPOLOGY_HH_
#define NMAPSIM_CLUSTER_TOPOLOGY_HH_

#include <string>
#include <vector>

#include "harness/policy_params.hh"
#include "sim/time.hh"

namespace nmapsim {

/** One service tier: a contiguous run of identically-roled hosts. */
struct TierSpec {
    /** Human-readable tier name ("lb", "app", "cache", "stage2"...). */
    std::string name;
    /** Hosts in this tier (>= 1). */
    int hosts = 1;
    /** DispatchRegistry policy for this tier; "" = cluster default. */
    std::string dispatch;
    /** Frequency-policy override for the tier; "" = cluster base. */
    std::string freqPolicy;
    /** Idle-policy override for the tier; "" = cluster base. */
    std::string idlePolicy;
    /** Multiplier on sampled per-request service cycles (> 0). */
    double serviceScale = 1.0;
    /**
     * Extra client groups whose requests enter the chain at this tier
     * instead of tier 0 (mid-chain load). 0 = no direct clients.
     */
    int clients = 0;
    /**
     * Per-hop latency budget for SLO attribution; 0 = take an even
     * share of the end-to-end app SLO (slo / numTiers).
     */
    Tick slo = 0;

    bool operator==(const TierSpec &) const = default;
};

/** Parsed, validated service topology (see `topology.*` config keys). */
struct TopologyPlan {
    /** Tiers in request order: tier 0 faces the clients. */
    std::vector<TierSpec> tiers;

    /** True when a multi-tier topology is declared. */
    bool enabled() const { return !tiers.empty(); }
    int numTiers() const { return static_cast<int>(tiers.size()); }
    /** Sum of per-tier host counts. */
    int totalHosts() const;
    /** Global id of the first host in @p tier. */
    int firstHostOf(int tier) const;
    /** Tier owning global host id @p host. */
    int tierOf(int host) const;

    /**
     * Build a plan from the `topology.*` keys in @p params. Unknown
     * `topology.*` keys, out-of-range tier indices, and invalid values
     * are fatal (config errors); non-topology keys are ignored. A
     * params blob without topology keys yields a disabled plan.
     */
    static TopologyPlan fromParams(const PolicyParams &params);
};

} // namespace nmapsim

#endif // NMAPSIM_CLUSTER_TOPOLOGY_HH_
