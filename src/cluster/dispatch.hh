/**
 * @file
 * Pluggable request-dispatch policies for the cluster switch.
 *
 * The top-of-rack switch (cluster/switch.hh) forwards every client
 * request to one of N hosts; *which* host is a policy decision with
 * first-order consequences for both tail latency (affinity keeps a
 * flow's packet trains on one NIC queue) and power (packing load lets
 * unloaded hosts reach deep package idle). Policies are resolved by
 * name through the string-keyed DispatchRegistry, mirroring the
 * frequency/sleep PolicyRegistry (harness/policy_registry.hh): a new
 * policy registers itself from its own translation unit
 *
 *     namespace {
 *     std::unique_ptr<DispatchPolicy>
 *     makeMine(const DispatchContext &ctx)
 *     {
 *         return std::make_unique<MineDispatch>(ctx);
 *     }
 *     REGISTER_DISPATCH_POLICY("mine", &makeMine, "one-line help");
 *     } // namespace
 *
 * and is immediately reachable from ClusterConfig::dispatch, the
 * nmapsim_run CLI (--dispatch) and the cluster bench — no harness
 * edits.
 *
 * Built-ins (cluster/dispatch_policies.cc):
 *   flow-hash         weighted hash of the RSS flow id (affinity)
 *   consistent-hash   ring hash with virtual nodes (affinity, stable
 *                     under host-count changes)
 *   round-robin       smooth weighted round robin (no affinity)
 *   least-outstanding join-the-shortest-queue on in-flight requests
 *   power-pack        fill hosts in id order up to a knee, keeping
 *                     high-id hosts idle for deep C-states
 */

#ifndef NMAPSIM_CLUSTER_DISPATCH_HH_
#define NMAPSIM_CLUSTER_DISPATCH_HH_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/policy_params.hh"
#include "net/packet.hh"

namespace nmapsim {

/**
 * Everything a dispatch-policy factory may wire against. The context
 * outlives the policy instance (the switch owns both), so policies may
 * keep a copy or reference pieces of it.
 */
struct DispatchContext
{
    int numHosts = 0;
    /** Per-host load weight (> 0); affinity policies map proportional
     *  hash ranges, queue policies normalise their feedback by it. */
    std::vector<double> weights;
    /** Dispatch tunables ("dispatch.<knob>"); shares the experiment's
     *  params blob. */
    PolicyParams params;
    /** Live in-flight request count per host (switch feedback). */
    std::function<std::uint64_t(int)> outstanding;
    /**
     * Live health per host (switch failure-detector feedback); null
     * means no detector, i.e. every host healthy. Queue policies
     * (round-robin, least-outstanding, power-pack) skip unhealthy
     * hosts while at least one healthy host remains; affinity
     * policies keep their hash stable and rely on the switch's
     * deterministic reroute instead, so readmitted hosts get their
     * flows back.
     */
    std::function<bool(int)> healthy;
};

/** Chooses a destination host for every request packet. */
class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    /** Destination host in [0, numHosts) for request @p pkt. */
    virtual int pickHost(const Packet &pkt) = 0;

    virtual std::string name() const = 0;
};

/** String-keyed factories for dispatch policies. */
class DispatchRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<DispatchPolicy>(
        const DispatchContext &)>;

    static DispatchRegistry &instance();

    /** Register @p name; fatal() on duplicates. */
    void registerDispatch(const std::string &name, Factory factory,
                          std::string help = "");

    bool has(const std::string &name) const;

    /** Instantiate a policy; fatal() on unknown names. */
    std::unique_ptr<DispatchPolicy> make(const std::string &name,
                                         const DispatchContext &ctx) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    std::string help(const std::string &name) const;

  private:
    struct Entry
    {
        Factory factory;
        std::string help;
    };

    DispatchRegistry() = default;

    std::map<std::string, Entry>::const_iterator
    resolve(const std::string &name) const;

    std::map<std::string, Entry> policies_;
};

/** Registers a dispatch policy at static-initialisation time. */
struct DispatchRegistrar
{
    DispatchRegistrar(const std::string &name,
                      DispatchRegistry::Factory factory,
                      std::string help = "")
    {
        DispatchRegistry::instance().registerDispatch(
            name, std::move(factory), std::move(help));
    }
};

/**
 * Registration shorthand, mirroring REGISTER_FREQ_POLICY
 * (harness/policy_registry.hh). Name and help must be nonempty string
 * literals; nmaplint (rule register-hygiene) enforces both.
 */
// Identical to the definitions in harness/policy_registry.hh (benign
// redefinition when both headers are included).
#define NMAPSIM_REGISTRAR_CONCAT_(a, b) a##b
#define NMAPSIM_REGISTRAR_CONCAT(a, b) NMAPSIM_REGISTRAR_CONCAT_(a, b)

#define REGISTER_DISPATCH_POLICY(name, factory, help)                  \
    static const ::nmapsim::DispatchRegistrar                          \
        NMAPSIM_REGISTRAR_CONCAT(nmapsimDispatchRegistrar_,            \
                                 __COUNTER__)(name, factory, help)

/**
 * Force the built-in dispatch policies' registration TU out of the
 * static archive (same linker dance as ensureBuiltinPolicies()).
 * Idempotent; called by the cluster harness and the CLI.
 */
void ensureBuiltinDispatchPolicies();

} // namespace nmapsim

#endif // NMAPSIM_CLUSTER_DISPATCH_HH_
