#include "cluster/dispatch.hh"

#include "sim/logging.hh"

namespace nmapsim {

namespace {

char
lower(char c)
{
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool
equalsIgnoreCase(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (lower(a[i]) != lower(b[i]))
            return false;
    return true;
}

} // namespace

DispatchRegistry &
DispatchRegistry::instance()
{
    static DispatchRegistry registry;
    return registry;
}

void
DispatchRegistry::registerDispatch(const std::string &name,
                                   Factory factory, std::string help)
{
    if (!policies_
             .emplace(name,
                      Entry{std::move(factory), std::move(help)})
             .second)
        fatal("duplicate dispatch policy registration: '" + name + "'");
}

/** Exact match first, then a unique case-insensitive match. */
std::map<std::string, DispatchRegistry::Entry>::const_iterator
DispatchRegistry::resolve(const std::string &name) const
{
    auto it = policies_.find(name);
    if (it != policies_.end())
        return it;
    auto match = policies_.end();
    for (auto i = policies_.begin(); i != policies_.end(); ++i) {
        if (equalsIgnoreCase(i->first, name)) {
            if (match != policies_.end())
                return policies_.end(); // ambiguous
            match = i;
        }
    }
    return match;
}

bool
DispatchRegistry::has(const std::string &name) const
{
    return resolve(name) != policies_.end();
}

std::unique_ptr<DispatchPolicy>
DispatchRegistry::make(const std::string &name,
                       const DispatchContext &ctx) const
{
    auto it = resolve(name);
    if (it == policies_.end()) {
        std::string known;
        for (const auto &[n, entry] : policies_) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown dispatch policy '" + name + "' (known: " +
              known + ")");
    }
    return it->second.factory(ctx);
}

std::vector<std::string>
DispatchRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(policies_.size());
    for (const auto &[name, entry] : policies_)
        out.push_back(name);
    return out;
}

std::string
DispatchRegistry::help(const std::string &name) const
{
    auto it = resolve(name);
    return it == policies_.end() ? std::string() : it->second.help;
}

// Defined in cluster/dispatch_policies.cc.
void linkBuiltinDispatchPolicies();

void
ensureBuiltinDispatchPolicies()
{
    linkBuiltinDispatchPolicies();
}

} // namespace nmapsim
