/**
 * @file
 * Built-in dispatch policies for the cluster switch.
 *
 * Two families:
 *
 *  - Affinity policies (flow-hash, consistent-hash) map a *flow* to a
 *    host, so one connection's back-to-back request trains stay on one
 *    NIC queue — the arrival pattern the paper's NAPI analysis assumes.
 *    Weighted: a host's share of the hash space is proportional to its
 *    weight.
 *
 *  - Queue/packing policies (round-robin, least-outstanding,
 *    power-pack) decide per packet. least-outstanding is the classic
 *    tail-optimal join-the-shortest-queue; power-pack deliberately
 *    unbalances, filling hosts in id order up to a per-host knee
 *    ("dispatch.pack_limit") so the remaining hosts see no traffic and
 *    their packages can sit in deep idle — trading some tail headroom
 *    for cluster energy.
 */

#include "cluster/dispatch.hh"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "sim/logging.hh"

namespace nmapsim {
namespace {

/** Finalising 64-bit mixer (splitmix64); decorrelates flow ids from
 *  the modulo structure RSS already imposes on them. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Health guard shared by the queue policies: true when @p host may
 * take new work. With no detector (null feed) or a fully-ejected
 * cluster the guard passes everyone, so the pick degrades to the
 * health-blind decision instead of deadlocking.
 */
class HealthGuard
{
  public:
    explicit HealthGuard(const DispatchContext &ctx)
        : healthy_(ctx.healthy), numHosts_(ctx.numHosts)
    {
    }

    bool
    usable(int host) const
    {
        if (!healthy_ || !anyHealthy())
            return true;
        return healthy_(host);
    }

  private:
    bool
    anyHealthy() const
    {
        for (int i = 0; i < numHosts_; ++i)
            if (healthy_(i))
                return true;
        return false;
    }

    std::function<bool(int)> healthy_;
    int numHosts_;
};

std::vector<double>
checkedWeights(const DispatchContext &ctx, const std::string &who)
{
    if (ctx.numHosts < 1)
        fatal(who + " dispatch requires at least one host");
    std::vector<double> w = ctx.weights;
    if (w.empty())
        w.assign(static_cast<std::size_t>(ctx.numHosts), 1.0);
    if (static_cast<int>(w.size()) != ctx.numHosts)
        fatal(who + " dispatch: weight count != host count");
    for (double v : w)
        if (v <= 0.0)
            fatal(who + " dispatch: host weights must be positive");
    return w;
}

// --- flow-hash ---------------------------------------------------------

/** Weighted hash of the flow id: host i owns a hash-space interval
 *  proportional to weights[i]. Affinity, stateless, O(n) pick. */
class FlowHashDispatch : public DispatchPolicy
{
  public:
    explicit FlowHashDispatch(const DispatchContext &ctx)
        : weights_(checkedWeights(ctx, "flow-hash"))
    {
        cumulative_.reserve(weights_.size());
        double sum = 0.0;
        for (double w : weights_) {
            sum += w;
            cumulative_.push_back(sum);
        }
    }

    int
    pickHost(const Packet &pkt) override
    {
        double u = static_cast<double>(mix64(pkt.flowHash) >> 11) /
                   9007199254740992.0; // 2^53, u in [0, 1)
        double point = u * cumulative_.back();
        auto it = std::upper_bound(cumulative_.begin(),
                                   cumulative_.end(), point);
        if (it == cumulative_.end())
            --it;
        return static_cast<int>(it - cumulative_.begin());
    }

    std::string name() const override { return "flow-hash"; }

  private:
    std::vector<double> weights_;
    std::vector<double> cumulative_;
};

// --- consistent-hash ---------------------------------------------------

/**
 * Ring hash with virtual nodes ("dispatch.vnodes" per unit weight,
 * default 64). Affinity like flow-hash, but adding or removing one
 * host remaps only ~1/N of the flows — the property real L4 balancers
 * buy with Maglev/rendezvous hashing.
 */
class ConsistentHashDispatch : public DispatchPolicy
{
  public:
    explicit ConsistentHashDispatch(const DispatchContext &ctx)
    {
        std::vector<double> weights =
            checkedWeights(ctx, "consistent-hash");
        int vnodes = ctx.params.getInt("dispatch.vnodes", 64);
        if (vnodes < 1)
            fatal("dispatch.vnodes must be >= 1");
        for (int host = 0; host < ctx.numHosts; ++host) {
            int replicas = std::max(
                1, static_cast<int>(
                       static_cast<double>(vnodes) *
                       weights[static_cast<std::size_t>(host)]));
            // Double-mix the ring side: flow points use one mix64 of
            // small integers, so a single-mixed ring of small integers
            // would collide with them exactly (every flow would land
            // on the vnode with its own hash).
            for (int v = 0; v < replicas; ++v)
                ring_.push_back(
                    {mix64(mix64(static_cast<std::uint64_t>(host) *
                                     0x100000001b3ull +
                                 static_cast<std::uint64_t>(v))),
                     host});
        }
        std::sort(ring_.begin(), ring_.end());
    }

    int
    pickHost(const Packet &pkt) override
    {
        std::uint64_t point = mix64(pkt.flowHash);
        auto it = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::pair<std::uint64_t, int>{point, -1});
        if (it == ring_.end())
            it = ring_.begin(); // wrap around the ring
        return it->second;
    }

    std::string name() const override { return "consistent-hash"; }

  private:
    std::vector<std::pair<std::uint64_t, int>> ring_;
};

// --- round-robin -------------------------------------------------------

/** Smooth weighted round robin (the nginx algorithm): deterministic,
 *  per-packet, spreads an a:b weight ratio evenly over time. */
class RoundRobinDispatch : public DispatchPolicy
{
  public:
    explicit RoundRobinDispatch(const DispatchContext &ctx)
        : weights_(checkedWeights(ctx, "round-robin")),
          current_(weights_.size(), 0.0),
          total_(std::accumulate(weights_.begin(), weights_.end(),
                                 0.0)),
          guard_(ctx)
    {
    }

    int
    pickHost(const Packet &pkt) override
    {
        (void)pkt;
        // Every host accrues credit (so a readmitted host rejoins at
        // its fair share), but only usable hosts may win the pick.
        int best = -1;
        for (std::size_t i = 0; i < weights_.size(); ++i) {
            current_[i] += weights_[i];
            if (!guard_.usable(static_cast<int>(i)))
                continue;
            if (best < 0 ||
                current_[i] > current_[static_cast<std::size_t>(best)]) {
                best = static_cast<int>(i);
            }
        }
        current_[static_cast<std::size_t>(best)] -= total_;
        return best;
    }

    std::string name() const override { return "round-robin"; }

  private:
    std::vector<double> weights_;
    std::vector<double> current_;
    double total_;
    HealthGuard guard_;
};

// --- least-outstanding -------------------------------------------------

/** Join-the-shortest-queue on the switch's in-flight counts,
 *  normalised by host weight; ties break to the lowest id. */
class LeastOutstandingDispatch : public DispatchPolicy
{
  public:
    explicit LeastOutstandingDispatch(const DispatchContext &ctx)
        : weights_(checkedWeights(ctx, "least-outstanding")),
          outstanding_(ctx.outstanding), guard_(ctx)
    {
        if (!outstanding_)
            fatal("least-outstanding dispatch needs the switch's "
                  "outstanding-request feedback");
    }

    int
    pickHost(const Packet &pkt) override
    {
        (void)pkt;
        int best = -1;
        double best_load = 0.0;
        for (int i = 0; i < static_cast<int>(weights_.size()); ++i) {
            if (!guard_.usable(i))
                continue;
            double l = load(i);
            if (best < 0 || l < best_load) {
                best = i;
                best_load = l;
            }
        }
        return best;
    }

    std::string name() const override { return "least-outstanding"; }

  private:
    double
    load(int host) const
    {
        return static_cast<double>(outstanding_(host)) /
               weights_[static_cast<std::size_t>(host)];
    }

    std::vector<double> weights_;
    std::function<std::uint64_t(int)> outstanding_;
    HealthGuard guard_;
};

// --- power-pack --------------------------------------------------------

/**
 * Power-aware packing: fill hosts in id order, spilling to the next
 * host only once a host's weighted in-flight count reaches
 * "dispatch.pack_limit" (default 16). High-id hosts see zero traffic
 * until the cluster actually needs them, so their cores — and with
 * every core idle, the package — can sit in the deepest C-state; the
 * spill knee bounds how much queueing the packing may inflict.
 * Overload (every host at the knee) degrades to least-outstanding.
 */
class PowerPackDispatch : public DispatchPolicy
{
  public:
    explicit PowerPackDispatch(const DispatchContext &ctx)
        : weights_(checkedWeights(ctx, "power-pack")),
          outstanding_(ctx.outstanding),
          packLimit_(ctx.params.getDouble("dispatch.pack_limit", 16.0)),
          guard_(ctx)
    {
        if (!outstanding_)
            fatal("power-pack dispatch needs the switch's "
                  "outstanding-request feedback");
        if (packLimit_ <= 0.0)
            fatal("dispatch.pack_limit must be positive");
    }

    int
    pickHost(const Packet &pkt) override
    {
        (void)pkt;
        int fallback = -1;
        double fallback_load = 0.0;
        for (int i = 0; i < static_cast<int>(weights_.size()); ++i) {
            if (!guard_.usable(i))
                continue;
            double l = load(i);
            if (l < packLimit_)
                return i;
            if (fallback < 0 || l < fallback_load) {
                fallback = i;
                fallback_load = l;
            }
        }
        return fallback;
    }

    std::string name() const override { return "power-pack"; }

  private:
    double
    load(int host) const
    {
        return static_cast<double>(outstanding_(host)) /
               weights_[static_cast<std::size_t>(host)];
    }

    std::vector<double> weights_;
    std::function<std::uint64_t(int)> outstanding_;
    double packLimit_;
    HealthGuard guard_;
};

// --- Registrations -----------------------------------------------------

template <typename P>
std::unique_ptr<DispatchPolicy>
make(const DispatchContext &ctx)
{
    return std::make_unique<P>(ctx);
}

REGISTER_DISPATCH_POLICY(
    "flow-hash", &make<FlowHashDispatch>,
    "weighted flow-id hash; keeps each flow on one host");
REGISTER_DISPATCH_POLICY(
    "consistent-hash", &make<ConsistentHashDispatch>,
    "ring hash with virtual nodes; stable under host changes");
REGISTER_DISPATCH_POLICY(
    "round-robin", &make<RoundRobinDispatch>,
    "smooth weighted round robin, per packet");
REGISTER_DISPATCH_POLICY(
    "least-outstanding", &make<LeastOutstandingDispatch>,
    "join-the-shortest-queue on in-flight requests");
REGISTER_DISPATCH_POLICY(
    "power-pack", &make<PowerPackDispatch>,
    "pack hosts in id order up to dispatch.pack_limit; spares idle "
    "deeply");

} // namespace

/** Link anchor: forces this TU (and its registrars) out of the
 *  static archive; see ensureBuiltinDispatchPolicies(). */
void
linkBuiltinDispatchPolicies()
{
}

} // namespace nmapsim
