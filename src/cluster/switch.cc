#include "cluster/switch.hh"

#include "sim/logging.hh"

namespace nmapsim {

ClusterSwitch::ClusterSwitch(EventQueue &eq, const SwitchConfig &config,
                             const std::string &dispatch,
                             std::vector<double> weights,
                             const PolicyParams &params)
    : eq_(eq), config_(config),
      ingressFabric_(eq, config.fabricBandwidthBps,
                     config.fabricLatency),
      egressFabric_(eq, config.fabricBandwidthBps,
                    config.fabricLatency),
      clientPort_(eq, config.portBandwidthBps, config.portPropagation)
{
    ensureBuiltinDispatchPolicies();
    const int num_hosts = static_cast<int>(
        weights.empty() ? 0 : weights.size());
    if (num_hosts < 1)
        fatal("ClusterSwitch requires at least one host weight");

    ingressFabric_.setLabel("switch.fabric.ingress");
    egressFabric_.setLabel("switch.fabric.egress");
    clientPort_.setLabel("switch.port.clients");
    ingressFabric_.setSink(
        [this](const Packet &pkt) { forwardRequest(pkt); });
    egressFabric_.setSink(
        [this](const Packet &pkt) { forwardResponse(pkt); });
    clientPort_.setQueueLimit(config_.portQueueLimit);

    for (int id = 0; id < num_hosts; ++id) {
        downlinks_.push_back(std::make_unique<Wire>(
            eq, config_.portBandwidthBps, config_.portPropagation));
        downlinks_.back()->setLabel("switch.port.host" +
                                    std::to_string(id));
        downlinks_.back()->setQueueLimit(config_.portQueueLimit);
    }
    requestsForwarded_.assign(static_cast<std::size_t>(num_hosts), 0);
    responsesReturned_.assign(static_cast<std::size_t>(num_hosts), 0);

    DispatchContext ctx;
    ctx.numHosts = num_hosts;
    ctx.weights = std::move(weights);
    ctx.params = params;
    ctx.outstanding = [this](int host) { return outstanding(host); };
    dispatch_ = DispatchRegistry::instance().make(dispatch, ctx);
}

void
ClusterSwitch::fromClient(const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kRequest)
        panic("ClusterSwitch: non-request packet from the client side");
    ingressFabric_.send(pkt);
}

void
ClusterSwitch::forwardRequest(const Packet &pkt)
{
    const int host = dispatch_->pickHost(pkt);
    if (host < 0 || host >= numHosts())
        panic("dispatch policy '" + dispatch_->name() +
              "' picked host " + std::to_string(host) + " of " +
              std::to_string(numHosts()));
    Wire &port = *downlinks_[static_cast<std::size_t>(host)];
    const std::uint64_t drops_before = port.packetsDropped();
    port.send(pkt);
    // Only requests that actually made the port queue count as
    // forwarded, so outstanding() tracks live work, not drops.
    if (port.packetsDropped() == drops_before)
        ++requestsForwarded_[static_cast<std::size_t>(host)];
}

void
ClusterSwitch::fromHost(int id, const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kResponse)
        panic("ClusterSwitch: non-response packet from host " +
              std::to_string(id));
    ++responsesReturned_[static_cast<std::size_t>(id)];
    egressHosts_.push_back(id);
    egressFabric_.send(pkt);
}

void
ClusterSwitch::forwardResponse(const Packet &pkt)
{
    // The fabric wire is FIFO and unbounded, so the ids queue stays in
    // lockstep with its deliveries.
    if (egressHosts_.empty())
        panic("ClusterSwitch: egress fabric delivered a response "
              "with no host attribution queued");
    const int host = egressHosts_.front();
    egressHosts_.pop_front();
    if (tap_)
        tap_(host, pkt);
    clientPort_.send(pkt);
}

std::uint64_t
ClusterSwitch::portDrops() const
{
    std::uint64_t drops = clientPort_.packetsDropped();
    for (const std::unique_ptr<Wire> &port : downlinks_)
        drops += port->packetsDropped();
    return drops;
}

} // namespace nmapsim
