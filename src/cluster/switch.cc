#include "cluster/switch.hh"

#include "sim/logging.hh"

namespace nmapsim {

ClusterSwitch::ClusterSwitch(EventQueue &eq, const SwitchConfig &config,
                             const std::string &dispatch,
                             std::vector<double> weights,
                             const PolicyParams &params)
    : eq_(eq), config_(config),
      ingressFabric_(eq, config.fabricBandwidthBps,
                     config.fabricLatency),
      egressFabric_(eq, config.fabricBandwidthBps,
                    config.fabricLatency),
      clientPort_(eq, config.portBandwidthBps, config.portPropagation),
      healthEvent_([this] { healthCheck(); }, "switch.health")
{
    ensureBuiltinDispatchPolicies();
    const int num_hosts = static_cast<int>(
        weights.empty() ? 0 : weights.size());
    if (num_hosts < 1)
        fatal("ClusterSwitch requires at least one host weight");
    if (config_.healthInterval > 0 &&
        (config_.healthTimeout <= 0 || config_.ejectDuration <= 0)) {
        fatal("switch failure detector needs cluster.health_timeout "
              "and cluster.eject_duration when cluster.health_interval "
              "is set");
    }

    ingressFabric_.setLabel("switch.fabric.ingress");
    egressFabric_.setLabel("switch.fabric.egress");
    clientPort_.setLabel("switch.port.clients");
    ingressFabric_.setSink(
        [this](const Packet &pkt) { forwardRequest(pkt); });
    egressFabric_.setSink(
        [this](const Packet &pkt) { forwardResponse(pkt); });
    clientPort_.setQueueLimit(config_.portQueueLimit);

    for (int id = 0; id < num_hosts; ++id) {
        downlinks_.push_back(std::make_unique<Wire>(
            eq, config_.portBandwidthBps, config_.portPropagation));
        downlinks_.back()->setLabel("switch.port.host" +
                                    std::to_string(id));
        downlinks_.back()->setQueueLimit(config_.portQueueLimit);
    }
    requestsForwarded_.assign(static_cast<std::size_t>(num_hosts), 0);
    responsesReturned_.assign(static_cast<std::size_t>(num_hosts), 0);
    pendingSince_.assign(static_cast<std::size_t>(num_hosts), Ring<Tick>());
    lastResponseAt_.assign(static_cast<std::size_t>(num_hosts), 0);
    ejected_.assign(static_cast<std::size_t>(num_hosts), false);
    readmitAt_.assign(static_cast<std::size_t>(num_hosts), 0);
    ejections_.assign(static_cast<std::size_t>(num_hosts), 0);

    DispatchContext ctx;
    ctx.numHosts = num_hosts;
    ctx.weights = std::move(weights);
    ctx.params = params;
    ctx.outstanding = [this](int host) { return outstanding(host); };
    if (config_.healthInterval > 0) {
        ctx.healthy = [this](int host) { return !isEjected(host); };
        eq_.schedule(&healthEvent_, eq_.now() + config_.healthInterval);
    }
    dispatch_ = DispatchRegistry::instance().make(dispatch, ctx);
}

ClusterSwitch::~ClusterSwitch()
{
    eq_.deschedule(&healthEvent_);
}

void
ClusterSwitch::fromClient(const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kRequest)
        panic("ClusterSwitch: non-request packet from the client side");
    ingressFabric_.send(pkt);
}

void
ClusterSwitch::forwardRequest(const Packet &pkt)
{
    int host = dispatch_->pickHost(pkt);
    if (host < 0 || host >= numHosts())
        panic("dispatch policy '" + dispatch_->name() +
              "' picked host " + std::to_string(host) + " of " +
              std::to_string(numHosts()));
    if (ejected_[static_cast<std::size_t>(host)]) {
        // Affinity policies keep hashing to the ejected host; steer
        // deterministically to the next healthy id so their flows come
        // back unchanged after readmission.
        const int alt = nextHealthyAfter(host);
        if (alt >= 0) {
            host = alt;
            ++rerouted_;
        }
    }
    Wire &port = *downlinks_[static_cast<std::size_t>(host)];
    const std::uint64_t lost_before = port.packetsDropped() +
                                      port.packetsFaultLost() +
                                      port.packetsLinkDownLost();
    port.send(pkt);
    // Only requests that actually made the port queue count as
    // forwarded, so outstanding() tracks live work, not drops (queue
    // overflow or injected faults).
    if (port.packetsDropped() + port.packetsFaultLost() +
            port.packetsLinkDownLost() ==
        lost_before) {
        ++requestsForwarded_[static_cast<std::size_t>(host)];
        pendingSince_[static_cast<std::size_t>(host)].push_back(
            eq_.now());
    }
}

void
ClusterSwitch::fromHost(int id, const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kResponse)
        panic("ClusterSwitch: non-response packet from host " +
              std::to_string(id));
    ++responsesReturned_[static_cast<std::size_t>(id)];
    lastResponseAt_[static_cast<std::size_t>(id)] = eq_.now();
    Ring<Tick> &pending =
        pendingSince_[static_cast<std::size_t>(id)];
    if (pending.empty()) {
        // The matching dispatch record was written off at ejection;
        // the response is still real, so it flows on to the client.
        ++lateResponses_;
    } else {
        pending.pop_front();
    }
    egressHosts_.push_back(id);
    egressFabric_.send(pkt);
}

void
ClusterSwitch::forwardResponse(const Packet &pkt)
{
    // The fabric wire is FIFO and unbounded, so the ids queue stays in
    // lockstep with its deliveries.
    if (egressHosts_.empty())
        panic("ClusterSwitch: egress fabric delivered a response "
              "with no host attribution queued");
    const int host = egressHosts_.front();
    egressHosts_.pop_front();
    if (tap_)
        tap_(host, pkt);
    clientPort_.send(pkt);
}

int
ClusterSwitch::nextHealthyAfter(int host) const
{
    for (int step = 1; step < numHosts(); ++step) {
        const int candidate = (host + step) % numHosts();
        if (!ejected_[static_cast<std::size_t>(candidate)])
            return candidate;
    }
    // Whole cluster ejected: no healthy alternative, deliver to the
    // policy's pick and let the client's retry machinery cope.
    return -1;
}

void
ClusterSwitch::healthCheck()
{
    const Tick now = eq_.now();
    for (int host = 0; host < numHosts(); ++host) {
        const auto h = static_cast<std::size_t>(host);
        if (ejected_[h]) {
            // Optimistic, time-based readmission: the host gets
            // traffic again and must re-earn an ejection if it is
            // still down.
            if (now >= readmitAt_[h])
                ejected_[h] = false;
            continue;
        }
        if (pendingSince_[h].empty())
            continue; // idle hosts are unjudgeable, never ejected
        const Tick oldest = pendingSince_[h].front();
        const bool work_overdue =
            now - oldest > config_.healthTimeout;
        const bool silent =
            now - std::max(lastResponseAt_[h], oldest) >
            config_.healthTimeout;
        if (work_overdue && silent) {
            ejected_[h] = true;
            readmitAt_[h] = now + config_.ejectDuration;
            ++ejections_[h];
            // Write the pending work off: the client side will
            // surface it as timeouts; keeping it would freeze
            // queue-feedback policies on a stale backlog forever.
            pendingSince_[h].clear();
        }
    }
    eq_.schedule(&healthEvent_, now + config_.healthInterval);
}

std::uint64_t
ClusterSwitch::portDrops() const
{
    std::uint64_t drops = clientPort_.packetsDropped();
    for (const std::unique_ptr<Wire> &port : downlinks_)
        drops += port->packetsDropped();
    return drops;
}

} // namespace nmapsim
