#include "cluster/switch.hh"

#include "sim/logging.hh"

namespace nmapsim {

ClusterSwitch::ClusterSwitch(EventQueue &eq, const SwitchConfig &config,
                             const std::string &dispatch,
                             std::vector<double> weights,
                             const PolicyParams &params,
                             std::vector<SwitchTier> tiers)
    : eq_(eq), config_(config),
      ingressFabric_(eq, config.fabricBandwidthBps,
                     config.fabricLatency),
      egressFabric_(eq, config.fabricBandwidthBps,
                    config.fabricLatency),
      clientPort_(eq, config.portBandwidthBps, config.portPropagation),
      healthEvent_([this] { healthCheck(); }, "switch.health")
{
    ensureBuiltinDispatchPolicies();
    const int num_hosts = static_cast<int>(
        weights.empty() ? 0 : weights.size());
    if (num_hosts < 1)
        fatal("ClusterSwitch requires at least one host weight");
    if (config_.healthInterval > 0 &&
        (config_.healthTimeout <= 0 || config_.ejectDuration <= 0)) {
        fatal("switch failure detector needs cluster.health_timeout "
              "and cluster.eject_duration when cluster.health_interval "
              "is set");
    }

    ingressFabric_.setLabel("switch.fabric.ingress");
    egressFabric_.setLabel("switch.fabric.egress");
    clientPort_.setLabel("switch.port.clients");
    ingressFabric_.setSink(
        [this](const Packet &pkt) { forwardRequest(pkt); });
    egressFabric_.setSink(
        [this](const Packet &pkt) { forwardResponse(pkt); });
    clientPort_.setQueueLimit(config_.portQueueLimit);

    for (int id = 0; id < num_hosts; ++id) {
        downlinks_.push_back(std::make_unique<Wire>(
            eq, config_.portBandwidthBps, config_.portPropagation));
        downlinks_.back()->setLabel("switch.port.host" +
                                    std::to_string(id));
        downlinks_.back()->setQueueLimit(config_.portQueueLimit);
    }
    requestsForwarded_.assign(static_cast<std::size_t>(num_hosts), 0);
    responsesReturned_.assign(static_cast<std::size_t>(num_hosts), 0);
    forwardsReturned_.assign(static_cast<std::size_t>(num_hosts), 0);
    pendingSince_.assign(static_cast<std::size_t>(num_hosts), Ring<Tick>());
    lastResponseAt_.assign(static_cast<std::size_t>(num_hosts), 0);
    ejected_.assign(static_cast<std::size_t>(num_hosts), false);
    readmitAt_.assign(static_cast<std::size_t>(num_hosts), 0);
    ejections_.assign(static_cast<std::size_t>(num_hosts), 0);

    // No declared topology = the classic cluster: one tier over all
    // hosts running the cluster-level dispatch policy.
    if (tiers.empty())
        tiers.push_back(SwitchTier{"all", 0, num_hosts, dispatch});
    tiers_ = std::move(tiers);
    hostTier_.assign(static_cast<std::size_t>(num_hosts), -1);
    int expected_first = 0;
    for (int t = 0; t < numTiers(); ++t) {
        SwitchTier &spec = tiers_[static_cast<std::size_t>(t)];
        if (spec.firstHost != expected_first || spec.hosts < 1)
            fatal("switch tiers must cover contiguous host ids");
        if (spec.dispatch.empty())
            spec.dispatch = dispatch;
        expected_first += spec.hosts;
        for (int h = spec.firstHost; h < spec.firstHost + spec.hosts;
             ++h)
            hostTier_[static_cast<std::size_t>(h)] = t;
    }
    if (expected_first != num_hosts)
        fatal("switch tiers must cover every host exactly once");

    // One policy instance per tier, seeing tier-local host ids; the
    // context closures translate to global ids for live feedback.
    for (int t = 0; t < numTiers(); ++t) {
        const SwitchTier &spec = tiers_[static_cast<std::size_t>(t)];
        const int base = spec.firstHost;
        DispatchContext ctx;
        ctx.numHosts = spec.hosts;
        ctx.weights.assign(
            weights.begin() + base,
            weights.begin() + base + spec.hosts);
        ctx.params = params;
        ctx.outstanding = [this, base](int host) {
            return outstanding(base + host);
        };
        if (config_.healthInterval > 0) {
            ctx.healthy = [this, base](int host) {
                return !isEjected(base + host);
            };
        }
        dispatchByTier_.push_back(
            DispatchRegistry::instance().make(spec.dispatch, ctx));
    }
    if (config_.healthInterval > 0)
        eq_.schedule(&healthEvent_, eq_.now() + config_.healthInterval);
}

ClusterSwitch::~ClusterSwitch()
{
    eq_.deschedule(&healthEvent_);
}

void
ClusterSwitch::enableResilience(const ResiliencePlan &plan)
{
    deadlineShedsEnabled_ = plan.wantsDeadline();
    if (plan.wantsBreakers()) {
        BreakerConfig breaker;
        breaker.window = plan.breakerWindow;
        breaker.threshold = plan.breakerThreshold;
        breaker.minVolume = plan.breakerMinVolume;
        breaker.openFor = plan.breakerOpen;
        breaker.trials = plan.breakerTrials;
        breakers_.assign(static_cast<std::size_t>(numHosts()),
                         CircuitBreaker(breaker));
    }
}

void
ClusterSwitch::fromClient(const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kRequest)
        panic("ClusterSwitch: non-request packet from the client side");
    if (pkt.control)
        controlBytes_ += pkt.sizeBytes;
    // Mid-chain entry (topology.tier<i>.clients) makes any declared
    // tier a legal client-side destination.
    if (pkt.tier >= numTiers())
        panic("ClusterSwitch: client request addressed to tier " +
              std::to_string(pkt.tier) + " of " +
              std::to_string(numTiers()));
    ingressFabric_.send(pkt);
}

void
ClusterSwitch::rejectToClient(const Packet &pkt)
{
    // Shed notice: response-shaped control traffic flagged rejected,
    // sent straight out the client port — it never visits a host, so
    // it takes no egress-fabric attribution slot.
    Packet resp;
    resp.requestId = pkt.requestId;
    resp.kind = Packet::Kind::kResponse;
    resp.flowHash = pkt.flowHash;
    resp.sizeBytes = 64;
    resp.sendTime = pkt.sendTime;
    resp.latencyCritical = pkt.latencyCritical;
    resp.tier = pkt.tier;
    resp.hops = pkt.hops;
    resp.hopStart = pkt.hopStart;
    resp.deadline = pkt.deadline;
    resp.control = true;
    resp.rejected = true;
    controlBytes_ += resp.sizeBytes;
    clientPort_.send(resp);
}

void
ClusterSwitch::forwardRequest(const Packet &pkt)
{
    const int t = pkt.tier;
    if (t >= numTiers())
        panic("ClusterSwitch: request addressed to tier " +
              std::to_string(t) + " of " + std::to_string(numTiers()));
    const SwitchTier &spec = tiers_[static_cast<std::size_t>(t)];
    if (deadlineShedsEnabled_ && pkt.deadline > 0 &&
        eq_.now() > pkt.deadline) {
        // Past-deadline work is dead on arrival at every hop: shed it
        // here instead of burning a host's cycles on it.
        ++shedDeadline_;
        rejectToClient(pkt);
        return;
    }
    DispatchPolicy &policy =
        *dispatchByTier_[static_cast<std::size_t>(t)];
    const int local = policy.pickHost(pkt);
    if (local < 0 || local >= spec.hosts)
        panic("dispatch policy '" + policy.name() + "' picked host " +
              std::to_string(local) + " of " +
              std::to_string(spec.hosts) + " in tier '" + spec.name +
              "'");
    int host = spec.firstHost + local;
    if (ejected_[static_cast<std::size_t>(host)]) {
        // Affinity policies keep hashing to the ejected host; steer
        // deterministically to the next healthy id so their flows come
        // back unchanged after readmission.
        const int alt = nextHealthyAfter(host);
        if (alt >= 0) {
            host = alt;
            ++rerouted_;
        }
    }
    if (!breakers_.empty() &&
        !breakers_[static_cast<std::size_t>(host)].allow(eq_.now())) {
        // Open breaker: steer to a tier-mate whose breaker admits
        // traffic; with the whole tier dark, short-circuit to the
        // client instead of feeding a known-bad backend.
        const int local_pick = host - spec.firstHost;
        int alt = -1;
        for (int step = 1; step < spec.hosts; ++step) {
            const int candidate =
                spec.firstHost + (local_pick + step) % spec.hosts;
            if (!ejected_[static_cast<std::size_t>(candidate)] &&
                breakers_[static_cast<std::size_t>(candidate)]
                    .wouldAllow(eq_.now())) {
                alt = candidate;
                break;
            }
        }
        if (alt < 0) {
            ++breakerShortCircuits_;
            rejectToClient(pkt);
            return;
        }
        breakers_[static_cast<std::size_t>(alt)].allow(eq_.now());
        host = alt;
        ++rerouted_;
    }
    Packet out = pkt;
    out.hopStart = eq_.now(); // per-hop latency stamp
    Wire &port = *downlinks_[static_cast<std::size_t>(host)];
    const std::uint64_t lost_before = port.packetsDropped() +
                                      port.packetsFaultLost() +
                                      port.packetsLinkDownLost();
    port.send(out);
    // Only requests that actually made the port queue count as
    // forwarded, so outstanding() tracks live work, not drops (queue
    // overflow or injected faults).
    if (port.packetsDropped() + port.packetsFaultLost() +
            port.packetsLinkDownLost() ==
        lost_before) {
        ++requestsForwarded_[static_cast<std::size_t>(host)];
        pendingSince_[static_cast<std::size_t>(host)].push_back(
            eq_.now());
    }
}

void
ClusterSwitch::fromHost(int id, const Packet &pkt)
{
    const auto h = static_cast<std::size_t>(id);
    const int t = hostTier_[h];
    const bool last_tier = t == numTiers() - 1;
    const bool forwarded = pkt.kind == Packet::Kind::kRequest;
    if (forwarded && last_tier)
        panic("ClusterSwitch: non-response packet from host " +
              std::to_string(id));
    // A shed notice is a legal reply from any tier; only real results
    // from mid-chain hosts break the forward-vs-reply contract.
    if (!forwarded && !last_tier && !pkt.rejected)
        panic("ClusterSwitch: mid-chain host " + std::to_string(id) +
              " in tier '" +
              tiers_[static_cast<std::size_t>(t)].name +
              "' replied instead of forwarding");
    if (pkt.control)
        controlBytes_ += pkt.sizeBytes;
    if (forwarded)
        ++forwardsReturned_[h];
    else
        ++responsesReturned_[h];
    lastResponseAt_[h] = eq_.now();
    Ring<Tick> &pending = pendingSince_[h];
    if (pending.empty()) {
        // The matching dispatch record was written off at ejection;
        // the completion is still real, so it flows onward.
        ++lateResponses_;
    } else {
        pending.pop_front();
    }
    if (!breakers_.empty()) {
        // A response that took longer than the fabric's health timeout
        // is as bad as a shed notice to its caller — the client gave up
        // long ago — so it counts as a failure in the breaker window
        // even though the host technically answered. Without this, a
        // drowning-but-alive host never trips its breaker (the outcome
        // stream shows only successes) and the switch keeps steering a
        // dead sibling's share onto it.
        const bool slow = config_.healthTimeout > 0 &&
                          eq_.now() - pkt.hopStart >
                              config_.healthTimeout;
        breakers_[h].onOutcome(eq_.now(), pkt.rejected || slow);
    }
    // Sheds answer instantly; keeping them out of the hop-latency
    // feed stops them from masking a slow tier's real hop tail.
    if (hopTap_ && !pkt.rejected)
        hopTap_(id, t, eq_.now() - pkt.hopStart, forwarded);
    if (forwarded) {
        // East-west: the completed request re-enters the shared
        // ingress fabric addressed to the next tier, contending with
        // client traffic for switching capacity like any other flow.
        Packet fwd = pkt;
        fwd.tier = static_cast<std::uint8_t>(t + 1);
        fwd.hops = static_cast<std::uint8_t>(pkt.hops + 1);
        ++eastWestForwards_;
        eastWestBytes_ += pkt.sizeBytes;
        ingressFabric_.send(fwd);
        return;
    }
    egressHosts_.push_back(id);
    egressFabric_.send(pkt);
}

void
ClusterSwitch::forwardResponse(const Packet &pkt)
{
    // The fabric wire is FIFO and unbounded, so the ids queue stays in
    // lockstep with its deliveries.
    if (egressHosts_.empty())
        panic("ClusterSwitch: egress fabric delivered a response "
              "with no host attribution queued");
    const int host = egressHosts_.front();
    egressHosts_.pop_front();
    if (pkt.control)
        controlBytes_ += pkt.sizeBytes;
    else
        goodputBytes_ += pkt.sizeBytes;
    // Shed notices bypass the tap: per-host latency attribution is
    // for served responses only.
    if (tap_ && !pkt.rejected)
        tap_(host, pkt);
    clientPort_.send(pkt);
}

int
ClusterSwitch::nextHealthyAfter(int host) const
{
    // Failover stays tier-local: rerouting a cache request to an app
    // host would violate the forward-vs-reply contract.
    const SwitchTier &spec = tiers_[static_cast<std::size_t>(
        hostTier_[static_cast<std::size_t>(host)])];
    const int local = host - spec.firstHost;
    for (int step = 1; step < spec.hosts; ++step) {
        const int candidate =
            spec.firstHost + (local + step) % spec.hosts;
        if (!ejected_[static_cast<std::size_t>(candidate)])
            return candidate;
    }
    // Whole tier ejected: no healthy alternative, deliver to the
    // policy's pick and let the client's retry machinery cope.
    return -1;
}

void
ClusterSwitch::healthCheck()
{
    const Tick now = eq_.now();
    for (int host = 0; host < numHosts(); ++host) {
        const auto h = static_cast<std::size_t>(host);
        if (ejected_[h]) {
            // Optimistic, time-based readmission: the host gets
            // traffic again and must re-earn an ejection if it is
            // still down.
            if (now >= readmitAt_[h])
                ejected_[h] = false;
            continue;
        }
        if (pendingSince_[h].empty())
            continue; // idle hosts are unjudgeable, never ejected
        const Tick oldest = pendingSince_[h].front();
        const bool work_overdue =
            now - oldest > config_.healthTimeout;
        const bool silent =
            now - std::max(lastResponseAt_[h], oldest) >
            config_.healthTimeout;
        if (work_overdue && silent) {
            ejected_[h] = true;
            readmitAt_[h] = now + config_.ejectDuration;
            ++ejections_[h];
            // Write the pending work off: the client side will
            // surface it as timeouts; keeping it would freeze
            // queue-feedback policies on a stale backlog forever.
            pendingSince_[h].clear();
            // Silence is a failure signal the outcome stream never
            // sees; force the breaker open so readmission probes the
            // host instead of flooding it.
            if (!breakers_.empty())
                breakers_[h].forceOpen(now);
        }
    }
    eq_.schedule(&healthEvent_, now + config_.healthInterval);
}

std::uint64_t
ClusterSwitch::portDrops() const
{
    std::uint64_t drops = clientPort_.packetsDropped();
    for (const std::unique_ptr<Wire> &port : downlinks_)
        drops += port->packetsDropped();
    return drops;
}

} // namespace nmapsim
