/**
 * @file
 * One server host of a simulated cluster.
 *
 * A ClusterHost is the complete single-server rig the Experiment
 * harness assembles — cores, multi-queue NIC with RSS, OS network
 * stack, server application, frequency + sleep policy resolved by name
 * through the PolicyRegistry, and a package energy meter — packaged as
 * a long-lived object that plugs into a ClusterSwitch port instead of
 * talking to clients directly. Hosts are heterogeneous by
 * construction: each one takes its own fully resolved
 * ExperimentConfig, so two hosts behind the same switch can run
 * different governors, sleep policies or tunables.
 *
 * The host also owns a *feedback client*: a Client instance that never
 * transmits and only records the latencies of responses this host
 * served (the switch's response tap feeds it). That gives per-host
 * latency statistics and, crucially, the client latency feed policies
 * like Parties require — so every registered frequency policy works
 * per host with zero cluster special cases.
 */

#ifndef NMAPSIM_CLUSTER_HOST_HH_
#define NMAPSIM_CLUSTER_HOST_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

// lint: layering-ok(hosts embed a full single-node experiment engine; inverting this needs the engine-extraction roadmap item)
#include "harness/experiment.hh"
// lint: layering-ok(per-host policy instantiation reuses the registry types; same engine-extraction caveat as above)
#include "harness/policy_registry.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "resilience/plan.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"
#include "workload/client.hh"
#include "workload/server_app.hh"

namespace nmapsim {

class BypassEngine;
class ClusterSwitch;
class PackagePower;
class PackageEnergyMeter;

/** Everything one host of a cluster run produced. */
struct ClusterHostResult
{
    int id = 0;
    std::string freqPolicy;
    std::string idlePolicy;

    /** Service tier this host belongs to (0 when single-tier). */
    int tier = 0;
    std::string tierName;
    /** Requests this host forwarded east-west (mid-chain tiers). */
    std::uint64_t forwarded = 0;
    /** Hop completions and dispatch-to-return hop latency, filled by
     *  the harness from the switch's hop tap (topology runs only). */
    std::uint64_t hopsCompleted = 0;
    Tick hopP50 = 0;
    Tick hopP99 = 0;

    /** Responses this host served (tap-attributed). */
    std::uint64_t served = 0;
    /** Latency of served requests, end-to-end up to the switch egress
     *  fabric (excludes the final switch->client link). */
    Tick p50 = 0;
    Tick p99 = 0;

    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;
    double busyFraction = 0.0;

    std::uint64_t nicRx = 0;        //!< packets the host NIC accepted
    std::uint64_t nicDrops = 0;     //!< host NIC ring overflows
    std::uint64_t pktsIntrMode = 0;
    std::uint64_t pktsPollMode = 0;
    std::uint64_t ksoftirqdWakes = 0;
    std::uint64_t pstateTransitions = 0;
    std::uint64_t cc6Wakes = 0;
    std::uint64_t cc1Wakes = 0;

    double niThresholdUsed = 0.0;
    double cuThresholdUsed = 0.0;

    /** Times the switch's failure detector ejected this host. */
    std::uint64_t ejections = 0;

    /** @name Resilience metrics (only meaningful — and only
     *  serialised — when resilient is true) */
    /**@{*/
    bool resilient = false; //!< host ran with a resilience plan
    std::uint64_t shedAdmission = 0; //!< arrivals the gate refused
    std::uint64_t shedSojourn = 0;   //!< serve-time sojourn sheds
    std::uint64_t shedDeadline = 0;  //!< past-deadline sheds (host side)
    /** Switch-side breaker transitions for this host, filled by the
     *  harness from the switch. */
    std::uint64_t breakerTransitions = 0;
    /**@}*/

    /** @name Bypass dataplane metrics (see ExperimentResult; only
     *  meaningful — and only serialised — when bypass is true) */
    /**@{*/
    bool bypass = false; //!< host ran dataplane.mode=bypass
    std::uint64_t bypassPollLoops = 0;
    std::uint64_t bypassEmptyPolls = 0;
    std::uint64_t bypassSleeps = 0;
    Tick bypassSleepResidency = 0;
    double bypassWastedPollEnergy = 0.0;
    /**@}*/
};

/** One server host behind the cluster switch. */
class ClusterHost
{
  public:
    /**
     * @param id          host index (switch port)
     * @param eq          shared simulation event queue
     * @param config      fully resolved per-host configuration (app,
     *                    cores, OS/NIC knobs, policies, params)
     * @param profile_fn  offline NMAP threshold profiling for this
     *                    host's configuration (may be empty)
     * @param rng         private random stream (fork of the master)
     * @param link_bps    host<->switch link rate
     * @param link_prop   host<->switch link propagation
     */
    ClusterHost(int id, EventQueue &eq, const ExperimentConfig &config,
                std::function<std::pair<double, double>()> profile_fn,
                Rng rng, double link_bps, Tick link_prop);

    ~ClusterHost();

    ClusterHost(const ClusterHost &) = delete;
    ClusterHost &operator=(const ClusterHost &) = delete;

    /** This host's place in a service topology. */
    struct TierRole
    {
        int tier = 0;            //!< tier index (0 = client-facing)
        std::string tierName;    //!< tier label for results
        bool forward = false;    //!< forward east-west vs reply
        double serviceScale = 1.0; //!< tier service-cycle multiplier
    };

    /**
     * Assign the host's tier role. Call before start(); the default
     * role (reply, unit scale) is the single-tier behaviour.
     */
    void setTierRole(const TierRole &role);

    /**
     * Arm the host-side resilience mechanisms (admission gate,
     * deadline sheds) from a validated plan. Call before start(); a
     * disabled plan is a no-op and keeps the host byte-identical.
     */
    void setResilience(const ResiliencePlan &plan);

    /** Connect to @p sw: downlink port -> NIC, uplink -> switch. */
    void connect(ClusterSwitch &sw);

    /** Record a response this host served (switch response tap). */
    void onServedResponse(const Packet &pkt);

    /** Start the OS idle loops and the frequency policy. */
    void start();

    /** Begin the measurement window: reset latency feed, arm energy. */
    void beginMeasurement(Tick now);

    /** Collect this host's results over [measurement start, @p end]. */
    ClusterHostResult collect(Tick end) const;

    int id() const { return id_; }
    Nic &nic() { return *nic_; }
    Wire &uplink() { return uplink_; }
    /** The per-host latency feed (what Parties consumes). */
    Client &feedback() { return *feedback_; }

  private:
    class KsoftirqdCounter;

    int id_;
    EventQueue &eq_;
    TierRole role_;
    bool resilient_ = false; //!< host-side resilience plan armed
    /** The host's own copy of its resolved configuration; the app and
     *  policy context hold references into it, so it must live as long
     *  as the rig. */
    ExperimentConfig config_;

    Rng rng_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> corePtrs_;
    std::unique_ptr<Nic> nic_;
    Wire uplink_; //!< host -> switch
    std::unique_ptr<ServerOs> os_;
    std::unique_ptr<ServerApp> app_;
    std::unique_ptr<Client> feedback_;
    std::unique_ptr<KsoftirqdCounter> ksoft_;

    std::unique_ptr<CpuIdleGovernor> idle_;
    std::unique_ptr<SwitchableIdleGovernor> switchable_;
    FreqPolicyInstance policy_;

    std::unique_ptr<PackagePower> uncore_;
    std::unique_ptr<PackageEnergyMeter> package_;
    /** Only constructed for host<i>.dataplane.mode=bypass. */
    std::unique_ptr<BypassEngine> bypass_;
};

} // namespace nmapsim

#endif // NMAPSIM_CLUSTER_HOST_HH_
