#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/logging.hh"

namespace nmapsim {

Event::Event(int priority)
    : priority_(priority)
{
}

Event::~Event()
{
    // Owning components must deschedule before destruction; firing a
    // destroyed event would be use-after-free. The queue tolerates the
    // stale calendar entry (token mismatch) but only while the object
    // lives. panic() from a destructor reaches std::terminate — the
    // intended fail-stop, and unlike assert() it survives Release.
    if (scheduled_)
        panic("event destroyed while scheduled");
}

EventFunctionWrapper::EventFunctionWrapper(std::function<void()> callback,
                                           std::string name, int priority)
    : Event(priority), callback_(std::move(callback)),
      name_(std::move(name))
{
}

EventQueue::EventQueue()
    : buckets_(kBucketCount)
{
}

void
EventQueue::setBit(int slot)
{
    words_[static_cast<std::size_t>(slot >> 6)] |=
        std::uint64_t{1} << (slot & 63);
    summary_[static_cast<std::size_t>(slot >> 12)] |=
        std::uint64_t{1} << ((slot >> 6) & 63);
}

void
EventQueue::clearBit(int slot)
{
    const int w = slot >> 6;
    words_[static_cast<std::size_t>(w)] &=
        ~(std::uint64_t{1} << (slot & 63));
    if (words_[static_cast<std::size_t>(w)] == 0)
        summary_[static_cast<std::size_t>(slot >> 12)] &=
            ~(std::uint64_t{1} << (w & 63));
}

int
EventQueue::findSlot(int from) const
{
    if (from >= kBucketCount)
        return kBucketCount;
    const int w = from >> 6;
    const std::uint64_t first =
        words_[static_cast<std::size_t>(w)] &
        (~std::uint64_t{0} << (from & 63));
    if (first != 0)
        return (w << 6) + std::countr_zero(first);
    int sw = (w + 1) >> 6;
    if (sw >= kSummaryWordCount)
        return kBucketCount;
    std::uint64_t sword = summary_[static_cast<std::size_t>(sw)] &
                          (~std::uint64_t{0} << ((w + 1) & 63));
    for (;;) {
        if (sword != 0) {
            const int wi = (sw << 6) + std::countr_zero(sword);
            return (wi << 6) +
                   std::countr_zero(
                       words_[static_cast<std::size_t>(wi)]);
        }
        if (++sw >= kSummaryWordCount)
            return kBucketCount;
        sword = summary_[static_cast<std::size_t>(sw)];
    }
}

void
EventQueue::insertWheel(const Entry &e, std::int64_t bucket)
{
    if (activeValid_) {
        if (bucket == activeBucket_) {
            // An event landing in the bucket currently being consumed
            // must still fire in (when, priority, seq) order relative
            // to the *unconsumed* tail — e.g. a same-tick
            // higher-priority event scheduled from inside process()
            // fires next, exactly as it would have popped from a heap.
            active_.insert(
                std::upper_bound(
                    active_.begin() +
                        static_cast<std::ptrdiff_t>(activePos_),
                    active_.end(), e),
                e);
            return;
        }
        if (bucket < activeBucket_)
            flushActive();
    }
    const int slot = static_cast<int>(bucket & kSlotMask);
    buckets_[static_cast<std::size_t>(slot)].push_back(e);
    setBit(slot);
    if (slot < cursorSlot_)
        cursorSlot_ = slot;
}

void
EventQueue::flushActive()
{
    // The consumption cursor moved past this bucket's slot, but an
    // insert now targets an earlier bucket (possible only from harness
    // code between runs — e.g. after runUntil() stopped short of the
    // active bucket). Hand the unconsumed tail back to the wheel and
    // rewind; the slots in between are empty, so the rescan is free.
    const int slot = static_cast<int>(activeBucket_ & kSlotMask);
    std::vector<Entry> &bucket = buckets_[static_cast<std::size_t>(slot)];
    for (std::size_t i = activePos_; i < active_.size(); ++i)
        bucket.push_back(active_[i]);
    if (!bucket.empty())
        setBit(slot);
    active_.clear();
    activePos_ = 0;
    activeValid_ = false;
    if (slot < cursorSlot_)
        cursorSlot_ = slot;
}

EventQueue::Next
EventQueue::findNext()
{
    for (;;) {
        while (activePos_ < active_.size()) {
            if (!stale(active_[activePos_]))
                return Next::kActive;
            ++activePos_; // stale entry from a deschedule/reschedule
        }
        if (activeValid_) {
            active_.clear();
            activePos_ = 0;
            activeValid_ = false;
        }
        const int slot = findSlot(cursorSlot_);
        if (slot < kBucketCount) {
            active_.swap(buckets_[static_cast<std::size_t>(slot)]);
            clearBit(slot);
            // A bucket holds a handful of entries; inline insertion
            // sort beats the std::sort call at those sizes. (Entries
            // never compare equal — seq is unique — so the sorts
            // cannot differ.)
            if (active_.size() > 16) {
                std::sort(active_.begin(), active_.end());
            } else {
                for (std::size_t i = 1; i < active_.size(); ++i) {
                    const Entry key = active_[i];
                    std::size_t j = i;
                    for (; j > 0 && key < active_[j - 1]; --j)
                        active_[j] = active_[j - 1];
                    active_[j] = key;
                }
            }
            activePos_ = 0;
            activeValid_ = true;
            activeBucket_ = epochBase_ + slot;
            cursorSlot_ = slot + 1;
            continue;
        }
        cursorSlot_ = kBucketCount;
        while (!overflow_.empty() && stale(overflow_.front())) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          std::greater<Entry>{});
            overflow_.pop_back();
        }
        return overflow_.empty() ? Next::kNone : Next::kOverflow;
    }
}

void
EventQueue::advanceEpoch()
{
    // Caller guarantees the wheel is empty and overflow_.front() is
    // fresh. Re-base the window at that event's (aligned) epoch and
    // pull in every overflow entry that now lands inside it; the
    // front event fires immediately afterwards, which restores the
    // epochBase_ <= bucket(now_) invariant before any user code runs.
    const std::int64_t front =
        overflow_.front().when >> kBucketShift;
    epochBase_ = front & ~static_cast<std::int64_t>(kSlotMask);
    while (!overflow_.empty() &&
           (overflow_.front().when >> kBucketShift) <
               epochBase_ + kBucketCount) {
        const Entry e = overflow_.front();
        std::pop_heap(overflow_.begin(), overflow_.end(),
                      std::greater<Entry>{});
        overflow_.pop_back();
        if (!stale(e))
            insertWheel(e, e.when >> kBucketShift);
    }
}

void
EventQueue::fireFront()
{
    const Entry &e = active_[activePos_++];
    Event *ev = e.event;
    if (e.when < now_)
        panic("event queue went backwards in time");
    now_ = e.when;
    ev->scheduled_ = false;
    --numPending_;
    ++numProcessed_;
    ev->process();
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        throw std::logic_error("schedule: event already scheduled: " +
                               ev->name());
    if (when < now_)
        throw std::logic_error("schedule: tick in the past: " + ev->name());

    ev->when_ = when;
    ev->seq_ = nextSeq_;
    ev->scheduled_ = true;
    const Entry e{when, ev->priority_, nextSeq_++, ev};
    const std::int64_t bucket = when >> kBucketShift;
    if (bucket < epochBase_)
        panic("event queue window behind now");
    if (bucket >= epochBase_ + kBucketCount) {
        overflow_.push_back(e);
        std::push_heap(overflow_.begin(), overflow_.end(),
                       std::greater<Entry>{});
    } else {
        insertWheel(e, bucket);
    }
    ++numPending_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        return;
    // Lazy removal: clear the scheduled flag; the calendar entry is
    // dropped when reached (and a reschedule changes seq_, so the old
    // entry stays stale even once the flag is set again).
    ev->scheduled_ = false;
    --numPending_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

bool
EventQueue::step()
{
    for (;;) {
        switch (findNext()) {
        case Next::kNone:
            return false;
        case Next::kOverflow:
            advanceEpoch();
            continue;
        case Next::kActive:
            fireFront();
            return true;
        }
    }
}

void
EventQueue::runUntil(Tick end)
{
    for (;;) {
        const Next next = findNext();
        if (next == Next::kNone)
            break;
        if (next == Next::kOverflow) {
            // Skipping stale entries (inside findNext) never advances
            // time; stopping short of a future event does not either.
            if (overflow_.front().when > end)
                break;
            advanceEpoch();
            continue;
        }
        if (active_[activePos_].when > end)
            break;
        fireFront();
    }
    if (now_ < end)
        now_ = end;
}

void
EventQueue::runAll()
{
    while (step()) {
    }
}

} // namespace nmapsim
