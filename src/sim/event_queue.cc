#include "sim/event_queue.hh"

#include <stdexcept>

#include "sim/logging.hh"

namespace nmapsim {

Event::Event(int priority)
    : priority_(priority)
{
}

Event::~Event()
{
    // Owning components must deschedule before destruction; firing a
    // destroyed event would be use-after-free. The queue tolerates the
    // stale heap entry (token mismatch) but only while the object
    // lives. panic() from a destructor reaches std::terminate — the
    // intended fail-stop, and unlike assert() it survives Release.
    if (scheduled_)
        panic("event destroyed while scheduled");
}

EventFunctionWrapper::EventFunctionWrapper(std::function<void()> callback,
                                           std::string name, int priority)
    : Event(priority), callback_(std::move(callback)),
      name_(std::move(name))
{
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        throw std::logic_error("schedule: event already scheduled: " +
                               ev->name());
    if (when < now_)
        throw std::logic_error("schedule: tick in the past: " + ev->name());

    ev->when_ = when;
    ev->token_ = nextToken_++;
    ev->scheduled_ = true;
    heap_.push(Entry{when, ev->priority_, nextSeq_++, ev->token_, ev});
    ++numPending_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        return;
    // Lazy removal: invalidate the token; the heap entry is dropped when
    // popped.
    ev->scheduled_ = false;
    ev->token_ = 0;
    --numPending_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        Event *ev = e.event;
        if (!ev->scheduled_ || ev->token_ != e.token)
            continue; // stale entry from a deschedule/reschedule
        if (e.when < now_)
            panic("event queue went backwards in time");
        now_ = e.when;
        ev->scheduled_ = false;
        ev->token_ = 0;
        --numPending_;
        ++numProcessed_;
        ev->process();
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Tick end)
{
    while (!heap_.empty()) {
        // Skip stale entries without advancing time.
        const Entry &top = heap_.top();
        Event *ev = top.event;
        if (!ev->scheduled_ || ev->token_ != top.token) {
            heap_.pop();
            continue;
        }
        if (top.when > end)
            break;
        step();
    }
    if (now_ < end)
        now_ = end;
}

void
EventQueue::runAll()
{
    while (step()) {
    }
}

} // namespace nmapsim
