/**
 * @file
 * Simulated time representation for nmapsim.
 *
 * The simulator measures time in integer nanoseconds ("ticks"). One tick
 * is one nanosecond; helpers convert between human units and ticks. All
 * durations and absolute times in the code base use the Tick type so unit
 * mistakes surface as type-free integer arithmetic in exactly one place.
 */

#ifndef NMAPSIM_SIM_TIME_HH_
#define NMAPSIM_SIM_TIME_HH_

#include <cstdint>

namespace nmapsim {

/** Absolute simulated time or a duration, in nanoseconds. */
using Tick = std::int64_t;

/** One nanosecond expressed in ticks. */
inline constexpr Tick kNanosecond = 1;
/** One microsecond expressed in ticks. */
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond expressed in ticks. */
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second expressed in ticks. */
inline constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert a value in nanoseconds to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * kNanosecond);
}

/** Convert a value in microseconds to ticks. */
constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * kMicrosecond);
}

/** Convert a value in milliseconds to ticks. */
constexpr Tick
milliseconds(double ms)
{
    return static_cast<Tick>(ms * kMillisecond);
}

/** Convert a value in seconds to ticks. */
constexpr Tick
seconds(double s)
{
    return static_cast<Tick>(s * kSecond);
}

/** Convert ticks to floating-point seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / kSecond;
}

/** Convert ticks to floating-point milliseconds. */
constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / kMillisecond;
}

/** Convert ticks to floating-point microseconds. */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / kMicrosecond;
}

/**
 * Number of simulated clock cycles that elapse in @p duration at
 * frequency @p freq_hz, rounded down.
 */
constexpr double
cyclesIn(Tick duration, double freq_hz)
{
    return toSeconds(duration) * freq_hz;
}

/**
 * Duration in ticks needed to execute @p cycles cycles at frequency
 * @p freq_hz, rounded up so that work never completes early.
 */
constexpr Tick
ticksForCycles(double cycles, double freq_hz)
{
    double ns = cycles / freq_hz * 1e9;
    Tick t = static_cast<Tick>(ns);
    return (static_cast<double>(t) < ns) ? t + 1 : t;
}

} // namespace nmapsim

#endif // NMAPSIM_SIM_TIME_HH_
