/**
 * @file
 * Allocation-free containers for the simulator's hot paths.
 *
 * Two building blocks with one goal: no per-packet (or per-event)
 * malloc/free once a run reaches steady state.
 *
 *  - SlabPool<T>: a slab-carved object pool with an explicit freelist.
 *    acquire() hands out value-reset objects, release() returns them
 *    for reuse; releasing an object twice or releasing a pointer the
 *    pool never issued is a fail-stop panic, not silent corruption.
 *    Slabs are never returned to the allocator mid-run, so pointers
 *    stay valid for the pool's lifetime.
 *
 *  - Ring<T>: a power-of-two ring buffer with deque semantics
 *    (push_back/pop_front) and vector storage. A deque allocates and
 *    frees fixed-size chunks as its window slides — per-packet churn on
 *    wire and NIC queues; a ring reaches its high-water capacity once
 *    and never allocates again. Growth preserves FIFO order.
 *
 * Rules (see DESIGN.md "Pooling rules"): pooled objects carry no
 * destructor-managed resources (they are trivially copyable values
 * like Packet); acquire() returns a fully value-initialised object —
 * never the previous occupant's state; containers that live in
 * steady-state paths reserve once and are reused via clear(), not
 * reconstructed.
 */

#ifndef NMAPSIM_SIM_POOL_HH_
#define NMAPSIM_SIM_POOL_HH_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace nmapsim {

/**
 * Slab-carved object pool for trivially copyable value types.
 *
 * Objects are carved out of fixed-size slabs and recycled through a
 * freelist; the allocator is touched only when every previously carved
 * object is live. Double-release and foreign-pointer release are
 * detected and panic.
 */
template <typename T>
class SlabPool
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SlabPool is for value types without owned resources");
    static_assert(std::is_default_constructible_v<T>,
                  "SlabPool resets objects by value-initialisation");

  public:
    explicit SlabPool(std::size_t slab_objects = 256)
        : slabObjects_(slab_objects)
    {
        if (slab_objects == 0)
            panic("SlabPool slab size must be positive");
    }

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    /** Fetch a value-initialised object (reused storage or new slab). */
    T *
    acquire()
    {
        if (freelist_.empty())
            addSlab();
        else
            ++reused_;
        const std::size_t idx = freelist_.back();
        freelist_.pop_back();
        if (!free_[idx])
            panic("SlabPool freelist corruption");
        free_[idx] = false;
        ++live_;
        T *obj = at(idx);
        *obj = T(); // reset-on-reuse: never leak the previous occupant
        return obj;
    }

    /** Return @p obj to the pool; must be a live pointer from acquire(). */
    void
    release(T *obj)
    {
        const std::size_t idx = indexOf(obj);
        if (free_[idx])
            panic("SlabPool double release");
        free_[idx] = true;
        --live_;
        freelist_.push_back(idx);
    }

    /** @name Introspection (pool tests, leak accounting) */
    /**@{*/
    std::size_t liveObjects() const { return live_; }
    std::size_t capacity() const { return slabs_.size() * slabObjects_; }
    std::size_t slabCount() const { return slabs_.size(); }
    /** Number of acquire() calls served from the freelist. */
    std::uint64_t reuseCount() const { return reused_; }
    /**@}*/

  private:
    T *
    at(std::size_t idx)
    {
        return &slabs_[idx / slabObjects_][idx % slabObjects_];
    }

    std::size_t
    indexOf(const T *obj) const
    {
        for (std::size_t s = 0; s < slabs_.size(); ++s) {
            const T *base = slabs_[s].get();
            if (obj >= base && obj < base + slabObjects_)
                return s * slabObjects_ +
                       static_cast<std::size_t>(obj - base);
        }
        panic("SlabPool release of a pointer it never issued");
    }

    void
    addSlab()
    {
        slabs_.push_back(std::make_unique<T[]>(slabObjects_));
        const std::size_t base = (slabs_.size() - 1) * slabObjects_;
        free_.resize(free_.size() + slabObjects_, true);
        // Issue low indices first: freelist_ is consumed from the back.
        for (std::size_t i = slabObjects_; i > 0; --i)
            freelist_.push_back(base + i - 1);
    }

    std::size_t slabObjects_;
    std::vector<std::unique_ptr<T[]>> slabs_;
    std::vector<std::size_t> freelist_; //!< indices ready for reuse
    std::vector<char> free_;            //!< per-object free flag
    std::size_t live_ = 0;
    std::uint64_t reused_ = 0;
};

/**
 * Power-of-two ring buffer with deque semantics and vector storage.
 *
 * push_back/pop_front are O(1); growth (amortised, FIFO-preserving)
 * happens only until the high-water mark is reached, after which the
 * ring never touches the allocator again.
 */
template <typename T>
class Ring
{
  public:
    explicit Ring(std::size_t initial_capacity = 16)
    {
        buf_.resize(std::bit_ceil(
            initial_capacity < 2 ? std::size_t{2} : initial_capacity));
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    T &
    front()
    {
        return buf_[head_];
    }

    const T &
    front() const
    {
        return buf_[head_];
    }

    /** Element @p i positions behind the front (0 == front()). */
    const T &
    at(std::size_t i) const
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void
    push_back(const T &value)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = value;
        ++size_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
        buf_.swap(bigger);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_SIM_POOL_HH_
