#include "sim/rng.hh"

#include <cmath>

namespace nmapsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stdev)
{
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stdev * mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::truncatedNormal(double mean, double stdev, double lo)
{
    for (int i = 0; i < 16; ++i) {
        double v = normal(mean, stdev);
        if (v >= lo)
            return v;
    }
    return lo;
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::int64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 1;
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return 1 + static_cast<std::int64_t>(std::log(u) / std::log(1.0 - p));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace nmapsim
