/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders Event objects by (tick, priority, insertion
 * sequence) and processes them one at a time. Components own their events
 * (usually as data members) and schedule/deschedule them on the queue;
 * descheduling is O(1) via lazy invalidation tokens, which keeps the hot
 * reschedule-heavy paths (CPU slice preemption, interrupt moderation)
 * cheap.
 */

#ifndef NMAPSIM_SIM_EVENT_QUEUE_HH_
#define NMAPSIM_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace nmapsim {

class EventQueue;

/**
 * Base class for all simulation events.
 *
 * An event may be scheduled on at most one queue at a time. Lifetime is
 * managed by the owning component; the queue never deletes events.
 */
class Event
{
  public:
    /** Lower value runs first among events scheduled for the same tick. */
    enum Priority
    {
        kHighPriority = 0,
        kDefaultPriority = 50,
        kLowPriority = 100,
    };

    explicit Event(int priority = kDefaultPriority);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event fires. */
    virtual void process() = 0;

    /** Human-readable identifier for tracing. */
    virtual std::string name() const { return "event"; }

    /** True if currently pending on a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will fire; only valid when scheduled. */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t token_ = 0;
    int priority_;
    bool scheduled_ = false;
};

/**
 * Event whose action is a std::function, for components that do not want
 * a named Event subclass per callback.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback, std::string name,
                         int priority = kDefaultPriority);

    void process() override { callback_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * The global event queue for one simulation.
 *
 * All simulated components in one experiment share a single queue; time
 * advances only by processing events.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev to fire at absolute tick @p when (>= now).
     * The event must not already be scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev to fire @p delay ticks from now. */
    void scheduleIn(Event *ev, Tick delay) { schedule(ev, now_ + delay); }

    /** Remove a pending event; no-op fields if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) then schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /** True when no events are pending. */
    bool empty() const { return numPending_ == 0; }

    /** Number of events currently pending. */
    std::size_t numPending() const { return numPending_; }

    /** Process a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p end. Events exactly at @p end are processed; afterwards now()
     * is max(now, end).
     */
    void runUntil(Tick end);

    /** Run until the queue is empty. */
    void runAll();

    /** Total number of events processed since construction. */
    std::uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t token;
        Event *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextToken_ = 1;
    std::size_t numPending_ = 0;
    std::uint64_t numProcessed_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_SIM_EVENT_QUEUE_HH_
