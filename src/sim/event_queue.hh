/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders Event objects by (tick, priority, insertion
 * sequence) and processes them one at a time. Components own their events
 * (usually as data members) and schedule/deschedule them on the queue;
 * descheduling is O(1) via lazy invalidation tokens, which keeps the hot
 * reschedule-heavy paths (CPU slice preemption, interrupt moderation)
 * cheap.
 *
 * Internally the queue is a calendar queue (a timing wheel with an
 * overflow heap), not a binary heap: the wheel covers a sliding window
 * of 2^8 buckets of 2^9 ticks each (~131 us of 512 ns buckets), events
 * beyond the window wait in a min-heap and are pulled in when the wheel
 * runs dry. Near-term scheduling — the simulator's overwhelmingly common
 * case — is O(1) bucket insertion plus a small per-bucket sort at
 * consumption time, instead of an O(log n) sift over every pending
 * event. The ordering contract is identical to the old heap and is
 * pinned by tests/event_queue_diff_test.cc, which drives this queue and
 * a reference heap implementation through randomized schedules and
 * demands bit-identical firing order (see DESIGN.md).
 */

#ifndef NMAPSIM_SIM_EVENT_QUEUE_HH_
#define NMAPSIM_SIM_EVENT_QUEUE_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace nmapsim {

class EventQueue;

/**
 * Base class for all simulation events.
 *
 * An event may be scheduled on at most one queue at a time. Lifetime is
 * managed by the owning component; the queue never deletes events.
 */
class Event
{
  public:
    /** Lower value runs first among events scheduled for the same tick. */
    enum Priority
    {
        kHighPriority = 0,
        kDefaultPriority = 50,
        kLowPriority = 100,
    };

    explicit Event(int priority = kDefaultPriority);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event fires. */
    virtual void process() = 0;

    /** Human-readable identifier for tracing. */
    virtual std::string name() const { return "event"; }

    /** True if currently pending on a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will fire; only valid when scheduled. */
    Tick when() const { return when_; }

    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    /** Sequence number of the live calendar entry; doubles as the
     *  stale-detection token (each schedule() gets a fresh one). */
    std::uint64_t seq_ = 0;
    int priority_;
    bool scheduled_ = false;
};

/**
 * Event whose action is a std::function, for components that do not want
 * a named Event subclass per callback.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback, std::string name,
                         int priority = kDefaultPriority);

    void process() override { callback_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * Event bound to a member function at compile time. Fires through one
 * virtual dispatch straight into (usually inlined) @p Method — no
 * std::function indirection or closure storage. Use for events that
 * fire millions of times per run (wire delivery, scheduler slices);
 * EventFunctionWrapper remains the right tool everywhere else.
 */
template <typename T, void (T::*Method)()>
class MemberEvent : public Event
{
  public:
    MemberEvent(T *obj, const char *name,
                int priority = kDefaultPriority)
        : Event(priority), obj_(obj), name_(name)
    {
    }

    void process() override { (obj_->*Method)(); }
    std::string name() const override { return name_; }

  private:
    T *obj_;
    const char *name_;
};

/** MemberEvent variant carrying one int argument (e.g. a queue index). */
template <typename T, void (T::*Method)(int)>
class IndexedMemberEvent : public Event
{
  public:
    IndexedMemberEvent(T *obj, int arg, const char *name,
                       int priority = kDefaultPriority)
        : Event(priority), obj_(obj), arg_(arg), name_(name)
    {
    }

    void process() override { (obj_->*Method)(arg_); }
    std::string name() const override { return name_; }

  private:
    T *obj_;
    int arg_;
    const char *name_;
};

/**
 * The global event queue for one simulation.
 *
 * All simulated components in one experiment share a single queue; time
 * advances only by processing events.
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p ev to fire at absolute tick @p when (>= now).
     * The event must not already be scheduled.
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev to fire @p delay ticks from now. */
    void scheduleIn(Event *ev, Tick delay) { schedule(ev, now_ + delay); }

    /** Remove a pending event; no-op fields if not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) then schedule at @p when. */
    void reschedule(Event *ev, Tick when);

    /** True when no events are pending. */
    bool empty() const { return numPending_ == 0; }

    /** Number of events currently pending. */
    std::size_t numPending() const { return numPending_; }

    /** Process a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p end. Events exactly at @p end are processed; afterwards now()
     * is max(now, end).
     */
    void runUntil(Tick end);

    /** Run until the queue is empty. */
    void runAll();

    /** Total number of events processed since construction. */
    std::uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *event;

        bool
        operator<(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }

        bool operator>(const Entry &o) const { return o < *this; }
    };

    /** Where the next fresh (non-stale) entry lives. */
    enum class Next
    {
        kNone,     //!< queue drained (pending entries were all stale)
        kActive,   //!< active_[activePos_] is fresh
        kOverflow, //!< wheel empty; overflow_.front() is fresh
    };

    /** log2 of the bucket width: 2^9 ticks = 512 ns per bucket. */
    static constexpr int kBucketShift = 9;
    /**
     * Buckets per wheel window: 2^8 (window spans ~131 us). Sized so
     * the slot headers and occupancy bitmaps stay cache-resident: the
     * simulation's hot events (slices, ITR, DMA, wire times) all land
     * within tens of microseconds, while the rare long-range timer
     * (jiffies, load trains) takes the overflow heap instead.
     */
    static constexpr int kBucketCount = 1 << 8;
    static constexpr int kSlotMask = kBucketCount - 1;
    static constexpr int kWordCount = kBucketCount / 64;
    static constexpr int kSummaryWordCount = (kWordCount + 63) / 64;

    bool
    stale(const Entry &e) const
    {
        return !e.event->scheduled_ || e.event->seq_ != e.seq;
    }

    void setBit(int slot);
    void clearBit(int slot);
    /** First occupied slot >= @p from, or kBucketCount if none. */
    int findSlot(int from) const;

    /** Place an entry whose bucket lies inside the current window. */
    void insertWheel(const Entry &e, std::int64_t bucket);
    /** Return the active bucket's unconsumed tail to its wheel slot. */
    void flushActive();
    /** Purge stale entries until the next fresh one is located. */
    Next findNext();
    /** Re-base the window at the overflow minimum and drain it in. */
    void advanceEpoch();
    /** Fire active_[activePos_]; caller guarantees it is fresh. */
    void fireFront();

    std::vector<std::vector<Entry>> buckets_;
    /** Per-slot occupancy bits, plus a summary bit per 64-slot word. */
    std::array<std::uint64_t, kWordCount> words_{};
    std::array<std::uint64_t, kSummaryWordCount> summary_{};
    /** Events beyond the window; min-heap ordered by (when, prio, seq). */
    std::vector<Entry> overflow_;

    /** The bucket being consumed, sorted; activePos_ is the read head. */
    std::vector<Entry> active_;
    std::size_t activePos_ = 0;
    bool activeValid_ = false;
    std::int64_t activeBucket_ = -1; //!< absolute bucket number

    /** Window start as an absolute bucket number, kBucketCount-aligned;
     *  invariant: epochBase_ <= (now_ >> kBucketShift). */
    std::int64_t epochBase_ = 0;
    /** Next wheel slot to examine, in [0, kBucketCount]. */
    int cursorSlot_ = 0;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t numPending_ = 0;
    std::uint64_t numProcessed_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_SIM_EVENT_QUEUE_HH_
