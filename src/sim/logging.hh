/**
 * @file
 * Minimal leveled logging and fatal-error helpers.
 *
 * Follows the gem5 convention: fatal() is for user/configuration errors
 * (clean exit semantics, here an exception the caller may catch), panic()
 * is for internal invariant violations.
 */

#ifndef NMAPSIM_SIM_LOGGING_HH_
#define NMAPSIM_SIM_LOGGING_HH_

#include <sstream>
#include <stdexcept>
#include <string>

namespace nmapsim {

/** Severity of a log message. */
enum class LogLevel
{
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kNone = 3,
};

/** Global logging controls; default suppresses debug chatter. */
class Log
{
  public:
    static LogLevel level();
    static void setLevel(LogLevel level);

    /** Emit a message if @p level is at or above the global level. */
    static void write(LogLevel level, const std::string &msg);

    // lint: shared-state-ok(process-wide verbosity, set once in main before any engine runs; never written mid-simulation)
  private:
    static LogLevel level_;
};

/** Error thrown for invalid user configuration (gem5 fatal()). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Error thrown for internal invariant violations (gem5 panic()). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {
    }
};

[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

inline void
inform(const std::string &msg)
{
    Log::write(LogLevel::kInfo, msg);
}

inline void
warn(const std::string &msg)
{
    Log::write(LogLevel::kWarn, msg);
}

inline void
debugLog(const std::string &msg)
{
    Log::write(LogLevel::kDebug, msg);
}

} // namespace nmapsim

#endif // NMAPSIM_SIM_LOGGING_HH_
