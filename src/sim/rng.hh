/**
 * @file
 * Deterministic random number generation for nmapsim.
 *
 * Every experiment owns a single Rng seeded from its configuration, so a
 * run is exactly reproducible from (config, seed). The generator is
 * xoshiro256++ with splitmix64 seeding; the distribution helpers cover
 * everything the workload and hardware models need.
 */

#ifndef NMAPSIM_SIM_RNG_HH_
#define NMAPSIM_SIM_RNG_HH_

#include <cstdint>

namespace nmapsim {

/**
 * Deterministic pseudo-random generator (xoshiro256++).
 *
 * Not thread-safe; the simulator is single-threaded by design.
 */
class Rng
{
  public:
    /** Construct with the given seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Normally distributed value (Box-Muller). */
    double normal(double mean, double stdev);

    /**
     * Normal value truncated below at @p lo; resamples a bounded number
     * of times then clamps, so the tail stays deterministic.
     */
    double truncatedNormal(double mean, double stdev, double lo);

    /** Log-normal value parameterised by the mean of the *underlying*
     *  normal @p mu and its standard deviation @p sigma. */
    double lognormal(double mu, double sigma);

    /** Geometric number of trials >= 1 with success probability p. */
    std::int64_t geometric(double p);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator; used to give each component
     * its own stream so adding a component does not perturb others.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace nmapsim

#endif // NMAPSIM_SIM_RNG_HH_
