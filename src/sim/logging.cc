#include "sim/logging.hh"

#include <cstdio>

namespace nmapsim {

// lint: shared-state-ok(process-wide verbosity, set once in main before any engine runs; never written mid-simulation)
LogLevel Log::level_ = LogLevel::kWarn;

LogLevel
Log::level()
{
    return level_;
}

void
Log::setLevel(LogLevel level)
{
    level_ = level;
}

void
Log::write(LogLevel level, const std::string &msg)
{
    if (level < level_)
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::kDebug:
        tag = "debug";
        break;
      case LogLevel::kInfo:
        tag = "info";
        break;
      case LogLevel::kWarn:
        tag = "warn";
        break;
      case LogLevel::kNone:
        return;
    }
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace nmapsim
