/**
 * @file
 * Point-to-point link model (one direction).
 *
 * Packets handed to the wire are serialised at link bandwidth and
 * delivered after the propagation delay. Serialisation is what turns a
 * batch of requests issued at the same instant into a near-line-rate
 * packet train at the NIC — the arrival pattern that pushes NAPI into
 * polling mode in the paper's Section 3.1.
 */

#ifndef NMAPSIM_NET_WIRE_HH_
#define NMAPSIM_NET_WIRE_HH_

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace nmapsim {

/** One direction of a full-duplex link. */
class Wire
{
  public:
    using Sink = std::function<void(const Packet &)>;

    /**
     * @param eq            simulation event queue
     * @param bandwidth_bps link rate in bits per second (10 GbE default)
     * @param propagation   one-way propagation + switch latency
     */
    Wire(EventQueue &eq, double bandwidth_bps = 10e9,
         Tick propagation = microseconds(5));

    ~Wire();

    Wire(const Wire &) = delete;
    Wire &operator=(const Wire &) = delete;

    /** Set the receiver; must be set before the first send. */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    /** Enqueue a packet for transmission now. */
    void send(const Packet &pkt);

    std::uint64_t packetsDelivered() const { return delivered_; }

  private:
    void deliverHead();

    EventQueue &eq_;
    double bandwidthBps_;
    Tick propagation_;
    Sink sink_;

    std::deque<Packet> inFlight_;
    std::deque<Tick> deliveryTimes_;
    Tick lineIdleAt_ = 0; //!< when the transmitter finishes current work
    std::uint64_t delivered_ = 0;

    EventFunctionWrapper deliverEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_NET_WIRE_HH_
