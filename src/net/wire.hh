/**
 * @file
 * Point-to-point link model (one direction).
 *
 * Packets handed to the wire are serialised at link bandwidth and
 * delivered after the propagation delay. Serialisation is what turns a
 * batch of requests issued at the same instant into a near-line-rate
 * packet train at the NIC — the arrival pattern that pushes NAPI into
 * polling mode in the paper's Section 3.1.
 *
 * A wire may be given a finite transmit queue (switch egress ports are
 * output-queued); packets arriving at a full queue are dropped and
 * accounted, never silently lost. Labels make mis-wiring diagnosable:
 * a send() on a sink-less wire names the wire that was left dangling.
 *
 * Fault hooks (driven by fault/FaultInjector): an optional per-packet
 * fault filter can drop a packet at ingress (loss) or mark it corrupt
 * — a corrupt packet still occupies the line (it serialises and
 * propagates) but is discarded at the receiver, modelling an FCS-drop.
 * A wire can also be administratively downed (link flap, host crash):
 * packets in flight are lost and sends while down are counted drops,
 * never errors. All fault paths are separately accounted so
 * conservation checks can tell loss modes apart.
 */

#ifndef NMAPSIM_NET_WIRE_HH_
#define NMAPSIM_NET_WIRE_HH_

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Verdict of a per-packet fault filter. */
enum class WireFault {
    kNone,    //!< deliver normally
    kDrop,    //!< lose the packet at ingress (never serialises)
    kCorrupt, //!< serialise, then FCS-drop at the receiver
};

/** One direction of a full-duplex link. */
class Wire
{
  public:
    using Sink = std::function<void(const Packet &)>;
    using FaultFilter = std::function<WireFault(const Packet &)>;

    /**
     * @param eq            simulation event queue
     * @param bandwidth_bps link rate in bits per second (10 GbE default)
     * @param propagation   one-way propagation + switch latency
     */
    Wire(EventQueue &eq, double bandwidth_bps = 10e9,
         Tick propagation = microseconds(5));

    ~Wire();

    Wire(const Wire &) = delete;
    Wire &operator=(const Wire &) = delete;

    /** Set the receiver; must be set before the first send. */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    /** Name this wire for diagnostics ("switch->host3" etc.). */
    void setLabel(std::string label) { label_ = std::move(label); }
    const std::string &label() const { return label_; }

    /**
     * Bound the transmit queue to @p packets; a send() finding the
     * queue full drops the packet (counted, not delivered). 0 (the
     * default) leaves the queue unbounded.
     */
    void setQueueLimit(std::size_t packets) { queueLimit_ = packets; }
    std::size_t queueLimit() const { return queueLimit_; }

    /**
     * Install a per-packet fault filter consulted on every send()
     * (fault injection); pass an empty function to remove it. The
     * filter runs before queue-limit accounting, so injected loss and
     * congestion drops stay separately attributable.
     */
    void setFaultFilter(FaultFilter filter)
    {
        faultFilter_ = std::move(filter);
    }

    /**
     * Administratively down (or restore) the link. Downing flushes
     * packets in flight into the link-down drop counters; sends while
     * down are counted drops, not errors.
     */
    void setLinkDown(bool down);
    bool linkDown() const { return linkDown_; }

    /** Enqueue a packet for transmission now. */
    void send(const Packet &pkt);

    /** @name Accounting */
    /**@{*/
    std::uint64_t packetsDelivered() const { return delivered_; }
    std::uint64_t bytesDelivered() const { return bytesDelivered_; }
    std::uint64_t packetsDropped() const { return dropped_; }
    std::uint64_t bytesDropped() const { return bytesDropped_; }
    /** Packets lost to the injected-loss fault filter. */
    std::uint64_t packetsFaultLost() const { return faultLost_; }
    /** Packets corrupted in flight (discarded at the receiver). */
    std::uint64_t packetsCorrupted() const { return corrupted_; }
    /** Packets lost to a downed link (in flight or sent while down). */
    std::uint64_t packetsLinkDownLost() const { return linkDownLost_; }
    /** Packets queued on the wire right now (sent, not yet delivered). */
    std::size_t packetsInFlight() const { return inFlight_.size(); }
    /**@}*/

  private:
    /** One queued transmission: the packet plus its delivery metadata
     *  (a single ring record instead of three parallel deques). */
    struct TxRec
    {
        Packet pkt;
        Tick deliverAt;
        bool corrupt;
    };

    void deliverHead();
    Tick serializationTicks(std::uint32_t size_bytes);

    EventQueue &eq_;
    double bandwidthBps_;
    Tick propagation_;
    Sink sink_;
    FaultFilter faultFilter_;
    std::string label_;
    std::size_t queueLimit_ = 0;
    bool linkDown_ = false;

    Ring<TxRec> inFlight_;
    Tick lineIdleAt_ = 0; //!< when the transmitter finishes current work
    /** Memoised serialisation times: traffic uses a handful of packet
     *  sizes, so two slots absorb nearly every send() division. */
    std::uint32_t serSizeCache_[2] = {0, 0};
    Tick serTicksCache_[2] = {0, 0};
    std::uint64_t delivered_ = 0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t bytesDropped_ = 0;
    std::uint64_t faultLost_ = 0;
    std::uint64_t corrupted_ = 0;
    std::uint64_t linkDownLost_ = 0;

    MemberEvent<Wire, &Wire::deliverHead> deliverEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_NET_WIRE_HH_
