/**
 * @file
 * Network packet representation.
 *
 * One request maps to one request packet (client -> server) and one
 * response packet (server -> client), the common case for memcached
 * GET/SET and small nginx responses. The flow hash drives RSS steering.
 */

#ifndef NMAPSIM_NET_PACKET_HH_
#define NMAPSIM_NET_PACKET_HH_

#include <cstdint>

#include "sim/time.hh"

namespace nmapsim {

/** A single packet on the simulated wire. */
struct Packet
{
    enum class Kind : std::uint8_t
    {
        kRequest,  //!< client -> server
        kResponse, //!< server -> client
    };

    std::uint64_t requestId = 0; //!< app-level request this belongs to
    Kind kind = Kind::kRequest;
    std::uint32_t flowHash = 0;  //!< connection hash used by RSS
    std::uint32_t sizeBytes = 0; //!< wire size incl. headers
    Tick sendTime = 0;           //!< when the client issued the request
    bool latencyCritical = true; //!< NCAP's packet classification bit

    // Service-topology addressing. Single-tier traffic leaves all of
    // these at their defaults; the ClusterSwitch owns tier/hopStart
    // stamping and ServerApp echoes them through service.
    std::uint8_t tier = 0;     //!< destination tier of a request
    std::uint8_t hops = 0;     //!< completed host traversals so far
    Tick hopStart = 0;         //!< when the current hop was dispatched
    bool control = false;      //!< probe/health traffic, not goodput

    // Overload-control fields (resilience.*). Non-resilient traffic
    // leaves both at their defaults.
    Tick deadline = 0;    //!< absolute completion deadline; 0 = none
    bool rejected = false; //!< response is a shed notice, not a result
};

} // namespace nmapsim

#endif // NMAPSIM_NET_PACKET_HH_
