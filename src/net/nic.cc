#include "net/nic.hh"

#include "sim/logging.hh"

namespace nmapsim {

Nic::Nic(EventQueue &eq, const NicConfig &config)
    : eq_(eq), config_(config)
{
    if (config_.numQueues < 1)
        fatal("Nic requires at least one queue");
    queues_.resize(static_cast<std::size_t>(config_.numQueues));
    for (int q = 0; q < config_.numQueues; ++q) {
        Queue &queue = queues_[static_cast<std::size_t>(q)];
        queue.lastIrq = -config_.itr; // first interrupt is not moderated
        queue.itrEvent = std::make_unique<
            IndexedMemberEvent<Nic, &Nic::maybeRaiseIrq>>(this, q,
                                                          "nic.itr");
        queue.dmaEvent = std::make_unique<
            IndexedMemberEvent<Nic, &Nic::dmaComplete>>(this, q,
                                                        "nic.dma");
    }
}

Nic::~Nic()
{
    for (auto &queue : queues_) {
        eq_.deschedule(queue.itrEvent.get());
        eq_.deschedule(queue.dmaEvent.get());
    }
}

void
Nic::setRxRingSize(std::size_t slots)
{
    if (slots < 1)
        fatal("Nic rx ring must hold at least one descriptor");
    config_.rxRingSize = slots;
}

void
Nic::addPacketObserver(PacketObserver obs)
{
    observers_.push_back(std::move(obs));
}

void
Nic::receive(const Packet &pkt)
{
    ++received_;
    for (const auto &obs : observers_)
        obs(pkt);

    int q = rssQueue(pkt.flowHash);
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    if (queue.rx.size() >= config_.rxRingSize) {
        ++dropped_;
        return;
    }
    queue.rx.push_back(pkt);
    maybeRaiseIrq(q);
}

bool
Nic::popRx(int q, Packet &out)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    if (queue.rx.empty())
        return false;
    out = queue.rx.front();
    queue.rx.pop_front();
    ++rxHarvested_;
    return true;
}

std::uint32_t
Nic::consumeTx(int q, std::uint32_t n)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    std::uint32_t taken = std::min(n, queue.txPending);
    queue.txPending -= taken;
    txConsumed_ += taken;
    return taken;
}

void
Nic::disableIrq(int q)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    queue.irqEnabled = false;
    eq_.deschedule(queue.itrEvent.get());
}

void
Nic::enableIrq(int q)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    queue.irqEnabled = true;
    maybeRaiseIrq(q);
}

void
Nic::maybeRaiseIrq(int q)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    if (!queue.irqEnabled)
        return;
    if (queue.rx.empty() && queue.txPending == 0)
        return;
    Tick earliest = queue.lastIrq + config_.itr;
    if (eq_.now() >= earliest) {
        raiseIrq(q);
    } else if (!queue.itrEvent->scheduled()) {
        eq_.schedule(queue.itrEvent.get(), earliest);
    }
}

void
Nic::raiseIrq(int q)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    queue.lastIrq = eq_.now();
    ++irqsRaised_;
    if (!irq_)
        panic("Nic interrupt with no handler attached");
    irq_(q);
}

void
Nic::transmit(int q, const Packet &pkt)
{
    if (!txWire_)
        panic("Nic::transmit without a Tx wire");
    ++transmitted_;
    txWire_->send(pkt);

    // The Tx completion descriptor is written back after the DMA
    // latency; NAPI then reaps it.
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    ++queue.dmaInFlight;
    if (!queue.dmaEvent->scheduled())
        eq_.scheduleIn(queue.dmaEvent.get(), config_.dmaLatency);
}

void
Nic::dmaComplete(int q)
{
    Queue &queue = queues_[static_cast<std::size_t>(q)];
    // Batch: all DMAs issued before this event completed by now.
    queue.txPending += queue.dmaInFlight;
    queue.dmaInFlight = 0;
    maybeRaiseIrq(q);
}

} // namespace nmapsim
