#include "net/wire.hh"

#include "sim/logging.hh"

namespace nmapsim {

Wire::Wire(EventQueue &eq, double bandwidth_bps, Tick propagation)
    : eq_(eq), bandwidthBps_(bandwidth_bps), propagation_(propagation),
      deliverEvent_([this] { deliverHead(); }, "wire.deliver")
{
    if (bandwidth_bps <= 0.0)
        fatal("Wire bandwidth must be positive");
}

Wire::~Wire()
{
    eq_.deschedule(&deliverEvent_);
}

void
Wire::send(const Packet &pkt)
{
    if (!sink_)
        panic("Wire::send without a sink");
    Tick start = std::max(eq_.now(), lineIdleAt_);
    Tick ser = static_cast<Tick>(static_cast<double>(pkt.sizeBytes) * 8.0 /
                                 bandwidthBps_ * 1e9);
    if (ser < 1)
        ser = 1;
    lineIdleAt_ = start + ser;

    Packet copy = pkt;
    // Stash the delivery time in the queue ordering: packets are FIFO,
    // so the head always has the earliest delivery.
    inFlight_.push_back(copy);
    deliveryTimes_.push_back(lineIdleAt_ + propagation_);
    if (!deliverEvent_.scheduled())
        eq_.schedule(&deliverEvent_, deliveryTimes_.front());
}

void
Wire::deliverHead()
{
    while (!inFlight_.empty() && deliveryTimes_.front() <= eq_.now()) {
        Packet pkt = inFlight_.front();
        inFlight_.pop_front();
        deliveryTimes_.pop_front();
        ++delivered_;
        sink_(pkt);
    }
    if (!inFlight_.empty())
        eq_.schedule(&deliverEvent_, deliveryTimes_.front());
}

} // namespace nmapsim
