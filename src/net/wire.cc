#include "net/wire.hh"

#include "sim/logging.hh"

namespace nmapsim {

Wire::Wire(EventQueue &eq, double bandwidth_bps, Tick propagation)
    : eq_(eq), bandwidthBps_(bandwidth_bps), propagation_(propagation),
      deliverEvent_([this] { deliverHead(); }, "wire.deliver")
{
    if (bandwidth_bps <= 0.0)
        fatal("Wire bandwidth must be positive");
}

Wire::~Wire()
{
    eq_.deschedule(&deliverEvent_);
}

void
Wire::setLinkDown(bool down)
{
    if (down == linkDown_)
        return;
    linkDown_ = down;
    if (down) {
        // Everything on the line is lost: the signal stops, nothing
        // reaches the far end.
        linkDownLost_ += inFlight_.size();
        inFlight_.clear();
        deliveryTimes_.clear();
        corruptFlags_.clear();
        eq_.deschedule(&deliverEvent_);
    }
}

void
Wire::send(const Packet &pkt)
{
    if (!sink_) {
        std::string which =
            label_.empty() ? std::string("<unlabelled>") : label_;
        fatal("Wire::send on wire '" + which +
              "' before setSink(): every wire must be connected to a "
              "receiver before traffic starts (mis-wired topology?)");
    }
    if (linkDown_) {
        ++linkDownLost_;
        return;
    }
    bool corrupt = false;
    if (faultFilter_) {
        switch (faultFilter_(pkt)) {
          case WireFault::kNone:
            break;
          case WireFault::kDrop:
            ++faultLost_;
            return;
          case WireFault::kCorrupt:
            corrupt = true;
            break;
        }
    }
    if (queueLimit_ != 0 && inFlight_.size() >= queueLimit_) {
        ++dropped_;
        bytesDropped_ += pkt.sizeBytes;
        return;
    }
    Tick start = std::max(eq_.now(), lineIdleAt_);
    Tick ser = static_cast<Tick>(static_cast<double>(pkt.sizeBytes) * 8.0 /
                                 bandwidthBps_ * 1e9);
    if (ser < 1)
        ser = 1;
    lineIdleAt_ = start + ser;

    Packet copy = pkt;
    // Stash the delivery time in the queue ordering: packets are FIFO,
    // so the head always has the earliest delivery.
    inFlight_.push_back(copy);
    deliveryTimes_.push_back(lineIdleAt_ + propagation_);
    corruptFlags_.push_back(corrupt);
    if (!deliverEvent_.scheduled())
        eq_.schedule(&deliverEvent_, deliveryTimes_.front());
}

void
Wire::deliverHead()
{
    while (!inFlight_.empty() && deliveryTimes_.front() <= eq_.now()) {
        Packet pkt = inFlight_.front();
        bool corrupt = corruptFlags_.front();
        inFlight_.pop_front();
        deliveryTimes_.pop_front();
        corruptFlags_.pop_front();
        if (corrupt) {
            // A mangled frame consumed line time but fails the FCS
            // check: the receiver discards it without ever seeing it.
            ++corrupted_;
            continue;
        }
        ++delivered_;
        bytesDelivered_ += pkt.sizeBytes;
        sink_(pkt);
    }
    if (!inFlight_.empty())
        eq_.schedule(&deliverEvent_, deliveryTimes_.front());
}

} // namespace nmapsim
