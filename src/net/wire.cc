#include "net/wire.hh"

#include "sim/logging.hh"

namespace nmapsim {

Wire::Wire(EventQueue &eq, double bandwidth_bps, Tick propagation)
    : eq_(eq), bandwidthBps_(bandwidth_bps), propagation_(propagation),
      deliverEvent_(this, "wire.deliver")
{
    if (bandwidth_bps <= 0.0)
        fatal("Wire bandwidth must be positive");
}

Wire::~Wire()
{
    eq_.deschedule(&deliverEvent_);
}

void
Wire::setLinkDown(bool down)
{
    if (down == linkDown_)
        return;
    linkDown_ = down;
    if (down) {
        // Everything on the line is lost: the signal stops, nothing
        // reaches the far end.
        linkDownLost_ += inFlight_.size();
        inFlight_.clear();
        eq_.deschedule(&deliverEvent_);
    }
}

Tick
Wire::serializationTicks(std::uint32_t size_bytes)
{
    // Memoised: the expression (and therefore its floating-point
    // rounding) is exactly the per-packet computation this replaces,
    // evaluated once per distinct size instead of once per packet.
    if (serSizeCache_[0] == size_bytes)
        return serTicksCache_[0];
    if (serSizeCache_[1] == size_bytes) {
        std::swap(serSizeCache_[0], serSizeCache_[1]);
        std::swap(serTicksCache_[0], serTicksCache_[1]);
        return serTicksCache_[0];
    }
    Tick ser = static_cast<Tick>(static_cast<double>(size_bytes) * 8.0 /
                                 bandwidthBps_ * 1e9);
    if (ser < 1)
        ser = 1;
    serSizeCache_[1] = serSizeCache_[0];
    serTicksCache_[1] = serTicksCache_[0];
    serSizeCache_[0] = size_bytes;
    serTicksCache_[0] = ser;
    return ser;
}

void
Wire::send(const Packet &pkt)
{
    if (!sink_) {
        std::string which =
            label_.empty() ? std::string("<unlabelled>") : label_;
        fatal("Wire::send on wire '" + which +
              "' before setSink(): every wire must be connected to a "
              "receiver before traffic starts (mis-wired topology?)");
    }
    if (linkDown_) {
        ++linkDownLost_;
        return;
    }
    bool corrupt = false;
    if (faultFilter_) {
        switch (faultFilter_(pkt)) {
          case WireFault::kNone:
            break;
          case WireFault::kDrop:
            ++faultLost_;
            return;
          case WireFault::kCorrupt:
            corrupt = true;
            break;
        }
    }
    if (queueLimit_ != 0 && inFlight_.size() >= queueLimit_) {
        ++dropped_;
        bytesDropped_ += pkt.sizeBytes;
        return;
    }
    Tick start = std::max(eq_.now(), lineIdleAt_);
    lineIdleAt_ = start + serializationTicks(pkt.sizeBytes);

    // Packets are FIFO, so the head always has the earliest delivery.
    inFlight_.push_back(
        TxRec{pkt, lineIdleAt_ + propagation_, corrupt});
    if (!deliverEvent_.scheduled())
        eq_.schedule(&deliverEvent_, inFlight_.front().deliverAt);
}

void
Wire::deliverHead()
{
    while (!inFlight_.empty() &&
           inFlight_.front().deliverAt <= eq_.now()) {
        const TxRec rec = inFlight_.front();
        inFlight_.pop_front();
        if (rec.corrupt) {
            // A mangled frame consumed line time but fails the FCS
            // check: the receiver discards it without ever seeing it.
            ++corrupted_;
            continue;
        }
        ++delivered_;
        bytesDelivered_ += rec.pkt.sizeBytes;
        sink_(rec.pkt);
    }
    if (!inFlight_.empty())
        eq_.schedule(&deliverEvent_, inFlight_.front().deliverAt);
}

} // namespace nmapsim
