/**
 * @file
 * Multi-queue NIC with RSS steering and interrupt moderation.
 *
 * Models the evaluation setup's Intel 82599: Receive Side Scaling hashes
 * each flow onto one of the per-core Rx queues, and each queue's
 * interrupt is moderated so that interrupts are generated at most once
 * per ITR interval (10 us on the 82599, Section 5.1). The OS's NAPI
 * context disables a queue's interrupt while polling it and re-arms it
 * with napi_complete, exactly as the ixgbe driver does.
 *
 * Tx completions are posted per queue and consumed by the same NAPI poll
 * loop, so transmit activity contributes to the interrupt/polling packet
 * counts the paper measures.
 */

#ifndef NMAPSIM_NET_NIC_HH_
#define NMAPSIM_NET_NIC_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Static NIC configuration. */
struct NicConfig
{
    int numQueues = 8;            //!< one per core with RSS
    std::size_t rxRingSize = 2048; //!< per-queue Rx descriptor ring
    Tick itr = microseconds(10);  //!< min interrupt period per queue
    Tick dmaLatency = microseconds(1); //!< Tx DMA completion delay

    bool operator==(const NicConfig &) const = default;
};

/** The server's network interface card. */
class Nic
{
  public:
    /** Invoked when queue @p q raises an interrupt at the CPU. */
    using IrqHandler = std::function<void(int q)>;
    /** Invoked for every packet the NIC receives (NCAP's monitor). */
    using PacketObserver = std::function<void(const Packet &)>;

    Nic(EventQueue &eq, const NicConfig &config);
    ~Nic();

    Nic(const Nic &) = delete;
    Nic &operator=(const Nic &) = delete;

    const NicConfig &config() const { return config_; }
    int numQueues() const { return config_.numQueues; }

    /**
     * Resize the per-queue Rx descriptor ring at runtime (fault
     * injection: ring degradation). Packets already queued stay; the
     * new bound applies to subsequent arrivals.
     */
    void setRxRingSize(std::size_t slots);

    /** Current per-queue Rx ring bound (may shrink under ring faults;
     *  the bypass harvest path caps its burst size here). */
    std::size_t rxRingSize() const { return config_.rxRingSize; }

    /** Attach the CPU-side interrupt handler (one for all queues). */
    void setIrqHandler(IrqHandler handler) { irq_ = std::move(handler); }

    /** Attach the Tx wire toward the client. */
    void setTxWire(Wire *wire) { txWire_ = wire; }

    /** Register an observer for received packets (e.g. NCAP monitor). */
    void addPacketObserver(PacketObserver obs);

    /** Wire sink: a packet arrived from the client. */
    void receive(const Packet &pkt);

    /** @name NAPI-side queue interface */
    /**@{*/
    std::size_t rxDepth(int q) const { return queues_[q].rx.size(); }

    /** Pop the oldest Rx packet; returns false when the ring is empty. */
    bool popRx(int q, Packet &out);

    /** Number of unconsumed Tx completions on queue @p q. */
    std::uint32_t txPending(int q) const { return queues_[q].txPending; }

    /** Consume up to @p n Tx completions; returns how many were taken. */
    std::uint32_t consumeTx(int q, std::uint32_t n);

    bool irqEnabled(int q) const { return queues_[q].irqEnabled; }

    /** Mask queue @p q's interrupt (entering polling). */
    void disableIrq(int q);

    /**
     * Re-arm queue @p q's interrupt (napi_complete). If work is already
     * pending the interrupt fires again, subject to ITR moderation.
     */
    void enableIrq(int q);
    /**@}*/

    /** Transmit a response toward the client. */
    void transmit(int q, const Packet &pkt);

    /** @name Statistics */
    /**@{*/
    std::uint64_t packetsReceived() const { return received_; }
    std::uint64_t packetsDropped() const { return dropped_; }
    std::uint64_t interruptsRaised() const { return irqsRaised_; }
    std::uint64_t packetsTransmitted() const { return transmitted_; }

    /** Rx packets the OS harvested from the rings via popRx(). */
    std::uint64_t rxHarvested() const { return rxHarvested_; }

    /** Tx completions the OS consumed via consumeTx(). */
    std::uint64_t txConsumed() const { return txConsumed_; }
    /**@}*/

    /** Queue index RSS assigns to @p flow_hash. */
    int
    rssQueue(std::uint32_t flow_hash) const
    {
        return static_cast<int>(flow_hash %
                                static_cast<std::uint32_t>(
                                    config_.numQueues));
    }

  private:
    void maybeRaiseIrq(int q);
    void raiseIrq(int q);
    void dmaComplete(int q);

    struct Queue
    {
        Ring<Packet> rx;
        std::uint32_t txPending = 0;
        bool irqEnabled = true;
        Tick lastIrq;
        std::unique_ptr<IndexedMemberEvent<Nic, &Nic::maybeRaiseIrq>>
            itrEvent;
        std::unique_ptr<IndexedMemberEvent<Nic, &Nic::dmaComplete>>
            dmaEvent;
        std::uint32_t dmaInFlight = 0;
    };

    EventQueue &eq_;
    NicConfig config_;
    IrqHandler irq_;
    Wire *txWire_ = nullptr;
    std::vector<PacketObserver> observers_;
    std::vector<Queue> queues_;

    std::uint64_t received_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t irqsRaised_ = 0;
    std::uint64_t transmitted_ = 0;
    std::uint64_t rxHarvested_ = 0;
    std::uint64_t txConsumed_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_NET_NIC_HH_
