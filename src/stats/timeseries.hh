/**
 * @file
 * Fixed-interval time-series accumulators.
 *
 * The paper's trace figures (Fig. 2/7/9) sample counters every 1 ms; a
 * TimeSeries bins values into fixed-width buckets for exactly that kind
 * of plot. An EventMarkSeries records discrete event times (ksoftirqd
 * wake-ups, CC6 entries).
 */

#ifndef NMAPSIM_STATS_TIMESERIES_HH_
#define NMAPSIM_STATS_TIMESERIES_HH_

#include <cstddef>
#include <vector>

#include "sim/time.hh"

namespace nmapsim {

/** Accumulates scalar values into fixed-width time buckets. */
class TimeSeries
{
  public:
    /**
     * @param bucket_width width of one bucket in ticks (> 0)
     * @param start        tick at which bucket 0 begins
     */
    explicit TimeSeries(Tick bucket_width, Tick start = 0);

    /** Add @p value to the bucket containing @p t. */
    void add(Tick t, double value);

    /**
     * Record an instantaneous level at @p t; the bucket reports the last
     * level set within it, and queries fill forward from earlier buckets.
     */
    void setLevel(Tick t, double value);

    /** Sum accumulated in the bucket containing @p t (0 if none). */
    double at(Tick t) const;

    /** Number of buckets with any data (index of last touched + 1). */
    std::size_t numBuckets() const { return buckets_.size(); }

    Tick bucketWidth() const { return bucketWidth_; }
    Tick start() const { return start_; }

    /** Sum/level in bucket @p i; buckets never touched read as 0 for
     *  accumulation series and as the previous level for level series. */
    double bucket(std::size_t i) const;

    /** Midpoint tick of bucket @p i, for plotting. */
    Tick bucketTime(std::size_t i) const;

    /** Sum over all buckets. */
    double total() const;

  private:
    std::size_t indexFor(Tick t) const;
    void grow(std::size_t idx);

    Tick bucketWidth_;
    Tick start_;
    bool levelMode_ = false;
    std::vector<double> buckets_;
    std::vector<bool> touched_;
};

/** Records the ticks at which a discrete event occurred. */
class EventMarkSeries
{
  public:
    void mark(Tick t) { marks_.push_back(t); }
    const std::vector<Tick> &marks() const { return marks_; }
    std::size_t count() const { return marks_.size(); }

    /** Number of marks in [from, to). */
    std::size_t countInWindow(Tick from, Tick to) const;

  private:
    std::vector<Tick> marks_;
};

} // namespace nmapsim

#endif // NMAPSIM_STATS_TIMESERIES_HH_
