/**
 * @file
 * Streaming summary statistics (count/mean/stdev/min/max).
 *
 * Uses Welford's online algorithm so accumulating millions of samples is
 * numerically stable; backs the re-transition and wake-up latency tables.
 */

#ifndef NMAPSIM_STATS_SUMMARY_HH_
#define NMAPSIM_STATS_SUMMARY_HH_

#include <cmath>
#include <cstdint>
#include <limits>

namespace nmapsim {

/** Online accumulator of scalar samples. */
class SummaryStats
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++count_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        sum_ += x;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance (n - 1 denominator). */
    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        return m2_ / static_cast<double>(count_ - 1);
    }

    double stdev() const { return std::sqrt(variance()); }

    /** Reset to the empty state. */
    void
    reset()
    {
        *this = SummaryStats();
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace nmapsim

#endif // NMAPSIM_STATS_SUMMARY_HH_
