/**
 * @file
 * RAPL-style integrating energy meter.
 *
 * Components report power-level changes as they happen; the meter
 * integrates power over simulated time. The package meter aggregates
 * per-core meters plus an uncore floor, mirroring how the paper reads
 * the RAPL package counter.
 */

#ifndef NMAPSIM_STATS_ENERGY_METER_HH_
#define NMAPSIM_STATS_ENERGY_METER_HH_

#include <cstddef>
#include <vector>

#include "sim/time.hh"

namespace nmapsim {

/** Integrates a piecewise-constant power signal into joules. */
class EnergyMeter
{
  public:
    /**
     * Report that from @p now onwards the measured domain draws
     * @p watts. Ticks before the previous call are charged at the
     * previous level. @p now must not decrease across calls.
     */
    void setPower(Tick now, double watts);

    /** Current power level in watts. */
    double power() const { return watts_; }

    /** Energy accumulated up to @p now, in joules. */
    double energyJoules(Tick now) const;

    /** Forget energy accumulated before @p now (warm-up trimming). */
    void resetAt(Tick now);

  private:
    double joules_ = 0.0;
    double watts_ = 0.0;
    Tick lastUpdate_ = 0;
};

/**
 * Sums several EnergyMeters plus a constant uncore/package floor; the
 * analogue of the RAPL package-energy counter the paper reports.
 */
class PackageEnergyMeter
{
  public:
    explicit PackageEnergyMeter(double uncore_watts = 0.0)
        : uncoreWatts_(uncore_watts)
    {
    }

    /** Register a per-core meter; the pointer must outlive this object. */
    void addMeter(const EnergyMeter *meter) { meters_.push_back(meter); }

    double uncoreWatts() const { return uncoreWatts_; }

    /** Total package energy accumulated in [measureStart, now]. */
    double energyJoules(Tick now) const;

    /** Begin measuring at @p now (discards earlier accumulation). */
    void startMeasurement(Tick now);

  private:
    double uncoreWatts_;
    Tick measureStart_ = 0;
    std::vector<const EnergyMeter *> meters_;
    std::vector<double> baseline_;
};

} // namespace nmapsim

#endif // NMAPSIM_STATS_ENERGY_METER_HH_
