/**
 * @file
 * Per-request latency recording and percentile/CDF reporting.
 *
 * The recorder keeps every (completion tick, latency) pair so the
 * benchmarks can emit both the paper's latency-vs-time scatter plots
 * (Fig. 3/10/16) and the CDFs (Fig. 4/11), plus exact percentiles
 * (Fig. 12/14).
 */

#ifndef NMAPSIM_STATS_LATENCY_RECORDER_HH_
#define NMAPSIM_STATS_LATENCY_RECORDER_HH_

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/time.hh"

namespace nmapsim {

/** One completed request observation. */
struct LatencySample
{
    Tick completionTime; //!< when the response reached the client
    Tick latency;        //!< end-to-end response time
};

/** Collects end-to-end latencies for one experiment. */
class LatencyRecorder
{
  public:
    /** Record one completed request. */
    void
    record(Tick completion_time, Tick latency)
    {
        samples_.push_back({completion_time, latency});
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Latency at percentile @p p in [0, 100]. p = 99 gives the paper's
     * P99 tail latency. Returns 0 when empty.
     */
    Tick percentile(double p) const;

    /** Mean latency in ticks; 0 when empty. */
    double mean() const;

    /** Maximum observed latency; 0 when empty. */
    Tick max() const;

    /** Fraction of requests with latency strictly greater than @p slo. */
    double fractionAbove(Tick slo) const;

    /**
     * Empirical CDF evaluated at @p points latencies spread evenly in
     * quantile space; each pair is (latency, cumulative fraction).
     */
    std::vector<std::pair<Tick, double>> cdf(std::size_t points) const;

    /** All raw samples in completion-time order. */
    std::vector<LatencySample> trace() const;

    /** Drop all samples recorded before @p cutoff (warm-up trimming). */
    void discardBefore(Tick cutoff);

    /** Append every sample of @p other (e.g. cluster-wide percentiles
     *  from per-host recorders). */
    void
    merge(const LatencyRecorder &other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        sorted_ = false;
    }

    /** Remove every sample. */
    void
    clear()
    {
        samples_.clear();
        sorted_ = false;
    }

  private:
    void ensureSorted() const;

    mutable std::vector<LatencySample> samples_;
    mutable bool sorted_ = false;
};

} // namespace nmapsim

#endif // NMAPSIM_STATS_LATENCY_RECORDER_HH_
