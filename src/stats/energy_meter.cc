#include "stats/energy_meter.hh"

#include "sim/logging.hh"

namespace nmapsim {

void
EnergyMeter::setPower(Tick now, double watts)
{
    if (now < lastUpdate_)
        panic("EnergyMeter::setPower: time went backwards");
    joules_ += watts_ * toSeconds(now - lastUpdate_);
    watts_ = watts;
    lastUpdate_ = now;
}

double
EnergyMeter::energyJoules(Tick now) const
{
    double j = joules_;
    if (now > lastUpdate_)
        j += watts_ * toSeconds(now - lastUpdate_);
    return j;
}

void
EnergyMeter::resetAt(Tick now)
{
    joules_ = -watts_ * toSeconds(now - lastUpdate_);
    // After this, energyJoules(now) == 0 and integration continues at
    // the current power level.
}

double
PackageEnergyMeter::energyJoules(Tick now) const
{
    double j = uncoreWatts_ * toSeconds(now - measureStart_);
    for (std::size_t i = 0; i < meters_.size(); ++i) {
        double base = i < baseline_.size() ? baseline_[i] : 0.0;
        j += meters_[i]->energyJoules(now) - base;
    }
    return j;
}

void
PackageEnergyMeter::startMeasurement(Tick now)
{
    measureStart_ = now;
    baseline_.clear();
    baseline_.reserve(meters_.size());
    for (const EnergyMeter *m : meters_)
        baseline_.push_back(m->energyJoules(now));
}

} // namespace nmapsim
