/**
 * @file
 * Fixed-width ASCII table writer used by the benchmark harness to print
 * the paper's tables and figure series in a readable, diff-able form.
 */

#ifndef NMAPSIM_STATS_TABLE_HH_
#define NMAPSIM_STATS_TABLE_HH_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace nmapsim {

/** Simple column-aligned table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage with sign. */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table with column padding and a separator rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (no padding). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nmapsim

#endif // NMAPSIM_STATS_TABLE_HH_
