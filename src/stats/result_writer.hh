/**
 * @file
 * Declarative result sink: typed records out, JSON or CSV in one call.
 *
 * Every harness and bench produces flat per-run records (config
 * dimensions + measured metrics). ResultWriter collects them as typed
 * key/value rows and serialises the lot as a JSON array of objects or
 * as CSV with a union header (first-seen key order; cells a record
 * lacks are empty). Doubles print shortest-round-trip, so written
 * files are stable across runs of identical results.
 */

#ifndef NMAPSIM_STATS_RESULT_WRITER_HH_
#define NMAPSIM_STATS_RESULT_WRITER_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nmapsim {

/** Collects typed records and writes them as JSON or CSV. */
class ResultWriter
{
  public:
    /** One cell: string, double, signed/unsigned integer or bool. */
    using Value = std::variant<std::string, double, std::int64_t,
                               std::uint64_t, bool>;

    /** One row; fields keep insertion order. */
    class Record
    {
      public:
        Record &set(const std::string &key, std::string v);
        Record &set(const std::string &key, const char *v);
        Record &set(const std::string &key, double v);
        Record &set(const std::string &key, std::int64_t v);
        Record &set(const std::string &key, int v);
        Record &set(const std::string &key, std::uint64_t v);
        Record &set(const std::string &key, bool v);

        const std::vector<std::pair<std::string, Value>> &
        fields() const
        {
            return fields_;
        }

      private:
        Record &setValue(const std::string &key, Value v);

        std::vector<std::pair<std::string, Value>> fields_;
    };

    /** Append an empty record and return it for filling in. */
    Record &add();

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Serialise as a JSON array of objects (non-finite -> null). */
    void writeJson(std::ostream &os) const;

    /** Serialise as CSV with a union header over all records. */
    void writeCsv(std::ostream &os) const;

    /** Write to @p path; fatal() when the file cannot be opened. */
    void writeJsonFile(const std::string &path) const;
    void writeCsvFile(const std::string &path) const;

    /** Shortest round-trip representation of @p v ("nan"/"inf" kept). */
    static std::string formatDouble(double v);

  private:
    std::vector<Record> records_;
};

} // namespace nmapsim

#endif // NMAPSIM_STATS_RESULT_WRITER_HH_
