#include "stats/timeseries.hh"

#include "sim/logging.hh"

namespace nmapsim {

TimeSeries::TimeSeries(Tick bucket_width, Tick start)
    : bucketWidth_(bucket_width), start_(start)
{
    if (bucket_width <= 0)
        fatal("TimeSeries bucket width must be positive");
}

std::size_t
TimeSeries::indexFor(Tick t) const
{
    if (t < start_)
        return 0;
    return static_cast<std::size_t>((t - start_) / bucketWidth_);
}

void
TimeSeries::grow(std::size_t idx)
{
    if (idx >= buckets_.size()) {
        buckets_.resize(idx + 1, 0.0);
        touched_.resize(idx + 1, false);
    }
}

void
TimeSeries::add(Tick t, double value)
{
    std::size_t idx = indexFor(t);
    grow(idx);
    buckets_[idx] += value;
    touched_[idx] = true;
}

void
TimeSeries::setLevel(Tick t, double value)
{
    levelMode_ = true;
    std::size_t idx = indexFor(t);
    grow(idx);
    buckets_[idx] = value;
    touched_[idx] = true;
}

double
TimeSeries::at(Tick t) const
{
    std::size_t idx = indexFor(t);
    return bucket(idx);
}

double
TimeSeries::bucket(std::size_t i) const
{
    if (i >= buckets_.size()) {
        if (levelMode_ && !buckets_.empty())
            i = buckets_.size() - 1;
        else
            return 0.0;
    }
    if (!levelMode_)
        return buckets_[i];
    // Level series fill forward from the last touched bucket.
    for (std::size_t j = i + 1; j-- > 0;) {
        if (touched_[j])
            return buckets_[j];
    }
    return 0.0;
}

Tick
TimeSeries::bucketTime(std::size_t i) const
{
    return start_ + static_cast<Tick>(i) * bucketWidth_ + bucketWidth_ / 2;
}

double
TimeSeries::total() const
{
    double sum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        if (touched_[i])
            sum += buckets_[i];
    return sum;
}

std::size_t
EventMarkSeries::countInWindow(Tick from, Tick to) const
{
    std::size_t n = 0;
    for (Tick t : marks_)
        if (t >= from && t < to)
            ++n;
    return n;
}

} // namespace nmapsim
