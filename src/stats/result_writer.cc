#include "stats/result_writer.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>

#include "sim/logging.hh"

namespace nmapsim {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr const char *kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xf];
                out += kHex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
toJson(const ResultWriter::Value &v)
{
    if (const auto *s = std::get_if<std::string>(&v)) {
        // Built with += rather than operator+ chains: GCC 12's
        // -Wrestrict misfires on `"lit" + std::string&&` (PR105651).
        std::string quoted;
        quoted += '"';
        quoted += jsonEscape(*s);
        quoted += '"';
        return quoted;
    }
    if (const auto *d = std::get_if<double>(&v)) {
        if (!std::isfinite(*d))
            return "null";
        return ResultWriter::formatDouble(*d);
    }
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return std::to_string(*i);
    if (const auto *u = std::get_if<std::uint64_t>(&v))
        return std::to_string(*u);
    return std::get<bool>(v) ? "true" : "false";
}

std::string
toCsv(const ResultWriter::Value &v)
{
    if (const auto *s = std::get_if<std::string>(&v))
        return csvEscape(*s);
    if (const auto *d = std::get_if<double>(&v)) {
        if (!std::isfinite(*d))
            return "";
        return ResultWriter::formatDouble(*d);
    }
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return std::to_string(*i);
    if (const auto *u = std::get_if<std::uint64_t>(&v))
        return std::to_string(*u);
    return std::get<bool>(v) ? "true" : "false";
}

} // namespace

ResultWriter::Record &
ResultWriter::Record::setValue(const std::string &key, Value v)
{
    for (auto &[k, value] : fields_) {
        if (k == key) {
            value = std::move(v);
            return *this;
        }
    }
    fields_.emplace_back(key, std::move(v));
    return *this;
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, std::string v)
{
    return setValue(key, Value(std::move(v)));
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, const char *v)
{
    return setValue(key, Value(std::string(v)));
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, double v)
{
    return setValue(key, Value(v));
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, std::int64_t v)
{
    return setValue(key, Value(v));
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, int v)
{
    return setValue(key, Value(static_cast<std::int64_t>(v)));
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, std::uint64_t v)
{
    return setValue(key, Value(v));
}

ResultWriter::Record &
ResultWriter::Record::set(const std::string &key, bool v)
{
    return setValue(key, Value(v));
}

ResultWriter::Record &
ResultWriter::add()
{
    records_.emplace_back();
    return records_.back();
}

void
ResultWriter::writeJson(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
        os << "  {";
        const auto &fields = records_[r].fields();
        for (std::size_t f = 0; f < fields.size(); ++f) {
            if (f > 0)
                os << ", ";
            os << "\"" << jsonEscape(fields[f].first)
               << "\": " << toJson(fields[f].second);
        }
        os << "}" << (r + 1 < records_.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

void
ResultWriter::writeCsv(std::ostream &os) const
{
    // Union header, first-seen key order across records.
    std::vector<std::string> header;
    for (const Record &rec : records_) {
        for (const auto &[key, value] : rec.fields()) {
            bool seen = false;
            for (const std::string &h : header)
                if (h == key) {
                    seen = true;
                    break;
                }
            if (!seen)
                header.push_back(key);
        }
    }

    for (std::size_t i = 0; i < header.size(); ++i)
        os << (i > 0 ? "," : "") << csvEscape(header[i]);
    os << "\n";

    for (const Record &rec : records_) {
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (i > 0)
                os << ",";
            for (const auto &[key, value] : rec.fields()) {
                if (key == header[i]) {
                    os << toCsv(value);
                    break;
                }
            }
        }
        os << "\n";
    }
}

void
ResultWriter::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '" + path + "' for writing");
    writeJson(os);
}

void
ResultWriter::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '" + path + "' for writing");
    writeCsv(os);
}

std::string
ResultWriter::formatDouble(double v)
{
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "0";
    return std::string(buf, ptr);
}

} // namespace nmapsim
