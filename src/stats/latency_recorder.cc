#include "stats/latency_recorder.hh"

#include <algorithm>
#include <cmath>

namespace nmapsim {

void
LatencyRecorder::ensureSorted() const
{
    if (sorted_)
        return;
    std::sort(samples_.begin(), samples_.end(),
              [](const LatencySample &a, const LatencySample &b) {
                  return a.latency < b.latency;
              });
    sorted_ = true;
}

Tick
LatencyRecorder::percentile(double p) const
{
    if (samples_.empty())
        return 0;
    ensureSorted();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    double v = static_cast<double>(samples_[lo].latency) * (1.0 - frac) +
               static_cast<double>(samples_[hi].latency) * frac;
    return static_cast<Tick>(std::llround(v));
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : samples_)
        sum += static_cast<double>(s.latency);
    return sum / static_cast<double>(samples_.size());
}

Tick
LatencyRecorder::max() const
{
    Tick m = 0;
    for (const auto &s : samples_)
        m = std::max(m, s.latency);
    return m;
}

double
LatencyRecorder::fractionAbove(Tick slo) const
{
    if (samples_.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &s : samples_)
        if (s.latency > slo)
            ++n;
    return static_cast<double>(n) / static_cast<double>(samples_.size());
}

std::vector<std::pair<Tick, double>>
LatencyRecorder::cdf(std::size_t points) const
{
    std::vector<std::pair<Tick, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        double q = static_cast<double>(i + 1) / static_cast<double>(points);
        std::size_t idx = std::min(
            samples_.size() - 1,
            static_cast<std::size_t>(q *
                                     static_cast<double>(samples_.size())));
        out.emplace_back(samples_[idx].latency, q);
    }
    return out;
}

std::vector<LatencySample>
LatencyRecorder::trace() const
{
    std::vector<LatencySample> t(samples_.begin(), samples_.end());
    std::sort(t.begin(), t.end(),
              [](const LatencySample &a, const LatencySample &b) {
                  return a.completionTime < b.completionTime;
              });
    return t;
}

void
LatencyRecorder::discardBefore(Tick cutoff)
{
    samples_.erase(std::remove_if(samples_.begin(), samples_.end(),
                                  [cutoff](const LatencySample &s) {
                                      return s.completionTime < cutoff;
                                  }),
                   samples_.end());
    sorted_ = false;
}

} // namespace nmapsim
