#include "fault/injector.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace nmapsim {

FaultInjector::FaultInjector(EventQueue &eq, const FaultPlan &plan,
                             Rng rng)
    : eq_(eq), plan_(plan), rng_(rng)
{
}

FaultInjector::~FaultInjector()
{
    for (auto &group : flapGroups_)
        eq_.deschedule(group->event.get());
    for (auto &event : events_)
        eq_.deschedule(event.get());
    // Filters capture `this`; detach them so a wire outliving the
    // injector cannot call into freed memory.
    for (Wire *wire : wires_)
        wire->setFaultFilter(nullptr);
}

void
FaultInjector::trackWire(Wire &wire)
{
    if (std::find(wires_.begin(), wires_.end(), &wire) == wires_.end())
        wires_.push_back(&wire);
}

void
FaultInjector::addLossyWire(Wire &wire)
{
    if (!plan_.wantsLoss())
        return;
    trackWire(wire);
    wire.setFaultFilter([this](const Packet &) {
        // A single uniform draw partitions [0, 1) into
        // lose | corrupt | deliver, so loss and corruption come from
        // one stream and stay reproducible under either probability.
        double u = rng_.uniform();
        if (u < plan_.wireLoss)
            return WireFault::kDrop;
        if (u < plan_.wireLoss + plan_.wireCorrupt)
            return WireFault::kCorrupt;
        return WireFault::kNone;
    });
}

void
FaultInjector::addFlapGroup(std::vector<Wire *> wires)
{
    if (!plan_.wantsFlap() || wires.empty())
        return;
    for (Wire *wire : wires)
        trackWire(*wire);
    auto group = std::make_unique<FlapGroup>();
    group->wires = std::move(wires);
    FlapGroup *raw = group.get();
    group->event = std::make_unique<EventFunctionWrapper>(
        [this, raw] { flapEdge(*raw); }, "fault.flap");
    eq_.schedule(group->event.get(), plan_.flapStart);
    flapGroups_.push_back(std::move(group));
}

void
FaultInjector::flapEdge(FlapGroup &group)
{
    if (!group.down) {
        for (Wire *wire : group.wires)
            wire->setLinkDown(true);
        group.down = true;
        eq_.schedule(group.event.get(), eq_.now() + plan_.flapDown);
        return;
    }
    for (Wire *wire : group.wires)
        wire->setLinkDown(false);
    group.down = false;
    ++group.cycle;
    if (group.cycle < plan_.flapCycles) {
        eq_.schedule(group.event.get(),
                     plan_.flapStart +
                         static_cast<Tick>(group.cycle) *
                             plan_.flapPeriod);
    }
}

void
FaultInjector::addDegradableNic(Nic &nic)
{
    if (!plan_.wantsRingDegrade())
        return;
    Nic *raw = &nic;
    const std::size_t original = nic.config().rxRingSize;
    auto degrade = std::make_unique<EventFunctionWrapper>(
        [this, raw] { raw->setRxRingSize(plan_.ringSize); },
        "fault.ring_degrade");
    eq_.schedule(degrade.get(), plan_.ringDegradeAt);
    events_.push_back(std::move(degrade));
    if (plan_.ringRestoreAt > 0) {
        auto restore = std::make_unique<EventFunctionWrapper>(
            [raw, original] { raw->setRxRingSize(original); },
            "fault.ring_restore");
        eq_.schedule(restore.get(), plan_.ringRestoreAt);
        events_.push_back(std::move(restore));
    }
}

void
FaultInjector::scheduleCrash(std::function<void()> down,
                             std::function<void()> up)
{
    if (!plan_.wantsCrash())
        return;
    auto crash = std::make_unique<EventFunctionWrapper>(
        std::move(down), "fault.crash");
    eq_.schedule(crash.get(), plan_.crashAt);
    events_.push_back(std::move(crash));
    if (plan_.recoverAt > 0) {
        auto recover = std::make_unique<EventFunctionWrapper>(
            std::move(up), "fault.recover");
        eq_.schedule(recover.get(), plan_.recoverAt);
        events_.push_back(std::move(recover));
    }
}

std::uint64_t
FaultInjector::packetsFaultLost() const
{
    std::uint64_t total = 0;
    for (const Wire *wire : wires_)
        total += wire->packetsFaultLost();
    return total;
}

std::uint64_t
FaultInjector::packetsCorrupted() const
{
    std::uint64_t total = 0;
    for (const Wire *wire : wires_)
        total += wire->packetsCorrupted();
    return total;
}

std::uint64_t
FaultInjector::packetsLinkDownLost() const
{
    std::uint64_t total = 0;
    for (const Wire *wire : wires_)
        total += wire->packetsLinkDownLost();
    return total;
}

} // namespace nmapsim
