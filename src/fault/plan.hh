/**
 * @file
 * Declarative fault schedule: what goes wrong, where, and when.
 *
 * A FaultPlan is parsed from the ordinary key=value config pipeline
 * (`fault.*` namespace in ExperimentConfig::params), validated once,
 * and handed to a FaultInjector that executes it against a rig. The
 * plan itself holds no state and draws no randomness; all probabilistic
 * decisions happen inside the injector from a forked Rng stream, so
 * identical (seed, plan) pairs replay byte-identically.
 *
 * An empty plan (`enabled() == false`) is the zero-fault bypass: no
 * injector is constructed, no Rng stream is forked, and the simulation
 * is bit-for-bit the same as before the fault subsystem existed.
 */

#ifndef NMAPSIM_FAULT_PLAN_HH_
#define NMAPSIM_FAULT_PLAN_HH_

#include <cstddef>
#include <vector>

#include "harness/policy_params.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Seeded, reproducible fault schedule (see `fault.*` config keys). */
struct FaultPlan {
    /** Per-packet loss probability on faulted wires, [0, 1). */
    double wireLoss = 0.0;
    /** Per-packet corruption (FCS-drop) probability, [0, 1). */
    double wireCorrupt = 0.0;

    /** First link-down edge of the flap schedule (absolute tick). */
    Tick flapStart = 0;
    /** Length of each down window. 0 disables flapping. */
    Tick flapDown = 0;
    /** Down-edge to down-edge period; must exceed flapDown. */
    Tick flapPeriod = 0;
    /** Number of down/up cycles to run. */
    int flapCycles = 0;
    /** Cluster host whose access links flap; -1 flaps every host. */
    int flapHost = -1;

    /** When to shrink NIC rx rings. 0 disables degradation. */
    Tick ringDegradeAt = 0;
    /** Degraded rx ring size (slots); 0 disables degradation. */
    std::size_t ringSize = 0;
    /** When to restore the original ring size; 0 = never. */
    Tick ringRestoreAt = 0;

    /**
     * Cluster hosts to fail-stop together (`fault.crash_host` takes a
     * single id or a comma-separated list); empty = no crash. All
     * listed hosts go dark at crashAt and return at recoverAt.
     */
    std::vector<int> crashHosts;
    /** When the crash cuts the hosts' access links. */
    Tick crashAt = 0;
    /** When the hosts' links come back; 0 = stays down. */
    Tick recoverAt = 0;

    /** True when any fault is scheduled; false = zero-fault bypass. */
    bool enabled() const;

    bool wantsLoss() const { return wireLoss > 0.0 || wireCorrupt > 0.0; }
    bool wantsFlap() const { return flapDown > 0 && flapCycles > 0; }
    bool wantsRingDegrade() const { return ringSize > 0; }
    bool wantsCrash() const { return !crashHosts.empty(); }

    /**
     * Build a plan from the `fault.*` keys in @p params. Unknown
     * `fault.*` keys and out-of-range values are fatal (config
     * errors); non-fault keys are ignored. A params blob without
     * fault keys yields a disabled plan.
     */
    static FaultPlan fromParams(const PolicyParams &params);
};

} // namespace nmapsim

#endif // NMAPSIM_FAULT_PLAN_HH_
