/**
 * @file
 * Executes a FaultPlan against a rig: installs loss/corruption filters
 * on wires, schedules link flap windows, NIC ring degradation and
 * whole-host crash/recovery callbacks on the event queue.
 *
 * Determinism contract: the injector owns a forked Rng stream and is
 * the only consumer of randomness in the fault path; the stream is
 * forked *after* every pre-existing component's stream, so enabling a
 * plan never perturbs the workload/service-time draws, and a disabled
 * plan forks nothing at all. All scheduled events are owned here and
 * descheduled on destruction.
 */

#ifndef NMAPSIM_FAULT_INJECTOR_HH_
#define NMAPSIM_FAULT_INJECTOR_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/plan.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {

/** Runtime executor for a validated FaultPlan. */
class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, const FaultPlan &plan, Rng rng);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Subject @p wire to the plan's probabilistic loss/corruption.
     * One uniform draw per packet; attachment order is part of the
     * determinism contract (attach in topology order).
     */
    void addLossyWire(Wire &wire);

    /**
     * Flap all wires in @p wires together: down at flapStart, up
     * after flapDown, repeating every flapPeriod for flapCycles.
     */
    void addFlapGroup(std::vector<Wire *> wires);

    /** Degrade (and possibly restore) @p nic's Rx ring per the plan. */
    void addDegradableNic(Nic &nic);

    /**
     * Schedule a generic fail-stop window: @p down runs at
     * plan.crashAt, @p up at plan.recoverAt (skipped when 0).
     */
    void scheduleCrash(std::function<void()> down,
                       std::function<void()> up);

    /**
     * Include @p wire in the aggregated fault counters without
     * installing any filter (e.g. links a crash callback downs).
     */
    void trackWire(Wire &wire);

    /** @name Aggregated accounting over attached wires */
    /**@{*/
    std::uint64_t packetsFaultLost() const;
    std::uint64_t packetsCorrupted() const;
    std::uint64_t packetsLinkDownLost() const;
    /**@}*/

  private:
    struct FlapGroup {
        std::vector<Wire *> wires;
        int cycle = 0;
        bool down = false;
        std::unique_ptr<EventFunctionWrapper> event;
    };

    void flapEdge(FlapGroup &group);

    EventQueue &eq_;
    FaultPlan plan_;
    Rng rng_;
    std::vector<Wire *> wires_;
    std::vector<std::unique_ptr<FlapGroup>> flapGroups_;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events_;
};

} // namespace nmapsim

#endif // NMAPSIM_FAULT_INJECTOR_HH_
