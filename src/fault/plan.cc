#include "fault/plan.hh"

#include <charconv>
#include <string>
#include <system_error>

#include "sim/logging.hh"

namespace nmapsim {
namespace {

constexpr const char *kKnownKeys[] = {
    "fault.wire_loss",       "fault.wire_corrupt", "fault.flap_start",
    "fault.flap_down",       "fault.flap_period",  "fault.flap_cycles",
    "fault.flap_host",       "fault.ring_degrade_at", "fault.ring_size",
    "fault.ring_restore_at", "fault.crash_host",   "fault.crash_at",
    "fault.recover_at",
};

bool
isKnownFaultKey(const std::string &key)
{
    for (const char *known : kKnownKeys)
        if (key == known)
            return true;
    return false;
}

void
validate(const FaultPlan &plan)
{
    if (plan.wireLoss < 0.0 || plan.wireLoss >= 1.0)
        fatal("fault.wire_loss must be in [0, 1)");
    if (plan.wireCorrupt < 0.0 || plan.wireCorrupt >= 1.0)
        fatal("fault.wire_corrupt must be in [0, 1)");
    if (plan.wireLoss + plan.wireCorrupt >= 1.0)
        fatal("fault.wire_loss + fault.wire_corrupt must stay below 1");

    if (plan.flapCycles < 0)
        fatal("fault.flap_cycles must be >= 0");
    if (plan.flapCycles > 0) {
        if (plan.flapDown <= 0)
            fatal("fault.flap_down must be positive when flapping");
        if (plan.flapCycles > 1 && plan.flapPeriod <= plan.flapDown)
            fatal("fault.flap_period must exceed fault.flap_down");
    }
    if (plan.flapHost < -1)
        fatal("fault.flap_host must be -1 (all hosts) or a host id");

    if (plan.ringSize > 0 && plan.ringRestoreAt != 0 &&
        plan.ringRestoreAt <= plan.ringDegradeAt) {
        fatal("fault.ring_restore_at must come after "
              "fault.ring_degrade_at");
    }

    for (int host : plan.crashHosts)
        if (host < 0)
            fatal("fault.crash_host entries must be host ids (>= 0)");
    if (!plan.crashHosts.empty() && plan.recoverAt != 0 &&
        plan.recoverAt <= plan.crashAt) {
        fatal("fault.recover_at must come after fault.crash_at");
    }
}

} // namespace

bool
FaultPlan::enabled() const
{
    return wantsLoss() || wantsFlap() || wantsRingDegrade() ||
           wantsCrash();
}

FaultPlan
FaultPlan::fromParams(const PolicyParams &params)
{
    for (const auto &[key, value] : params) {
        if (key.rfind("fault.", 0) == 0 && !isKnownFaultKey(key))
            fatal("unknown fault key '" + key + "'");
    }

    FaultPlan plan;
    plan.wireLoss = params.getDouble("fault.wire_loss", 0.0);
    plan.wireCorrupt = params.getDouble("fault.wire_corrupt", 0.0);
    plan.flapStart = params.getTick("fault.flap_start", 0);
    plan.flapDown = params.getTick("fault.flap_down", 0);
    plan.flapPeriod = params.getTick("fault.flap_period", 0);
    plan.flapCycles = params.getInt("fault.flap_cycles",
                                    plan.flapDown > 0 ? 1 : 0);
    plan.flapHost = params.getInt("fault.flap_host", -1);
    plan.ringDegradeAt = params.getTick("fault.ring_degrade_at", 0);
    const int ringSlots = params.getInt("fault.ring_size", 0);
    if (ringSlots < 0)
        fatal("fault.ring_size must be >= 0");
    plan.ringSize = static_cast<std::size_t>(ringSlots);
    plan.ringRestoreAt = params.getTick("fault.ring_restore_at", 0);
    // fault.crash_host: a single host id, a comma-separated list of
    // ids (all crash and recover together), or -1 for none.
    if (params.has("fault.crash_host") &&
        params.raw("fault.crash_host") != "-1") {
        std::string rest = params.raw("fault.crash_host");
        while (!rest.empty()) {
            const std::size_t comma = rest.find(',');
            const std::string tok = rest.substr(0, comma);
            rest = comma == std::string::npos
                       ? std::string()
                       : rest.substr(comma + 1);
            int host = -1;
            const char *b = tok.data();
            const char *e = b + tok.size();
            const auto res = std::from_chars(b, e, host);
            if (tok.empty() || res.ec != std::errc() || res.ptr != e)
                fatal("fault.crash_host: bad host id '" + tok + "'");
            if (host < 0)
                fatal("fault.crash_host entries must be host ids "
                      "(>= 0), or a single -1 for none");
            plan.crashHosts.push_back(host);
        }
    }
    plan.crashAt = params.getTick("fault.crash_at", 0);
    plan.recoverAt = params.getTick("fault.recover_at", 0);
    if (!plan.crashHosts.empty() && plan.crashAt == 0)
        fatal("fault.crash_host requires fault.crash_at");
    validate(plan);
    return plan;
}

} // namespace nmapsim
