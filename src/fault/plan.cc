#include "fault/plan.hh"

#include <string>

#include "sim/logging.hh"

namespace nmapsim {
namespace {

constexpr const char *kKnownKeys[] = {
    "fault.wire_loss",       "fault.wire_corrupt", "fault.flap_start",
    "fault.flap_down",       "fault.flap_period",  "fault.flap_cycles",
    "fault.flap_host",       "fault.ring_degrade_at", "fault.ring_size",
    "fault.ring_restore_at", "fault.crash_host",   "fault.crash_at",
    "fault.recover_at",
};

bool
isKnownFaultKey(const std::string &key)
{
    for (const char *known : kKnownKeys)
        if (key == known)
            return true;
    return false;
}

void
validate(const FaultPlan &plan)
{
    if (plan.wireLoss < 0.0 || plan.wireLoss >= 1.0)
        fatal("fault.wire_loss must be in [0, 1)");
    if (plan.wireCorrupt < 0.0 || plan.wireCorrupt >= 1.0)
        fatal("fault.wire_corrupt must be in [0, 1)");
    if (plan.wireLoss + plan.wireCorrupt >= 1.0)
        fatal("fault.wire_loss + fault.wire_corrupt must stay below 1");

    if (plan.flapCycles < 0)
        fatal("fault.flap_cycles must be >= 0");
    if (plan.flapCycles > 0) {
        if (plan.flapDown <= 0)
            fatal("fault.flap_down must be positive when flapping");
        if (plan.flapCycles > 1 && plan.flapPeriod <= plan.flapDown)
            fatal("fault.flap_period must exceed fault.flap_down");
    }
    if (plan.flapHost < -1)
        fatal("fault.flap_host must be -1 (all hosts) or a host id");

    if (plan.ringSize > 0 && plan.ringRestoreAt != 0 &&
        plan.ringRestoreAt <= plan.ringDegradeAt) {
        fatal("fault.ring_restore_at must come after "
              "fault.ring_degrade_at");
    }

    if (plan.crashHost < -1)
        fatal("fault.crash_host must be -1 (none) or a host id");
    if (plan.crashHost >= 0 && plan.recoverAt != 0 &&
        plan.recoverAt <= plan.crashAt) {
        fatal("fault.recover_at must come after fault.crash_at");
    }
}

} // namespace

bool
FaultPlan::enabled() const
{
    return wantsLoss() || wantsFlap() || wantsRingDegrade() ||
           wantsCrash();
}

FaultPlan
FaultPlan::fromParams(const PolicyParams &params)
{
    for (const auto &[key, value] : params) {
        if (key.rfind("fault.", 0) == 0 && !isKnownFaultKey(key))
            fatal("unknown fault key '" + key + "'");
    }

    FaultPlan plan;
    plan.wireLoss = params.getDouble("fault.wire_loss", 0.0);
    plan.wireCorrupt = params.getDouble("fault.wire_corrupt", 0.0);
    plan.flapStart = params.getTick("fault.flap_start", 0);
    plan.flapDown = params.getTick("fault.flap_down", 0);
    plan.flapPeriod = params.getTick("fault.flap_period", 0);
    plan.flapCycles = params.getInt("fault.flap_cycles",
                                    plan.flapDown > 0 ? 1 : 0);
    plan.flapHost = params.getInt("fault.flap_host", -1);
    plan.ringDegradeAt = params.getTick("fault.ring_degrade_at", 0);
    const int ringSlots = params.getInt("fault.ring_size", 0);
    if (ringSlots < 0)
        fatal("fault.ring_size must be >= 0");
    plan.ringSize = static_cast<std::size_t>(ringSlots);
    plan.ringRestoreAt = params.getTick("fault.ring_restore_at", 0);
    plan.crashHost = params.getInt("fault.crash_host", -1);
    plan.crashAt = params.getTick("fault.crash_at", 0);
    plan.recoverAt = params.getTick("fault.recover_at", 0);
    if (plan.crashHost >= 0 && plan.crashAt == 0)
        fatal("fault.crash_host requires fault.crash_at");
    validate(plan);
    return plan;
}

} // namespace nmapsim
