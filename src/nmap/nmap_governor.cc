#include "nmap/nmap_governor.hh"

namespace nmapsim {

NmapGovernor::NmapGovernor(EventQueue &eq, std::vector<Core *> cores,
                           const NmapConfig &nmap_config,
                           const GovernorConfig &gov_config)
    : monitor_(static_cast<int>(cores.size()),
               nmap_config.niThreshold)
{
    fallback_ =
        std::make_unique<OndemandGovernor>(eq, cores, gov_config);
    engine_ = std::make_unique<DecisionEngine>(
        eq, std::move(cores), *fallback_, monitor_, nmap_config);
    monitor_.setNotify(
        [this](int core) { engine_->onNotification(core); });
}

void
NmapGovernor::start()
{
    fallback_->start();
    engine_->start();
}

void
NmapGovernor::onHardIrq(int core)
{
    monitor_.onHardIrq(core);
}

void
NmapGovernor::onPollProcessed(int core, std::uint32_t intr_pkts,
                              std::uint32_t poll_pkts)
{
    monitor_.onPollProcessed(core, intr_pkts, poll_pkts);
}

bool
NmapGovernor::networkIntensive(int core) const
{
    return engine_->networkIntensive(core);
}

NmapSimplGovernor::NmapSimplGovernor(EventQueue &eq,
                                     std::vector<Core *> cores,
                                     const GovernorConfig &gov_config)
    : cores_(std::move(cores)), niMode_(cores_.size(), false)
{
    fallback_ =
        std::make_unique<OndemandGovernor>(eq, cores_, gov_config);
}

void
NmapSimplGovernor::start()
{
    fallback_->start();
}

void
NmapSimplGovernor::onKsoftirqdWake(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    if (niMode_[i])
        return;
    // ksoftirqd waking means the softirq could not keep up: promote
    // Network Intensive Mode (Section 4.1).
    niMode_[i] = true;
    fallback_->setEnabled(core, false);
    cores_[i]->dvfs().requestPState(0);
}

void
NmapSimplGovernor::onKsoftirqdSleep(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    if (!niMode_[i])
        return;
    // ksoftirqd finished its backlog: fall back to the utilisation
    // governor (Section 4.1).
    niMode_[i] = false;
    fallback_->enforceNow(core);
    fallback_->setEnabled(core, true);
}

bool
NmapSimplGovernor::networkIntensive(int core) const
{
    return niMode_[static_cast<std::size_t>(core)];
}

} // namespace nmapsim
