#include "nmap/nmap_governor.hh"

namespace nmapsim {

NmapGovernor::NmapGovernor(EventQueue &eq, std::vector<Core *> cores,
                           const NmapConfig &nmap_config,
                           const GovernorConfig &gov_config)
    : monitor_(static_cast<int>(cores.size()),
               nmap_config.niThreshold)
{
    fallback_ =
        std::make_unique<OndemandGovernor>(eq, cores, gov_config);
    engine_ = std::make_unique<DecisionEngine>(
        eq, std::move(cores), *fallback_, monitor_, nmap_config);
    monitor_.setNotify(
        [this](int core) { engine_->onNotification(core); });
}

void
NmapGovernor::start()
{
    fallback_->start();
    engine_->start();
}

void
NmapGovernor::onHardIrq(int core)
{
    monitor_.onHardIrq(core);
}

void
NmapGovernor::onPollProcessed(int core, std::uint32_t intr_pkts,
                              std::uint32_t poll_pkts)
{
    monitor_.onPollProcessed(core, intr_pkts, poll_pkts);
}

bool
NmapGovernor::networkIntensive(int core) const
{
    return engine_->networkIntensive(core);
}

NmapSimplGovernor::NmapSimplGovernor(EventQueue &eq,
                                     std::vector<Core *> cores,
                                     const GovernorConfig &gov_config)
    : cores_(std::move(cores)), niMode_(cores_.size(), false)
{
    fallback_ =
        std::make_unique<OndemandGovernor>(eq, cores_, gov_config);
}

void
NmapSimplGovernor::start()
{
    fallback_->start();
}

void
NmapSimplGovernor::onKsoftirqdWake(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    if (niMode_[i])
        return;
    // ksoftirqd waking means the softirq could not keep up: promote
    // Network Intensive Mode (Section 4.1).
    niMode_[i] = true;
    fallback_->setEnabled(core, false);
    cores_[i]->dvfs().requestPState(0);
}

void
NmapSimplGovernor::onKsoftirqdSleep(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    if (!niMode_[i])
        return;
    // ksoftirqd finished its backlog: fall back to the utilisation
    // governor (Section 4.1).
    niMode_[i] = false;
    fallback_->enforceNow(core);
    fallback_->setEnabled(core, true);
}

bool
NmapSimplGovernor::networkIntensive(int core) const
{
    return niMode_[static_cast<std::size_t>(core)];
}

} // namespace nmapsim

// --- Policy-registry entries -------------------------------------------

#include "harness/experiment.hh"
#include "harness/policy_registry.hh"

namespace nmapsim {

void
linkNmapPolicies()
{
}

namespace {

/**
 * Shared NMAP wiring: read the thresholds from the params blob,
 * falling back to the Section 4.2 offline profiling pass when NI_TH is
 * unset and nmap.auto_profile (default true) allows it.
 */
FreqPolicyInstance
makeNmapVariant(PolicyContext &ctx, bool chip_wide)
{
    NmapConfig config;
    config.timerInterval =
        ctx.params.getTick("nmap.timer_interval", config.timerInterval);
    config.niThreshold = ctx.params.getDouble("nmap.ni_th", 0.0);
    config.cuThreshold = ctx.params.getDouble("nmap.cu_th", 0.0);
    config.chipWide = chip_wide;
    if (config.niThreshold <= 0.0 &&
        ctx.params.getBool("nmap.auto_profile", true)) {
        if (!ctx.profileThresholds)
            fatal("colocated NMAP needs explicit thresholds (there is "
                  "no single application to profile)");
        auto [ni, cu] = ctx.profileThresholds();
        config.niThreshold = ni;
        config.cuThreshold = cu;
    }
    auto nmap = std::make_unique<NmapGovernor>(ctx.eq, ctx.cores,
                                               config, ctx.gov);
    ctx.addObserver(nmap.get());
    double ni_used = config.niThreshold;
    double cu_used = config.cuThreshold;
    return {std::move(nmap),
            [ni_used, cu_used](ExperimentResult &result) {
                result.niThresholdUsed = ni_used;
                result.cuThresholdUsed = cu_used;
            }};
}

FreqPolicyInstance
makeNmapSimpl(PolicyContext &ctx)
{
    auto simpl =
        std::make_unique<NmapSimplGovernor>(ctx.eq, ctx.cores, ctx.gov);
    ctx.addObserver(simpl.get());
    return {std::move(simpl), nullptr};
}

REGISTER_FREQ_POLICY(
    "NMAP",
    [](PolicyContext &ctx) { return makeNmapVariant(ctx, false); },
    "NMAP (Section 4): per-core mode-transition DVFS; profiles "
    "nmap.ni_th/nmap.cu_th offline unless set");
REGISTER_FREQ_POLICY(
    "NMAP-chipwide",
    [](PolicyContext &ctx) { return makeNmapVariant(ctx, true); },
    "NMAP on a chip-wide DVFS package (Section 2.2 variant)");
REGISTER_FREQ_POLICY(
    "NMAP-simpl", &makeNmapSimpl,
    "simplified NMAP (Section 4.1): ksoftirqd-driven, no thresholds");

} // namespace
} // namespace nmapsim
