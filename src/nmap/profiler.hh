/**
 * @file
 * NMAP's offline threshold profiler (Section 4.2 of the paper).
 *
 * NMAP needs two per-application thresholds:
 *
 *  - **NI_TH**: the maximum number of packets processed in polling mode
 *    per interrupt, observed over the first `observeSessions` (paper:
 *    100) interrupts from the start of a request burst at the load used
 *    to set the SLO (the latency-load inflection point).
 *  - **CU_TH**: the average polling-to-interrupt packet ratio over a
 *    single request burst at that load, scaled by a safety margin so
 *    mid-burst windows do not dither back to CPU mode.
 *
 * The profiler is a NapiObserver: the harness attaches it to a short
 * profiling run (performance governor, inflection load), brackets one
 * burst with beginBurst()/endBurst(), and reads the thresholds out.
 */

#ifndef NMAPSIM_NMAP_PROFILER_HH_
#define NMAPSIM_NMAP_PROFILER_HH_

#include <cstdint>
#include <vector>

#include "os/hooks.hh"

namespace nmapsim {

/** Collects NI_TH / CU_TH from one profiled burst. */
class ThresholdProfiler : public NapiObserver
{
  public:
    /**
     * @param num_cores        observed cores
     * @param observe_sessions interrupts examined for NI_TH (paper: 100)
     * @param cu_margin        CU_TH = margin * average burst ratio
     * @param ni_quantile      session-size quantile used for NI_TH; the
     *                         paper uses the maximum, but C-state wake
     *                         stalls make the strict max noisy, so we
     *                         default to the 95th percentile
     */
    explicit ThresholdProfiler(int num_cores, int observe_sessions = 100,
                               double cu_margin = 1.0,
                               double ni_quantile = 0.95);

    /** Start observing (call at a burst's first packet). */
    void beginBurst();

    /** Stop observing (call once the burst has fully drained). */
    void endBurst();

    /** @name NapiObserver */
    /**@{*/
    void onHardIrq(int core) override;
    void onPollProcessed(int core, std::uint32_t intr_pkts,
                         std::uint32_t poll_pkts) override;
    /**@}*/

    /** NI_TH derived from the observed burst (>= 1). */
    double niThreshold() const;

    /** CU_TH derived from the observed burst (> 0). */
    double cuThreshold() const;

    std::uint64_t sessionsObserved() const { return sessions_; }

  private:
    struct PerCore
    {
        std::uint64_t sessionPoll = 0;
        bool inSession = false;
    };

    void closeSession(int core);

    int observeSessions_;
    double cuMargin_;
    double niQuantile_;
    bool active_ = false;

    std::vector<PerCore> cores_;
    std::vector<std::uint64_t> sessionPolls_;
    std::uint64_t sessions_ = 0;
    std::uint64_t totalPoll_ = 0;
    std::uint64_t totalIntr_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_NMAP_PROFILER_HH_
