/**
 * @file
 * NMAP's Decision Engine (Algorithm 2 of the paper).
 *
 * Per core, the engine switches between two power-management modes:
 *
 *  - **Network Intensive Mode** — entered immediately when the monitor
 *    notifies: the CPU-utilisation governor is disabled for the core and
 *    its V/F is maximised (P0).
 *  - **CPU Utilisation based Mode** — re-entered at a periodic check
 *    when the windowed polling-to-interrupt ratio drops below CU_TH:
 *    the utilisation-based P-state is enforced and the ondemand governor
 *    re-enabled.
 */

#ifndef NMAPSIM_NMAP_DECISION_ENGINE_HH_
#define NMAPSIM_NMAP_DECISION_ENGINE_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "governors/ondemand.hh"
#include "nmap/monitor.hh"
#include "sim/event_queue.hh"

namespace nmapsim {

/** NMAP tunables. */
struct NmapConfig
{
    Tick timerInterval = milliseconds(10); //!< periodic check (6.1)
    /** NI_TH: polling packets per interrupt that trigger Network
     *  Intensive Mode. <= 0 means "derive via offline profiling"
     *  (Section 4.2), which the harness performs automatically. */
    double niThreshold = 0.0;
    /** CU_TH: polling/interrupt ratio below which the engine falls
     *  back to CPU Utilisation based Mode. <= 0 means "profile". */
    double cuThreshold = 0.0;

    /**
     * Chip-wide variant for processors without per-core DVFS
     * (Section 2.2): any core crossing NI_TH maximises the V/F of
     * *all* cores, and the fallback requires the aggregate
     * polling/interrupt ratio to drop. Costs energy relative to the
     * default per-core mode (bench/ablation_chipwide quantifies it).
     */
    bool chipWide = false;
};

/** Chooses the power-management mode per core. */
class DecisionEngine
{
  public:
    /**
     * @param cores    the package's cores (P0 requests go here)
     * @param fallback CPU-utilisation governor used in CPU mode;
     *                 borrowed, must outlive the engine
     * @param monitor  windowed counters source; borrowed
     */
    DecisionEngine(EventQueue &eq, std::vector<Core *> cores,
                   OndemandGovernor &fallback,
                   ModeTransitionMonitor &monitor,
                   const NmapConfig &config);
    ~DecisionEngine();

    DecisionEngine(const DecisionEngine &) = delete;
    DecisionEngine &operator=(const DecisionEngine &) = delete;

    /** Start the periodic timer. */
    void start();

    /** Monitor notification: core crossed NI_TH (Alg. 2 lines 2-5). */
    void onNotification(int core);

    /** True when @p core is in Network Intensive Mode. */
    bool networkIntensive(int core) const;

    /** Update CU_TH at runtime (online threshold adaptation). */
    void setCuThreshold(double cu_th) { config_.cuThreshold = cu_th; }
    double cuThreshold() const { return config_.cuThreshold; }

    /**
     * Observer of the periodic ratio evaluation: called once per core
     * (or once with core = -1 in chip-wide mode) on every timer tick
     * with the window's polling/interrupt ratio and whether the core
     * was in Network Intensive Mode. Drives online threshold learning.
     */
    using RatioHook = std::function<void(int core, double ratio,
                                         bool network_intensive)>;
    void setRatioHook(RatioHook hook) { ratioHook_ = std::move(hook); }

    std::uint64_t modeSwitchesToNi() const { return toNi_; }
    std::uint64_t modeSwitchesToCpu() const { return toCpu_; }

  private:
    void onTimer();

    EventQueue &eq_;
    std::vector<Core *> cores_;
    OndemandGovernor &fallback_;
    ModeTransitionMonitor &monitor_;
    NmapConfig config_;
    RatioHook ratioHook_;

    std::vector<bool> niMode_;
    std::uint64_t toNi_ = 0;
    std::uint64_t toCpu_ = 0;

    EventFunctionWrapper timerEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_NMAP_DECISION_ENGINE_HH_
