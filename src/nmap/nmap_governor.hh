/**
 * @file
 * The NMAP governors (the paper's Section 4).
 *
 * NmapGovernor is the full proposal: a Mode Transition Monitor feeding a
 * Decision Engine, falling back to an internal ondemand governor in CPU
 * Utilisation based Mode. NmapSimplGovernor is the simplified variant
 * (Section 4.1) that keys Network Intensive Mode purely off ksoftirqd
 * wake/sleep events — no thresholds, no application profiling, but it
 * reacts later and oscillates during long bursts, which is why the paper
 * shows it failing the SLO at high load.
 *
 * Both are NapiObservers: register them with ServerOs::addObserver().
 */

#ifndef NMAPSIM_NMAP_NMAP_GOVERNOR_HH_
#define NMAPSIM_NMAP_NMAP_GOVERNOR_HH_

#include <memory>

#include "governors/freq_governor.hh"
#include "governors/ondemand.hh"
#include "nmap/decision_engine.hh"
#include "nmap/monitor.hh"
#include "os/hooks.hh"

namespace nmapsim {

/** NMAP: network packet processing mode aware power management. */
class NmapGovernor : public FreqGovernor, public NapiObserver
{
  public:
    NmapGovernor(EventQueue &eq, std::vector<Core *> cores,
                 const NmapConfig &nmap_config,
                 const GovernorConfig &gov_config = {});

    void start() override;
    std::string name() const override { return "NMAP"; }

    /** @name NapiObserver (the piggyback on NAPI) */
    /**@{*/
    void onHardIrq(int core) override;
    void onPollProcessed(int core, std::uint32_t intr_pkts,
                         std::uint32_t poll_pkts) override;
    /**@}*/

    bool networkIntensive(int core) const;
    const ModeTransitionMonitor &monitor() const { return monitor_; }
    const DecisionEngine &engine() const { return *engine_; }
    OndemandGovernor &fallback() { return *fallback_; }

  private:
    ModeTransitionMonitor monitor_;
    std::unique_ptr<OndemandGovernor> fallback_;
    std::unique_ptr<DecisionEngine> engine_;
};

/** NMAP-simpl: Network Intensive Mode driven by ksoftirqd only. */
class NmapSimplGovernor : public FreqGovernor, public NapiObserver
{
  public:
    NmapSimplGovernor(EventQueue &eq, std::vector<Core *> cores,
                      const GovernorConfig &gov_config = {});

    void start() override;
    std::string name() const override { return "NMAP-simpl"; }

    /** @name NapiObserver */
    /**@{*/
    void onKsoftirqdWake(int core) override;
    void onKsoftirqdSleep(int core) override;
    /**@}*/

    bool networkIntensive(int core) const;
    OndemandGovernor &fallback() { return *fallback_; }

  private:
    std::vector<Core *> cores_;
    std::unique_ptr<OndemandGovernor> fallback_;
    std::vector<bool> niMode_;
};

} // namespace nmapsim

#endif // NMAPSIM_NMAP_NMAP_GOVERNOR_HH_
