#include "nmap/decision_engine.hh"

#include "sim/logging.hh"

namespace nmapsim {

DecisionEngine::DecisionEngine(EventQueue &eq, std::vector<Core *> cores,
                               OndemandGovernor &fallback,
                               ModeTransitionMonitor &monitor,
                               const NmapConfig &config)
    : eq_(eq), cores_(std::move(cores)), fallback_(fallback),
      monitor_(monitor), config_(config),
      niMode_(cores_.size(), false),
      timerEvent_([this] { onTimer(); }, "nmap.timer")
{
    if (cores_.empty())
        fatal("DecisionEngine requires at least one core");
}

DecisionEngine::~DecisionEngine()
{
    eq_.deschedule(&timerEvent_);
}

void
DecisionEngine::start()
{
    eq_.scheduleIn(&timerEvent_, config_.timerInterval);
}

void
DecisionEngine::onNotification(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    if (niMode_[i])
        return;
    // Algorithm 2 lines 3-5: Network Intensive Mode — disable the
    // utilisation governor and maximise the current V/F.
    niMode_[i] = true;
    ++toNi_;
    fallback_.setEnabled(core, false);
    cores_[i]->dvfs().requestPState(0);

    if (config_.chipWide) {
        // No per-core DVFS: one overloaded core drags the whole chip
        // to P0.
        for (std::size_t j = 0; j < cores_.size(); ++j) {
            if (niMode_[j])
                continue;
            niMode_[j] = true;
            fallback_.setEnabled(static_cast<int>(j), false);
            cores_[j]->dvfs().requestPState(0);
        }
    }
}

bool
DecisionEngine::networkIntensive(int core) const
{
    return niMode_[static_cast<std::size_t>(core)];
}

void
DecisionEngine::onTimer()
{
    if (config_.chipWide) {
        // Aggregate ratio across the package; all cores switch
        // together.
        std::uint64_t poll = 0;
        std::uint64_t intr = 0;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            int core = static_cast<int>(i);
            poll += monitor_.windowPollCount(core);
            intr += monitor_.windowIntrCount(core);
            monitor_.resetWindow(core);
        }
        double ratio = static_cast<double>(poll) /
                       static_cast<double>(intr > 0 ? intr : 1);
        if (ratioHook_)
            ratioHook_(-1, ratio, niMode_[0]);
        if (niMode_[0] && ratio < config_.cuThreshold) {
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                int core = static_cast<int>(i);
                niMode_[i] = false;
                fallback_.enforceNow(core);
                fallback_.setEnabled(core, true);
            }
            ++toCpu_;
        }
        eq_.scheduleIn(&timerEvent_, config_.timerInterval);
        return;
    }

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        int core = static_cast<int>(i);
        std::uint64_t poll = monitor_.windowPollCount(core);
        std::uint64_t intr = monitor_.windowIntrCount(core);
        monitor_.resetWindow(core);
        double ratio = static_cast<double>(poll) /
                       static_cast<double>(intr > 0 ? intr : 1);
        if (ratioHook_)
            ratioHook_(core, ratio, niMode_[i]);
        if (!niMode_[i])
            continue;
        // Algorithm 2 lines 7-12: fall back to CPU Utilisation based
        // Mode when the polling-to-interrupt ratio has dropped.
        if (ratio < config_.cuThreshold) {
            niMode_[i] = false;
            ++toCpu_;
            fallback_.enforceNow(core);
            fallback_.setEnabled(core, true);
        }
    }
    eq_.scheduleIn(&timerEvent_, config_.timerInterval);
}

} // namespace nmapsim
