#include "nmap/adaptive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

OnlineThresholdEstimator::OnlineThresholdEstimator(
    const AdaptiveConfig &config, Rng rng)
    : config_(config), rng_(rng)
{
    if (config_.reservoirSize == 0)
        fatal("OnlineThresholdEstimator needs a non-empty reservoir");
    reservoir_.reserve(config_.reservoirSize);
}

void
OnlineThresholdEstimator::recordNiSession(std::uint64_t poll_count)
{
    ++sessions_;
    if (reservoir_.size() < config_.reservoirSize) {
        reservoir_.push_back(poll_count);
        return;
    }
    // Random replacement keeps an exponentially biased-to-recent sample
    // without storing timestamps: each new sample evicts a uniformly
    // random slot, so old observations decay geometrically.
    std::size_t slot = static_cast<std::size_t>(rng_.uniformInt(
        0, static_cast<std::int64_t>(config_.reservoirSize) - 1));
    reservoir_[slot] = poll_count;
}

void
OnlineThresholdEstimator::recordNiWindowRatio(double ratio)
{
    if (!haveRatio_) {
        ratioEwma_ = ratio;
        haveRatio_ = true;
        return;
    }
    ratioEwma_ = config_.ratioAlpha * ratio +
                 (1.0 - config_.ratioAlpha) * ratioEwma_;
}

double
OnlineThresholdEstimator::niThreshold() const
{
    if (sessions_ < static_cast<std::uint64_t>(config_.minSamples))
        return config_.bootstrapNiTh;
    std::vector<std::uint64_t> sorted(reservoir_);
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = static_cast<std::size_t>(
        config_.niQuantile * static_cast<double>(sorted.size() - 1));
    return std::max(1.0, config_.niMargin *
                             static_cast<double>(sorted[idx]));
}

double
OnlineThresholdEstimator::cuThreshold() const
{
    if (!haveRatio_)
        return config_.bootstrapCuTh;
    return std::max(0.05, config_.cuMargin * ratioEwma_);
}

AdaptiveNmapGovernor::AdaptiveNmapGovernor(
    EventQueue &eq, std::vector<Core *> cores,
    const AdaptiveConfig &config, Rng rng,
    const GovernorConfig &gov_config)
    : cores_(std::move(cores)), config_(config),
      est_(config, rng.fork()),
      monitor_(static_cast<int>(cores_.size()), config.bootstrapNiTh),
      sessionPoll_(cores_.size(), 0), sessionWasNi_(cores_.size(), false)
{
    fallback_ =
        std::make_unique<OndemandGovernor>(eq, cores_, gov_config);
    NmapConfig nmap_config;
    nmap_config.timerInterval = config_.timerInterval;
    nmap_config.niThreshold = config_.bootstrapNiTh;
    nmap_config.cuThreshold = config_.bootstrapCuTh;
    engine_ = std::make_unique<DecisionEngine>(
        eq, cores_, *fallback_, monitor_, nmap_config);
    monitor_.setNotify(
        [this](int core) { engine_->onNotification(core); });
    // Learn CU_TH from the ratios of NI-mode windows; refresh the live
    // thresholds at the same cadence.
    engine_->setRatioHook([this](int core, double ratio, bool ni) {
        (void)core;
        if (ni)
            est_.recordNiWindowRatio(ratio);
        refreshThresholds();
    });
}

void
AdaptiveNmapGovernor::start()
{
    fallback_->start();
    engine_->start();
}

void
AdaptiveNmapGovernor::closeSession(int core)
{
    std::size_t i = static_cast<std::size_t>(core);
    // A session is a valid NI_TH sample when it ran under profiling
    // conditions: the core spent it in NI mode, i.e. at the maximum
    // V/F (the offline procedure's environment).
    if (sessionPoll_[i] > 0 && sessionWasNi_[i] &&
        cores_[i]->pstateIndex() == 0) {
        est_.recordNiSession(sessionPoll_[i]);
    }
    sessionPoll_[i] = 0;
    sessionWasNi_[i] = engine_->networkIntensive(core);
}

void
AdaptiveNmapGovernor::refreshThresholds()
{
    monitor_.setNiThreshold(est_.niThreshold());
    engine_->setCuThreshold(est_.cuThreshold());
}

void
AdaptiveNmapGovernor::onHardIrq(int core)
{
    closeSession(core);
    monitor_.onHardIrq(core);
}

void
AdaptiveNmapGovernor::onPollProcessed(int core, std::uint32_t intr_pkts,
                                      std::uint32_t poll_pkts)
{
    std::size_t i = static_cast<std::size_t>(core);
    sessionPoll_[i] += poll_pkts;
    sessionWasNi_[i] =
        sessionWasNi_[i] || engine_->networkIntensive(core);
    monitor_.onPollProcessed(core, intr_pkts, poll_pkts);
}

bool
AdaptiveNmapGovernor::networkIntensive(int core) const
{
    return engine_->networkIntensive(core);
}

} // namespace nmapsim

// --- Policy-registry entry ---------------------------------------------

#include "harness/experiment.hh"
#include "harness/policy_registry.hh"

namespace nmapsim {

void
linkAdaptiveNmapPolicy()
{
}

namespace {

FreqPolicyInstance
makeAdaptiveNmap(PolicyContext &ctx)
{
    AdaptiveConfig config;
    config.timerInterval = ctx.params.getTick("adaptive.timer_interval",
                                              config.timerInterval);
    config.niQuantile =
        ctx.params.getDouble("adaptive.ni_quantile", config.niQuantile);
    config.niMargin =
        ctx.params.getDouble("adaptive.ni_margin", config.niMargin);
    config.cuMargin =
        ctx.params.getDouble("adaptive.cu_margin", config.cuMargin);
    config.ratioAlpha =
        ctx.params.getDouble("adaptive.ratio_alpha", config.ratioAlpha);
    config.bootstrapNiTh = ctx.params.getDouble("adaptive.bootstrap_ni_th",
                                                config.bootstrapNiTh);
    config.bootstrapCuTh = ctx.params.getDouble("adaptive.bootstrap_cu_th",
                                                config.bootstrapCuTh);
    config.minSamples =
        ctx.params.getInt("adaptive.min_samples", config.minSamples);
    config.reservoirSize = static_cast<std::size_t>(ctx.params.getInt(
        "adaptive.reservoir_size",
        static_cast<int>(config.reservoirSize)));

    auto adaptive = std::make_unique<AdaptiveNmapGovernor>(
        ctx.eq, ctx.cores, config, ctx.rng.fork(), ctx.gov);
    ctx.addObserver(adaptive.get());
    AdaptiveNmapGovernor *raw = adaptive.get();
    return {std::move(adaptive), [raw](ExperimentResult &result) {
                result.niThresholdUsed = raw->currentNiThreshold();
                result.cuThresholdUsed = raw->currentCuThreshold();
            }};
}

REGISTER_FREQ_POLICY(
    "NMAP-adaptive", &makeAdaptiveNmap,
    "NMAP with online threshold learning (extension; no profiling "
    "pass)");

} // namespace
} // namespace nmapsim
