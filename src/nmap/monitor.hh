/**
 * @file
 * NMAP's Mode Transition Monitor (Algorithm 1 of the paper).
 *
 * Per core, the monitor watches the NAPI mode-transition stream:
 *
 *  - It accumulates the number of packets processed in polling mode
 *    within the current poll session (one session per NIC interrupt).
 *    When that count exceeds NI_TH it notifies the Decision Engine that
 *    the core cannot keep up at its current V/F (Algorithm 1 lines 4-6).
 *  - It also accumulates windowed polling/interrupt packet counters that
 *    the Decision Engine reads and resets on its periodic timer
 *    (Algorithm 1 lines 7-12).
 */

#ifndef NMAPSIM_NMAP_MONITOR_HH_
#define NMAPSIM_NMAP_MONITOR_HH_

#include <cstdint>
#include <functional>
#include <vector>

namespace nmapsim {

/** Tracks NAPI mode transitions and detects network-intensive cores. */
class ModeTransitionMonitor
{
  public:
    /** Fired when a core crosses NI_TH (notification to the engine). */
    using Notify = std::function<void(int core)>;

    /**
     * @param num_cores  monitored cores
     * @param ni_threshold NI_TH: polling-mode packets per interrupt
     *        above which the core is declared network-intensive
     */
    ModeTransitionMonitor(int num_cores, double ni_threshold);

    void setNotify(Notify notify) { notify_ = std::move(notify); }

    double niThreshold() const { return niThreshold_; }
    void setNiThreshold(double th) { niThreshold_ = th; }

    /** NAPI hook: a hardirq starts a new poll session on @p core. */
    void onHardIrq(int core);

    /** NAPI hook: a poll() call finished on @p core. */
    void onPollProcessed(int core, std::uint32_t intr_pkts,
                         std::uint32_t poll_pkts);

    /** @name Windowed counters (Algorithm 1 lines 7-11) */
    /**@{*/
    std::uint64_t windowPollCount(int core) const;
    std::uint64_t windowIntrCount(int core) const;

    /** Reset a core's window after the engine consumed it. */
    void resetWindow(int core);
    /**@}*/

    /** Polling packets seen so far in the current session of @p core. */
    std::uint64_t sessionPollCount(int core) const;

    std::uint64_t notificationsSent() const { return notifications_; }

  private:
    struct PerCore
    {
        std::uint64_t windowPoll = 0;
        std::uint64_t windowIntr = 0;
        std::uint64_t sessionPoll = 0;
        bool notifiedThisSession = false;
    };

    double niThreshold_;
    Notify notify_;
    std::vector<PerCore> cores_;
    std::uint64_t notifications_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_NMAP_MONITOR_HH_
