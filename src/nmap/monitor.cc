#include "nmap/monitor.hh"

#include "sim/logging.hh"

namespace nmapsim {

ModeTransitionMonitor::ModeTransitionMonitor(int num_cores,
                                             double ni_threshold)
    : niThreshold_(ni_threshold),
      cores_(static_cast<std::size_t>(num_cores))
{
    if (num_cores < 1)
        fatal("ModeTransitionMonitor requires at least one core");
}

void
ModeTransitionMonitor::onHardIrq(int core)
{
    PerCore &c = cores_[static_cast<std::size_t>(core)];
    c.sessionPoll = 0;
    c.notifiedThisSession = false;
}

void
ModeTransitionMonitor::onPollProcessed(int core, std::uint32_t intr_pkts,
                                       std::uint32_t poll_pkts)
{
    PerCore &c = cores_[static_cast<std::size_t>(core)];
    c.windowIntr += intr_pkts;
    c.windowPoll += poll_pkts;
    c.sessionPoll += poll_pkts;

    // Algorithm 1 lines 4-6: excessive polling-mode processing within
    // one interrupt's session means the core is falling behind. Notify
    // at most once per session to avoid hammering the engine.
    if (!c.notifiedThisSession &&
        static_cast<double>(c.sessionPoll) > niThreshold_) {
        c.notifiedThisSession = true;
        ++notifications_;
        if (notify_)
            notify_(core);
    }
}

std::uint64_t
ModeTransitionMonitor::windowPollCount(int core) const
{
    return cores_[static_cast<std::size_t>(core)].windowPoll;
}

std::uint64_t
ModeTransitionMonitor::windowIntrCount(int core) const
{
    return cores_[static_cast<std::size_t>(core)].windowIntr;
}

void
ModeTransitionMonitor::resetWindow(int core)
{
    PerCore &c = cores_[static_cast<std::size_t>(core)];
    c.windowPoll = 0;
    c.windowIntr = 0;
}

std::uint64_t
ModeTransitionMonitor::sessionPollCount(int core) const
{
    return cores_[static_cast<std::size_t>(core)].sessionPoll;
}

} // namespace nmapsim
