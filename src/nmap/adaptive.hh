/**
 * @file
 * Online threshold adaptation for NMAP.
 *
 * The paper derives NI_TH and CU_TH from a one-shot *offline* profiling
 * run and explicitly leaves "further exploration of on-line profiling
 * techniques as future work" (Section 4.2). This module implements that
 * extension: instead of a profiling pass, the thresholds are learned
 * continuously from the behaviour NMAP itself observes while serving.
 *
 * The key insight carries over from the offline procedure: both
 * thresholds describe *healthy* packet processing at the maximum V/F.
 * While a core is in Network Intensive Mode it runs at P0 — exactly the
 * conditions of the offline profiling run — so the sessions and window
 * ratios observed there are valid threshold samples:
 *
 *  - NI_TH <- a quantile of the per-session polling-mode packet counts
 *    sampled during NI mode (decayed reservoir, so the estimate tracks
 *    workload changes);
 *  - CU_TH <- a margin times the exponentially averaged window
 *    polling/interrupt ratio during NI mode.
 *
 * Until enough samples accumulate, bootstrap values keep the governor
 * conservative (a low NI_TH triggers NI mode readily, which both
 * protects the SLO and generates samples).
 */

#ifndef NMAPSIM_NMAP_ADAPTIVE_HH_
#define NMAPSIM_NMAP_ADAPTIVE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "governors/freq_governor.hh"
#include "nmap/decision_engine.hh"
#include "nmap/monitor.hh"
#include "os/hooks.hh"
#include "sim/rng.hh"

namespace nmapsim {

/** Tunables of the online estimator. */
struct AdaptiveConfig
{
    Tick timerInterval = milliseconds(10); //!< engine check period
    double niQuantile = 0.95; //!< session-size quantile for NI_TH
    double niMargin = 1.0;    //!< NI_TH = margin * quantile
    double cuMargin = 1.0;    //!< CU_TH = margin * mean NI ratio
    double ratioAlpha = 0.05; //!< EWMA rate for the NI window ratio
    double bootstrapNiTh = 32.0; //!< NI_TH before minSamples sessions
    double bootstrapCuTh = 0.5;  //!< CU_TH before any NI windows
    int minSamples = 64;         //!< sessions before trusting NI_TH
    std::size_t reservoirSize = 256; //!< decayed session reservoir
};

/** Streaming estimator of (NI_TH, CU_TH) from NI-mode observations. */
class OnlineThresholdEstimator
{
  public:
    OnlineThresholdEstimator(const AdaptiveConfig &config, Rng rng);

    /** Feed one completed NI-mode poll session's polling count. */
    void recordNiSession(std::uint64_t poll_count);

    /** Feed one NI-mode timer window's polling/interrupt ratio. */
    void recordNiWindowRatio(double ratio);

    /** Current NI_TH estimate (bootstrap until minSamples). */
    double niThreshold() const;

    /** Current CU_TH estimate (bootstrap until a ratio is seen). */
    double cuThreshold() const;

    std::uint64_t sessionsSeen() const { return sessions_; }

  private:
    AdaptiveConfig config_;
    Rng rng_;

    std::vector<std::uint64_t> reservoir_;
    std::uint64_t sessions_ = 0;
    double ratioEwma_ = 0.0;
    bool haveRatio_ = false;
};

/**
 * NMAP with online threshold adaptation: the Section 4 architecture
 * (Mode Transition Monitor + Decision Engine + ondemand fallback) with
 * thresholds refreshed from the estimator on every engine tick instead
 * of fixed by an offline profiling pass.
 */
class AdaptiveNmapGovernor : public FreqGovernor, public NapiObserver
{
  public:
    AdaptiveNmapGovernor(EventQueue &eq, std::vector<Core *> cores,
                         const AdaptiveConfig &config, Rng rng,
                         const GovernorConfig &gov_config = {});

    void start() override;
    std::string name() const override { return "NMAP-adaptive"; }

    /** @name NapiObserver */
    /**@{*/
    void onHardIrq(int core) override;
    void onPollProcessed(int core, std::uint32_t intr_pkts,
                         std::uint32_t poll_pkts) override;
    /**@}*/

    bool networkIntensive(int core) const;
    double currentNiThreshold() const { return monitor_.niThreshold(); }
    double currentCuThreshold() const { return engine_->cuThreshold(); }
    const OnlineThresholdEstimator &estimator() const { return est_; }

  private:
    void closeSession(int core);
    void refreshThresholds();

    std::vector<Core *> cores_;
    AdaptiveConfig config_;
    OnlineThresholdEstimator est_;
    ModeTransitionMonitor monitor_;
    std::unique_ptr<OndemandGovernor> fallback_;
    std::unique_ptr<DecisionEngine> engine_;
    std::vector<std::uint64_t> sessionPoll_;
    std::vector<bool> sessionWasNi_;
};

} // namespace nmapsim

#endif // NMAPSIM_NMAP_ADAPTIVE_HH_
