#include "nmap/profiler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

ThresholdProfiler::ThresholdProfiler(int num_cores, int observe_sessions,
                                     double cu_margin, double ni_quantile)
    : observeSessions_(observe_sessions), cuMargin_(cu_margin),
      niQuantile_(ni_quantile),
      cores_(static_cast<std::size_t>(num_cores))
{
    if (num_cores < 1)
        fatal("ThresholdProfiler requires at least one core");
    if (observe_sessions < 1)
        fatal("ThresholdProfiler requires at least one session");
}

void
ThresholdProfiler::beginBurst()
{
    active_ = true;
}

void
ThresholdProfiler::endBurst()
{
    for (std::size_t i = 0; i < cores_.size(); ++i)
        closeSession(static_cast<int>(i));
    active_ = false;
}

void
ThresholdProfiler::closeSession(int core)
{
    PerCore &c = cores_[static_cast<std::size_t>(core)];
    if (!c.inSession)
        return;
    // NI_TH looks only at the burst's early part: the first
    // observeSessions_ interrupts (Section 4.2).
    if (sessions_ < static_cast<std::uint64_t>(observeSessions_))
        sessionPolls_.push_back(c.sessionPoll);
    ++sessions_;
    c.sessionPoll = 0;
    c.inSession = false;
}

void
ThresholdProfiler::onHardIrq(int core)
{
    if (!active_)
        return;
    closeSession(core);
    cores_[static_cast<std::size_t>(core)].inSession = true;
}

void
ThresholdProfiler::onPollProcessed(int core, std::uint32_t intr_pkts,
                                   std::uint32_t poll_pkts)
{
    if (!active_)
        return;
    PerCore &c = cores_[static_cast<std::size_t>(core)];
    c.sessionPoll += poll_pkts;
    totalPoll_ += poll_pkts;
    totalIntr_ += intr_pkts;
}

double
ThresholdProfiler::niThreshold() const
{
    if (sessionPolls_.empty())
        return 1.0;
    std::vector<std::uint64_t> sorted(sessionPolls_);
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = static_cast<std::size_t>(
        niQuantile_ * static_cast<double>(sorted.size() - 1));
    return std::max<double>(1.0, static_cast<double>(sorted[idx]));
}

double
ThresholdProfiler::cuThreshold() const
{
    double intr = static_cast<double>(std::max<std::uint64_t>(
        totalIntr_, 1));
    double ratio = static_cast<double>(totalPoll_) / intr;
    return std::max(0.05, cuMargin_ * ratio);
}

} // namespace nmapsim
