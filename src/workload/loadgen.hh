/**
 * @file
 * Open-loop bursty load generator.
 *
 * Reproduces the traffic structure of the paper's Section 3.1: the
 * client emits repetitive macro-bursts (ON windows at the configured
 * request rate) separated by idle periods, and inside a burst requests
 * leave in per-connection trains — a geometric number of back-to-back
 * requests on one connection — so one server core sees a line-rate
 * packet clump per train. Open loop: request emission never waits for
 * responses, which is what lets queues (and tail latency) blow up when
 * the server falls behind.
 */

#ifndef NMAPSIM_WORKLOAD_LOADGEN_HH_
#define NMAPSIM_WORKLOAD_LOADGEN_HH_

#include <memory>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"
#include "workload/app_profile.hh"
#include "workload/client.hh"

namespace nmapsim {

/** Macro-burst (ON/OFF) envelope of the traffic. */
struct BurstConfig
{
    Tick period = milliseconds(100); //!< burst repetition period
    Tick onTime = milliseconds(40);  //!< burst duration within a period

    bool operator==(const BurstConfig &) const = default;
};

/** Drives a Client with bursty open-loop traffic. */
class LoadGenerator
{
  public:
    LoadGenerator(EventQueue &eq, Client &client,
                  const BurstConfig &burst, Rng rng);
    ~LoadGenerator();

    LoadGenerator(const LoadGenerator &) = delete;
    LoadGenerator &operator=(const LoadGenerator &) = delete;

    /** Set the in-burst request rate and train size; effective now. */
    void setLoad(double rps, double train_mean);
    void setLoad(const LoadLevelSpec &spec);

    /**
     * Skew the per-connection traffic distribution. 0 (default) picks
     * connections uniformly (RSS spreads load evenly, the paper's
     * setup); larger values concentrate trains onto low-numbered
     * connections (and therefore onto a subset of cores), the regime
     * where per-core DVFS beats chip-wide (bench/ablation_chipwide).
     */
    void setConnectionSkew(double skew);

    /** Begin the ON/OFF cycle (first ON starts immediately). */
    void start();

    /** Stop emitting (pending trains are cancelled). */
    void stop();

    /** True when @p t falls inside an ON window. */
    bool inBurst(Tick t) const;

    double rps() const { return rps_; }

    std::uint64_t trainsEmitted() const { return trains_; }

  private:
    void scheduleNextTrain();
    void onTrain();

    EventQueue &eq_;
    Client &client_;
    BurstConfig burst_;
    Rng rng_;

    double rps_ = 0.0;
    double trainMean_ = 1.0;
    double connSkew_ = 0.0;
    Tick origin_ = 0;
    bool running_ = false;
    std::uint64_t trains_ = 0;

    EventFunctionWrapper trainEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_WORKLOAD_LOADGEN_HH_
