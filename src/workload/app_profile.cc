#include "workload/app_profile.hh"

#include <cmath>

#include "sim/logging.hh"

namespace nmapsim {

const char *
loadLevelName(LoadLevel level)
{
    switch (level) {
      case LoadLevel::kLow:
        return "low";
      case LoadLevel::kMed:
        return "med";
      case LoadLevel::kHigh:
        return "high";
    }
    return "?";
}

double
AppProfile::sampleServiceCycles(Rng &rng) const
{
    return rng.lognormal(serviceMu, serviceSigma);
}

double
AppProfile::meanServiceCycles() const
{
    return std::exp(serviceMu + serviceSigma * serviceSigma / 2.0);
}

const LoadLevelSpec &
AppProfile::level(LoadLevel l) const
{
    switch (l) {
      case LoadLevel::kLow:
        return low;
      case LoadLevel::kMed:
        return med;
      case LoadLevel::kHigh:
        return high;
    }
    panic("unknown load level");
}

namespace {

/** Underlying-normal mu for a log-normal with the given mean. */
double
muForMean(double mean, double sigma)
{
    return std::log(mean) - sigma * sigma / 2.0;
}

} // namespace

AppProfile
AppProfile::memcached()
{
    constexpr double sigma = 0.50;
    return AppProfile{
        "memcached",
        muForMean(4000.0, sigma), // ~1.25 us at 3.2 GHz
        sigma,
        /*requestBytes=*/128,
        /*responseBytes=*/256,
        /*slo=*/milliseconds(1),
        /*cacheTouch=*/0.30,
        // Burst heights x duty = the paper's 30K/290K/750K averages.
        /*low=*/{300e3, 0.100, 8.0},
        /*med=*/{1.0e6, 0.290, 12.0},
        /*high=*/{1.667e6, 0.450, 12.0},
    };
}

AppProfile
AppProfile::nginx()
{
    constexpr double sigma = 0.50;
    return AppProfile{
        "nginx",
        muForMean(60000.0, sigma), // ~18.8 us at 3.2 GHz
        sigma,
        /*requestBytes=*/512,
        /*responseBytes=*/4096,
        /*slo=*/milliseconds(10),
        /*cacheTouch=*/0.50,
        // Burst heights x duty = the paper's 18K/48K/56K averages.
        /*low=*/{120e3, 0.150, 8.0},
        /*med=*/{290e3, 0.1655, 10.0},
        /*high=*/{320e3, 0.175, 12.0},
    };
}

AppProfile
AppProfile::keyvalueUs()
{
    constexpr double sigma = 0.40;
    return AppProfile{
        "keyvalue-us",
        muForMean(2000.0, sigma), // ~0.6 us at 3.2 GHz
        sigma,
        /*requestBytes=*/64,
        /*responseBytes=*/128,
        /*slo=*/microseconds(100),
        // Small working set: the refill share after a CC6 wake is
        // modest, but the ~27 us exit latency alone is 27% of the SLO.
        /*cacheTouch=*/0.10,
        // Lighter trains: us-scale services are driven by small
        // batches; bursts keep the ON/OFF envelope of the other apps.
        /*low=*/{300e3, 0.100, 4.0},
        /*med=*/{1.0e6, 0.290, 4.0},
        /*high=*/{1.667e6, 0.450, 4.0},
    };
}

AppProfile
AppProfile::byName(const std::string &name)
{
    if (name == "memcached")
        return memcached();
    if (name == "nginx")
        return nginx();
    if (name == "keyvalue-us")
        return keyvalueUs();
    fatal("unknown application profile '" + name +
          "' (known: memcached, nginx, keyvalue-us)");
}

} // namespace nmapsim
