/**
 * @file
 * Latency-critical application profiles.
 *
 * Two applications mirror the paper's evaluation: a memcached-like
 * in-memory key/value store (microsecond-scale requests, SLO = 1 ms)
 * and an nginx-like web server (heavier requests, SLO = 10 ms). Service
 * demand is in cycles, so DVFS stretches it. Load levels carry the
 * paper's request rates plus the mean size of the per-connection request
 * trains clients emit inside a burst; larger trains at higher loads are
 * what drives NAPI into sustained polling.
 */

#ifndef NMAPSIM_WORKLOAD_APP_PROFILE_HH_
#define NMAPSIM_WORKLOAD_APP_PROFILE_HH_

#include <cstdint>
#include <string>

#include "sim/rng.hh"
#include "sim/time.hh"

namespace nmapsim {

/** The three load levels used throughout the evaluation. */
enum class LoadLevel
{
    kLow,
    kMed,
    kHigh,
};

/** Human-readable name of a load level. */
const char *loadLevelName(LoadLevel level);

/** One operating point of the client load generator. */
struct LoadLevelSpec
{
    double rps;       //!< requests per second *during* a burst (height)
    double duty;      //!< fraction of each period the burst is ON
    double trainMean; //!< mean requests per back-to-back train

    /** Long-run average request rate (what the paper quotes). */
    double avgRps() const { return rps * duty; }

    bool operator==(const LoadLevelSpec &) const = default;
};

/** Everything workload-specific about one application. */
struct AppProfile
{
    std::string name;

    /** Log-normal service demand (cycles): mean of the underlying
     *  normal... */
    double serviceMu;
    /** ...and its standard deviation. */
    double serviceSigma;

    std::uint32_t requestBytes;  //!< request packet wire size
    std::uint32_t responseBytes; //!< response packet wire size

    Tick slo; //!< P99 target (inflection of the latency-load curve)

    /** Fraction of the private cache re-read after a CC6 wake. */
    double cacheTouch;

    LoadLevelSpec low;
    LoadLevelSpec med;
    LoadLevelSpec high;

    /** Draw one request's service demand in cycles. */
    double sampleServiceCycles(Rng &rng) const;

    /** Mean service demand in cycles (for capacity planning). */
    double meanServiceCycles() const;

    const LoadLevelSpec &level(LoadLevel l) const;

    /**
     * Memcached-like profile: ~6.3 us mean service at 3.2 GHz, 1 ms
     * SLO, loads 30K/290K/750K RPS (paper Section 6.1).
     */
    static AppProfile memcached();

    /**
     * Nginx-like profile: ~127 us mean service at 3.2 GHz, 10 ms SLO,
     * loads 18K/48K/56K RPS (paper Section 6.1).
     */
    static AppProfile nginx();

    /**
     * Microsecond-scale key/value profile (extension): ~0.6 us mean
     * service and a 100 us P99 SLO — the "killer microseconds" regime
     * the paper's Section 7 defers to future work, where C-state
     * wake-up penalties (~27 us exit + cache refill) are no longer
     * negligible against the SLO. Used by bench/ext_usec_slo.
     */
    static AppProfile keyvalueUs();

    /**
     * Look up a built-in profile by its name field ("memcached",
     * "nginx", "keyvalue-us"); fatal() on unknown names.
     */
    static AppProfile byName(const std::string &name);

    bool operator==(const AppProfile &) const = default;
};

} // namespace nmapsim

#endif // NMAPSIM_WORKLOAD_APP_PROFILE_HH_
