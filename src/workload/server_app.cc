#include "workload/server_app.hh"

#include "sim/logging.hh"

namespace nmapsim {

ServerApp::ServerApp(ServerOs &os, Nic &nic, const AppProfile &profile,
                     Rng rng, bool attach_deliver)
    : os_(os), nic_(nic), profile_(profile), rng_(rng)
{
    for (int core = 0; core < os_.numCores(); ++core) {
        threads_.push_back(std::make_unique<AppThread>(*this, core));
        os_.sched(core).addThread(threads_.back().get());
    }
    if (attach_deliver) {
        os_.setDeliver([this](int core, const Packet &pkt) {
            onPacket(core, pkt);
        });
    }
}

void
ServerApp::setServiceScale(double scale)
{
    if (scale <= 0.0)
        fatal("ServerApp service scale must be positive");
    serviceScale_ = scale;
}

void
ServerApp::onPacket(int core, const Packet &pkt)
{
    ++received_;
    AppThread &thread = *threads_[static_cast<std::size_t>(core)];
    double cycles = profile_.sampleServiceCycles(rng_);
    // Guarded so a unit scale leaves the cycle stream bit-identical.
    if (serviceScale_ != 1.0)
        cycles *= serviceScale_;
    thread.queue_.push_back(PendingRequest{
        pkt.requestId,
        cycles,
        pkt.flowHash,
        pkt.sendTime,
        pkt.latencyCritical,
        pkt.tier,
        pkt.hops,
        pkt.hopStart,
    });
    os_.sched(core).threadRunnable(&thread);
}

void
ServerApp::finishFront(int core)
{
    AppThread &thread = *threads_[static_cast<std::size_t>(core)];
    if (thread.queue_.empty())
        panic("ServerApp::finishFront on an empty queue");
    PendingRequest req = thread.queue_.front();
    thread.queue_.pop_front();
    ++completed_;

    Packet resp;
    resp.requestId = req.requestId;
    resp.flowHash = req.flowHash;
    resp.sendTime = req.sendTime; // echoed for client-side latency
    resp.latencyCritical = req.latencyCritical;
    resp.tier = req.tier;
    resp.hops = req.hops;
    resp.hopStart = req.hopStart;
    if (forward_) {
        // Forward-vs-reply contract: a forwarding tier re-emits the
        // request toward the next tier; the switch advances pkt.tier.
        resp.kind = Packet::Kind::kRequest;
        resp.sizeBytes = profile_.requestBytes;
        ++forwarded_;
    } else {
        resp.kind = Packet::Kind::kResponse;
        resp.sizeBytes = profile_.responseBytes;
    }
    nic_.transmit(core, resp);
}

std::size_t
ServerApp::queueDepth(int core) const
{
    return threads_[static_cast<std::size_t>(core)]->queue_.size();
}

std::size_t
ServerApp::totalQueued() const
{
    std::size_t n = 0;
    for (const auto &t : threads_)
        n += t->queue_.size();
    return n;
}

} // namespace nmapsim
