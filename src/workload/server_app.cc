#include "workload/server_app.hh"

#include "sim/logging.hh"

namespace nmapsim {

ServerApp::ServerApp(ServerOs &os, Nic &nic, const AppProfile &profile,
                     Rng rng, bool attach_deliver)
    : os_(os), nic_(nic), profile_(profile), rng_(rng)
{
    for (int core = 0; core < os_.numCores(); ++core) {
        threads_.push_back(std::make_unique<AppThread>(*this, core));
        os_.sched(core).addThread(threads_.back().get());
    }
    if (attach_deliver) {
        os_.setDeliver([this](int core, const Packet &pkt) {
            onPacket(core, pkt);
        });
    }
}

void
ServerApp::setServiceScale(double scale)
{
    if (scale <= 0.0)
        fatal("ServerApp service scale must be positive");
    serviceScale_ = scale;
}

void
ServerApp::setResilience(const ResiliencePlan &plan)
{
    if (received_ != 0)
        fatal("ServerApp resilience must be set before traffic starts");
    deadlineSheds_ = plan.wantsDeadline();
    if (plan.wantsAdmission()) {
        ensureBuiltinAdmissionPolicies();
        const AdmissionContext ctx{plan};
        for (int core = 0; core < os_.numCores(); ++core)
            admission_.push_back(
                AdmissionPolicyRegistry::instance().make(
                    plan.admission, ctx));
    }
    resilient_ = deadlineSheds_ || !admission_.empty();
}

Tick
ServerApp::now()
{
    return os_.core(0).eventQueue().now();
}

void
ServerApp::reject(int core, const PendingRequest &req)
{
    // Shed notice: a response-shaped control packet flagged rejected,
    // so the client accounts the request as shed instead of retrying
    // into the overload. Not goodput, hence control sizing.
    Packet resp;
    resp.requestId = req.requestId;
    resp.kind = Packet::Kind::kResponse;
    resp.flowHash = req.flowHash;
    resp.sizeBytes = 64;
    resp.sendTime = req.sendTime;
    resp.latencyCritical = req.latencyCritical;
    resp.tier = req.tier;
    resp.hops = req.hops;
    resp.hopStart = req.hopStart;
    resp.deadline = req.deadline;
    resp.control = true;
    resp.rejected = true;
    nic_.transmit(core, resp);
}

void
ServerApp::onPacket(int core, const Packet &pkt)
{
    ++received_;
    AppThread &thread = *threads_[static_cast<std::size_t>(core)];
    if (resilient_) {
        const Tick arrival = now();
        const PendingRequest stub{pkt.requestId, 0.0,      pkt.flowHash,
                                  pkt.sendTime, pkt.latencyCritical,
                                  pkt.tier,     pkt.hops,  pkt.hopStart,
                                  pkt.deadline, arrival};
        if (deadlineSheds_ && pkt.deadline > 0 &&
            arrival > pkt.deadline) {
            ++shedDeadline_;
            reject(core, stub);
            return;
        }
        AdmissionPolicy *gate =
            admission_.empty()
                ? nullptr
                : admission_[static_cast<std::size_t>(core)].get();
        if (gate != nullptr &&
            !gate->admit(arrival, thread.queue_.size())) {
            ++shedAdmission_;
            reject(core, stub);
            return;
        }
    }
    double cycles = profile_.sampleServiceCycles(rng_);
    // Guarded so a unit scale leaves the cycle stream bit-identical.
    if (serviceScale_ != 1.0)
        cycles *= serviceScale_;
    thread.queue_.push_back(PendingRequest{
        pkt.requestId,
        cycles,
        pkt.flowHash,
        pkt.sendTime,
        pkt.latencyCritical,
        pkt.tier,
        pkt.hops,
        pkt.hopStart,
        pkt.deadline,
        resilient_ ? now() : 0,
    });
    os_.sched(core).threadRunnable(&thread);
}

void
ServerApp::finishFront(int core)
{
    AppThread &thread = *threads_[static_cast<std::size_t>(core)];
    if (thread.queue_.empty())
        panic("ServerApp::finishFront on an empty queue");
    PendingRequest req = thread.queue_.front();
    thread.queue_.pop_front();
    ++completed_;

    Packet resp;
    resp.requestId = req.requestId;
    resp.flowHash = req.flowHash;
    resp.sendTime = req.sendTime; // echoed for client-side latency
    resp.latencyCritical = req.latencyCritical;
    resp.tier = req.tier;
    resp.hops = req.hops;
    resp.hopStart = req.hopStart;
    if (forward_) {
        // Forward-vs-reply contract: a forwarding tier re-emits the
        // request toward the next tier; the switch advances pkt.tier.
        resp.kind = Packet::Kind::kRequest;
        resp.sizeBytes = profile_.requestBytes;
        ++forwarded_;
    } else {
        resp.kind = Packet::Kind::kResponse;
        resp.sizeBytes = profile_.responseBytes;
    }
    resp.deadline = req.deadline;
    nic_.transmit(core, resp);

    if (!resilient_)
        return;
    // Serve-time shedding: before the scheduler sizes the next slice,
    // drop queued requests that are already hopeless (past deadline)
    // or that the sojourn law refuses — they cost a shed notice, not a
    // service time.
    const Tick serveAt = now();
    AdmissionPolicy *gate =
        admission_.empty()
            ? nullptr
            : admission_[static_cast<std::size_t>(core)].get();
    while (!thread.queue_.empty()) {
        const PendingRequest &next = thread.queue_.front();
        if (deadlineSheds_ && next.deadline > 0 &&
            serveAt > next.deadline) {
            ++shedDeadline_;
            reject(core, next);
            thread.queue_.pop_front();
            continue;
        }
        if (gate != nullptr && !gate->serve(serveAt, next.enqueuedAt)) {
            ++shedSojourn_;
            reject(core, next);
            thread.queue_.pop_front();
            continue;
        }
        break;
    }
}

std::size_t
ServerApp::queueDepth(int core) const
{
    return threads_[static_cast<std::size_t>(core)]->queue_.size();
}

std::size_t
ServerApp::totalQueued() const
{
    std::size_t n = 0;
    for (const auto &t : threads_)
        n += t->queue_.size();
    return n;
}

} // namespace nmapsim
