/**
 * @file
 * The server-side application (memcached/nginx model).
 *
 * One application thread per core (the paper runs eight threads on the
 * eight-core Xeon). NAPI delivers request packets into the per-core
 * socket queue; the thread consumes them FIFO, burning the request's
 * sampled service cycles at the core's current frequency, then transmits
 * the response through the NIC queue of its core.
 */

#ifndef NMAPSIM_WORKLOAD_SERVER_APP_HH_
#define NMAPSIM_WORKLOAD_SERVER_APP_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/nic.hh"
#include "os/server_os.hh"
#include "resilience/admission.hh"
#include "resilience/plan.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"
#include "workload/app_profile.hh"

namespace nmapsim {

/** Multi-threaded latency-critical server application. */
class ServerApp
{
  public:
    /**
     * Wires itself into @p os: one application thread per core, and —
     * unless @p attach_deliver is false — the OS deliver callback.
     * Pass false when several apps share the server (colocation); the
     * caller then routes packets to deliver() itself.
     */
    ServerApp(ServerOs &os, Nic &nic, const AppProfile &profile,
              Rng rng, bool attach_deliver = true);

    /** Hand a request packet to this app's thread on @p core. */
    void deliver(int core, const Packet &pkt) { onPacket(core, pkt); }

    const AppProfile &profile() const { return profile_; }

    std::uint64_t requestsCompleted() const { return completed_; }
    std::uint64_t requestsReceived() const { return received_; }
    std::uint64_t requestsForwarded() const { return forwarded_; }

    /**
     * Forwarding role: when set, a completed request is re-emitted as
     * a request packet for the next service tier instead of a
     * response. The switch owns tier advancement; the app only echoes
     * the addressing fields. Configure before traffic starts.
     */
    void setForwardDownstream(bool forward) { forward_ = forward; }
    bool forwardDownstream() const { return forward_; }

    /**
     * Multiplier on sampled service cycles (tier heterogeneity, e.g. a
     * thin LB tier vs a heavy app tier). Must be positive; 1.0 leaves
     * the sampled stream untouched bit for bit.
     */
    void setServiceScale(double scale);

    /**
     * Arm overload control from a validated plan: an AdmissionPolicy
     * instance per thread gating arrivals and serves, plus
     * deadline-expiry shedding at both points. Shed requests are
     * answered with a `rejected` response so the client can account
     * for them; nothing is constructed when the plan carries neither
     * admission nor a deadline. Configure before traffic starts.
     */
    void setResilience(const ResiliencePlan &plan);

    /** @name Shed accounting (zero when resilience is off) */
    /**@{*/
    /** Arrivals refused by the admission policy. */
    std::uint64_t shedAdmission() const { return shedAdmission_; }
    /** Queued requests shed at serve time (sojourn law). */
    std::uint64_t shedSojourn() const { return shedSojourn_; }
    /** Requests shed because their deadline had already passed. */
    std::uint64_t shedDeadline() const { return shedDeadline_; }
    /**@}*/

    /** Requests waiting (or in service) on @p core's thread. */
    std::size_t queueDepth(int core) const;

    /** Sum of queue depths over all cores. */
    std::size_t totalQueued() const;

  private:
    struct PendingRequest
    {
        std::uint64_t requestId;
        double cycles;
        std::uint32_t flowHash;
        Tick sendTime;
        bool latencyCritical;
        std::uint8_t tier;
        std::uint8_t hops;
        Tick hopStart;
        Tick deadline;
        Tick enqueuedAt;
    };

    class AppThread : public SimThread
    {
      public:
        AppThread(ServerApp &app, int core)
            : app_(app), core_(core)
        {
        }

        bool runnable() const override { return !queue_.empty(); }
        double beginSlice() override { return queue_.front().cycles; }
        void completeSlice() override { app_.finishFront(core_); }
        std::string name() const override { return "app"; }

      private:
        friend class ServerApp;
        ServerApp &app_;
        int core_;
        Ring<PendingRequest> queue_;
    };

    void onPacket(int core, const Packet &pkt);
    void finishFront(int core);
    void reject(int core, const PendingRequest &req);
    Tick now();

    ServerOs &os_;
    Nic &nic_;
    AppProfile profile_;
    Rng rng_;
    std::vector<std::unique_ptr<AppThread>> threads_;

    std::uint64_t received_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t forwarded_ = 0;
    bool forward_ = false;
    double serviceScale_ = 1.0;

    bool resilient_ = false;
    bool deadlineSheds_ = false;
    std::vector<std::unique_ptr<AdmissionPolicy>> admission_;
    std::uint64_t shedAdmission_ = 0;
    std::uint64_t shedSojourn_ = 0;
    std::uint64_t shedDeadline_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_WORKLOAD_SERVER_APP_HH_
