#include "workload/client.hh"

#include "sim/logging.hh"

namespace nmapsim {

Client::Client(EventQueue &eq, Wire &to_server, const AppProfile &profile,
               int num_connections, std::uint32_t flow_base)
    : eq_(eq), toServer_(to_server), profile_(profile),
      numConnections_(num_connections), flowBase_(flow_base)
{
    if (num_connections < 1)
        fatal("Client requires at least one connection");
}

void
Client::sendRequest(int conn)
{
    Packet pkt;
    pkt.requestId = nextRequestId_++;
    pkt.kind = Packet::Kind::kRequest;
    pkt.flowHash = flowBase_ + static_cast<std::uint32_t>(conn);
    pkt.sizeBytes = profile_.requestBytes;
    pkt.sendTime = eq_.now();
    pkt.latencyCritical = true;
    ++sent_;
    toServer_.send(pkt);
}

void
Client::onResponse(const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kResponse)
        panic("Client received a non-response packet");
    ++received_;
    Tick latency = eq_.now() - pkt.sendTime;
    latencies_.record(eq_.now(), latency);
    window_.record(eq_.now(), latency);
}

Tick
Client::windowP99AndReset()
{
    Tick p99 = window_.percentile(99.0);
    window_.clear();
    return p99;
}

} // namespace nmapsim
