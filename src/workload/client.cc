#include "workload/client.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

ClientRetryPolicy
ClientRetryPolicy::fromParams(const PolicyParams &params)
{
    for (const auto &[key, value] : params) {
        (void)value;
        if (key.rfind("client.", 0) == 0 && key != "client.timeout" &&
            key != "client.retries" && key != "client.backoff_cap") {
            fatal("unknown client key '" + key + "'");
        }
    }
    ClientRetryPolicy policy;
    policy.timeout = params.getTick("client.timeout", 0);
    policy.maxRetries = params.getInt("client.retries", 0);
    policy.backoffCap = params.getTick("client.backoff_cap", 0);
    if (policy.timeout < 0)
        fatal("client.timeout must be >= 0");
    if (policy.maxRetries < 0 || policy.maxRetries > 30)
        fatal("client.retries must be in [0, 30]");
    if (policy.backoffCap < 0)
        fatal("client.backoff_cap must be >= 0");
    if (!policy.enabled() &&
        (policy.maxRetries > 0 || policy.backoffCap > 0)) {
        fatal("client.retries/client.backoff_cap require "
              "client.timeout");
    }
    if (policy.backoffCap > 0 && policy.backoffCap < policy.timeout)
        fatal("client.backoff_cap must be >= client.timeout");
    return policy;
}

Client::Client(EventQueue &eq, Wire &to_server, const AppProfile &profile,
               int num_connections, std::uint32_t flow_base)
    : eq_(eq), toServer_(to_server), profile_(profile),
      numConnections_(num_connections), flowBase_(flow_base),
      timeoutEvent_([this] { onTimeoutDeadline(); }, "client.timeout")
{
    if (num_connections < 1)
        fatal("Client requires at least one connection");
}

Client::~Client()
{
    eq_.deschedule(&timeoutEvent_);
}

void
Client::setRetryPolicy(const ClientRetryPolicy &policy)
{
    if (sent_ != 0)
        fatal("Client retry policy must be set before traffic starts");
    retry_ = policy;
}

void
Client::setRetryBudget(double ratio, int initial, double cap)
{
    if (sent_ != 0)
        fatal("Client retry budget must be set before traffic starts");
    budgetEnabled_ = true;
    budgetRatio_ = ratio;
    budgetCap_ = cap;
    budgetTokens_ =
        std::min(static_cast<double>(initial), cap);
}

void
Client::setDeadlineBudget(Tick budget)
{
    if (sent_ != 0)
        fatal("Client deadline budget must be set before traffic "
              "starts");
    deadlineBudget_ = budget;
}

void
Client::setEntryTier(int tier)
{
    if (sent_ != 0)
        fatal("Client entry tier must be set before traffic starts");
    entryTier_ = tier;
}

void
Client::sendRequest(int conn)
{
    Packet pkt;
    pkt.requestId = nextRequestId_++;
    pkt.kind = Packet::Kind::kRequest;
    pkt.flowHash = flowBase_ + static_cast<std::uint32_t>(conn);
    pkt.sizeBytes = profile_.requestBytes;
    pkt.sendTime = eq_.now();
    pkt.latencyCritical = true;
    pkt.tier = static_cast<std::uint8_t>(entryTier_);
    if (deadlineBudget_ > 0)
        pkt.deadline = eq_.now() + deadlineBudget_;
    ++sent_;
    if (retry_.enabled()) {
        Outstanding entry;
        entry.conn = conn;
        entry.firstSend = eq_.now();
        entry.lastSend = eq_.now();
        entry.attempts = 1;
        entry.deadline = eq_.now() + retry_.timeout;
        outstanding_.emplace(pkt.requestId, entry);
        deadlines_.emplace(entry.deadline, pkt.requestId);
        armTimeoutEvent();
    }
    toServer_.send(pkt);
}

void
Client::transmit(std::uint64_t id, Outstanding &entry)
{
    Packet pkt;
    pkt.requestId = id;
    pkt.kind = Packet::Kind::kRequest;
    pkt.flowHash = flowBase_ + static_cast<std::uint32_t>(entry.conn);
    pkt.sizeBytes = profile_.requestBytes;
    pkt.sendTime = eq_.now();
    pkt.latencyCritical = true;
    pkt.tier = static_cast<std::uint8_t>(entryTier_);
    if (deadlineBudget_ > 0)
        pkt.deadline = eq_.now() + deadlineBudget_;
    entry.lastSend = eq_.now();
    toServer_.send(pkt);
}

void
Client::onResponse(const Packet &pkt)
{
    if (pkt.kind != Packet::Kind::kResponse)
        panic("Client received a non-response packet");
    if (pkt.rejected) {
        // A shed notice is terminal: the request is accounted as shed,
        // never retransmitted, and never enters the latency
        // distribution (it carries no service result).
        if (!retry_.enabled()) {
            ++shed_;
            return;
        }
        auto it = outstanding_.find(pkt.requestId);
        if (it == outstanding_.end()) {
            ++duplicates_;
            return;
        }
        ++shed_;
        deadlines_.erase({it->second.deadline, pkt.requestId});
        outstanding_.erase(it);
        armTimeoutEvent();
        return;
    }
    if (!retry_.enabled()) {
        ++received_;
        Tick latency = eq_.now() - pkt.sendTime;
        latencies_.record(eq_.now(), latency);
        window_.record(eq_.now(), latency);
        return;
    }
    auto it = outstanding_.find(pkt.requestId);
    if (it == outstanding_.end()) {
        // Response to a request we already gave up on (or a second
        // copy after retransmission raced the original): counted, not
        // recorded, so the latency distribution only sees completions.
        ++duplicates_;
        return;
    }
    const Outstanding &entry = it->second;
    ++received_;
    Tick completion = eq_.now() - entry.firstSend;
    latencies_.record(eq_.now(), completion);
    window_.record(eq_.now(), completion);
    attemptLatencies_.record(eq_.now(), eq_.now() - pkt.sendTime);
    if (budgetEnabled_)
        budgetTokens_ =
            std::min(budgetTokens_ + budgetRatio_, budgetCap_);
    deadlines_.erase({entry.deadline, pkt.requestId});
    outstanding_.erase(it);
    armTimeoutEvent();
}

void
Client::onTimeoutDeadline()
{
    const Tick now = eq_.now();
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
        const std::uint64_t id = deadlines_.begin()->second;
        deadlines_.erase(deadlines_.begin());
        auto it = outstanding_.find(id);
        if (it == outstanding_.end())
            continue;
        Outstanding &entry = it->second;
        if (entry.attempts > retry_.maxRetries) {
            // Retry ladder spent: surface the loss instead of letting
            // the request silently vanish (coordinated omission).
            ++timedOut_;
            outstanding_.erase(it);
            continue;
        }
        if (budgetEnabled_ && budgetTokens_ < 1.0) {
            // The retry budget is dry: give up instead of joining the
            // storm. Counted as timed out (the user saw no answer)
            // plus the dedicated exhaustion counter.
            ++budgetExhausted_;
            ++timedOut_;
            outstanding_.erase(it);
            continue;
        }
        if (budgetEnabled_)
            budgetTokens_ -= 1.0;
        ++entry.attempts;
        ++retransmits_;
        transmit(id, entry);
        entry.deadline = now + backoffFor(entry.attempts);
        deadlines_.emplace(entry.deadline, id);
    }
    armTimeoutEvent();
}

void
Client::armTimeoutEvent()
{
    if (timeoutEvent_.scheduled())
        eq_.deschedule(&timeoutEvent_);
    if (deadlines_.empty())
        return;
    eq_.schedule(&timeoutEvent_, deadlines_.begin()->first);
}

Tick
Client::backoffFor(int attempts) const
{
    // Wait before giving up on attempt N: timeout * 2^(N-1), bounded
    // by the cap. maxRetries <= 30 keeps the shift overflow-free.
    Tick wait = retry_.timeout;
    for (int i = 1; i < attempts; ++i) {
        wait *= 2;
        if (retry_.backoffCap > 0 && wait >= retry_.backoffCap)
            return retry_.backoffCap;
    }
    return wait;
}

std::uint64_t
Client::requestsInFlight() const
{
    if (retry_.enabled())
        return outstanding_.size();
    // Without tracking, unanswered = sent minus answered (including
    // shed notices); the feedback-client case (answers observed,
    // nothing sent) clamps to zero.
    return received_ + shed_ >= sent_ ? 0
                                      : sent_ - received_ - shed_;
}

Tick
Client::windowP99AndReset()
{
    Tick p99 = window_.percentile(99.0);
    window_.clear();
    return p99;
}

} // namespace nmapsim
