#include "workload/loadgen.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace nmapsim {

LoadGenerator::LoadGenerator(EventQueue &eq, Client &client,
                             const BurstConfig &burst, Rng rng)
    : eq_(eq), client_(client), burst_(burst), rng_(rng),
      trainEvent_([this] { onTrain(); }, "loadgen.train")
{
    if (burst_.period <= 0 || burst_.onTime <= 0 ||
        burst_.onTime > burst_.period)
        fatal("LoadGenerator: invalid burst envelope");
}

LoadGenerator::~LoadGenerator()
{
    eq_.deschedule(&trainEvent_);
}

void
LoadGenerator::setLoad(double rps, double train_mean)
{
    if (rps < 0.0 || train_mean < 1.0)
        fatal("LoadGenerator: invalid load parameters");
    rps_ = rps;
    trainMean_ = train_mean;
    if (running_) {
        eq_.deschedule(&trainEvent_);
        scheduleNextTrain();
    }
}

void
LoadGenerator::setLoad(const LoadLevelSpec &spec)
{
    if (spec.duty <= 0.0 || spec.duty > 1.0)
        fatal("LoadGenerator: duty cycle must be in (0, 1]");
    burst_.onTime = std::max<Tick>(
        1, static_cast<Tick>(spec.duty *
                             static_cast<double>(burst_.period)));
    setLoad(spec.rps, spec.trainMean);
}

void
LoadGenerator::start()
{
    origin_ = eq_.now();
    running_ = true;
    scheduleNextTrain();
}

void
LoadGenerator::stop()
{
    running_ = false;
    eq_.deschedule(&trainEvent_);
}

bool
LoadGenerator::inBurst(Tick t) const
{
    if (t < origin_)
        return false;
    Tick pos = (t - origin_) % burst_.period;
    return pos < burst_.onTime;
}

void
LoadGenerator::scheduleNextTrain()
{
    if (!running_ || rps_ <= 0.0)
        return;
    // Poisson train arrivals at rate rps/trainMean during ON windows.
    double mean_gap_s = trainMean_ / rps_;
    Tick gap = std::max<Tick>(
        1, static_cast<Tick>(rng_.exponential(mean_gap_s) * kSecond));
    Tick t = eq_.now() + gap;
    // Project times landing in an OFF window onto the next ON start.
    Tick pos = (t - origin_) % burst_.period;
    if (pos >= burst_.onTime)
        t += burst_.period - pos;
    eq_.schedule(&trainEvent_, t);
}

void
LoadGenerator::setConnectionSkew(double skew)
{
    if (skew < 0.0)
        fatal("LoadGenerator: connection skew must be >= 0");
    connSkew_ = skew;
}

void
LoadGenerator::onTrain()
{
    ++trains_;
    auto size = rng_.geometric(1.0 / trainMean_);
    int n = client_.numConnections();
    int conn;
    if (connSkew_ <= 0.0) {
        conn = static_cast<int>(rng_.uniformInt(0, n - 1));
    } else {
        // Power-law pick: u^(1+skew) concentrates mass on connection 0.
        double u = rng_.uniform();
        double biased = std::pow(u, 1.0 + connSkew_);
        conn = std::min(n - 1, static_cast<int>(
                                   biased * static_cast<double>(n)));
    }
    for (std::int64_t i = 0; i < size; ++i)
        client_.sendRequest(conn);
    scheduleNextTrain();
}

} // namespace nmapsim
