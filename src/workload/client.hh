/**
 * @file
 * Client side: request emission and end-to-end latency measurement.
 *
 * Models the paper's 20 client threads on a separate machine. Each
 * client thread owns one connection (one RSS flow hash), so a train of
 * requests from one thread lands on one server core back-to-back. The
 * client timestamps requests, the server echoes the timestamp in the
 * response, and the client records end-to-end response time — the
 * quantity every latency figure in the paper reports.
 */

#ifndef NMAPSIM_WORKLOAD_CLIENT_HH_
#define NMAPSIM_WORKLOAD_CLIENT_HH_

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "harness/policy_params.hh"
#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"
#include "stats/latency_recorder.hh"
#include "workload/app_profile.hh"

namespace nmapsim {

/**
 * Per-request timeout/retransmission policy (`client.*` config keys).
 *
 * Disabled by default (timeout == 0): the client fires and forgets,
 * exactly the pre-fault behaviour. When enabled, every request is
 * tracked until its response arrives; a request unanswered after the
 * timeout is retransmitted with the wait doubling each attempt
 * (capped at backoffCap when nonzero) until maxRetries
 * retransmissions are spent, at which point the request is counted as
 * timed out. This is what turns injected loss into visible latency
 * instead of coordinated omission.
 */
struct ClientRetryPolicy {
    Tick timeout = 0;    //!< base per-request timeout; 0 disables
    int maxRetries = 0;  //!< retransmissions after the first attempt
    Tick backoffCap = 0; //!< upper bound on the backoff wait; 0 = none

    bool enabled() const { return timeout > 0; }

    /**
     * Read `client.timeout` / `client.retries` /
     * `client.backoff_cap` from @p params; unknown `client.*` keys
     * and nonsensical values are fatal.
     */
    static ClientRetryPolicy fromParams(const PolicyParams &params);
};

/**
 * Spacing between independent clients' flow spaces sharing one
 * wire/NIC (colocation tenants, cluster client groups): client i uses
 * flow hashes [i * kFlowSpaceStride, i * kFlowSpaceStride +
 * connections), so `flowHash / kFlowSpaceStride` recovers the owner.
 */
constexpr std::uint32_t kFlowSpaceStride = 1024;

/** The load-generating client machine. */
class Client
{
  public:
    /**
     * @param to_server client->server wire (we send into it)
     * @param num_connections client threads / RSS flows (paper: 20)
     * @param flow_base offset added to connection ids to form flow
     *        hashes; lets several tenants share one wire/NIC with
     *        disjoint flow spaces (colocation)
     */
    Client(EventQueue &eq, Wire &to_server, const AppProfile &profile,
           int num_connections, std::uint32_t flow_base = 0);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Enable request tracking with timeouts and retransmission; must
     * be set before the first request. With the default (disabled)
     * policy the send/receive paths are byte-identical to a client
     * built without retry support.
     */
    void setRetryPolicy(const ClientRetryPolicy &policy);

    /**
     * Cap retransmissions to a budget earned from successes
     * (resilience.retry_budget): the client starts with @p initial
     * tokens, banks @p ratio more per completed request up to @p cap,
     * and every retransmission spends one token. An exhausted budget
     * converts would-be retransmissions into timeouts — the
     * Finagle-style damper that keeps retry storms from amplifying an
     * overloaded tier. Must be set before traffic starts.
     */
    void setRetryBudget(double ratio, int initial, double cap);

    /**
     * Stamp every transmission with an absolute deadline of
     * send time + @p budget (resilience.deadline), so downstream hops
     * can shed work that can no longer complete in time. Must be set
     * before traffic starts.
     */
    void setDeadlineBudget(Tick budget);

    /**
     * Address requests to tier @p tier instead of tier 0
     * (topology.tier<i>.clients mid-chain entry). Must be set before
     * traffic starts.
     */
    void setEntryTier(int tier);

    /** First flow hash of this client's flow space. */
    std::uint32_t flowBase() const { return flowBase_; }

    /** True when @p pkt belongs to this client's flow space. */
    bool
    ownsFlow(const Packet &pkt) const
    {
        return pkt.flowHash >= flowBase_ &&
               pkt.flowHash < flowBase_ + static_cast<std::uint32_t>(
                                              numConnections_);
    }

    int numConnections() const { return numConnections_; }

    /** Send one request on connection @p conn right now. */
    void sendRequest(int conn);

    /** Wire sink for server responses. */
    void onResponse(const Packet &pkt);

    /** All completed-request latencies (first send to completion). */
    LatencyRecorder &latencies() { return latencies_; }
    const LatencyRecorder &latencies() const { return latencies_; }

    /**
     * Latency of the *winning attempt* only (last transmission to
     * response); diverges from latencies() once retransmission kicks
     * in and shows what the network did, not what the user saw.
     */
    LatencyRecorder &attemptLatencies() { return attemptLatencies_; }
    const LatencyRecorder &attemptLatencies() const
    {
        return attemptLatencies_;
    }

    std::uint64_t requestsSent() const { return sent_; }
    std::uint64_t responsesReceived() const { return received_; }

    /** @name Retry/timeout accounting (all zero when retry is off) */
    /**@{*/
    std::uint64_t requestsTimedOut() const { return timedOut_; }
    std::uint64_t retransmits() const { return retransmits_; }
    std::uint64_t duplicateResponses() const { return duplicates_; }
    /**@}*/

    /** @name Resilience accounting (zero when resilience is off) */
    /**@{*/
    /** Requests answered with a shed notice (pkt.rejected). */
    std::uint64_t requestsShed() const { return shed_; }
    /** Retransmissions suppressed by an empty retry budget. */
    std::uint64_t retryBudgetExhausted() const
    {
        return budgetExhausted_;
    }
    /**@}*/

    /**
     * Requests sent but neither answered, shed, nor timed out.
     * Nonzero at the end of a run means the conservation identity
     * sent == received + timedOut + shed + inFlight has unfinished
     * business (lost without retry, or still on the wire).
     */
    std::uint64_t requestsInFlight() const;

    /**
     * P99 of responses completed since the last call, then reset the
     * window — the feedback signal long-term controllers like Parties
     * consume. Returns 0 when the window is empty.
     */
    Tick windowP99AndReset();

  private:
    /** Book-keeping for one unanswered tracked request. */
    struct Outstanding {
        int conn = 0;
        Tick firstSend = 0;   //!< first transmission (completion base)
        Tick lastSend = 0;    //!< latest transmission
        int attempts = 1;     //!< transmissions so far
        Tick deadline = 0;    //!< when the current attempt expires
    };

    void transmit(std::uint64_t id, Outstanding &entry);
    void onTimeoutDeadline();
    void armTimeoutEvent();
    Tick backoffFor(int attempts) const;

    EventQueue &eq_;
    Wire &toServer_;
    AppProfile profile_;
    int numConnections_;
    std::uint32_t flowBase_;

    LatencyRecorder latencies_;
    LatencyRecorder attemptLatencies_;
    LatencyRecorder window_;
    std::uint64_t nextRequestId_ = 1;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;

    ClientRetryPolicy retry_;
    bool budgetEnabled_ = false;
    double budgetRatio_ = 0.0;
    double budgetCap_ = 0.0;
    double budgetTokens_ = 0.0;
    Tick deadlineBudget_ = 0;
    int entryTier_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t budgetExhausted_ = 0;
    std::map<std::uint64_t, Outstanding> outstanding_;
    /** (deadline, requestId) pairs mirroring outstanding_. */
    std::set<std::pair<Tick, std::uint64_t>> deadlines_;
    std::uint64_t timedOut_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t duplicates_ = 0;

    EventFunctionWrapper timeoutEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_WORKLOAD_CLIENT_HH_
