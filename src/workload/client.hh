/**
 * @file
 * Client side: request emission and end-to-end latency measurement.
 *
 * Models the paper's 20 client threads on a separate machine. Each
 * client thread owns one connection (one RSS flow hash), so a train of
 * requests from one thread lands on one server core back-to-back. The
 * client timestamps requests, the server echoes the timestamp in the
 * response, and the client records end-to-end response time — the
 * quantity every latency figure in the paper reports.
 */

#ifndef NMAPSIM_WORKLOAD_CLIENT_HH_
#define NMAPSIM_WORKLOAD_CLIENT_HH_

#include <cstdint>

#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"
#include "stats/latency_recorder.hh"
#include "workload/app_profile.hh"

namespace nmapsim {

/**
 * Spacing between independent clients' flow spaces sharing one
 * wire/NIC (colocation tenants, cluster client groups): client i uses
 * flow hashes [i * kFlowSpaceStride, i * kFlowSpaceStride +
 * connections), so `flowHash / kFlowSpaceStride` recovers the owner.
 */
constexpr std::uint32_t kFlowSpaceStride = 1024;

/** The load-generating client machine. */
class Client
{
  public:
    /**
     * @param to_server client->server wire (we send into it)
     * @param num_connections client threads / RSS flows (paper: 20)
     * @param flow_base offset added to connection ids to form flow
     *        hashes; lets several tenants share one wire/NIC with
     *        disjoint flow spaces (colocation)
     */
    Client(EventQueue &eq, Wire &to_server, const AppProfile &profile,
           int num_connections, std::uint32_t flow_base = 0);

    /** First flow hash of this client's flow space. */
    std::uint32_t flowBase() const { return flowBase_; }

    /** True when @p pkt belongs to this client's flow space. */
    bool
    ownsFlow(const Packet &pkt) const
    {
        return pkt.flowHash >= flowBase_ &&
               pkt.flowHash < flowBase_ + static_cast<std::uint32_t>(
                                              numConnections_);
    }

    int numConnections() const { return numConnections_; }

    /** Send one request on connection @p conn right now. */
    void sendRequest(int conn);

    /** Wire sink for server responses. */
    void onResponse(const Packet &pkt);

    /** All completed-request latencies. */
    LatencyRecorder &latencies() { return latencies_; }
    const LatencyRecorder &latencies() const { return latencies_; }

    std::uint64_t requestsSent() const { return sent_; }
    std::uint64_t responsesReceived() const { return received_; }

    /**
     * P99 of responses completed since the last call, then reset the
     * window — the feedback signal long-term controllers like Parties
     * consume. Returns 0 when the window is empty.
     */
    Tick windowP99AndReset();

  private:
    EventQueue &eq_;
    Wire &toServer_;
    AppProfile profile_;
    int numConnections_;
    std::uint32_t flowBase_;

    LatencyRecorder latencies_;
    LatencyRecorder window_;
    std::uint64_t nextRequestId_ = 1;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_WORKLOAD_CLIENT_HH_
