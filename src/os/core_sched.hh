/**
 * @file
 * Per-core OS scheduler.
 *
 * Executes work on one core with the Linux priority structure the paper
 * relies on: hardirqs preempt everything, the NAPI softirq runs before
 * ordinary threads, and threads (the application thread and ksoftirqd)
 * share the core round-robin — which is exactly why ksoftirqd exists:
 * once packet processing migrates there, the application is no longer
 * starved by the softirq.
 *
 * Work is executed as preemptible cycle-priced slices. A slice's
 * remaining cycles are rescaled when the DVFS actuator changes the core
 * frequency mid-slice, and a core woken from a C-state pays the wake-up
 * penalty before its first slice.
 */

#ifndef NMAPSIM_OS_CORE_SCHED_HH_
#define NMAPSIM_OS_CORE_SCHED_HH_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "cpu/core.hh"
#include "net/nic.hh"
#include "os/cpuidle.hh"
#include "os/napi.hh"
#include "os/os_config.hh"
#include "os/thread.hh"
#include "sim/event_queue.hh"

namespace nmapsim {

/** The ksoftirqd kernel thread: NAPI polling at fair thread priority. */
class KsoftirqdThread : public SimThread
{
  public:
    explicit KsoftirqdThread(NapiContext &napi)
        : napi_(napi)
    {
    }

    bool runnable() const override { return napi_.ksoftirqdOwned(); }
    double beginSlice() override { return napi_.beginPoll(); }
    void completeSlice() override { napi_.completePoll(true); }
    std::string name() const override { return "ksoftirqd"; }

  private:
    NapiContext &napi_;
};

/** Scheduler and execution engine for a single core. */
class CoreScheduler
{
  public:
    using Hook = std::function<void()>;

    CoreScheduler(Core &core, Nic &nic, NapiContext &napi,
                  const OsConfig &config);
    ~CoreScheduler();

    CoreScheduler(const CoreScheduler &) = delete;
    CoreScheduler &operator=(const CoreScheduler &) = delete;

    /** Governor consulted when the core idles; may be null (stay C0). */
    void setIdleGovernor(CpuIdleGovernor *gov) { idleGov_ = gov; }

    /** Hooks fired on ksoftirqd wake/sleep (NMAP-simpl's signal). */
    void setKsoftirqdHooks(Hook wake, Hook sleep);

    /**
     * Replace the hardirq's NAPI half: when set, a NIC interrupt on
     * this core invokes @p delegate instead of napi_schedule (the
     * bypass dataplane routes the IRQ to its poll thread). The hardirq
     * slice itself is still charged. Null (the default) keeps the
     * NAPI path untouched.
     */
    void setIrqDelegate(Hook delegate) { irqDelegate_ = std::move(delegate); }

    /** Register an application thread. */
    void addThread(SimThread *thread);

    /** Mark @p thread runnable (it gained work). */
    void threadRunnable(SimThread *thread);

    /** NIC interrupt entry point for this core's queue. */
    void handleIrq();

    /** Begin execution (enter idle; the first packet starts things). */
    void start();

    /** @name Introspection */
    /**@{*/
    bool idle() const { return isIdle_; }
    KsoftirqdThread &ksoftirqd() { return ksoftirqd_; }
    std::uint64_t hardirqsHandled() const { return hardirqs_; }
    std::uint64_t slicesRun() const { return slices_; }
    std::uint64_t preemptions() const { return preemptions_; }
    /**@}*/

  private:
    enum class RunKind
    {
        kNone,
        kHardIrq,
        kSoftirq,
        kThread,
    };

    void dispatch();
    void startSlice(RunKind kind, SimThread *thread, double cycles);
    void sliceDone();
    void preemptCurrent();
    void goIdle();
    void promoteIdle();
    void kickIdle();
    void wakeDone();
    void onFreqChange(double freq_hz);
    void enqueueThread(SimThread *thread, bool front);

    Core &core_;
    Nic &nic_;
    NapiContext &napi_;
    const OsConfig &config_;
    EventQueue &eq_;

    CpuIdleGovernor *idleGov_ = nullptr;
    Hook ksoftWakeHook_;
    Hook ksoftSleepHook_;
    Hook irqDelegate_;

    KsoftirqdThread ksoftirqd_;

    // Current slice.
    RunKind cur_ = RunKind::kNone;
    SimThread *curThread_ = nullptr;
    double remaining_ = 0.0;
    Tick segStart_ = 0;
    double segFreq_ = 0.0;

    // Saved (preempted) work. A handful of threads per core at most,
    // so a flat vector beats the hash map it replaced.
    std::optional<double> savedSoftirq_;
    std::vector<std::pair<SimThread *, double>> savedThread_;

    // Fair run queue. Membership is checked by scanning the (tiny)
    // queue itself; no shadow set, and a flat vector because the queue
    // holds at most a few threads.
    std::vector<SimThread *> runQueue_;

    int pendingIrqs_ = 0;
    bool wakePending_ = false;
    bool processing_ = false;
    bool isIdle_ = true;
    Tick idleSince_ = 0;

    std::uint64_t hardirqs_ = 0;
    std::uint64_t slices_ = 0;
    std::uint64_t preemptions_ = 0;

    MemberEvent<CoreScheduler, &CoreScheduler::sliceDone> sliceDoneEvent_;
    MemberEvent<CoreScheduler, &CoreScheduler::wakeDone> wakeDoneEvent_;
    MemberEvent<CoreScheduler, &CoreScheduler::promoteIdle> promoteEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_OS_CORE_SCHED_HH_
