/**
 * @file
 * The server's operating system: one scheduler + NAPI context per core,
 * wired to the multi-queue NIC.
 *
 * ServerOs is the assembly point: it binds NIC queue i to core i (the
 * RSS arrangement of the paper's evaluation), fans NAPI events out to
 * registered observers (NMAP's monitor, trace collectors), and routes
 * received request packets to the application via the deliver callback.
 */

#ifndef NMAPSIM_OS_SERVER_OS_HH_
#define NMAPSIM_OS_SERVER_OS_HH_

#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "net/nic.hh"
#include "os/core_sched.hh"
#include "os/cpuidle.hh"
#include "os/hooks.hh"
#include "os/napi.hh"
#include "os/os_config.hh"

namespace nmapsim {

/** OS instance managing all cores of the server. */
class ServerOs
{
  public:
    /** Request packet handed to the application on @p core. */
    using Deliver = std::function<void(int core, const Packet &)>;

    /**
     * @param cores one Core per NIC queue; borrowed, must outlive us
     * @param nic   the server NIC; its irq handler is claimed here
     */
    ServerOs(std::vector<Core *> cores, Nic &nic,
             const OsConfig &config);

    int numCores() const { return static_cast<int>(cores_.size()); }

    CoreScheduler &sched(int core) { return *scheds_[core]; }
    NapiContext &napi(int core) { return *napis_[core]; }
    Core &core(int core) { return *cores_[core]; }
    const OsConfig &config() const { return config_; }

    /** Application receive path; set before traffic starts. */
    void setDeliver(Deliver deliver) { deliver_ = std::move(deliver); }

    /** Hand a request to the application on @p core directly (the
     *  bypass dataplane's receive path; NAPI goes through the per-core
     *  NapiContext instead). */
    void
    deliverToApp(int core, const Packet &pkt)
    {
        if (deliver_)
            deliver_(core, pkt);
    }

    /** Shared cpuidle governor for every core (may be null). */
    void setIdleGovernor(CpuIdleGovernor *gov);

    /** Register a NAPI observer (kept for the simulation lifetime). */
    void addObserver(NapiObserver *obs) { observers_.push_back(obs); }

    /** Enter the idle loop on every core; calls after wiring is done. */
    void start();

  private:
    std::vector<Core *> cores_;
    Nic &nic_;
    OsConfig config_;
    Deliver deliver_;
    std::vector<NapiObserver *> observers_;
    std::vector<std::unique_ptr<NapiContext>> napis_;
    std::vector<std::unique_ptr<CoreScheduler>> scheds_;
};

} // namespace nmapsim

#endif // NMAPSIM_OS_SERVER_OS_HH_
