/**
 * @file
 * Observation hooks into the network software stack.
 *
 * NMAP, NMAP-simpl and the trace figures all consume exactly these
 * events: per-poll packet counts split by NAPI mode, and ksoftirqd
 * wake/sleep transitions. This is the "piggyback on the existing NAPI
 * mechanism" interface of the paper — no other kernel state is exposed
 * to the power-management policies.
 */

#ifndef NMAPSIM_OS_HOOKS_HH_
#define NMAPSIM_OS_HOOKS_HH_

#include <cstdint>

namespace nmapsim {

/** Callbacks fired by the NAPI machinery; default-ignore everything. */
class NapiObserver
{
  public:
    virtual ~NapiObserver() = default;

    /**
     * A NAPI poll() call on @p core finished.
     *
     * @param intr_pkts packets handled in interrupt mode (the session's
     *                  first poll after a hardirq)
     * @param poll_pkts packets handled in polling mode (repolls and
     *                  ksoftirqd passes)
     */
    virtual void
    onPollProcessed(int core, std::uint32_t intr_pkts,
                    std::uint32_t poll_pkts)
    {
        (void)core;
        (void)intr_pkts;
        (void)poll_pkts;
    }

    /** ksoftirqd on @p core was woken to take over packet processing. */
    virtual void onKsoftirqdWake(int core) { (void)core; }

    /** ksoftirqd on @p core finished and went back to sleep. */
    virtual void onKsoftirqdSleep(int core) { (void)core; }

    /** A NIC hardirq was taken on @p core. */
    virtual void onHardIrq(int core) { (void)core; }
};

} // namespace nmapsim

#endif // NMAPSIM_OS_HOOKS_HH_
