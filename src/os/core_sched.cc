#include "os/core_sched.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

CoreScheduler::CoreScheduler(Core &core, Nic &nic, NapiContext &napi,
                             const OsConfig &config)
    : core_(core), nic_(nic), napi_(napi), config_(config),
      eq_(core.eventQueue()), ksoftirqd_(napi),
      sliceDoneEvent_(this, "sched.sliceDone"),
      wakeDoneEvent_(this, "sched.wakeDone"),
      promoteEvent_(this, "sched.promoteIdle")
{
    core_.addFreqListener([this](double f) { onFreqChange(f); });
}

CoreScheduler::~CoreScheduler()
{
    eq_.deschedule(&sliceDoneEvent_);
    eq_.deschedule(&wakeDoneEvent_);
    eq_.deschedule(&promoteEvent_);
}

void
CoreScheduler::setKsoftirqdHooks(Hook wake, Hook sleep)
{
    ksoftWakeHook_ = std::move(wake);
    ksoftSleepHook_ = std::move(sleep);
}

void
CoreScheduler::addThread(SimThread *thread)
{
    if (thread->runnable())
        enqueueThread(thread, false);
}

void
CoreScheduler::enqueueThread(SimThread *thread, bool front)
{
    if (thread == curThread_ ||
        std::find(runQueue_.begin(), runQueue_.end(), thread) !=
            runQueue_.end()) {
        return;
    }
    if (front)
        runQueue_.insert(runQueue_.begin(), thread);
    else
        runQueue_.push_back(thread);
}

void
CoreScheduler::threadRunnable(SimThread *thread)
{
    enqueueThread(thread, false);
    kickIdle();
}

void
CoreScheduler::start()
{
    goIdle();
}

void
CoreScheduler::handleIrq()
{
    ++hardirqs_;
    // The driver's interrupt handler auto-masks the queue interrupt and
    // schedules NAPI; model both at interrupt-assertion time. The
    // handler's execution cost is the hardirq slice charged below. A
    // bypass dataplane substitutes its own top half via the delegate.
    if (irqDelegate_)
        irqDelegate_();
    else
        napi_.napiSchedule();
    ++pendingIrqs_;

    if (cur_ != RunKind::kNone) {
        if (cur_ != RunKind::kHardIrq) {
            preemptCurrent();
            dispatch();
        }
        // Already in a hardirq: the new one is queued behind it.
        return;
    }
    kickIdle();
}

void
CoreScheduler::kickIdle()
{
    // While a slice's completion effects are being applied (which can
    // re-enter here through packet delivery), defer to the dispatch()
    // that sliceDone() issues afterwards.
    if (processing_ || wakePending_ || cur_ != RunKind::kNone)
        return;
    if (isIdle_) {
        if (idleGov_)
            idleGov_->recordIdle(core_.id(), eq_.now() - idleSince_);
        isIdle_ = false;
        eq_.deschedule(&promoteEvent_);
    }
    if (core_.cstates().sleeping()) {
        Tick penalty = core_.wake();
        core_.setWaking(true);
        wakePending_ = true;
        eq_.scheduleIn(&wakeDoneEvent_, penalty);
        return;
    }
    core_.setBusy(true);
    dispatch();
}

void
CoreScheduler::wakeDone()
{
    wakePending_ = false;
    core_.setWaking(false);
    core_.setBusy(true);
    dispatch();
}

void
CoreScheduler::dispatch()
{
    if (cur_ != RunKind::kNone || wakePending_)
        return;

    if (pendingIrqs_ > 0) {
        startSlice(RunKind::kHardIrq, nullptr, config_.irqCycles);
        return;
    }

    if (napi_.softirqPending()) {
        double cycles;
        if (savedSoftirq_) {
            cycles = *savedSoftirq_;
            savedSoftirq_.reset();
        } else {
            cycles = napi_.beginPoll();
        }
        startSlice(RunKind::kSoftirq, nullptr, cycles);
        return;
    }

    while (!runQueue_.empty()) {
        SimThread *t = runQueue_.front();
        runQueue_.erase(runQueue_.begin());
        auto it = std::find_if(
            savedThread_.begin(), savedThread_.end(),
            [t](const auto &e) { return e.first == t; });
        if (it != savedThread_.end()) {
            double cycles = it->second;
            savedThread_.erase(it);
            startSlice(RunKind::kThread, t, cycles);
            return;
        }
        if (!t->runnable())
            continue;
        startSlice(RunKind::kThread, t, t->beginSlice());
        return;
    }

    goIdle();
}

void
CoreScheduler::startSlice(RunKind kind, SimThread *thread, double cycles)
{
    cur_ = kind;
    curThread_ = thread;
    remaining_ = std::max(cycles, 0.0);
    segStart_ = eq_.now();
    segFreq_ = core_.freqHz();
    core_.setBusy(true);
    ++slices_;
    eq_.scheduleIn(&sliceDoneEvent_,
                   ticksForCycles(remaining_, segFreq_));
}

void
CoreScheduler::preemptCurrent()
{
    eq_.deschedule(&sliceDoneEvent_);
    double done = toSeconds(eq_.now() - segStart_) * segFreq_;
    remaining_ = std::max(0.0, remaining_ - done);
    ++preemptions_;

    RunKind kind = cur_;
    SimThread *thread = curThread_;
    cur_ = RunKind::kNone;
    curThread_ = nullptr;

    if (kind == RunKind::kSoftirq) {
        savedSoftirq_ = remaining_;
    } else if (kind == RunKind::kThread) {
        auto it = std::find_if(
            savedThread_.begin(), savedThread_.end(),
            [thread](const auto &e) { return e.first == thread; });
        if (it != savedThread_.end())
            it->second = remaining_;
        else
            savedThread_.emplace_back(thread, remaining_);
        // A preempted thread resumes at the head of the queue.
        enqueueThread(thread, true);
    } else {
        panic("preempt of a hardirq slice");
    }
}

void
CoreScheduler::sliceDone()
{
    RunKind kind = cur_;
    SimThread *t = curThread_;
    cur_ = RunKind::kNone;
    curThread_ = nullptr;
    processing_ = true;

    switch (kind) {
      case RunKind::kHardIrq:
        --pendingIrqs_;
        break;

      case RunKind::kSoftirq: {
        NapiContext::Outcome out = napi_.completePoll(false);
        if (out == NapiContext::Outcome::kHandoff) {
            napi_.handoffToKsoftirqd();
            if (ksoftWakeHook_)
                ksoftWakeHook_();
            enqueueThread(&ksoftirqd_, false);
        }
        break;
      }

      case RunKind::kThread: {
        t->completeSlice();
        if (t == &ksoftirqd_ && !t->runnable() && ksoftSleepHook_)
            ksoftSleepHook_();
        if (t->runnable())
            enqueueThread(t, false);
        break;
      }

      case RunKind::kNone:
        panic("sliceDone with no slice running");
    }

    processing_ = false;
    dispatch();
}

void
CoreScheduler::goIdle()
{
    isIdle_ = true;
    idleSince_ = eq_.now();
    core_.setBusy(false);
    if (idleGov_) {
        CState s = idleGov_->selectState(core_.id(), eq_.now());
        if (s != CState::kC0)
            core_.enterSleep(s);
        if (s != CState::kC6) {
            Tick promote = idleGov_->promoteToC6After(core_.id());
            eq_.scheduleIn(&promoteEvent_,
                           promote > 0 ? promote : config_.jiffy);
        }
    }
}

void
CoreScheduler::promoteIdle()
{
    // Tick-style re-evaluation of an ongoing idle period: if the
    // governor now allows (or mandates) the deep state and the idle
    // has lasted long enough, deepen without waking.
    if (!isIdle_ || !idleGov_)
        return;
    if (core_.cstates().state() == CState::kC6)
        return;
    Tick promote = idleGov_->promoteToC6After(core_.id());
    if (promote > 0 && eq_.now() - idleSince_ >= promote) {
        if (core_.cstates().state() == CState::kC0)
            core_.enterSleep(CState::kC6);
        else
            core_.deepenSleep(CState::kC6);
        return;
    }
    // Not eligible yet (or the policy forbids deep sleep right now):
    // check again on the next tick.
    eq_.scheduleIn(&promoteEvent_, config_.jiffy);
}

void
CoreScheduler::onFreqChange(double freq_hz)
{
    if (cur_ == RunKind::kNone)
        return;
    double done = toSeconds(eq_.now() - segStart_) * segFreq_;
    remaining_ = std::max(0.0, remaining_ - done);
    segStart_ = eq_.now();
    segFreq_ = freq_hz;
    eq_.reschedule(&sliceDoneEvent_,
                   eq_.now() + ticksForCycles(remaining_, freq_hz));
}

} // namespace nmapsim
