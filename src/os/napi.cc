#include "os/napi.hh"

#include "sim/logging.hh"

namespace nmapsim {

NapiContext::NapiContext(EventQueue &eq, Nic &nic, int queue,
                         const OsConfig &config)
    : eq_(eq), nic_(nic), queue_(queue), config_(config)
{
}

void
NapiContext::napiSchedule()
{
    if (active_) {
        // Spurious: the session is already open (e.g. an ITR-deferred
        // interrupt racing napi_complete). Nothing to do; the open
        // session will pick the packets up.
        return;
    }
    nic_.disableIrq(queue_);
    active_ = true;
    ksoftirqdOwned_ = false;
    sessionPollCalls_ = 0;
    softirqIters_ = 0;
    softirqStart_ = eq_.now();
    ++sessions_;
}

double
NapiContext::beginPoll()
{
    if (!active_)
        panic("beginPoll on an idle NAPI context");
    if (pollInFlight_)
        panic("beginPoll while a poll batch is in flight");
    pollInFlight_ = true;

    stash_.clear();
    int budget = config_.napiWeight;
    Packet pkt;
    while (budget > 0 && nic_.popRx(queue_, pkt)) {
        stash_.push_back(pkt);
        --budget;
    }
    stashTx_ = nic_.consumeTx(
        queue_, static_cast<std::uint32_t>(config_.txCleanBudget));

    // Attribute the batch to its mode at harvest time, so every packet
    // taken off the NIC is counted even if the run ends mid-poll. The
    // split mirrors completePoll(): the session's first poll() call is
    // interrupt mode, everything later is polling mode.
    std::uint32_t harvested =
        static_cast<std::uint32_t>(stash_.size()) + stashTx_;
    if (sessionPollCalls_ == 0)
        pktsIntr_ += harvested;
    else
        pktsPoll_ += harvested;

    double cycles = config_.pollOverheadCycles;
    cycles += static_cast<double>(stash_.size()) * config_.rxPacketCycles;
    cycles += static_cast<double>(stashTx_) * config_.txCompletionCycles;
    return cycles;
}

NapiContext::Outcome
NapiContext::completePoll(bool in_ksoftirqd)
{
    if (!pollInFlight_)
        panic("completePoll without a poll batch in flight");
    pollInFlight_ = false;

    // Move the stash out before delivering: deliver_ can re-enter the
    // scheduler, and a re-entrant beginPoll must not clobber it. The
    // two buffers ping-pong (swap trades stash_'s contents for
    // delivering_'s retired capacity), so steady-state polling never
    // allocates. A re-entrant completePoll would clobber delivering_
    // mid-iteration; it cannot happen (completing a poll takes a
    // sliceDone event, never a synchronous call), and the flag turns
    // any future violation into a fail-stop instead of corruption.
    if (deliveryInFlight_)
        panic("re-entrant completePoll delivery");
    deliveryInFlight_ = true;
    delivering_.clear();
    delivering_.swap(stash_);
    std::uint32_t batch_tx = stashTx_;
    stashTx_ = 0;

    for (const Packet &pkt : delivering_) {
        if (pkt.kind == Packet::Kind::kRequest && deliver_)
            deliver_(pkt);
    }
    deliveryInFlight_ = false;

    std::uint32_t processed =
        static_cast<std::uint32_t>(delivering_.size()) + batch_tx;
    std::uint32_t intr = 0;
    std::uint32_t poll = 0;
    if (sessionPollCalls_ == 0)
        intr = processed;
    else
        poll = processed;
    ++sessionPollCalls_;
    if (pollHook_)
        pollHook_(intr, poll);

    bool more = nic_.rxDepth(queue_) > 0 || nic_.txPending(queue_) > 0;
    if (!more) {
        // napi_complete: re-arm the interrupt and close the session.
        active_ = false;
        ksoftirqdOwned_ = false;
        nic_.enableIrq(queue_);
        return Outcome::kComplete;
    }

    if (!in_ksoftirqd) {
        ++softirqIters_;
        bool too_many = softirqIters_ >= config_.maxSoftirqIters;
        bool too_long =
            eq_.now() - softirqStart_ >= config_.maxSoftirqTime;
        if (too_many || too_long)
            return Outcome::kHandoff;
    }
    return Outcome::kRepoll;
}

void
NapiContext::handoffToKsoftirqd()
{
    if (!active_)
        panic("handoff on an idle NAPI context");
    ksoftirqdOwned_ = true;
}

} // namespace nmapsim
