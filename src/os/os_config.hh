/**
 * @file
 * Tunables of the simulated OS network stack.
 *
 * Cycle costs are in core clock cycles so they scale with DVFS exactly
 * like real kernel code does — that frequency dependence is what makes
 * a low P-state unable to keep up with a burst.
 */

#ifndef NMAPSIM_OS_OS_CONFIG_HH_
#define NMAPSIM_OS_OS_CONFIG_HH_

#include "sim/time.hh"

namespace nmapsim {

/** Static OS/network-stack parameters shared by all cores. */
struct OsConfig
{
    /** Hardirq entry + handler + napi_schedule cost. */
    double irqCycles = 1500;

    /** Fixed overhead of one NAPI poll() invocation. */
    double pollOverheadCycles = 400;

    /** Network-stack cost per received packet (driver + IP + TCP +
     *  socket delivery). ~1.75 us at 3.2 GHz. */
    double rxPacketCycles = 5600;

    /** Cost to reap one Tx completion descriptor. */
    double txCompletionCycles = 250;

    /** NAPI budget per poll() call (netdev weight). */
    int napiWeight = 16;

    /** Tx completions reaped per poll() call. */
    int txCleanBudget = 256;

    /**
     * Softirq restart iterations before migrating to ksoftirqd
     * (paper 2.1: "fails to empty Rx and Tx queues more than ten
     * iterations").
     */
    int maxSoftirqIters = 3;

    /** Scheduler tick period (250 Hz kernel). */
    Tick jiffy = milliseconds(4);

    /**
     * Softirq time budget before migrating to ksoftirqd (paper 2.1:
     * "overuses schedule ticks more than two ticks, e.g. 8 ms at
     * 250 Hz").
     */
    Tick maxSoftirqTime = milliseconds(8);

    bool operator==(const OsConfig &) const = default;
};

} // namespace nmapsim

#endif // NMAPSIM_OS_OS_CONFIG_HH_
