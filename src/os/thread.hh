/**
 * @file
 * Schedulable thread abstraction.
 *
 * The per-core scheduler runs SimThreads in round-robin when no hardirq
 * or softirq work is pending. A thread's work is delivered in "slices":
 * beginSlice() returns the cycle cost of the next unit (one request, one
 * poll batch, ...), and completeSlice() commits its effects once the
 * scheduler has charged those cycles. A preempted slice is resumed with
 * its remaining cycles by the scheduler; the thread is not re-consulted.
 */

#ifndef NMAPSIM_OS_THREAD_HH_
#define NMAPSIM_OS_THREAD_HH_

#include <string>

namespace nmapsim {

/** Something the fair scheduler can run (app thread, ksoftirqd). */
class SimThread
{
  public:
    virtual ~SimThread() = default;

    /** True when the thread has work to run. */
    virtual bool runnable() const = 0;

    /**
     * Start the next work unit; returns its cost in core cycles
     * (must be > 0 when runnable).
     */
    virtual double beginSlice() = 0;

    /** The work unit begun by beginSlice() has finished executing. */
    virtual void completeSlice() = 0;

    /** Identifier for tracing. */
    virtual std::string name() const = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_OS_THREAD_HH_
