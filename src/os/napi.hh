/**
 * @file
 * NAPI context: per-core interrupt/polling packet processing state.
 *
 * Follows the Linux NAPI life cycle (Section 2.1 / Fig. 1 of the paper):
 *
 *  - A NIC hardirq masks the queue's interrupt and schedules the softirq
 *    (napiSchedule()); this starts a *poll session*.
 *  - The softirq runs poll() calls of up to `napiWeight` Rx packets plus
 *    pending Tx completions. If a call empties both queues the session
 *    ends with napi_complete (interrupt re-armed). Otherwise the softirq
 *    repolls, and after too many iterations or too much time it migrates
 *    the remaining work to ksoftirqd, which runs at fair thread priority.
 *  - Packets handled by a session's first poll() count as *interrupt
 *    mode*; everything later (repolls, ksoftirqd passes) counts as
 *    *polling mode*. These two counters are NMAP's entire input signal.
 *
 * The scheduler drives the context through the begin/complete poll-batch
 * protocol so the packet-processing cycles are charged at the core's
 * current frequency.
 */

#ifndef NMAPSIM_OS_NAPI_HH_
#define NMAPSIM_OS_NAPI_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/nic.hh"
#include "net/packet.hh"
#include "os/os_config.hh"
#include "sim/event_queue.hh"

namespace nmapsim {

/** NAPI state machine for one (core, NIC queue) pair. */
class NapiContext
{
  public:
    /** Result of finishing one poll() call. */
    enum class Outcome
    {
        kComplete, //!< queues empty: napi_complete, interrupt re-armed
        kRepoll,   //!< work remains: poll again in the same context
        kHandoff,  //!< softirq exceeded its budget: wake ksoftirqd
    };

    /** Per-poll notification: (intr_pkts, poll_pkts). */
    using PollHook =
        std::function<void(std::uint32_t, std::uint32_t)>;
    using Deliver = std::function<void(const Packet &)>;

    NapiContext(EventQueue &eq, Nic &nic, int queue,
                const OsConfig &config);

    /** Receive-path consumer for request packets (the server app). */
    void setDeliver(Deliver deliver) { deliver_ = std::move(deliver); }

    /** Observer notified after every poll() call. */
    void setPollHook(PollHook hook) { pollHook_ = std::move(hook); }

    /** Hardirq handler half: mask IRQ, start/refresh the poll session. */
    void napiSchedule();

    /** True when the softirq (not ksoftirqd) should run poll calls. */
    bool softirqPending() const { return active_ && !ksoftirqdOwned_; }

    /** True when ksoftirqd owns the remaining packet processing. */
    bool ksoftirqdOwned() const { return ksoftirqdOwned_; }

    /** True while a poll session is open (interrupt masked). */
    bool active() const { return active_; }

    /**
     * Start a poll() call: harvest up to the budget from the NIC and
     * return the call's cost in core cycles (always > 0).
     */
    double beginPoll();

    /**
     * Finish the poll() call begun by beginPoll(); @p in_ksoftirqd
     * selects which context's continuation rules apply.
     */
    Outcome completePoll(bool in_ksoftirqd);

    /** Move the session into ksoftirqd (after a kHandoff outcome). */
    void handoffToKsoftirqd();

    /** @name Cumulative mode counters (NMAP's raw inputs) */
    /**@{*/
    std::uint64_t pktsInterruptMode() const { return pktsIntr_; }
    std::uint64_t pktsPollingMode() const { return pktsPoll_; }
    std::uint64_t pollSessions() const { return sessions_; }
    /**@}*/

  private:
    EventQueue &eq_;
    Nic &nic_;
    int queue_;
    const OsConfig &config_;
    Deliver deliver_;
    PollHook pollHook_;

    bool active_ = false;
    bool ksoftirqdOwned_ = false;
    std::uint32_t sessionPollCalls_ = 0;
    int softirqIters_ = 0;
    Tick softirqStart_ = 0;

    std::vector<Packet> stash_;
    /** Delivery staging; ping-pongs buffers with stash_ so the
     *  steady-state poll loop never touches the allocator. */
    std::vector<Packet> delivering_;
    bool deliveryInFlight_ = false;
    std::uint32_t stashTx_ = 0;
    bool pollInFlight_ = false;

    std::uint64_t pktsIntr_ = 0;
    std::uint64_t pktsPoll_ = 0;
    std::uint64_t sessions_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_OS_NAPI_HH_
