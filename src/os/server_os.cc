#include "os/server_os.hh"

#include "sim/logging.hh"

namespace nmapsim {

ServerOs::ServerOs(std::vector<Core *> cores, Nic &nic,
                   const OsConfig &config)
    : cores_(std::move(cores)), nic_(nic), config_(config)
{
    if (cores_.empty())
        fatal("ServerOs requires at least one core");
    if (static_cast<int>(cores_.size()) != nic_.numQueues())
        fatal("ServerOs: core count must match NIC queue count (RSS)");

    EventQueue &eq = cores_.front()->eventQueue();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        int core_id = static_cast<int>(i);
        auto napi = std::make_unique<NapiContext>(eq, nic_, core_id,
                                                  config_);
        napi->setDeliver([this, core_id](const Packet &pkt) {
            if (deliver_)
                deliver_(core_id, pkt);
        });
        napi->setPollHook(
            [this, core_id](std::uint32_t intr, std::uint32_t poll) {
                for (NapiObserver *obs : observers_)
                    obs->onPollProcessed(core_id, intr, poll);
            });
        auto sched = std::make_unique<CoreScheduler>(*cores_[i], nic_,
                                                     *napi, config_);
        sched->setKsoftirqdHooks(
            [this, core_id] {
                for (NapiObserver *obs : observers_)
                    obs->onKsoftirqdWake(core_id);
            },
            [this, core_id] {
                for (NapiObserver *obs : observers_)
                    obs->onKsoftirqdSleep(core_id);
            });
        napis_.push_back(std::move(napi));
        scheds_.push_back(std::move(sched));
    }

    nic_.setIrqHandler([this](int q) {
        for (NapiObserver *obs : observers_)
            obs->onHardIrq(q);
        scheds_[static_cast<std::size_t>(q)]->handleIrq();
    });
}

void
ServerOs::setIdleGovernor(CpuIdleGovernor *gov)
{
    for (auto &sched : scheds_)
        sched->setIdleGovernor(gov);
}

void
ServerOs::start()
{
    for (auto &sched : scheds_)
        sched->start();
}

} // namespace nmapsim
