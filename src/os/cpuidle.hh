/**
 * @file
 * Interface between the per-core scheduler and cpuidle governors.
 *
 * When a core runs out of work the scheduler asks the governor which
 * C-state to enter; kC0 means "stay awake" (the `disable` policy). The
 * governor is fed the observed idle durations so history-based policies
 * like menu can predict.
 */

#ifndef NMAPSIM_OS_CPUIDLE_HH_
#define NMAPSIM_OS_CPUIDLE_HH_

#include "cpu/cstate.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Strategy deciding the sleep state for an idle core. */
class CpuIdleGovernor
{
  public:
    virtual ~CpuIdleGovernor() = default;

    /** Pick the C-state core @p core should enter now. */
    virtual CState selectState(int core, Tick now) = 0;

    /** Report a completed idle period on @p core (history feedback). */
    virtual void recordIdle(int core, Tick duration) { (void)core;
                                                       (void)duration; }

    /**
     * If > 0 and the governor chose a shallow state, the scheduler
     * promotes the core into CC6 once the idle period has lasted this
     * long (the tick-driven re-evaluation real cpuidle performs).
     */
    virtual Tick promoteToC6After(int core) const { (void)core;
                                                    return 0; }

    virtual std::string name() const = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_OS_CPUIDLE_HH_
