/**
 * @file
 * Per-backend circuit breaker: closed -> open -> half-open, driven by
 * an error-rate window plus external force-open (the cluster switch's
 * silence detector).
 *
 * Closed counts outcomes in a sliding time window and trips when the
 * window holds at least `minVolume` outcomes of which a `threshold`
 * fraction failed. What counts as a failure is the caller's call: the
 * cluster switch feeds it shed notices *and* responses slower than the
 * fabric health timeout, so a drowning-but-alive backend trips its
 * breaker just like an erroring one. Open blocks all traffic for
 * `openFor`, then the
 * first allow() transitions to half-open, which lets `trials` probe
 * requests through: all must succeed to close; one failure re-opens.
 * Probes that never resolve (silent backend) are re-issued after
 * another `openFor`, so a breaker cannot wedge half-open.
 *
 * The breaker is pure bookkeeping over the deterministic outcome
 * stream — no randomness — so breaker-enabled runs replay
 * byte-identically.
 */

#ifndef NMAPSIM_RESILIENCE_BREAKER_HH_
#define NMAPSIM_RESILIENCE_BREAKER_HH_

#include <cstdint>
#include <deque>

#include "sim/time.hh"

namespace nmapsim {

/** Tunables for one CircuitBreaker (see `resilience.breaker_*`). */
struct BreakerConfig
{
    /** Sliding window over which failure rate is measured. */
    Tick window = 0;
    /** Failure fraction that trips the breaker, (0, 1]. */
    double threshold = 0.5;
    /** Minimum outcomes in the window before tripping is allowed. */
    int minVolume = 10;
    /** How long open blocks before half-open probing. */
    Tick openFor = 0;
    /** Successful probes required to close from half-open. */
    int trials = 3;
};

/** Error-rate circuit breaker for one (tier, host) backend. */
class CircuitBreaker
{
  public:
    enum class State { kClosed, kOpen, kHalfOpen };

    CircuitBreaker() = default;
    explicit CircuitBreaker(const BreakerConfig &config)
        : config_(config)
    {
    }

    /** Record a finished request against the backend. */
    void onOutcome(Tick now, bool failure);

    /**
     * May a request go to the backend right now? Mutating: performs
     * the open -> half-open transition and consumes probe slots.
     */
    bool allow(Tick now);

    /** allow() without side effects, for candidate scans. */
    bool wouldAllow(Tick now) const;

    /** External trip (silence detector ejection): block immediately. */
    void forceOpen(Tick now);

    State state() const { return state_; }

    /** Total state transitions since construction. */
    std::uint64_t transitions() const { return transitions_; }

  private:
    void tripOpen(Tick now);

    BreakerConfig config_;
    State state_ = State::kClosed;
    Tick reopenAt_ = 0;
    int probes_ = 0;
    int probeSuccesses_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t windowFailures_ = 0;
    std::deque<std::pair<Tick, bool>> window_;
};

} // namespace nmapsim

#endif // NMAPSIM_RESILIENCE_BREAKER_HH_
