/**
 * @file
 * Declarative overload-control plan: how the rig sheds, budgets and
 * short-circuits work when demand outruns capacity.
 *
 * A ResiliencePlan is parsed from the ordinary key=value config
 * pipeline (`resilience.*` namespace in ExperimentConfig::params),
 * validated once, and handed to the components that execute it: the
 * server app consults an AdmissionPolicy at the ingress queue, the
 * client throttles retransmissions through a retry budget, the cluster
 * switch runs per-host circuit breakers, and every forwarding hop
 * sheds requests already past their propagated deadline. The plan
 * holds no state and draws no randomness, so identical (seed, plan)
 * pairs replay byte-identically.
 *
 * An empty plan (`enabled() == false`) is the zero-resilience bypass:
 * no admission policy is constructed, no breaker state is allocated,
 * and the simulation is bit-for-bit the same as before the resilience
 * subsystem existed.
 */

#ifndef NMAPSIM_RESILIENCE_PLAN_HH_
#define NMAPSIM_RESILIENCE_PLAN_HH_

#include <string>

#include "harness/policy_params.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Validated overload-control plan (see `resilience.*` config keys). */
struct ResiliencePlan {
    /** Admission policy name; empty = no admission control. */
    std::string admission;
    /** queue-deadline: sojourn above this sheds (CoDel target). */
    Tick admitTarget = 0;
    /** queue-deadline: how long sojourn must stay high (CoDel interval). */
    Tick admitInterval = 0;
    /** token-bucket: sustained admitted requests per second. */
    double admitRate = 0.0;
    /** token-bucket: bucket capacity in requests. */
    double admitBurst = 0.0;

    /** Retry tokens earned per success; 0 disables retry budgets. */
    double retryBudget = 0.0;
    /** Tokens each client group starts with (cold-start allowance). */
    int retryMin = 0;
    /** Ceiling on banked retry tokens. */
    double retryCap = 0.0;

    /** Breaker error-rate window; 0 disables circuit breakers. */
    Tick breakerWindow = 0;
    /** Failure fraction in the window that trips the breaker, (0, 1]. */
    double breakerThreshold = 0.0;
    /** Outcomes the window must hold before the breaker may trip. */
    int breakerMinVolume = 0;
    /** How long an open breaker blocks before probing half-open. */
    Tick breakerOpen = 0;
    /** Successful half-open probes required to close again. */
    int breakerTrials = 0;

    /** End-to-end request budget carried across hops; 0 disables. */
    Tick deadline = 0;

    /** True when any mechanism is configured; false = bypass. */
    bool enabled() const;

    bool wantsAdmission() const { return !admission.empty(); }
    bool wantsRetryBudget() const { return retryBudget > 0.0; }
    bool wantsBreakers() const { return breakerWindow > 0; }
    bool wantsDeadline() const { return deadline > 0; }

    /**
     * Build a plan from the `resilience.*` keys in @p params. Unknown
     * `resilience.*` keys and out-of-range values are fatal (config
     * errors); non-resilience keys are ignored. A params blob without
     * resilience keys yields a disabled plan.
     */
    static ResiliencePlan fromParams(const PolicyParams &params);
};

} // namespace nmapsim

#endif // NMAPSIM_RESILIENCE_PLAN_HH_
