/**
 * @file
 * Self-registering admission-policy registry: string-keyed factories
 * for the overload gate a server app consults at its request queue.
 *
 * The harness resolves `resilience.admission` by name here and never
 * mentions a concrete policy class. Policy modules register
 * themselves:
 *
 *     // in src/resilience/<policy>.cc
 *     namespace {
 *     std::unique_ptr<AdmissionPolicy>
 *     makeMyPolicy(const AdmissionContext &ctx)
 *     {
 *         return std::make_unique<MyPolicy>(ctx.plan.admitTarget);
 *     }
 *     REGISTER_ADMISSION_POLICY("my-policy", &makeMyPolicy,
 *                               "one-line help");
 *     } // namespace
 *
 * and the name is immediately usable from configs, every bench and the
 * nmapsim_run CLI — no harness edits. One policy instance is created
 * per app thread, so stateful controllers (the CoDel-style
 * queue-deadline law) need no cross-thread care, and none of them
 * draws randomness: admission decisions are pure functions of the
 * deterministic arrival/serve timeline.
 */

#ifndef NMAPSIM_RESILIENCE_ADMISSION_HH_
#define NMAPSIM_RESILIENCE_ADMISSION_HH_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "resilience/plan.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Per-app-thread overload gate for the server request queue. */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    /**
     * Arrival-time gate: may this request join a queue currently
     * holding @p queueDepth entries? false = shed before enqueue.
     */
    virtual bool admit(Tick now, std::size_t queueDepth) = 0;

    /**
     * Serve-time gate: is a request that waited since @p enqueuedAt
     * still worth serving? false = shed instead of burning cycles.
     */
    virtual bool
    serve(Tick now, Tick enqueuedAt)
    {
        (void)now;
        (void)enqueuedAt;
        return true;
    }
};

/** Everything an admission-policy factory may depend on. */
struct AdmissionContext
{
    const ResiliencePlan &plan;
};

/** String-keyed factories for admission policies. */
class AdmissionPolicyRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<AdmissionPolicy>(
        const AdmissionContext &)>;

    static AdmissionPolicyRegistry &
    instance()
    {
        static AdmissionPolicyRegistry registry;
        return registry;
    }

    void
    registerPolicy(const std::string &name, Factory factory,
                   std::string help = "")
    {
        if (!policies_
                 .emplace(name, Entry{std::move(factory),
                                      std::move(help)})
                 .second)
            fatal("duplicate admission policy registration: '" + name +
                  "'");
    }

    bool
    has(const std::string &name) const
    {
        return policies_.count(name) != 0;
    }

    /** Instantiate a policy; fatal() on unknown names. */
    std::unique_ptr<AdmissionPolicy>
    make(const std::string &name, const AdmissionContext &ctx) const
    {
        auto it = policies_.find(name);
        if (it == policies_.end())
            fatal("unknown admission policy '" + name + "' (known: " +
                  joined() + ")");
        return it->second.factory(ctx);
    }

    /** Registered policy names, sorted. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(policies_.size());
        for (const auto &[name, entry] : policies_)
            out.push_back(name);
        return out;
    }

    std::string
    help(const std::string &name) const
    {
        auto it = policies_.find(name);
        return it == policies_.end() ? std::string()
                                     : it->second.help;
    }

  private:
    struct Entry
    {
        Factory factory;
        std::string help;
    };

    AdmissionPolicyRegistry() = default;

    std::string
    joined() const
    {
        std::string out;
        for (const auto &[name, entry] : policies_) {
            if (!out.empty())
                out += ", ";
            out += name;
        }
        return out;
    }

    std::map<std::string, Entry> policies_;
};

/** Registers an admission policy at static-initialisation time. */
struct AdmissionPolicyRegistrar
{
    AdmissionPolicyRegistrar(const std::string &name,
                             AdmissionPolicyRegistry::Factory factory,
                             std::string help = "")
    {
        AdmissionPolicyRegistry::instance().registerPolicy(
            name, std::move(factory), std::move(help));
    }
};

/**
 * Registration shorthand, mirroring REGISTER_DATAPLANE_POLICY
 * (dataplane/policy.hh — the CONCAT helpers are guarded so a TU may
 * include both registries). Both the name and the help string must be
 * nonempty string literals; nmaplint (rule register-hygiene) enforces
 * both.
 */
#ifndef NMAPSIM_REGISTRAR_CONCAT
#define NMAPSIM_REGISTRAR_CONCAT_(a, b) a##b
#define NMAPSIM_REGISTRAR_CONCAT(a, b) NMAPSIM_REGISTRAR_CONCAT_(a, b)
#endif

#define REGISTER_ADMISSION_POLICY(name, factory, help)                 \
    static const ::nmapsim::AdmissionPolicyRegistrar                   \
        NMAPSIM_REGISTRAR_CONCAT(nmapsimAdmissionPolicyRegistrar_,     \
                                 __COUNTER__)(name, factory, help)

/**
 * Force the built-in admission-policy TUs out of their static archive
 * (see ensureBuiltinPolicies() for the idiom). Idempotent.
 */
void ensureBuiltinAdmissionPolicies();

} // namespace nmapsim

#endif // NMAPSIM_RESILIENCE_ADMISSION_HH_
