#include "resilience/plan.hh"

#include "sim/logging.hh"

namespace nmapsim {
namespace {

constexpr const char *kKnownKeys[] = {
    "resilience.admission",          "resilience.admit_target",
    "resilience.admit_interval",     "resilience.admit_rate",
    "resilience.admit_burst",        "resilience.retry_budget",
    "resilience.retry_min",          "resilience.retry_cap",
    "resilience.breaker_window",     "resilience.breaker_threshold",
    "resilience.breaker_min_volume", "resilience.breaker_open",
    "resilience.breaker_trials",     "resilience.deadline",
};

bool
isKnownResilienceKey(const std::string &key)
{
    for (const char *known : kKnownKeys)
        if (key == known)
            return true;
    return false;
}

void
validate(const ResiliencePlan &plan)
{
    if (plan.admission == "queue-deadline") {
        if (plan.admitTarget <= 0)
            fatal("resilience.admit_target must be positive for "
                  "queue-deadline admission");
        if (plan.admitInterval <= 0)
            fatal("resilience.admit_interval must be positive for "
                  "queue-deadline admission");
    }
    if (plan.admission == "token-bucket") {
        if (plan.admitRate <= 0.0)
            fatal("resilience.admit_rate must be positive for "
                  "token-bucket admission");
        if (plan.admitBurst < 1.0)
            fatal("resilience.admit_burst must be >= 1");
    }
    if (plan.admitTarget < 0 || plan.admitInterval < 0)
        fatal("resilience.admit_target/admit_interval must be >= 0");

    if (plan.retryBudget < 0.0 || plan.retryBudget > 1.0)
        fatal("resilience.retry_budget must be in [0, 1]");
    if (plan.wantsRetryBudget()) {
        if (plan.retryMin < 0)
            fatal("resilience.retry_min must be >= 0");
        if (plan.retryCap < 1.0)
            fatal("resilience.retry_cap must be >= 1");
    }

    if (plan.breakerWindow < 0)
        fatal("resilience.breaker_window must be >= 0");
    if (plan.wantsBreakers()) {
        if (plan.breakerThreshold <= 0.0 || plan.breakerThreshold > 1.0)
            fatal("resilience.breaker_threshold must be in (0, 1]");
        if (plan.breakerMinVolume < 1)
            fatal("resilience.breaker_min_volume must be >= 1");
        if (plan.breakerOpen <= 0)
            fatal("resilience.breaker_open must be positive");
        if (plan.breakerTrials < 1)
            fatal("resilience.breaker_trials must be >= 1");
    }

    if (plan.deadline < 0)
        fatal("resilience.deadline must be >= 0");
}

} // namespace

bool
ResiliencePlan::enabled() const
{
    return wantsAdmission() || wantsRetryBudget() || wantsBreakers() ||
           wantsDeadline();
}

ResiliencePlan
ResiliencePlan::fromParams(const PolicyParams &params)
{
    for (const auto &[key, value] : params) {
        if (key.rfind("resilience.", 0) == 0 &&
            !isKnownResilienceKey(key))
            fatal("unknown resilience key '" + key + "'");
    }

    ResiliencePlan plan;
    plan.admission = params.raw("resilience.admission");
    plan.admitTarget =
        params.getTick("resilience.admit_target", milliseconds(1));
    plan.admitInterval =
        params.getTick("resilience.admit_interval", milliseconds(10));
    plan.admitRate = params.getDouble("resilience.admit_rate", 0.0);
    plan.admitBurst = params.getDouble("resilience.admit_burst", 16.0);
    plan.retryBudget = params.getDouble("resilience.retry_budget", 0.0);
    plan.retryMin = params.getInt("resilience.retry_min", 10);
    plan.retryCap = params.getDouble("resilience.retry_cap", 100.0);
    plan.breakerWindow =
        params.getTick("resilience.breaker_window", 0);
    plan.breakerThreshold =
        params.getDouble("resilience.breaker_threshold", 0.5);
    plan.breakerMinVolume =
        params.getInt("resilience.breaker_min_volume", 10);
    plan.breakerOpen =
        params.getTick("resilience.breaker_open", plan.breakerWindow);
    plan.breakerTrials = params.getInt("resilience.breaker_trials", 3);
    plan.deadline = params.getTick("resilience.deadline", 0);

    if (!plan.wantsAdmission() &&
        (params.has("resilience.admit_target") ||
         params.has("resilience.admit_interval") ||
         params.has("resilience.admit_rate") ||
         params.has("resilience.admit_burst")))
        fatal("resilience.admit_* keys require resilience.admission");
    if (!plan.wantsRetryBudget() &&
        (params.has("resilience.retry_min") ||
         params.has("resilience.retry_cap")))
        fatal("resilience.retry_min/retry_cap require "
              "resilience.retry_budget");
    if (!plan.wantsBreakers() &&
        (params.has("resilience.breaker_threshold") ||
         params.has("resilience.breaker_min_volume") ||
         params.has("resilience.breaker_open") ||
         params.has("resilience.breaker_trials")))
        fatal("resilience.breaker_* keys require "
              "resilience.breaker_window");
    validate(plan);
    return plan;
}

} // namespace nmapsim
