#include "resilience/breaker.hh"

namespace nmapsim {

void
CircuitBreaker::tripOpen(Tick now)
{
    if (state_ != State::kOpen)
        ++transitions_;
    state_ = State::kOpen;
    reopenAt_ = now + config_.openFor;
    window_.clear();
    windowFailures_ = 0;
}

void
CircuitBreaker::forceOpen(Tick now)
{
    tripOpen(now);
}

void
CircuitBreaker::onOutcome(Tick now, bool failure)
{
    if (state_ == State::kHalfOpen) {
        if (failure) {
            tripOpen(now);
            return;
        }
        ++probeSuccesses_;
        if (probeSuccesses_ >= config_.trials) {
            state_ = State::kClosed;
            ++transitions_;
        }
        return;
    }
    if (state_ == State::kOpen)
        return; // straggler outcome from before the trip
    window_.emplace_back(now, failure);
    if (failure)
        ++windowFailures_;
    while (!window_.empty() &&
           window_.front().first + config_.window < now) {
        if (window_.front().second)
            --windowFailures_;
        window_.pop_front();
    }
    if (static_cast<int>(window_.size()) < config_.minVolume)
        return;
    const double rate = static_cast<double>(windowFailures_) /
                        static_cast<double>(window_.size());
    if (rate >= config_.threshold)
        tripOpen(now);
}

bool
CircuitBreaker::allow(Tick now)
{
    switch (state_) {
    case State::kClosed:
        return true;
    case State::kOpen:
        if (now < reopenAt_)
            return false;
        state_ = State::kHalfOpen;
        ++transitions_;
        probes_ = 1;
        probeSuccesses_ = 0;
        // Probe lease: if the probes never resolve, re-issue after
        // another openFor instead of wedging half-open forever.
        reopenAt_ = now + config_.openFor;
        return true;
    case State::kHalfOpen:
        if (probes_ < config_.trials) {
            ++probes_;
            return true;
        }
        if (now >= reopenAt_) {
            probes_ = 1;
            probeSuccesses_ = 0;
            reopenAt_ = now + config_.openFor;
            return true;
        }
        return false;
    }
    return true; // unreachable
}

bool
CircuitBreaker::wouldAllow(Tick now) const
{
    switch (state_) {
    case State::kClosed:
        return true;
    case State::kOpen:
        return now >= reopenAt_;
    case State::kHalfOpen:
        return probes_ < config_.trials || now >= reopenAt_;
    }
    return true; // unreachable
}

} // namespace nmapsim
