/**
 * @file
 * Built-in admission policies.
 *
 * `none` admits everything — the explicit opt-in that turns the
 * resilience counters on without shedding anything, useful as the
 * control cell of an overload experiment.
 *
 * `queue-deadline` is a CoDel-style sojourn-time law applied at the
 * serve side of the app queue: a request is shed when queueing delay
 * has exceeded `resilience.admit_target` continuously for at least
 * `resilience.admit_interval`, and while that persists the shed rate
 * ramps with the inverse-sqrt control law so standing queues drain
 * instead of merely capping. This bounds the *age* of served work —
 * exactly what a latency-critical tier wants under retry storms,
 * where serving stale requests wastes cycles the retransmission has
 * already re-requested.
 *
 * `token-bucket` is an arrival-side rate gate: requests drain a bucket
 * refilled at `resilience.admit_rate` per second with capacity
 * `resilience.admit_burst`, so sustained overload is shed immediately
 * at ingress before it occupies queue slots.
 *
 * All three are pure functions of the deterministic packet timeline —
 * no RNG, no wall clock — so resilient runs stay byte-reproducible.
 */

#include <algorithm>
#include <cmath>
#include <memory>

#include "resilience/admission.hh"

namespace nmapsim {
namespace {

/** Admit everything; counters on, shedding off. */
class AdmitAllPolicy : public AdmissionPolicy
{
  public:
    bool
    admit(Tick, std::size_t) override
    {
        return true;
    }
};

std::unique_ptr<AdmissionPolicy>
makeAdmitAllPolicy(const AdmissionContext &)
{
    return std::make_unique<AdmitAllPolicy>();
}

REGISTER_ADMISSION_POLICY(
    "none", &makeAdmitAllPolicy,
    "admit everything; enables resilience accounting without shedding");

/** CoDel-style sojourn-time shedding at the serve side of the queue. */
class QueueDeadlinePolicy : public AdmissionPolicy
{
  public:
    QueueDeadlinePolicy(Tick target, Tick interval)
        : target_(target), interval_(interval)
    {
    }

    bool
    admit(Tick, std::size_t) override
    {
        return true;
    }

    bool
    serve(Tick now, Tick enqueuedAt) override
    {
        const Tick sojourn = now - enqueuedAt;
        if (sojourn < target_) {
            // Below target: leave the shedding state entirely.
            firstAbove_ = 0;
            shedding_ = false;
            return true;
        }
        if (firstAbove_ == 0) {
            // First sighting above target: arm the interval timer.
            firstAbove_ = now + interval_;
            return true;
        }
        if (now < firstAbove_)
            return true;
        if (!shedding_) {
            shedding_ = true;
            // Resume near the previous shed rate if we left it recently
            // (CoDel's count memory), else restart gently.
            count_ = count_ > 2 ? count_ - 2 : 1;
            shedNext_ = now + controlInterval();
            return false;
        }
        if (now >= shedNext_) {
            ++count_;
            shedNext_ = now + controlInterval();
            return false;
        }
        return true;
    }

  private:
    Tick
    controlInterval() const
    {
        // Inverse-sqrt control law: successive sheds come faster until
        // the sojourn drops back under target.
        return std::max<Tick>(
            1, static_cast<Tick>(
                   static_cast<double>(interval_) /
                   std::sqrt(static_cast<double>(count_))));
    }

    const Tick target_;
    const Tick interval_;
    Tick firstAbove_ = 0;
    Tick shedNext_ = 0;
    int count_ = 0;
    bool shedding_ = false;
};

std::unique_ptr<AdmissionPolicy>
makeQueueDeadlinePolicy(const AdmissionContext &ctx)
{
    return std::make_unique<QueueDeadlinePolicy>(
        ctx.plan.admitTarget, ctx.plan.admitInterval);
}

REGISTER_ADMISSION_POLICY(
    "queue-deadline", &makeQueueDeadlinePolicy,
    "CoDel-style sojourn shedding: drop serves whose queueing delay "
    "stayed above admit_target for admit_interval");

/** Arrival-side token bucket: shed ingress beyond a sustained rate. */
class TokenBucketPolicy : public AdmissionPolicy
{
  public:
    TokenBucketPolicy(double rate, double burst)
        : rate_(rate), burst_(burst), tokens_(burst)
    {
    }

    bool
    admit(Tick now, std::size_t) override
    {
        tokens_ = std::min(
            burst_, tokens_ + static_cast<double>(now - lastRefill_) *
                                  rate_ / 1e9);
        lastRefill_ = now;
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

  private:
    const double rate_;
    const double burst_;
    double tokens_;
    Tick lastRefill_ = 0;
};

std::unique_ptr<AdmissionPolicy>
makeTokenBucketPolicy(const AdmissionContext &ctx)
{
    return std::make_unique<TokenBucketPolicy>(ctx.plan.admitRate,
                                               ctx.plan.admitBurst);
}

REGISTER_ADMISSION_POLICY(
    "token-bucket", &makeTokenBucketPolicy,
    "arrival-rate gate: admit while a bucket refilled at admit_rate "
    "req/s (capacity admit_burst) holds a token");

} // namespace

// Anchor so ensureBuiltinAdmissionPolicies() can force this TU (and
// its static registrars) out of the archive; see admission.cc.
void
linkAdmissionPolicies()
{
}

} // namespace nmapsim
