#include "resilience/admission.hh"

namespace nmapsim {

// Defined in admission_policies.cc; referencing it forces that TU's
// static registrars to run even when the subsystem is consumed from a
// static archive (same idiom as ensureBuiltinPolicies()).
void linkAdmissionPolicies();

void
ensureBuiltinAdmissionPolicies()
{
    linkAdmissionPolicies();
}

} // namespace nmapsim
