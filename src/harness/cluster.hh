/**
 * @file
 * Multi-host cluster experiment harness.
 *
 * A ClusterExperiment runs N complete server hosts (cluster/host.hh)
 * behind a modeled top-of-rack switch (cluster/switch.hh): client
 * groups send bursty open-loop traffic into the switch, a
 * DispatchRegistry policy steers every request to a host, and each
 * host runs its own frequency + sleep policy resolved by name through
 * the PolicyRegistry. Hosts may be heterogeneous (per-host policy and
 * tunable overrides) and unevenly loaded (per-host dispatch weights).
 *
 * The result carries both cluster-level aggregates — latency
 * percentiles over every completed request, total package energy,
 * switch conservation counters — and the full per-host breakdown, and
 * feeds the same ResultWriter JSON/CSV pipeline as the single-host
 * harness (harness/cluster_io.hh).
 */

#ifndef NMAPSIM_HARNESS_CLUSTER_HH_
#define NMAPSIM_HARNESS_CLUSTER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/host.hh"
#include "cluster/switch.hh"
#include "cluster/topology.hh"
#include "harness/experiment.hh"

namespace nmapsim {

/** Per-host deviations from the cluster's base configuration. */
struct HostSpec
{
    /** Frequency policy override; empty = the base config's. */
    std::string freqPolicy;
    /** Sleep policy override; empty = the base config's. */
    std::string idlePolicy;
    /** Dispatch weight (> 0); affinity policies give the host a
     *  proportional hash share, queue policies normalise by it. */
    double weight = 1.0;
    /** Per-host tunables overlaid onto the base config's params. */
    PolicyParams params;

    bool operator==(const HostSpec &) const = default;
};

/** Declarative description of one cluster run. */
struct ClusterConfig
{
    /** Per-host baseline: hardware, app, OS/NIC knobs, load level and
     *  client connection count, policies, warmup/duration/seed. The
     *  load (base.load / base.rpsOverride) describes the *cluster*
     *  offered load; it is split evenly over the client groups.
     *  loadSchedule and extraObservers are not supported here. */
    ExperimentConfig base;

    int numHosts = 2;
    /** Request steering policy, by DispatchRegistry name. */
    std::string dispatch = "flow-hash";
    /** Optional per-host overrides; empty = all hosts run the base
     *  config, otherwise exactly one entry per host. */
    std::vector<HostSpec> hosts;

    /** Independent client machines; each owns base.numConnections
     *  connections in its own flow space (kFlowSpaceStride apart). */
    int clientGroups = 1;

    /** Switch fabric/port model. */
    SwitchConfig fabric;

    /** Extra simulated time after the load stops, letting in-flight
     *  requests complete (exact request conservation). */
    Tick drain = 0;

    bool operator==(const ClusterConfig &) const = default;
};

/**
 * Per-tier aggregates of a topology run: hop-latency percentiles over
 * the tier's hosts, the tier's share of the chain tail, and how the
 * tier is doing against its per-hop SLO budget.
 */
struct ClusterTierResult
{
    int tier = 0;
    std::string name;
    int firstHost = 0;
    int hosts = 0;
    /** Resolved dispatch policy steering this tier. */
    std::string dispatch;
    /** Per-hop latency budget (explicit or an even share of the app
     *  SLO). */
    Tick slo = 0;

    /** Hop completions (forwards + replies) from the tier's hosts. */
    std::uint64_t completions = 0;
    /** East-west forwards this tier emitted downstream. */
    std::uint64_t forwards = 0;

    /** @name Hop latency (dispatch to return, measurement window) */
    /**@{*/
    Tick hopP50 = 0;
    Tick hopP99 = 0;
    Tick hopMax = 0;
    double meanHop = 0.0;
    /**@}*/

    /** Fraction of hops over this tier's SLO budget. */
    double fracOverSlo = 0.0;
    /** This tier's hop p99 as a share of the summed per-tier hop p99s
     *  — which tier owns the chain tail. */
    double p99Share = 0.0;

    double energyJoules = 0.0;
};

/** Everything a cluster run produces. */
struct ClusterResult
{
    /** @name Cluster-level latency (all completed requests, measured
     *  end-to-end at the clients) */
    /**@{*/
    Tick p50 = 0;
    Tick p99 = 0;
    Tick maxLatency = 0;
    double meanLatency = 0.0;
    double fracOverSlo = 0.0;
    Tick slo = 0;
    /**@}*/

    /** Sum of every host's package energy over the measurement. */
    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;

    /** @name Conservation accounting */
    /**@{*/
    std::uint64_t requestsSent = 0;
    std::uint64_t responsesReceived = 0;
    std::uint64_t requestsForwarded = 0; //!< switch -> hosts
    std::uint64_t responsesReturned = 0; //!< hosts -> switch
    std::uint64_t switchPortDrops = 0;   //!< egress-port queue drops
    std::uint64_t hostNicDrops = 0;      //!< host NIC ring overflows
    /** Responses whose flow hash matched no client group. */
    std::uint64_t strayResponses = 0;
    /**@}*/

    /** @name Fault/robustness accounting (all zero in fault-free runs) */
    /**@{*/
    std::uint64_t requestsTimedOut = 0;   //!< client retry budget spent
    std::uint64_t retransmits = 0;        //!< client retransmissions
    std::uint64_t requestsInFlight = 0;   //!< unanswered at sim end
    std::uint64_t duplicateResponses = 0; //!< answers after give-up
    std::uint64_t faultPacketsLost = 0;   //!< injected wire loss
    std::uint64_t faultPacketsCorrupted = 0; //!< injected corruption
    std::uint64_t linkDownDrops = 0;      //!< lost to downed links
    std::uint64_t ejections = 0;          //!< failure-detector ejections
    std::uint64_t requestsRerouted = 0;   //!< steered around ejections
    std::uint64_t lateResponses = 0;      //!< from written-off hosts
    /** Completed / sent; 1 when nothing was sent. */
    double availability = 1.0;
    /** Completions per second over the whole run (goodput). */
    double goodputRps = 0.0;
    /** P99 of the winning attempt only (0 without client retry). */
    Tick attemptP99 = 0;
    /**@}*/

    /** @name Resilience accounting (all zero — and not serialised —
     *  without a `resilience.*` plan) */
    /**@{*/
    /** Requests rejected back to clients (all shed sites summed on
     *  the client side; terminal — never retried). */
    std::uint64_t requestsShed = 0;
    /** Retransmissions the client retry budget refused to fund. */
    std::uint64_t retryBudgetExhausted = 0;
    std::uint64_t shedAdmission = 0; //!< host admission-gate refusals
    std::uint64_t shedSojourn = 0;   //!< host sojourn (CoDel) sheds
    std::uint64_t shedDeadline = 0;  //!< host past-deadline sheds
    /** Switch-side past-deadline sheds (before dispatch). */
    std::uint64_t switchDeadlineSheds = 0;
    /** Requests refused because a tier's breakers were all open. */
    std::uint64_t breakerShortCircuits = 0;
    /** Total circuit-breaker state transitions across hosts. */
    std::uint64_t breakerTransitions = 0;
    /**@}*/

    /** @name Topology accounting (all zero in single-tier runs) */
    /**@{*/
    std::uint64_t eastWestForwards = 0; //!< host->host re-dispatches
    std::uint64_t eastWestBytes = 0;    //!< east-west fabric bytes
    std::uint64_t goodputBytes = 0;     //!< response bytes to clients
    std::uint64_t controlBytes = 0;     //!< probe/control-class bytes
    /** Sum of per-tier hop p99s (per-hop tail vs the end-to-end p99,
     *  which includes fabric/port time and queueing correlation). */
    Tick hopP99Sum = 0;
    /**@}*/

    /** @name Engine counters (bench/perf_core; never serialised —
     *  they describe the simulator, not the simulated system) */
    /**@{*/
    std::uint64_t eventsProcessed = 0; //!< kernel events fired, whole run
    Tick simulatedTicks = 0;           //!< eq.now() when the run ended
    /**@}*/

    /** Per-tier breakdown; empty unless a topology was declared. */
    std::vector<ClusterTierResult> tiers;
    std::vector<ClusterHostResult> hosts;
};

/** Builds, runs and tears down one configured cluster simulation. */
class ClusterExperiment
{
  public:
    explicit ClusterExperiment(ClusterConfig config);

    /** Execute the run and collect results. */
    ClusterResult run();

    const ClusterConfig &config() const { return config_; }

    /** The service topology parsed from `topology.*` keys (disabled =
     *  classic single-tier cluster). When enabled, numHosts is derived
     *  from the plan's per-tier host counts. */
    const TopologyPlan &topology() const { return topology_; }

    /** The fully resolved configuration host @p id runs (base with the
     *  tier's, then the host's, overrides applied). */
    ExperimentConfig hostConfig(int id) const;

    /** The per-hop SLO budget tier @p tier is judged against. */
    Tick tierSlo(int tier) const;

  private:
    ClusterConfig config_;
    TopologyPlan topology_;
};

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_CLUSTER_HH_
