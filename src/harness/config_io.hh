/**
 * @file
 * Declarative ExperimentConfig <-> key=value text round trip.
 *
 * printConfig() emits one `key=value` line per serialisable field;
 * parseConfig() reads the same format back, starting from a
 * default-constructed config, so `parseConfig(printConfig(c)) == c`
 * for any config without in-memory-only members. Blank lines and
 * `#` comments are skipped.
 *
 * Key space:
 *   - flat keys (`cores`, `app`, `freq_policy`, ...) and dotted
 *     harness-struct keys (`gov.*`, `burst.*`, `os.*`, `nic.*`) are
 *     fixed by the schema below; unknown ones are fatal();
 *   - any other dotted key (`nmap.ni_th`, `parties.interval`, ...) is
 *     passed through verbatim into ExperimentConfig::params, so a
 *     newly registered policy's tunables need no parser changes;
 *   - durations accept ns/us/ms/s suffixes and print as integer ns;
 *   - `app` is the AppProfile name (see AppProfile::byName).
 *
 * Not serialised (in-memory-only, documented on ExperimentConfig):
 * loadSchedule and extraObservers.
 */

#ifndef NMAPSIM_HARNESS_CONFIG_IO_HH_
#define NMAPSIM_HARNESS_CONFIG_IO_HH_

#include <string>

#include "harness/experiment.hh"

namespace nmapsim {

/** Serialise every schema field as `key=value` lines. */
std::string printConfig(const ExperimentConfig &config);

/** Parse `key=value` lines onto a default config; fatal() on unknown
 *  keys or malformed values. */
ExperimentConfig parseConfig(const std::string &text);

/** Apply one key/value onto @p config; fatal() on unknown keys or
 *  malformed values. The CLI's `--set key=value` uses this. */
void setConfigValue(ExperimentConfig &config, const std::string &key,
                    const std::string &value);

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_CONFIG_IO_HH_
