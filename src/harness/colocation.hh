/**
 * @file
 * Colocation harness: several latency-critical applications sharing
 * one server.
 *
 * This is the deployment Parties (the paper's long-term baseline) was
 * actually built for, and a stress case the paper leaves open for
 * NMAP: its thresholds are profiled per *application*, so when two
 * applications with different SLOs and packet profiles share the cores
 * there is no single "correct" (NI_TH, CU_TH) pair. The colocation
 * bench compares offline thresholds from either tenant against the
 * online-adaptive extension, which sidesteps the question.
 *
 * Tenants share everything the paper's testbed would share: cores,
 * NIC queues (disjoint RSS flow spaces, both striped over all cores),
 * the OS network stack and the package power budget. Each tenant has
 * its own client connections, load generator, SLO and latency
 * accounting.
 */

#ifndef NMAPSIM_HARNESS_COLOCATION_HH_
#define NMAPSIM_HARNESS_COLOCATION_HH_

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace nmapsim {

/** One colocated application's workload description. */
struct TenantConfig
{
    AppProfile app = AppProfile::memcached();
    LoadLevel load = LoadLevel::kMed;
    double rpsOverride = 0.0;
    double dutyOverride = 0.0;
    double trainMeanOverride = 0.0;
    int numConnections = 24;
};

/** Per-tenant results of a colocated run. */
struct TenantResult
{
    std::string appName;
    Tick slo = 0;
    Tick p99 = 0;
    double fracOverSlo = 0.0;
    std::uint64_t requestsSent = 0;
    std::uint64_t responsesReceived = 0;
};

/** Declarative description of a colocated run. */
struct ColocationConfig
{
    std::string cpuProfile = "Xeon Gold 6134";
    int numCores = 8;

    std::vector<TenantConfig> tenants;

    /** Frequency policy, by PolicyRegistry name. There is no single
     *  application to profile and no single client latency feed, so
     *  policies needing either ("NMAP" without explicit thresholds,
     *  "Parties") are fatal here. */
    std::string freqPolicy = "NMAP";
    /** Sleep policy, by PolicyRegistry name. */
    std::string idlePolicy = "menu";
    /** Policy tunables; NMAP must carry explicit "nmap.ni_th" /
     *  "nmap.cu_th". */
    PolicyParams params;

    GovernorConfig gov{};
    OsConfig os{};
    NicConfig nic{};

    Tick warmup = milliseconds(200);
    Tick duration = seconds(1);
    std::uint64_t seed = 42;
};

/** Results of a colocated run. */
struct ColocationResult
{
    std::vector<TenantResult> tenants;
    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;
    std::uint64_t nicDrops = 0;
    std::uint64_t pstateTransitions = 0;
};

/** Builds and runs one colocated simulation. */
class ColocationExperiment
{
  public:
    explicit ColocationExperiment(ColocationConfig config);

    ColocationResult run();

  private:
    ColocationConfig config_;
};

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_COLOCATION_HH_
