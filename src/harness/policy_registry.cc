/**
 * @file
 * Link anchors for the built-in policy registrations.
 *
 * The built-in policies self-register from translation units inside
 * nmapsim_governors / nmapsim_nmap / nmapsim_baselines. Those TUs
 * export one no-op anchor function each; calling the anchors from the
 * harness forces the linker to pull the object files (and thus run
 * their registrar statics) out of the static archives. Policies
 * compiled directly into an executable (e.g. a test registering a
 * dummy governor) need no anchor.
 */

#include "harness/policy_registry.hh"

namespace nmapsim {

// Defined in the registering TUs (see each module's *.cc).
void linkStaticGovernorPolicies();  // governors/static_governors.cc
void linkOndemandPolicies();        // governors/ondemand.cc
void linkCpuidlePolicies();         // governors/cpuidle_policies.cc
void linkNmapPolicies();            // nmap/nmap_governor.cc
void linkAdaptiveNmapPolicy();      // nmap/adaptive.cc
void linkNcapPolicies();            // baselines/ncap.cc
void linkPartiesPolicy();           // baselines/parties.cc

void
ensureBuiltinPolicies()
{
    linkStaticGovernorPolicies();
    linkOndemandPolicies();
    linkCpuidlePolicies();
    linkNmapPolicies();
    linkAdaptiveNmapPolicy();
    linkNcapPolicies();
    linkPartiesPolicy();
}

} // namespace nmapsim
