#include "harness/trace_collector.hh"

namespace nmapsim {

TraceCollector::TraceCollector(EventQueue &eq, int watch_core,
                               Tick bucket)
    : eq_(eq), watchCore_(watch_core), intr_(bucket), poll_(bucket),
      pstate_(bucket)
{
}

void
TraceCollector::attachPStateTrace(Core &core)
{
    pstate_.setLevel(eq_.now(),
                     static_cast<double>(core.pstateIndex()));
    const PStateTable &table = core.profile().pstates;
    core.addFreqListener([this, &table](double freq_hz) {
        pstate_.setLevel(eq_.now(),
                         static_cast<double>(
                             table.indexForFreq(freq_hz)));
    });
}

void
TraceCollector::onPollProcessed(int core, std::uint32_t intr_pkts,
                                std::uint32_t poll_pkts)
{
    (void)core;
    if (intr_pkts > 0)
        intr_.add(eq_.now(), static_cast<double>(intr_pkts));
    if (poll_pkts > 0)
        poll_.add(eq_.now(), static_cast<double>(poll_pkts));
}

void
TraceCollector::onKsoftirqdWake(int core)
{
    if (core == watchCore_)
        wakes_.mark(eq_.now());
}

} // namespace nmapsim
