#include "harness/cluster_io.hh"

#include <charconv>
#include <sstream>

#include "harness/config_io.hh"
#include "resilience/plan.hh"
#include "sim/logging.hh"

namespace nmapsim {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

int
parseInt(const std::string &text, const std::string &key)
{
    int v = 0;
    const char *b = text.data();
    const char *e = b + text.size();
    auto res = std::from_chars(b, e, v);
    if (res.ec != std::errc() || res.ptr != e)
        fatal("config key '" + key + "': not an integer: '" + text +
              "'");
    return v;
}

std::string
formatTick(Tick t)
{
    return std::to_string(t) + "ns";
}

/** Parse "host<i>.<rest>" keys; returns false for anything else. */
bool
splitHostKey(const std::string &key, int &host, std::string &rest)
{
    if (key.rfind("host", 0) != 0)
        return false;
    std::size_t dot = key.find('.');
    if (dot == std::string::npos || dot == 4)
        return false;
    const char *b = key.data() + 4;
    const char *e = key.data() + dot;
    int v = 0;
    auto res = std::from_chars(b, e, v);
    if (res.ec != std::errc() || res.ptr != e)
        return false;
    host = v;
    rest = key.substr(dot + 1);
    return true;
}

/** Materialise per-host specs so host @p id can take an override. */
HostSpec &
hostSpec(ClusterConfig &config, int id, const std::string &key)
{
    if (id < 0 || id >= config.numHosts)
        fatal("config key '" + key + "': host index out of range "
              "(hosts=" + std::to_string(config.numHosts) +
              "; set hosts first)");
    if (config.hosts.empty())
        config.hosts.assign(static_cast<std::size_t>(config.numHosts),
                            HostSpec{});
    if (static_cast<int>(config.hosts.size()) != config.numHosts)
        fatal("config key '" + key + "': host spec count diverged "
              "from the host count");
    return config.hosts[static_cast<std::size_t>(id)];
}

} // namespace

bool
setClusterConfigValue(ClusterConfig &c, const std::string &key,
                      const std::string &value)
{
    int host = 0;
    std::string rest;
    if (key == "hosts") {
        c.numHosts = parseInt(value, key);
        if (!c.hosts.empty())
            fatal("config key 'hosts': set the host count before any "
                  "host<i>.* override");
    } else if (key == "dispatch") {
        c.dispatch = value;
    } else if (key == "cluster.client_groups") {
        c.clientGroups = parseInt(value, key);
    } else if (key == "cluster.drain") {
        c.drain = PolicyParams::parseTick(value, key);
    } else if (key == "cluster.fabric_bandwidth") {
        c.fabric.fabricBandwidthBps =
            PolicyParams::parseDouble(value, key);
    } else if (key == "cluster.fabric_latency") {
        c.fabric.fabricLatency = PolicyParams::parseTick(value, key);
    } else if (key == "cluster.port_bandwidth") {
        c.fabric.portBandwidthBps =
            PolicyParams::parseDouble(value, key);
    } else if (key == "cluster.port_propagation") {
        c.fabric.portPropagation = PolicyParams::parseTick(value, key);
    } else if (key == "cluster.port_queue") {
        c.fabric.portQueueLimit =
            static_cast<std::size_t>(parseInt(value, key));
    } else if (key == "cluster.health_interval") {
        c.fabric.healthInterval = PolicyParams::parseTick(value, key);
    } else if (key == "cluster.health_timeout") {
        c.fabric.healthTimeout = PolicyParams::parseTick(value, key);
    } else if (key == "cluster.eject_duration") {
        c.fabric.ejectDuration = PolicyParams::parseTick(value, key);
    } else if (key.rfind("cluster.", 0) == 0) {
        fatal("unknown config key '" + key + "'");
    } else if (key.rfind("topology.", 0) == 0) {
        // Topologies only exist behind the switch: claiming the key
        // here flips nmapsim_run into cluster mode. Validation (key
        // shape, tier ranges) happens in TopologyPlan::fromParams at
        // experiment construction.
        c.base.params.set(key, value);
    } else if (splitHostKey(key, host, rest)) {
        HostSpec &spec = hostSpec(c, host, key);
        if (rest == "freq_policy")
            spec.freqPolicy = value;
        else if (rest == "idle_policy")
            spec.idlePolicy = value;
        else if (rest == "weight")
            spec.weight = PolicyParams::parseDouble(value, key);
        else if (rest.find('.') != std::string::npos) {
            // Structured (gov/os/nic/burst) and cluster-scoped
            // (cluster/fault/client/topology) namespaces are not
            // honoured per host; silently stashing them in params
            // would drop them, so reject with a labelled error — the
            // same contract fault.* key validation gives.
            const std::string ns = rest.substr(0, rest.find('.'));
            for (const char *banned :
                 {"gov", "burst", "os", "nic", "cluster", "fault",
                  "client", "topology", "resilience"}) {
                if (ns == banned)
                    fatal("config key '" + key + "': '" + ns +
                          ".*' keys cannot be overridden per host");
            }
            spec.params.set(rest, value);
        } else {
            fatal("unknown per-host config key '" + key +
                  "' (use freq_policy, idle_policy, weight or a "
                  "dotted params key)");
        }
    } else {
        setConfigValue(c.base, key, value);
        return false;
    }
    return true;
}

std::string
printClusterConfig(const ClusterConfig &c)
{
    std::ostringstream os;
    auto put = [&os](const std::string &key, const std::string &value) {
        os << key << "=" << value << "\n";
    };

    put("hosts", std::to_string(c.numHosts));
    put("dispatch", c.dispatch);
    put("cluster.client_groups", std::to_string(c.clientGroups));
    put("cluster.drain", formatTick(c.drain));
    put("cluster.fabric_bandwidth",
        PolicyParams::formatDouble(c.fabric.fabricBandwidthBps));
    put("cluster.fabric_latency", formatTick(c.fabric.fabricLatency));
    put("cluster.port_bandwidth",
        PolicyParams::formatDouble(c.fabric.portBandwidthBps));
    put("cluster.port_propagation",
        formatTick(c.fabric.portPropagation));
    put("cluster.port_queue",
        std::to_string(c.fabric.portQueueLimit));
    put("cluster.health_interval",
        formatTick(c.fabric.healthInterval));
    put("cluster.health_timeout", formatTick(c.fabric.healthTimeout));
    put("cluster.eject_duration", formatTick(c.fabric.ejectDuration));

    for (std::size_t i = 0; i < c.hosts.size(); ++i) {
        const HostSpec &spec = c.hosts[i];
        const std::string prefix = "host" + std::to_string(i) + ".";
        // weight always prints so parsing recreates the spec vector.
        put(prefix + "weight",
            PolicyParams::formatDouble(spec.weight));
        if (!spec.freqPolicy.empty())
            put(prefix + "freq_policy", spec.freqPolicy);
        if (!spec.idlePolicy.empty())
            put(prefix + "idle_policy", spec.idlePolicy);
        for (const auto &[key, value] : spec.params)
            put(prefix + key, value);
    }

    os << printConfig(c.base);
    return os.str();
}

ClusterConfig
parseClusterConfig(const std::string &text)
{
    ClusterConfig config;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        if (eq == std::string::npos)
            fatal("config line " + std::to_string(lineno) +
                  ": expected key=value, got '" + t + "'");
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            fatal("config line " + std::to_string(lineno) +
                  ": empty key");
        setClusterConfigValue(config, key, value);
    }
    return config;
}

ResultWriter::Record &
appendClusterResultRecord(ResultWriter &writer,
                          const ClusterConfig &config,
                          const ClusterResult &result)
{
    ResultWriter::Record &rec = writer.add();

    // Config dimensions identifying the point.
    rec.set("hosts", config.numHosts)
        .set("dispatch", config.dispatch)
        .set("client_groups", config.clientGroups)
        .set("app", config.base.app.name)
        .set("load", loadLevelName(config.base.load))
        .set("freq_policy", config.base.freqPolicy)
        .set("idle_policy", config.base.idlePolicy)
        .set("cores", config.base.numCores)
        .set("connections", config.base.numConnections)
        .set("rps_override", config.base.rpsOverride)
        .set("warmup_ns",
             static_cast<std::int64_t>(config.base.warmup))
        .set("duration_ns",
             static_cast<std::int64_t>(config.base.duration))
        .set("drain_ns", static_cast<std::int64_t>(config.drain))
        .set("seed", config.base.seed);
    for (const auto &[key, value] : config.base.params)
        rec.set(key, value);

    // Cluster-level metrics.
    rec.set("p50_ns", static_cast<std::int64_t>(result.p50))
        .set("p99_ns", static_cast<std::int64_t>(result.p99))
        .set("max_latency_ns",
             static_cast<std::int64_t>(result.maxLatency))
        .set("mean_latency_ns", result.meanLatency)
        .set("slo_ns", static_cast<std::int64_t>(result.slo))
        .set("frac_over_slo", result.fracOverSlo)
        .set("energy_j", result.energyJoules)
        .set("avg_power_w", result.avgPowerWatts)
        .set("requests_sent", result.requestsSent)
        .set("responses_received", result.responsesReceived)
        .set("requests_forwarded", result.requestsForwarded)
        .set("responses_returned", result.responsesReturned)
        .set("switch_port_drops", result.switchPortDrops)
        .set("host_nic_drops", result.hostNicDrops)
        .set("stray_responses", result.strayResponses)
        .set("requests_timed_out", result.requestsTimedOut)
        .set("retransmits", result.retransmits)
        .set("requests_in_flight", result.requestsInFlight)
        .set("duplicate_responses", result.duplicateResponses)
        .set("fault_pkts_lost", result.faultPacketsLost)
        .set("fault_pkts_corrupted", result.faultPacketsCorrupted)
        .set("link_down_drops", result.linkDownDrops)
        .set("ejections", result.ejections)
        .set("requests_rerouted", result.requestsRerouted)
        .set("late_responses", result.lateResponses)
        .set("availability", result.availability)
        .set("goodput_rps", result.goodputRps)
        .set("attempt_p99_ns",
             static_cast<std::int64_t>(result.attemptP99));

    // Resilience counters only exist when a resilience.* plan is
    // configured, so pre-resilience records (goldens, bench baselines)
    // stay byte-identical.
    const bool resilient =
        ResiliencePlan::fromParams(config.base.params).enabled();
    if (resilient) {
        rec.set("requests_shed", result.requestsShed)
            .set("retry_budget_exhausted", result.retryBudgetExhausted)
            .set("shed_admission", result.shedAdmission)
            .set("shed_sojourn", result.shedSojourn)
            .set("shed_deadline", result.shedDeadline)
            .set("switch_deadline_sheds", result.switchDeadlineSheds)
            .set("breaker_short_circuits", result.breakerShortCircuits)
            .set("breaker_transitions", result.breakerTransitions);
    }

    // Topology columns only exist for topology runs, so single-tier
    // records (and their pinned goldens) stay byte-identical.
    const bool tiered = !result.tiers.empty();
    if (tiered) {
        rec.set("tiers",
                static_cast<std::int64_t>(result.tiers.size()))
            .set("east_west_forwards", result.eastWestForwards)
            .set("east_west_bytes", result.eastWestBytes)
            .set("goodput_bytes", result.goodputBytes)
            .set("control_bytes", result.controlBytes)
            .set("hop_p99_sum_ns",
                 static_cast<std::int64_t>(result.hopP99Sum));
        for (const ClusterTierResult &tier : result.tiers) {
            const std::string p =
                "tier" + std::to_string(tier.tier) + "_";
            rec.set(p + "name", tier.name)
                .set(p + "hosts", tier.hosts)
                .set(p + "dispatch", tier.dispatch)
                .set(p + "completions", tier.completions)
                .set(p + "forwards", tier.forwards)
                .set(p + "hop_p50_ns",
                     static_cast<std::int64_t>(tier.hopP50))
                .set(p + "hop_p99_ns",
                     static_cast<std::int64_t>(tier.hopP99))
                .set(p + "hop_max_ns",
                     static_cast<std::int64_t>(tier.hopMax))
                .set(p + "mean_hop_ns", tier.meanHop)
                .set(p + "slo_ns",
                     static_cast<std::int64_t>(tier.slo))
                .set(p + "frac_over_slo", tier.fracOverSlo)
                .set(p + "p99_share", tier.p99Share)
                .set(p + "energy_j", tier.energyJoules);
        }
    }

    // Per-host summary columns.
    for (const ClusterHostResult &host : result.hosts) {
        const std::string p = "host" + std::to_string(host.id) + "_";
        rec.set(p + "freq_policy", host.freqPolicy)
            .set(p + "idle_policy", host.idlePolicy)
            .set(p + "served", host.served)
            .set(p + "p50_ns", static_cast<std::int64_t>(host.p50))
            .set(p + "p99_ns", static_cast<std::int64_t>(host.p99))
            .set(p + "energy_j", host.energyJoules)
            .set(p + "avg_power_w", host.avgPowerWatts)
            .set(p + "busy_fraction", host.busyFraction)
            .set(p + "nic_drops", host.nicDrops)
            .set(p + "pkts_intr_mode", host.pktsIntrMode)
            .set(p + "pkts_poll_mode", host.pktsPollMode)
            .set(p + "ejections", host.ejections);
        if (tiered) {
            rec.set(p + "tier", host.tier)
                .set(p + "tier_name", host.tierName)
                .set(p + "forwarded", host.forwarded)
                .set(p + "hops_completed", host.hopsCompleted)
                .set(p + "hop_p50_ns",
                     static_cast<std::int64_t>(host.hopP50))
                .set(p + "hop_p99_ns",
                     static_cast<std::int64_t>(host.hopP99));
        }
        // Resilience columns follow the same gate as the cluster-level
        // ones.
        if (resilient) {
            rec.set(p + "shed_admission", host.shedAdmission)
                .set(p + "shed_sojourn", host.shedSojourn)
                .set(p + "shed_deadline", host.shedDeadline)
                .set(p + "breaker_transitions",
                     host.breakerTransitions);
        }
        // Dataplane columns appear only for bypass hosts, so NAPI
        // cluster records (and mixed clusters' NAPI hosts) keep their
        // pre-dataplane shape byte for byte.
        if (host.bypass) {
            rec.set(p + "bypass_poll_loops", host.bypassPollLoops)
                .set(p + "bypass_empty_polls", host.bypassEmptyPolls)
                .set(p + "bypass_sleeps", host.bypassSleeps)
                .set(p + "bypass_sleep_residency_ns",
                     static_cast<std::int64_t>(
                         host.bypassSleepResidency))
                .set(p + "bypass_wasted_poll_energy_j",
                     host.bypassWastedPollEnergy);
        }
    }
    return rec;
}

} // namespace nmapsim
