#include "harness/result_io.hh"

#include "dataplane/plan.hh"
#include "resilience/plan.hh"

namespace nmapsim {

ResultWriter::Record &
appendResultRecord(ResultWriter &writer, const ExperimentConfig &config,
                   const ExperimentResult &result)
{
    ResultWriter::Record &rec = writer.add();

    // Config dimensions identifying the point.
    rec.set("app", config.app.name)
        .set("load", loadLevelName(config.load))
        .set("freq_policy", config.freqPolicy)
        .set("idle_policy", config.idlePolicy)
        .set("cores", config.numCores)
        .set("connections", config.numConnections)
        .set("rps_override", config.rpsOverride)
        .set("warmup_ns", static_cast<std::int64_t>(config.warmup))
        .set("duration_ns", static_cast<std::int64_t>(config.duration))
        .set("seed", config.seed);
    for (const auto &[key, value] : config.params)
        rec.set(key, value);

    // Measured metrics.
    rec.set("p50_ns", static_cast<std::int64_t>(result.p50))
        .set("p99_ns", static_cast<std::int64_t>(result.p99))
        .set("max_latency_ns",
             static_cast<std::int64_t>(result.maxLatency))
        .set("mean_latency_ns", result.meanLatency)
        .set("slo_ns", static_cast<std::int64_t>(result.slo))
        .set("frac_over_slo", result.fracOverSlo)
        .set("energy_j", result.energyJoules)
        .set("avg_power_w", result.avgPowerWatts)
        .set("requests_sent", result.requestsSent)
        .set("responses_received", result.responsesReceived)
        .set("nic_drops", result.nicDrops)
        .set("nic_rx_harvested", result.nicRxHarvested)
        .set("nic_tx_consumed", result.nicTxConsumed)
        .set("pkts_intr_mode", result.pktsIntrMode)
        .set("pkts_poll_mode", result.pktsPollMode)
        .set("ksoftirqd_wakes", result.ksoftirqdWakes)
        .set("pstate_transitions", result.pstateTransitions)
        .set("cc6_wakes", result.cc6Wakes)
        .set("cc1_wakes", result.cc1Wakes)
        .set("busy_fraction", result.busyFraction)
        .set("ni_threshold_used", result.niThresholdUsed)
        .set("cu_threshold_used", result.cuThresholdUsed)
        .set("requests_timed_out", result.requestsTimedOut)
        .set("retransmits", result.retransmits)
        .set("requests_in_flight", result.requestsInFlight)
        .set("duplicate_responses", result.duplicateResponses)
        .set("fault_pkts_lost", result.faultPacketsLost)
        .set("fault_pkts_corrupted", result.faultPacketsCorrupted)
        .set("link_down_drops", result.linkDownDrops)
        .set("availability", result.availability)
        .set("attempt_p99_ns",
             static_cast<std::int64_t>(result.attemptP99));

    // Dataplane metrics only exist for bypass runs; gating the columns
    // keeps every pre-dataplane record (goldens, bench baselines)
    // byte-identical.
    if (DataplanePlan::fromParams(config.params).bypass()) {
        rec.set("bypass_poll_loops", result.bypassPollLoops)
            .set("bypass_empty_polls", result.bypassEmptyPolls)
            .set("bypass_sleeps", result.bypassSleeps)
            .set("bypass_sleep_residency_ns",
                 static_cast<std::int64_t>(result.bypassSleepResidency))
            .set("bypass_wasted_poll_energy_j",
                 result.bypassWastedPollEnergy);
    }

    // Resilience counters only exist when a resilience.* plan is
    // configured; gating them the same way keeps every pre-resilience
    // record byte-identical.
    if (ResiliencePlan::fromParams(config.params).enabled()) {
        rec.set("requests_shed", result.requestsShed)
            .set("retry_budget_exhausted", result.retryBudgetExhausted)
            .set("shed_admission", result.shedAdmission)
            .set("shed_sojourn", result.shedSojourn)
            .set("shed_deadline", result.shedDeadline);
    }
    return rec;
}

} // namespace nmapsim
