#include "harness/sweep.hh"

#include <algorithm>
#include <cstdlib>

namespace nmapsim {

int
resolveJobs(int jobs, std::size_t num_points)
{
    if (jobs <= 0) {
        if (const char *env = std::getenv("NMAPSIM_JOBS"))
            jobs = std::atoi(env);
    }
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw == 0 ? 1 : static_cast<int>(hw);
    }
    if (num_points > 0 &&
        static_cast<std::size_t>(jobs) > num_points)
        jobs = static_cast<int>(num_points);
    return std::max(jobs, 1);
}

bool
sweepProgressEnabled()
{
    const char *env = std::getenv("NMAPSIM_SWEEP_QUIET");
    return env == nullptr || std::atoi(env) == 0;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

int
SweepRunner::jobs(std::size_t num_points) const
{
    return resolveJobs(opts_.jobs, num_points);
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<ExperimentConfig> &points) const
{
    std::vector<std::function<ExperimentResult()>> tasks;
    tasks.reserve(points.size());
    for (const ExperimentConfig &cfg : points)
        tasks.emplace_back([&cfg] { return Experiment(cfg).run(); });
    return runParallel(tasks, opts_);
}

std::vector<SweepSlot<std::pair<double, double>>>
SweepRunner::profile(const std::vector<ExperimentConfig> &points) const
{
    std::vector<std::function<std::pair<double, double>()>> tasks;
    tasks.reserve(points.size());
    for (const ExperimentConfig &cfg : points)
        tasks.emplace_back(
            [&cfg] { return Experiment::profileThresholds(cfg); });
    SweepOptions opts = opts_;
    opts.tag = opts_.tag + "/profile";
    return runParallel(tasks, opts);
}

std::vector<ExperimentConfig>
SweepSpec::build() const
{
    std::vector<ExperimentConfig> points;
    points.reserve(numPoints());
    for (std::size_t pi = 0; pi < numPolicies(); ++pi) {
        for (std::size_t ii = 0; ii < numIdlePolicies(); ++ii) {
            for (std::size_t li = 0; li < numLoads(); ++li) {
                for (std::size_t ri = 0; ri < numRps(); ++ri) {
                    for (std::size_t si = 0; si < numSeeds(); ++si) {
                        ExperimentConfig cfg = base_;
                        if (!policies_.empty())
                            cfg.freqPolicy = policies_[pi];
                        if (!idles_.empty())
                            cfg.idlePolicy = idles_[ii];
                        if (!loads_.empty())
                            cfg.load = loads_[li];
                        if (!rps_.empty())
                            cfg.rpsOverride = rps_[ri];
                        if (!seeds_.empty())
                            cfg.seed = seeds_[si];
                        points.push_back(std::move(cfg));
                    }
                }
            }
        }
    }
    return points;
}

} // namespace nmapsim
