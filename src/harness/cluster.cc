#include "harness/cluster.hh"

#include <memory>
#include <utility>
#include <vector>

#include "cluster/dispatch.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "harness/policy_registry.hh"
#include "resilience/admission.hh"
#include "resilience/plan.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/client.hh"
#include "workload/loadgen.hh"

namespace nmapsim {

ClusterExperiment::ClusterExperiment(ClusterConfig config)
    : config_(std::move(config))
{
    ensureBuiltinPolicies();
    ensureBuiltinDispatchPolicies();

    // A declared topology owns the host count: tiers are contiguous
    // host-id ranges, so `hosts` (the count) is derived and per-host
    // override vectors must match the derived total.
    topology_ = TopologyPlan::fromParams(config_.base.params);
    if (topology_.enabled()) {
        config_.numHosts = topology_.totalHosts();
        const PolicyRegistry &registry = PolicyRegistry::instance();
        for (const TierSpec &tier : topology_.tiers) {
            const std::string where =
                " in topology tier '" + tier.name + "'";
            if (!tier.dispatch.empty() &&
                !DispatchRegistry::instance().has(tier.dispatch))
                fatal("unknown dispatch policy '" + tier.dispatch +
                      "'" + where);
            if (!tier.freqPolicy.empty() &&
                !registry.hasFreq(tier.freqPolicy))
                fatal("unknown frequency policy '" + tier.freqPolicy +
                      "'" + where);
            if (!tier.idlePolicy.empty() &&
                !registry.hasIdle(tier.idlePolicy))
                fatal("unknown idle policy '" + tier.idlePolicy +
                      "'" + where);
        }
    }

    if (config_.numHosts < 1)
        fatal("ClusterExperiment requires at least one host");
    if (!config_.hosts.empty() &&
        static_cast<int>(config_.hosts.size()) != config_.numHosts)
        fatal("ClusterConfig::hosts must be empty or name every host");
    for (const HostSpec &spec : config_.hosts)
        if (spec.weight <= 0.0)
            fatal("host dispatch weights must be positive");
    if (config_.clientGroups < 1)
        fatal("ClusterExperiment requires at least one client group");
    if (config_.base.numConnections < 1 ||
        config_.base.numConnections >=
            static_cast<int>(kFlowSpaceStride))
        fatal("client group connection count out of range");
    if (config_.base.duration <= 0)
        fatal("ClusterExperiment duration must be positive");
    if (!config_.base.loadSchedule.empty() ||
        !config_.base.extraObservers.empty())
        fatal("ClusterExperiment does not support load schedules or "
              "extra observers");
    if (!DispatchRegistry::instance().has(config_.dispatch))
        fatal("unknown dispatch policy '" + config_.dispatch + "'");

    // Surface fault/retry config errors at construction, like every
    // other config error.
    const FaultPlan plan = FaultPlan::fromParams(config_.base.params);
    const ClientRetryPolicy retry =
        ClientRetryPolicy::fromParams(config_.base.params);
    if (plan.flapHost >= config_.numHosts)
        fatal("fault.flap_host out of range");
    for (int crash_host : plan.crashHosts)
        if (crash_host >= config_.numHosts)
            fatal("fault.crash_host out of range");

    // Same for the resilience plan: resolve the admission policy name
    // now (make() fatals with the known-name list) and reject a retry
    // budget with nothing to budget.
    const ResiliencePlan resilience =
        ResiliencePlan::fromParams(config_.base.params);
    if (resilience.wantsAdmission()) {
        ensureBuiltinAdmissionPolicies();
        (void)AdmissionPolicyRegistry::instance().make(
            resilience.admission, AdmissionContext{resilience});
    }
    if (resilience.wantsRetryBudget() && !retry.enabled())
        fatal("resilience.retry_budget requires client retry "
              "(client.timeout)");
}

ExperimentConfig
ClusterExperiment::hostConfig(int id) const
{
    ExperimentConfig cfg = config_.base;
    if (topology_.enabled()) {
        // The host-side rig (and its offline profiling Experiment)
        // must not see cluster-only topology keys.
        std::vector<std::string> topo_keys;
        for (const auto &[key, value] : cfg.params)
            if (key.rfind("topology.", 0) == 0)
                topo_keys.push_back(key);
        for (const std::string &key : topo_keys)
            cfg.params.erase(key);
        const TierSpec &tier =
            topology_.tiers[static_cast<std::size_t>(
                topology_.tierOf(id))];
        if (!tier.freqPolicy.empty())
            cfg.freqPolicy = tier.freqPolicy;
        if (!tier.idlePolicy.empty())
            cfg.idlePolicy = tier.idlePolicy;
    }
    if (config_.hosts.empty())
        return cfg;
    const HostSpec &spec =
        config_.hosts[static_cast<std::size_t>(id)];
    if (!spec.freqPolicy.empty())
        cfg.freqPolicy = spec.freqPolicy;
    if (!spec.idlePolicy.empty())
        cfg.idlePolicy = spec.idlePolicy;
    for (const auto &[key, value] : spec.params)
        cfg.params.set(key, value);
    return cfg;
}

Tick
ClusterExperiment::tierSlo(int tier) const
{
    const TierSpec &spec =
        topology_.tiers[static_cast<std::size_t>(tier)];
    if (spec.slo > 0)
        return spec.slo;
    // Default: an even split of the end-to-end latency budget.
    return config_.base.app.slo / topology_.numTiers();
}

ClusterResult
ClusterExperiment::run()
{
    EventQueue eq;
    Rng rng(config_.base.seed);

    // --- Switch -------------------------------------------------------
    std::vector<double> weights(
        static_cast<std::size_t>(config_.numHosts), 1.0);
    for (std::size_t i = 0; i < config_.hosts.size(); ++i)
        weights[i] = config_.hosts[i].weight;
    std::vector<SwitchTier> switch_tiers;
    for (int t = 0; t < topology_.numTiers(); ++t) {
        const TierSpec &tier =
            topology_.tiers[static_cast<std::size_t>(t)];
        switch_tiers.push_back(SwitchTier{tier.name,
                                          topology_.firstHostOf(t),
                                          tier.hosts, tier.dispatch});
    }
    ClusterSwitch sw(eq, config_.fabric, config_.dispatch, weights,
                     config_.base.params, std::move(switch_tiers));

    // Resilience plan (overload control). A disabled plan arms nothing
    // anywhere and keeps the run byte-identical; the subsystem forks no
    // random stream, so enabling it perturbs no other component's
    // stream either.
    const ResiliencePlan resilience =
        ResiliencePlan::fromParams(config_.base.params);
    if (resilience.enabled())
        sw.enableResilience(resilience);

    // --- Hosts --------------------------------------------------------
    std::vector<std::unique_ptr<ClusterHost>> hosts;
    for (int id = 0; id < config_.numHosts; ++id) {
        ExperimentConfig host_cfg = hostConfig(id);
        auto profile_fn = [host_cfg] {
            return Experiment::profileThresholds(host_cfg);
        };
        hosts.push_back(std::make_unique<ClusterHost>(
            id, eq, host_cfg, std::move(profile_fn), rng.fork(),
            config_.fabric.portBandwidthBps,
            config_.fabric.portPropagation));
        hosts.back()->connect(sw);
        if (topology_.enabled()) {
            const int t = topology_.tierOf(id);
            const TierSpec &tier =
                topology_.tiers[static_cast<std::size_t>(t)];
            hosts.back()->setTierRole(
                {t, tier.name, t < topology_.numTiers() - 1,
                 tier.serviceScale});
        }
        if (resilience.enabled())
            hosts.back()->setResilience(resilience);
    }
    sw.setResponseTap([&hosts](int host, const Packet &pkt) {
        hosts[static_cast<std::size_t>(host)]->onServedResponse(pkt);
    });

    // Per-host hop-latency recorders, fed by the switch's hop tap
    // (dispatch to return, covering queueing + service on the host).
    std::vector<LatencyRecorder> hop_lat(
        static_cast<std::size_t>(config_.numHosts));
    if (topology_.enabled()) {
        sw.setHopTap([&hop_lat, &eq](int host, int tier, Tick hop,
                                     bool forwarded) {
            (void)tier;
            (void)forwarded;
            hop_lat[static_cast<std::size_t>(host)].record(eq.now(),
                                                           hop);
        });
    }

    // --- Client groups ------------------------------------------------
    Wire client_uplink(eq, config_.fabric.portBandwidthBps,
                       config_.fabric.portPropagation);
    client_uplink.setLabel("clients.uplink");
    client_uplink.setSink(
        [&sw](const Packet &pkt) { sw.fromClient(pkt); });

    struct Group
    {
        std::unique_ptr<Client> client;
        std::unique_ptr<LoadGenerator> gen;
    };
    std::vector<Group> groups;
    auto addGroup = [&](int entry_tier) {
        Group group;
        group.client = std::make_unique<Client>(
            eq, client_uplink, config_.base.app,
            config_.base.numConnections,
            static_cast<std::uint32_t>(groups.size()) *
                kFlowSpaceStride);
        if (entry_tier > 0)
            group.client->setEntryTier(entry_tier);
        group.gen = std::make_unique<LoadGenerator>(
            eq, *group.client, config_.base.burst, rng.fork());
        groups.push_back(std::move(group));
    };
    for (int g = 0; g < config_.clientGroups; ++g)
        addGroup(0);
    // Mid-chain load: tiers may declare their own client groups
    // (topology.tier<i>.clients). Built after the front-door groups in
    // tier order, so flow spaces and Rng forks are stable and a
    // topology without tier clients stays byte-identical.
    for (int t = 0; t < topology_.numTiers(); ++t) {
        const TierSpec &tier =
            topology_.tiers[static_cast<std::size_t>(t)];
        for (int c = 0; c < tier.clients; ++c)
            addGroup(t);
    }

    std::uint64_t stray = 0;
    sw.clientPort().setSink([&groups, &stray](const Packet &pkt) {
        std::size_t idx = pkt.flowHash / kFlowSpaceStride;
        if (idx < groups.size())
            groups[idx].client->onResponse(pkt);
        else
            ++stray;
    });

    // --- Load ---------------------------------------------------------
    LoadLevelSpec spec = config_.base.app.level(config_.base.load);
    if (config_.base.rpsOverride > 0.0)
        spec.rps = config_.base.rpsOverride;
    if (config_.base.trainMeanOverride > 0.0)
        spec.trainMean = config_.base.trainMeanOverride;
    if (config_.base.dutyOverride > 0.0)
        spec.duty = config_.base.dutyOverride;
    // The configured rate is the cluster's offered load, split evenly
    // over every client group (front-door and mid-chain alike).
    spec.rps /= static_cast<double>(groups.size());

    // --- Fault injection ----------------------------------------------
    // Built after every pre-existing component so the injector's Rng
    // fork is the last one taken: a disabled plan leaves all other
    // streams untouched and the run byte-identical to a fault-free
    // build.
    const FaultPlan fault_plan =
        FaultPlan::fromParams(config_.base.params);
    const ClientRetryPolicy retry =
        ClientRetryPolicy::fromParams(config_.base.params);
    if (retry.enabled())
        for (Group &group : groups)
            group.client->setRetryPolicy(retry);
    if (resilience.wantsRetryBudget())
        for (Group &group : groups)
            group.client->setRetryBudget(resilience.retryBudget,
                                         resilience.retryMin,
                                         resilience.retryCap);
    if (resilience.wantsDeadline())
        for (Group &group : groups)
            group.client->setDeadlineBudget(resilience.deadline);

    std::unique_ptr<FaultInjector> injector;
    if (fault_plan.enabled()) {
        injector = std::make_unique<FaultInjector>(eq, fault_plan,
                                                   rng.fork());
        // Loss/corruption live on the host access links (switch port
        // down, host uplink up), in topology order.
        for (int id = 0; id < config_.numHosts; ++id) {
            injector->addLossyWire(sw.downlink(id));
            injector->addLossyWire(
                hosts[static_cast<std::size_t>(id)]->uplink());
        }
        if (fault_plan.wantsFlap()) {
            std::vector<Wire *> flapping;
            for (int id = 0; id < config_.numHosts; ++id) {
                if (fault_plan.flapHost >= 0 &&
                    fault_plan.flapHost != id)
                    continue;
                flapping.push_back(&sw.downlink(id));
                flapping.push_back(
                    &hosts[static_cast<std::size_t>(id)]->uplink());
            }
            injector->addFlapGroup(std::move(flapping));
        }
        if (fault_plan.wantsRingDegrade())
            for (std::unique_ptr<ClusterHost> &host : hosts)
                injector->addDegradableNic(host->nic());
        for (int crash_host : fault_plan.crashHosts) {
            // Fail-stop from the network's point of view: both access
            // links go dark; the host itself keeps simulating (its
            // power draw during the outage is part of the result).
            Wire *down_link = &sw.downlink(crash_host);
            Wire *up_link =
                &hosts[static_cast<std::size_t>(crash_host)]->uplink();
            injector->trackWire(*down_link);
            injector->trackWire(*up_link);
            injector->scheduleCrash(
                [down_link, up_link] {
                    down_link->setLinkDown(true);
                    up_link->setLinkDown(true);
                },
                [down_link, up_link] {
                    down_link->setLinkDown(false);
                    up_link->setLinkDown(false);
                });
        }
    }

    // --- Run ----------------------------------------------------------
    for (std::unique_ptr<ClusterHost> &host : hosts)
        host->start();
    for (Group &group : groups) {
        group.gen->setConnectionSkew(config_.base.connectionSkew);
        group.gen->setLoad(spec);
        group.gen->start();
    }

    eq.runUntil(config_.base.warmup);
    Tick measure_start = eq.now();
    for (std::unique_ptr<ClusterHost> &host : hosts)
        host->beginMeasurement(measure_start);
    for (Group &group : groups) {
        group.client->latencies().clear();
        group.client->attemptLatencies().clear();
    }
    for (LatencyRecorder &rec : hop_lat)
        rec.clear();

    Tick end = config_.base.warmup + config_.base.duration;
    eq.runUntil(end);
    for (Group &group : groups)
        group.gen->stop();

    Tick sim_end = end + config_.drain;
    eq.runUntil(sim_end);

    // --- Collect ------------------------------------------------------
    ClusterResult result;
    LatencyRecorder merged;
    LatencyRecorder merged_attempts;
    for (Group &group : groups) {
        merged.merge(group.client->latencies());
        merged_attempts.merge(group.client->attemptLatencies());
        result.requestsSent += group.client->requestsSent();
        result.responsesReceived += group.client->responsesReceived();
        result.requestsTimedOut += group.client->requestsTimedOut();
        result.retransmits += group.client->retransmits();
        result.requestsInFlight += group.client->requestsInFlight();
        result.duplicateResponses +=
            group.client->duplicateResponses();
        result.requestsShed += group.client->requestsShed();
        result.retryBudgetExhausted +=
            group.client->retryBudgetExhausted();
    }
    result.slo = config_.base.app.slo;
    result.p50 = merged.percentile(50.0);
    result.p99 = merged.percentile(99.0);
    result.maxLatency = merged.max();
    result.meanLatency = merged.mean();
    result.fracOverSlo = merged.fractionAbove(result.slo);

    result.requestsForwarded = sw.totalRequestsForwarded();
    result.responsesReturned = sw.totalResponsesReturned();
    result.switchPortDrops = sw.portDrops();
    result.strayResponses = stray;
    result.ejections = sw.totalEjections();
    result.requestsRerouted = sw.requestsRerouted();
    result.lateResponses = sw.lateResponses();
    result.switchDeadlineSheds = sw.deadlineSheds();
    result.breakerShortCircuits = sw.breakerShortCircuits();
    result.breakerTransitions = sw.totalBreakerTransitions();
    result.attemptP99 = merged_attempts.percentile(99.0);
    if (injector) {
        result.faultPacketsLost = injector->packetsFaultLost();
        result.faultPacketsCorrupted = injector->packetsCorrupted();
        result.linkDownDrops = injector->packetsLinkDownLost();
    }
    result.availability =
        result.requestsSent == 0
            ? 1.0
            : static_cast<double>(result.responsesReceived) /
                  static_cast<double>(result.requestsSent);
    result.goodputRps =
        static_cast<double>(result.responsesReceived) /
        toSeconds(sim_end);

    const double measured_seconds = toSeconds(sim_end - measure_start);
    for (const std::unique_ptr<ClusterHost> &host : hosts) {
        ClusterHostResult hr = host->collect(sim_end);
        hr.avgPowerWatts = hr.energyJoules / measured_seconds;
        hr.ejections = sw.ejections(hr.id);
        if (resilience.enabled()) {
            hr.resilient = true;
            hr.breakerTransitions = sw.breakerTransitions(hr.id);
            result.shedAdmission += hr.shedAdmission;
            result.shedSojourn += hr.shedSojourn;
            result.shedDeadline += hr.shedDeadline;
        }
        if (topology_.enabled()) {
            const LatencyRecorder &hop =
                hop_lat[static_cast<std::size_t>(hr.id)];
            hr.hopsCompleted = hop.count();
            hr.hopP50 = hop.percentile(50.0);
            hr.hopP99 = hop.percentile(99.0);
        }
        result.energyJoules += hr.energyJoules;
        result.hostNicDrops += hr.nicDrops;
        result.hosts.push_back(std::move(hr));
    }
    result.avgPowerWatts = result.energyJoules / measured_seconds;

    // --- Per-tier SLO attribution -------------------------------------
    if (topology_.enabled()) {
        result.eastWestForwards = sw.eastWestForwards();
        result.eastWestBytes = sw.eastWestBytes();
        result.goodputBytes = sw.goodputBytes();
        result.controlBytes = sw.controlBytes();
        for (int t = 0; t < topology_.numTiers(); ++t) {
            const TierSpec &tier =
                topology_.tiers[static_cast<std::size_t>(t)];
            ClusterTierResult tr;
            tr.tier = t;
            tr.name = tier.name;
            tr.firstHost = topology_.firstHostOf(t);
            tr.hosts = tier.hosts;
            tr.dispatch = sw.tier(t).dispatch;
            tr.slo = tierSlo(t);
            LatencyRecorder tier_hops;
            for (int id = tr.firstHost; id < tr.firstHost + tr.hosts;
                 ++id) {
                const auto h = static_cast<std::size_t>(id);
                tier_hops.merge(hop_lat[h]);
                tr.forwards += sw.forwardsReturned(id);
                tr.energyJoules += result.hosts[h].energyJoules;
            }
            tr.completions = tier_hops.count();
            tr.hopP50 = tier_hops.percentile(50.0);
            tr.hopP99 = tier_hops.percentile(99.0);
            tr.hopMax = tier_hops.max();
            tr.meanHop = tier_hops.mean();
            tr.fracOverSlo = tier_hops.fractionAbove(tr.slo);
            result.hopP99Sum += tr.hopP99;
            result.tiers.push_back(std::move(tr));
        }
        // Which tier owns the chain tail: each hop p99 as a share of
        // the summed per-tier hop p99s.
        for (ClusterTierResult &tr : result.tiers) {
            tr.p99Share =
                result.hopP99Sum == 0
                    ? 0.0
                    : static_cast<double>(tr.hopP99) /
                          static_cast<double>(result.hopP99Sum);
        }
    }

    result.eventsProcessed = eq.numProcessed();
    result.simulatedTicks = eq.now();

    return result;
}

} // namespace nmapsim
