#include "harness/cluster.hh"

#include <memory>
#include <utility>

#include "cluster/dispatch.hh"
#include "harness/policy_registry.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/client.hh"
#include "workload/loadgen.hh"

namespace nmapsim {

ClusterExperiment::ClusterExperiment(ClusterConfig config)
    : config_(std::move(config))
{
    ensureBuiltinPolicies();
    ensureBuiltinDispatchPolicies();
    if (config_.numHosts < 1)
        fatal("ClusterExperiment requires at least one host");
    if (!config_.hosts.empty() &&
        static_cast<int>(config_.hosts.size()) != config_.numHosts)
        fatal("ClusterConfig::hosts must be empty or name every host");
    for (const HostSpec &spec : config_.hosts)
        if (spec.weight <= 0.0)
            fatal("host dispatch weights must be positive");
    if (config_.clientGroups < 1)
        fatal("ClusterExperiment requires at least one client group");
    if (config_.base.numConnections < 1 ||
        config_.base.numConnections >=
            static_cast<int>(kFlowSpaceStride))
        fatal("client group connection count out of range");
    if (config_.base.duration <= 0)
        fatal("ClusterExperiment duration must be positive");
    if (!config_.base.loadSchedule.empty() ||
        !config_.base.extraObservers.empty())
        fatal("ClusterExperiment does not support load schedules or "
              "extra observers");
    if (!DispatchRegistry::instance().has(config_.dispatch))
        fatal("unknown dispatch policy '" + config_.dispatch + "'");
}

ExperimentConfig
ClusterExperiment::hostConfig(int id) const
{
    ExperimentConfig cfg = config_.base;
    if (config_.hosts.empty())
        return cfg;
    const HostSpec &spec =
        config_.hosts[static_cast<std::size_t>(id)];
    if (!spec.freqPolicy.empty())
        cfg.freqPolicy = spec.freqPolicy;
    if (!spec.idlePolicy.empty())
        cfg.idlePolicy = spec.idlePolicy;
    for (const auto &[key, value] : spec.params)
        cfg.params.set(key, value);
    return cfg;
}

ClusterResult
ClusterExperiment::run()
{
    EventQueue eq;
    Rng rng(config_.base.seed);

    // --- Switch -------------------------------------------------------
    std::vector<double> weights(
        static_cast<std::size_t>(config_.numHosts), 1.0);
    for (std::size_t i = 0; i < config_.hosts.size(); ++i)
        weights[i] = config_.hosts[i].weight;
    ClusterSwitch sw(eq, config_.fabric, config_.dispatch, weights,
                     config_.base.params);

    // --- Hosts --------------------------------------------------------
    std::vector<std::unique_ptr<ClusterHost>> hosts;
    for (int id = 0; id < config_.numHosts; ++id) {
        ExperimentConfig host_cfg = hostConfig(id);
        auto profile_fn = [host_cfg] {
            return Experiment::profileThresholds(host_cfg);
        };
        hosts.push_back(std::make_unique<ClusterHost>(
            id, eq, host_cfg, std::move(profile_fn), rng.fork(),
            config_.fabric.portBandwidthBps,
            config_.fabric.portPropagation));
        hosts.back()->connect(sw);
    }
    sw.setResponseTap([&hosts](int host, const Packet &pkt) {
        hosts[static_cast<std::size_t>(host)]->onServedResponse(pkt);
    });

    // --- Client groups ------------------------------------------------
    Wire client_uplink(eq, config_.fabric.portBandwidthBps,
                       config_.fabric.portPropagation);
    client_uplink.setLabel("clients.uplink");
    client_uplink.setSink(
        [&sw](const Packet &pkt) { sw.fromClient(pkt); });

    struct Group
    {
        std::unique_ptr<Client> client;
        std::unique_ptr<LoadGenerator> gen;
    };
    std::vector<Group> groups;
    for (int g = 0; g < config_.clientGroups; ++g) {
        Group group;
        group.client = std::make_unique<Client>(
            eq, client_uplink, config_.base.app,
            config_.base.numConnections,
            static_cast<std::uint32_t>(g) * kFlowSpaceStride);
        group.gen = std::make_unique<LoadGenerator>(
            eq, *group.client, config_.base.burst, rng.fork());
        groups.push_back(std::move(group));
    }

    std::uint64_t stray = 0;
    sw.clientPort().setSink([&groups, &stray](const Packet &pkt) {
        std::size_t idx = pkt.flowHash / kFlowSpaceStride;
        if (idx < groups.size())
            groups[idx].client->onResponse(pkt);
        else
            ++stray;
    });

    // --- Load ---------------------------------------------------------
    LoadLevelSpec spec = config_.base.app.level(config_.base.load);
    if (config_.base.rpsOverride > 0.0)
        spec.rps = config_.base.rpsOverride;
    if (config_.base.trainMeanOverride > 0.0)
        spec.trainMean = config_.base.trainMeanOverride;
    if (config_.base.dutyOverride > 0.0)
        spec.duty = config_.base.dutyOverride;
    // The configured rate is the cluster's offered load.
    spec.rps /= static_cast<double>(config_.clientGroups);

    // --- Run ----------------------------------------------------------
    for (std::unique_ptr<ClusterHost> &host : hosts)
        host->start();
    for (Group &group : groups) {
        group.gen->setConnectionSkew(config_.base.connectionSkew);
        group.gen->setLoad(spec);
        group.gen->start();
    }

    eq.runUntil(config_.base.warmup);
    Tick measure_start = eq.now();
    for (std::unique_ptr<ClusterHost> &host : hosts)
        host->beginMeasurement(measure_start);
    for (Group &group : groups)
        group.client->latencies().clear();

    Tick end = config_.base.warmup + config_.base.duration;
    eq.runUntil(end);
    for (Group &group : groups)
        group.gen->stop();

    Tick sim_end = end + config_.drain;
    eq.runUntil(sim_end);

    // --- Collect ------------------------------------------------------
    ClusterResult result;
    LatencyRecorder merged;
    for (Group &group : groups) {
        merged.merge(group.client->latencies());
        result.requestsSent += group.client->requestsSent();
        result.responsesReceived += group.client->responsesReceived();
    }
    result.slo = config_.base.app.slo;
    result.p50 = merged.percentile(50.0);
    result.p99 = merged.percentile(99.0);
    result.maxLatency = merged.max();
    result.meanLatency = merged.mean();
    result.fracOverSlo = merged.fractionAbove(result.slo);

    result.requestsForwarded = sw.totalRequestsForwarded();
    result.responsesReturned = sw.totalResponsesReturned();
    result.switchPortDrops = sw.portDrops();
    result.strayResponses = stray;

    const double measured_seconds = toSeconds(sim_end - measure_start);
    for (const std::unique_ptr<ClusterHost> &host : hosts) {
        ClusterHostResult hr = host->collect(sim_end);
        hr.avgPowerWatts = hr.energyJoules / measured_seconds;
        result.energyJoules += hr.energyJoules;
        result.hostNicDrops += hr.nicDrops;
        result.hosts.push_back(std::move(hr));
    }
    result.avgPowerWatts = result.energyJoules / measured_seconds;

    return result;
}

} // namespace nmapsim
