/**
 * @file
 * End-to-end experiment harness.
 *
 * An Experiment assembles the paper's full evaluation rig — Xeon Gold
 * 6134 cores, 10 GbE wires, multi-queue NIC with RSS, the OS network
 * stack, a server application, the client connection pool (24 by
 * default; see ExperimentConfig::numConnections) and the bursty load
 * generator — applies one frequency policy and one sleep policy, runs
 * it, and reports the metrics the paper's figures plot: P99 latency,
 * SLO violation fraction, package energy, NAPI mode counters and
 * optional traces.
 *
 * Policies are referenced by name and resolved through the
 * PolicyRegistry (see harness/policy_registry.hh); the harness itself
 * knows no concrete governor. Policy-specific tunables travel in
 * ExperimentConfig::params.
 *
 * Every bench binary and example is a thin wrapper over this class.
 */

#ifndef NMAPSIM_HARNESS_EXPERIMENT_HH_
#define NMAPSIM_HARNESS_EXPERIMENT_HH_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "governors/freq_governor.hh"
#include "harness/policy_params.hh"
#include "harness/trace_collector.hh"
#include "net/nic.hh"
#include "os/hooks.hh"
#include "os/os_config.hh"
#include "stats/latency_recorder.hh"
#include "stats/timeseries.hh"
#include "workload/app_profile.hh"
#include "workload/loadgen.hh"

namespace nmapsim {

/** A timed load change (Fig. 16's varying-load scenario). */
struct LoadChange
{
    Tick at;            //!< absolute simulation time
    LoadLevelSpec spec; //!< new in-burst rate / train size

    bool operator==(const LoadChange &) const = default;
};

/** Declarative description of one run. */
struct ExperimentConfig
{
    std::string cpuProfile = "Xeon Gold 6134";
    int numCores = 8;

    AppProfile app = AppProfile::memcached();
    LoadLevel load = LoadLevel::kHigh;
    double rpsOverride = 0.0;       //!< >0 replaces the level's rate
    double trainMeanOverride = 0.0; //!< >0 replaces the level's trains
    double dutyOverride = 0.0;      //!< >0 replaces the level's duty
    BurstConfig burst{};
    double connectionSkew = 0.0; //!< >0 concentrates load on few cores
    std::vector<LoadChange> loadSchedule; //!< optional varying load

    /** Frequency policy, by PolicyRegistry name (e.g. "ondemand",
     *  "performance", "NMAP", "NCAP", "Parties"). */
    std::string freqPolicy = "ondemand";
    /** Sleep policy, by PolicyRegistry name ("menu", "disable",
     *  "c6only", "teo"). */
    std::string idlePolicy = "menu";
    /** Policy-specific tunables (e.g. "nmap.ni_th", "parties.interval",
     *  "userspace.pstate"); see each policy's registration. For NMAP,
     *  an unset/<=0 "nmap.ni_th" requests offline profiling unless
     *  "nmap.auto_profile" is false. */
    PolicyParams params;

    GovernorConfig gov{}; //!< shared sampling-governor tunables

    OsConfig os{};
    NicConfig nic{};            //!< numQueues forced to numCores
    /** Client threads / RSS flows. The paper uses 20 client threads
     *  and reports that RSS distributes load evenly; 24 (divisible by
     *  the 8 queues) gives that even split exactly. */
    int numConnections = 24;

    Tick warmup = milliseconds(200);
    Tick duration = seconds(1);
    std::uint64_t seed = 42;

    bool collectTraces = false;         //!< Fig. 2/7/9 time series
    Tick traceBucket = milliseconds(1);
    bool collectLatencyTrace = false;   //!< Fig. 3/10/16 scatter data
    int watchCore = 0;

    /** Extra NAPI observers. Borrowed, never owned: each pointer must
     *  stay valid until Experiment::run() returns (the harness
     *  attaches them for the run and drops them with the rig; they are
     *  not serialised and do not survive into the result). */
    std::vector<NapiObserver *> extraObservers;

    bool operator==(const ExperimentConfig &) const = default;
};

/** Everything a run produces. */
struct ExperimentResult
{
    Tick p50 = 0;
    Tick p99 = 0;
    Tick maxLatency = 0;
    double meanLatency = 0.0;
    double fracOverSlo = 0.0;
    Tick slo = 0;

    double energyJoules = 0.0;
    double avgPowerWatts = 0.0;

    std::uint64_t requestsSent = 0;
    std::uint64_t responsesReceived = 0;
    std::uint64_t nicDrops = 0;
    std::uint64_t nicRxHarvested = 0; //!< Rx packets NAPI pulled off rings
    std::uint64_t nicTxConsumed = 0;  //!< Tx completions NAPI consumed

    std::uint64_t pktsIntrMode = 0;
    std::uint64_t pktsPollMode = 0;
    std::uint64_t ksoftirqdWakes = 0;
    std::uint64_t pstateTransitions = 0;
    std::uint64_t cc6Wakes = 0;
    std::uint64_t cc1Wakes = 0;
    double busyFraction = 0.0; //!< mean core busy time / wall time

    double niThresholdUsed = 0.0;
    double cuThresholdUsed = 0.0;

    /** @name Fault/robustness accounting (all zero in fault-free runs) */
    /**@{*/
    std::uint64_t requestsTimedOut = 0;   //!< client retry budget spent
    std::uint64_t retransmits = 0;        //!< client retransmissions
    std::uint64_t requestsInFlight = 0;   //!< unanswered at sim end
    std::uint64_t duplicateResponses = 0; //!< answers after give-up
    std::uint64_t faultPacketsLost = 0;   //!< injected wire loss
    std::uint64_t faultPacketsCorrupted = 0; //!< injected corruption
    std::uint64_t linkDownDrops = 0;      //!< lost to downed links
    /** Completed / sent; 1 when nothing was sent. */
    double availability = 1.0;
    /** P99 of the winning attempt only (0 without client retry). */
    Tick attemptP99 = 0;
    /**@}*/

    /** @name Resilience accounting (all zero — and not serialised —
     *  without a `resilience.*` plan) */
    /**@{*/
    /** Requests rejected back to the client (terminal, not retried). */
    std::uint64_t requestsShed = 0;
    /** Retransmissions the client retry budget refused to fund. */
    std::uint64_t retryBudgetExhausted = 0;
    std::uint64_t shedAdmission = 0; //!< admission-gate refusals
    std::uint64_t shedSojourn = 0;   //!< sojourn (CoDel) sheds
    std::uint64_t shedDeadline = 0;  //!< past-deadline sheds
    /**@}*/

    /** @name Bypass dataplane metrics (all zero under the default
     *  dataplane.mode=napi; serialised only for bypass runs) */
    /**@{*/
    std::uint64_t bypassPollLoops = 0;  //!< PMD poll iterations run
    std::uint64_t bypassEmptyPolls = 0; //!< polls that harvested nothing
    std::uint64_t bypassSleeps = 0;     //!< policy-initiated poll sleeps
    Tick bypassSleepResidency = 0;      //!< total poll-core sleep time
    /** Poll-core energy spent on empty polls (busy-poll tax), joules. */
    double bypassWastedPollEnergy = 0.0;
    /**@}*/

    /** @name Engine counters (bench/perf_core; never serialised —
     *  they describe the simulator, not the simulated system) */
    /**@{*/
    std::uint64_t eventsProcessed = 0; //!< kernel events fired, whole run
    Tick simulatedTicks = 0;           //!< eq.now() when the run ended
    /**@}*/

    /** Time-series traces (only with collectTraces). */
    std::shared_ptr<TraceCollector> traces;
    /** CC6 entry times on the watched core (with collectTraces). */
    std::vector<Tick> cc6Entries;
    /** Per-request latency trace (with collectLatencyTrace). */
    std::vector<LatencySample> latencyTrace;
    /** Empirical latency CDF, 200 points. */
    std::vector<std::pair<Tick, double>> cdf;
};

/** Builds, runs and tears down one configured simulation. */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig config);

    /** Execute the run and collect results. */
    ExperimentResult run();

    /**
     * Offline NMAP threshold profiling (Section 4.2): observe one burst
     * at the application's SLO-inflection (high) load under the
     * performance governor and derive (NI_TH, CU_TH).
     */
    static std::pair<double, double>
    profileThresholds(const ExperimentConfig &config);

    const ExperimentConfig &config() const { return config_; }

  private:
    ExperimentConfig config_;
};

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_EXPERIMENT_HH_
