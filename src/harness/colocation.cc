#include "harness/colocation.hh"

#include "cpu/core.hh"
#include "cpu/cpu_profile.hh"
#include "cpu/package_power.hh"
#include "governors/cpuidle_policies.hh"
#include "governors/ondemand.hh"
#include "governors/static_governors.hh"
#include "net/wire.hh"
#include "nmap/adaptive.hh"
#include "nmap/nmap_governor.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/energy_meter.hh"
#include "workload/client.hh"
#include "workload/loadgen.hh"
#include "workload/server_app.hh"

namespace nmapsim {

namespace {

/** Disjoint flow spaces, both striped over every RSS queue. */
constexpr std::uint32_t kFlowSpaceStride = 1024;

} // namespace

ColocationExperiment::ColocationExperiment(ColocationConfig config)
    : config_(std::move(config))
{
    if (config_.tenants.empty() || config_.tenants.size() > 8)
        fatal("ColocationExperiment supports 1-8 tenants");
    if (config_.numCores < 1)
        fatal("ColocationExperiment requires at least one core");
    for (const TenantConfig &t : config_.tenants) {
        if (t.numConnections < 1 ||
            t.numConnections >=
                static_cast<int>(kFlowSpaceStride))
            fatal("tenant connection count out of range");
    }
}

ColocationResult
ColocationExperiment::run()
{
    const CpuProfile &profile = CpuProfile::byName(config_.cpuProfile);
    EventQueue eq;
    Rng rng(config_.seed);

    // --- Hardware ---------------------------------------------------
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> core_ptrs;
    for (int i = 0; i < config_.numCores; ++i) {
        cores.push_back(std::make_unique<Core>(
            i, eq, profile, rng,
            config_.tenants.front().app.cacheTouch));
        core_ptrs.push_back(cores.back().get());
    }
    NicConfig nic_config = config_.nic;
    nic_config.numQueues = config_.numCores;
    Nic nic(eq, nic_config);

    Wire client_to_server(eq);
    Wire server_to_client(eq);
    client_to_server.setSink(
        [&nic](const Packet &pkt) { nic.receive(pkt); });
    nic.setTxWire(&server_to_client);

    // --- OS ----------------------------------------------------------
    ServerOs os(core_ptrs, nic, config_.os);

    // --- Tenants -------------------------------------------------------
    struct Tenant
    {
        std::unique_ptr<ServerApp> app;
        std::unique_ptr<Client> client;
        std::unique_ptr<LoadGenerator> gen;
    };
    std::vector<Tenant> tenants;
    for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
        const TenantConfig &tc = config_.tenants[i];
        Tenant t;
        t.app = std::make_unique<ServerApp>(os, nic, tc.app,
                                            rng.fork(),
                                            /*attach_deliver=*/false);
        t.client = std::make_unique<Client>(
            eq, client_to_server, tc.app, tc.numConnections,
            static_cast<std::uint32_t>(i) * kFlowSpaceStride);
        t.gen = std::make_unique<LoadGenerator>(eq, *t.client,
                                                BurstConfig{},
                                                rng.fork());
        tenants.push_back(std::move(t));
    }

    // Route request packets and responses by flow space.
    os.setDeliver([&tenants](int core, const Packet &pkt) {
        std::size_t idx = pkt.flowHash / kFlowSpaceStride;
        if (idx < tenants.size())
            tenants[idx].app->deliver(core, pkt);
    });
    server_to_client.setSink([&tenants](const Packet &pkt) {
        std::size_t idx = pkt.flowHash / kFlowSpaceStride;
        if (idx < tenants.size())
            tenants[idx].client->onResponse(pkt);
    });

    // --- Policies ------------------------------------------------------
    MenuIdleGovernor menu(profile, config_.numCores);
    DisableIdleGovernor disable;
    C6OnlyIdleGovernor c6only;
    TeoIdleGovernor teo(profile, config_.numCores);
    CpuIdleGovernor *idle = nullptr;
    switch (config_.idlePolicy) {
      case IdlePolicy::kMenu:
        idle = &menu;
        break;
      case IdlePolicy::kDisable:
        idle = &disable;
        break;
      case IdlePolicy::kC6Only:
        idle = &c6only;
        break;
      case IdlePolicy::kTeo:
        idle = &teo;
        break;
    }
    os.setIdleGovernor(idle);

    std::unique_ptr<FreqGovernor> governor;
    switch (config_.freqPolicy) {
      case FreqPolicy::kPerformance:
        governor = std::make_unique<PerformanceGovernor>(core_ptrs);
        break;
      case FreqPolicy::kOndemand:
        governor = std::make_unique<OndemandGovernor>(eq, core_ptrs,
                                                      config_.gov);
        break;
      case FreqPolicy::kNmap: {
        if (config_.nmap.niThreshold <= 0.0 ||
            config_.nmap.cuThreshold <= 0.0)
            fatal("colocated NMAP needs explicit thresholds (there is "
                  "no single application to profile)");
        auto nmap = std::make_unique<NmapGovernor>(
            eq, core_ptrs, config_.nmap, config_.gov);
        os.addObserver(nmap.get());
        governor = std::move(nmap);
        break;
      }
      case FreqPolicy::kNmapAdaptive: {
        auto adaptive = std::make_unique<AdaptiveNmapGovernor>(
            eq, core_ptrs, config_.adaptive, rng.fork(), config_.gov);
        os.addObserver(adaptive.get());
        governor = std::move(adaptive);
        break;
      }
      default:
        fatal("ColocationExperiment: unsupported frequency policy");
    }

    // --- Energy ----------------------------------------------------------
    PackagePower uncore(eq, core_ptrs);
    PackageEnergyMeter package(0.0);
    package.addMeter(&uncore.meter());
    for (Core *core : core_ptrs)
        package.addMeter(&core->meter());

    // --- Run ---------------------------------------------------------------
    os.start();
    governor->start();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantConfig &tc = config_.tenants[i];
        LoadLevelSpec spec = tc.app.level(tc.load);
        if (tc.rpsOverride > 0.0)
            spec.rps = tc.rpsOverride;
        if (tc.dutyOverride > 0.0)
            spec.duty = tc.dutyOverride;
        if (tc.trainMeanOverride > 0.0)
            spec.trainMean = tc.trainMeanOverride;
        tenants[i].gen->setLoad(spec);
        tenants[i].gen->start();
    }

    eq.runUntil(config_.warmup);
    package.startMeasurement(eq.now());
    for (Tenant &t : tenants)
        t.client->latencies().clear();

    Tick end = config_.warmup + config_.duration;
    eq.runUntil(end);
    for (Tenant &t : tenants)
        t.gen->stop();

    // --- Collect ---------------------------------------------------------
    ColocationResult result;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const LatencyRecorder &lat = tenants[i].client->latencies();
        TenantResult tr;
        tr.appName = config_.tenants[i].app.name;
        tr.slo = config_.tenants[i].app.slo;
        tr.p99 = lat.percentile(99.0);
        tr.fracOverSlo = lat.fractionAbove(tr.slo);
        tr.requestsSent = tenants[i].client->requestsSent();
        tr.responsesReceived = tenants[i].client->responsesReceived();
        result.tenants.push_back(tr);
    }
    result.energyJoules = package.energyJoules(end);
    result.avgPowerWatts =
        result.energyJoules / toSeconds(config_.duration);
    result.nicDrops = nic.packetsDropped();
    for (Core *core : core_ptrs)
        result.pstateTransitions += core->dvfs().numTransitions();
    return result;
}

} // namespace nmapsim
