#include "harness/colocation.hh"

#include "cpu/core.hh"
#include "cpu/cpu_profile.hh"
#include "cpu/package_power.hh"
#include "governors/switchable_idle.hh"
#include "harness/policy_registry.hh"
#include "net/wire.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/energy_meter.hh"
#include "workload/client.hh"
#include "workload/loadgen.hh"
#include "workload/server_app.hh"

namespace nmapsim {

ColocationExperiment::ColocationExperiment(ColocationConfig config)
    : config_(std::move(config))
{
    ensureBuiltinPolicies();
    if (config_.tenants.empty() || config_.tenants.size() > 8)
        fatal("ColocationExperiment supports 1-8 tenants");
    if (config_.numCores < 1)
        fatal("ColocationExperiment requires at least one core");
    for (const TenantConfig &t : config_.tenants) {
        if (t.numConnections < 1 ||
            t.numConnections >=
                static_cast<int>(kFlowSpaceStride))
            fatal("tenant connection count out of range");
    }
}

ColocationResult
ColocationExperiment::run()
{
    const CpuProfile &profile = CpuProfile::byName(config_.cpuProfile);
    EventQueue eq;
    Rng rng(config_.seed);

    // --- Hardware ---------------------------------------------------
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> core_ptrs;
    for (int i = 0; i < config_.numCores; ++i) {
        cores.push_back(std::make_unique<Core>(
            i, eq, profile, rng,
            config_.tenants.front().app.cacheTouch));
        core_ptrs.push_back(cores.back().get());
    }
    NicConfig nic_config = config_.nic;
    nic_config.numQueues = config_.numCores;
    Nic nic(eq, nic_config);

    Wire client_to_server(eq);
    Wire server_to_client(eq);
    client_to_server.setSink(
        [&nic](const Packet &pkt) { nic.receive(pkt); });
    nic.setTxWire(&server_to_client);

    // --- OS ----------------------------------------------------------
    ServerOs os(core_ptrs, nic, config_.os);

    // --- Tenants -------------------------------------------------------
    struct Tenant
    {
        std::unique_ptr<ServerApp> app;
        std::unique_ptr<Client> client;
        std::unique_ptr<LoadGenerator> gen;
    };
    std::vector<Tenant> tenants;
    for (std::size_t i = 0; i < config_.tenants.size(); ++i) {
        const TenantConfig &tc = config_.tenants[i];
        Tenant t;
        t.app = std::make_unique<ServerApp>(os, nic, tc.app,
                                            rng.fork(),
                                            /*attach_deliver=*/false);
        t.client = std::make_unique<Client>(
            eq, client_to_server, tc.app, tc.numConnections,
            static_cast<std::uint32_t>(i) * kFlowSpaceStride);
        t.gen = std::make_unique<LoadGenerator>(eq, *t.client,
                                                BurstConfig{},
                                                rng.fork());
        tenants.push_back(std::move(t));
    }

    // Route request packets and responses by flow space.
    os.setDeliver([&tenants](int core, const Packet &pkt) {
        std::size_t idx = pkt.flowHash / kFlowSpaceStride;
        if (idx < tenants.size())
            tenants[idx].app->deliver(core, pkt);
    });
    server_to_client.setSink([&tenants](const Packet &pkt) {
        std::size_t idx = pkt.flowHash / kFlowSpaceStride;
        if (idx < tenants.size())
            tenants[idx].client->onResponse(pkt);
    });

    // --- Policies (resolved by name via the registry) ----------------
    IdleContext idle_ctx{profile, config_.numCores, config_.params};
    std::unique_ptr<CpuIdleGovernor> idle =
        PolicyRegistry::instance().makeIdle(config_.idlePolicy,
                                            idle_ctx);
    SwitchableIdleGovernor switchable(*idle);

    // No client latency feed and no single application to profile:
    // factories needing either fatal() with a policy-specific message.
    PolicyContext policy_ctx{
        eq,
        core_ptrs,
        nic,
        os,
        config_.tenants.front().app,
        rng,
        config_.gov,
        config_.params,
        /*client=*/nullptr,
        /*profileThresholds=*/nullptr,
        &switchable,
        /*switchableRequested_=*/false};
    FreqPolicyInstance policy =
        PolicyRegistry::instance().makeFreq(config_.freqPolicy,
                                            policy_ctx);

    os.setIdleGovernor(policy_ctx.switchableRequested()
                           ? static_cast<CpuIdleGovernor *>(&switchable)
                           : idle.get());

    // --- Energy ----------------------------------------------------------
    PackagePower uncore(eq, core_ptrs);
    PackageEnergyMeter package(0.0);
    package.addMeter(&uncore.meter());
    for (Core *core : core_ptrs)
        package.addMeter(&core->meter());

    // --- Run ---------------------------------------------------------------
    os.start();
    policy.governor->start();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantConfig &tc = config_.tenants[i];
        LoadLevelSpec spec = tc.app.level(tc.load);
        if (tc.rpsOverride > 0.0)
            spec.rps = tc.rpsOverride;
        if (tc.dutyOverride > 0.0)
            spec.duty = tc.dutyOverride;
        if (tc.trainMeanOverride > 0.0)
            spec.trainMean = tc.trainMeanOverride;
        tenants[i].gen->setLoad(spec);
        tenants[i].gen->start();
    }

    eq.runUntil(config_.warmup);
    package.startMeasurement(eq.now());
    for (Tenant &t : tenants)
        t.client->latencies().clear();

    Tick end = config_.warmup + config_.duration;
    eq.runUntil(end);
    for (Tenant &t : tenants)
        t.gen->stop();

    // --- Collect ---------------------------------------------------------
    ColocationResult result;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const LatencyRecorder &lat = tenants[i].client->latencies();
        TenantResult tr;
        tr.appName = config_.tenants[i].app.name;
        tr.slo = config_.tenants[i].app.slo;
        tr.p99 = lat.percentile(99.0);
        tr.fracOverSlo = lat.fractionAbove(tr.slo);
        tr.requestsSent = tenants[i].client->requestsSent();
        tr.responsesReceived = tenants[i].client->responsesReceived();
        result.tenants.push_back(tr);
    }
    result.energyJoules = package.energyJoules(end);
    result.avgPowerWatts =
        result.energyJoules / toSeconds(config_.duration);
    result.nicDrops = nic.packetsDropped();
    for (Core *core : core_ptrs)
        result.pstateTransitions += core->dvfs().numTransitions();
    return result;
}

} // namespace nmapsim
