/**
 * @file
 * Collects the time-series data behind the paper's trace figures
 * (Fig. 2, 7, 9): per-millisecond packet counts split by NAPI mode,
 * the P-state of a watched core, and ksoftirqd wake-up marks.
 */

#ifndef NMAPSIM_HARNESS_TRACE_COLLECTOR_HH_
#define NMAPSIM_HARNESS_TRACE_COLLECTOR_HH_

#include "cpu/core.hh"
#include "os/hooks.hh"
#include "sim/event_queue.hh"
#include "stats/timeseries.hh"

namespace nmapsim {

/** NapiObserver that builds the Fig. 2/7/9 style traces. */
class TraceCollector : public NapiObserver
{
  public:
    /**
     * @param watch_core core whose P-state / ksoftirqd activity is
     *                   traced; packet counts aggregate all cores
     * @param bucket     sampling interval (paper: 1 ms)
     */
    TraceCollector(EventQueue &eq, int watch_core,
                   Tick bucket = milliseconds(1));

    /** Subscribe to @p core's frequency changes (call for the watched
     *  core before the run starts). */
    void attachPStateTrace(Core &core);

    /** @name NapiObserver */
    /**@{*/
    void onPollProcessed(int core, std::uint32_t intr_pkts,
                         std::uint32_t poll_pkts) override;
    void onKsoftirqdWake(int core) override;
    /**@}*/

    /** Packets processed in interrupt mode per bucket (all cores). */
    const TimeSeries &intrSeries() const { return intr_; }
    /** Packets processed in polling mode per bucket (all cores). */
    const TimeSeries &pollSeries() const { return poll_; }
    /** P-state index of the watched core (level series). */
    const TimeSeries &pstateSeries() const { return pstate_; }
    /** ksoftirqd wake-up times on the watched core. */
    const EventMarkSeries &ksoftirqdWakes() const { return wakes_; }

  private:
    EventQueue &eq_;
    int watchCore_;
    TimeSeries intr_;
    TimeSeries poll_;
    TimeSeries pstate_;
    EventMarkSeries wakes_;
};

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_TRACE_COLLECTOR_HH_
