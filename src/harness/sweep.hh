/**
 * @file
 * Parallel experiment sweep runner.
 *
 * Every figure and ablation in the paper's evaluation is a sweep over
 * (policy x load x seed) configurations, and each simulation is
 * single-threaded and exactly reproducible from (config, seed) — so
 * sweeps are embarrassingly parallel. SweepRunner executes a vector of
 * ExperimentConfig points on a fixed-size thread pool and returns the
 * outcomes in submission order regardless of completion order; a point
 * that throws records its error without aborting the sibling points.
 *
 * The thread count defaults to std::thread::hardware_concurrency() and
 * can be overridden with the NMAPSIM_JOBS environment variable (or per
 * runner via SweepOptions::jobs). Progress (completed/total, ETA) and
 * per-point wall time are reported to stderr; set NMAPSIM_SWEEP_QUIET=1
 * or SweepOptions::progress=false to silence them.
 *
 * SweepSpec builds the common grid shapes (policy list x idle list x
 * load/RPS list x seed list) declaratively. Harnesses that do not run
 * plain Experiments (e.g. colocation) use the generic runParallel()
 * engine underneath SweepRunner directly.
 */

#ifndef NMAPSIM_HARNESS_SWEEP_HH_
#define NMAPSIM_HARNESS_SWEEP_HH_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "sim/logging.hh"

namespace nmapsim {

/** Knobs for one parallel fan-out. */
struct SweepOptions
{
    /** Worker threads; <=0 resolves NMAPSIM_JOBS, then
     *  hardware_concurrency(). Always capped at the point count. */
    int jobs = 0;
    bool progress = true; //!< progress + ETA + per-point time on stderr
    std::string tag = "sweep"; //!< prefix for progress lines
};

/** Resolve the effective worker count for @p requested points. */
int resolveJobs(int jobs, std::size_t num_points);

/** True unless NMAPSIM_SWEEP_QUIET is set to a non-zero value. */
bool sweepProgressEnabled();

/**
 * Value-or-error slot for one sweep point. Default-constructed slots
 * are failed ("not run"); value() rethrows the point's exception so an
 * error surfaces exactly where the result is consumed.
 */
template <typename R>
class SweepSlot
{
  public:
    SweepSlot() = default;

    void
    setValue(R value)
    {
        value_ = std::move(value);
        ok_ = true;
    }

    void
    setError(std::exception_ptr eptr, std::string what)
    {
        eptr_ = std::move(eptr);
        error_ = std::move(what);
        ok_ = false;
    }

    bool ok() const { return ok_; }

    /** The point's error message; empty on success. */
    const std::string &error() const { return error_; }

    /** Wall-clock seconds this point took to execute. */
    double wallSeconds() const { return wallSeconds_; }
    void setWallSeconds(double s) { wallSeconds_ = s; }

    /** The result; rethrows the point's own exception on failure. */
    const R &
    value() const
    {
        if (!ok_) {
            if (eptr_)
                std::rethrow_exception(eptr_);
            fatal("sweep point did not run: " + error_);
        }
        return value_;
    }

    R &
    value()
    {
        return const_cast<R &>(
            static_cast<const SweepSlot &>(*this).value());
    }

  private:
    R value_{};
    bool ok_ = false;
    std::string error_ = "not run";
    std::exception_ptr eptr_;
    double wallSeconds_ = 0.0;
};

/**
 * Generic fan-out engine: execute @p tasks on a fixed-size thread pool
 * and return one slot per task, in submission order. Exceptions are
 * captured per task; the sweep always completes every task.
 */
template <typename R>
std::vector<SweepSlot<R>>
runParallel(const std::vector<std::function<R()>> &tasks,
            const SweepOptions &opts = {})
{
    // lint: nondet-ok(wall time feeds only the stderr progress/ETA display, never simulated state)
    using Clock = std::chrono::steady_clock;
    const std::size_t n = tasks.size();
    std::vector<SweepSlot<R>> slots(n);
    if (n == 0)
        return slots;

    const int jobs = resolveJobs(opts.jobs, n);
    const bool progress = opts.progress && sweepProgressEnabled();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex io_mutex;
    const Clock::time_point sweep_start = Clock::now();

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            const Clock::time_point t0 = Clock::now();
            try {
                slots[i].setValue(tasks[i]());
            } catch (const std::exception &e) {
                slots[i].setError(std::current_exception(), e.what());
            } catch (...) {
                slots[i].setError(std::current_exception(),
                                  "non-standard exception");
            }
            const double wall =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            slots[i].setWallSeconds(wall);
            const std::size_t completed = done.fetch_add(1) + 1;
            if (progress) {
                const double elapsed =
                    std::chrono::duration<double>(Clock::now() -
                                                  sweep_start)
                        .count();
                const double eta =
                    elapsed / static_cast<double>(completed) *
                    static_cast<double>(n - completed);
                std::lock_guard<std::mutex> lock(io_mutex);
                std::fprintf(
                    stderr,
                    "[%s] %zu/%zu done | point %zu: %.2fs%s | "
                    "elapsed %.1fs, ETA %.1fs\n",
                    opts.tag.c_str(), completed, n, i, wall,
                    slots[i].ok() ? "" : " FAILED", elapsed, eta);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return slots;
}

/** Outcome of one ExperimentConfig sweep point. */
using SweepOutcome = SweepSlot<ExperimentResult>;

/** Runs vectors of ExperimentConfig points on a thread pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** The worker count a run of @p num_points would use. */
    int jobs(std::size_t num_points) const;

    /**
     * Execute every point (Experiment(cfg).run()) and return outcomes
     * in submission order. Never throws for a point failure: each
     * outcome carries its own error, rethrown on value() access.
     */
    std::vector<SweepOutcome>
    run(const std::vector<ExperimentConfig> &points) const;

    /**
     * Run Experiment::profileThresholds for every config concurrently
     * (each profiling pass is itself a full simulation).
     */
    std::vector<SweepSlot<std::pair<double, double>>>
    profile(const std::vector<ExperimentConfig> &points) const;

  private:
    SweepOptions opts_;
};

/**
 * Builder for the common grid shapes. Dimensions left unset contribute
 * a single implicit point (the base config's value). Points enumerate
 * in row-major order with policies outermost and seeds innermost:
 *
 *   for policy / for idle / for load / for rps / for seed
 *
 * index() maps dimension indices back to the flat point index.
 */
class SweepSpec
{
  public:
    explicit SweepSpec(ExperimentConfig base = {})
        : base_(std::move(base))
    {
    }

    SweepSpec &
    policies(std::vector<std::string> v)
    {
        policies_ = std::move(v);
        return *this;
    }

    SweepSpec &
    idlePolicies(std::vector<std::string> v)
    {
        idles_ = std::move(v);
        return *this;
    }

    SweepSpec &
    loads(std::vector<LoadLevel> v)
    {
        loads_ = std::move(v);
        return *this;
    }

    /** Average-RPS sweep; each value is installed as rpsOverride. */
    SweepSpec &
    rpsList(std::vector<double> v)
    {
        rps_ = std::move(v);
        return *this;
    }

    SweepSpec &
    seeds(std::vector<std::uint64_t> v)
    {
        seeds_ = std::move(v);
        return *this;
    }

    std::size_t numPolicies() const { return dim(policies_); }
    std::size_t numIdlePolicies() const { return dim(idles_); }
    std::size_t numLoads() const { return dim(loads_); }
    std::size_t numRps() const { return dim(rps_); }
    std::size_t numSeeds() const { return dim(seeds_); }

    std::size_t
    numPoints() const
    {
        return numPolicies() * numIdlePolicies() * numLoads() *
               numRps() * numSeeds();
    }

    /** Flat index of grid cell (policy, idle, load, rps, seed). */
    std::size_t
    index(std::size_t pi, std::size_t ii = 0, std::size_t li = 0,
          std::size_t ri = 0, std::size_t si = 0) const
    {
        return (((pi * numIdlePolicies() + ii) * numLoads() + li) *
                    numRps() +
                ri) *
                   numSeeds() +
               si;
    }

    /** Materialise the grid as configs, in enumeration order. */
    std::vector<ExperimentConfig> build() const;

  private:
    static std::size_t
    dim(std::size_t size)
    {
        return size == 0 ? 1 : size;
    }

    template <typename T>
    static std::size_t
    dim(const std::vector<T> &v)
    {
        return dim(v.size());
    }

    ExperimentConfig base_;
    std::vector<std::string> policies_;
    std::vector<std::string> idles_;
    std::vector<LoadLevel> loads_;
    std::vector<double> rps_;
    std::vector<std::uint64_t> seeds_;
};

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_SWEEP_HH_
