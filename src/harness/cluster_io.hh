/**
 * @file
 * Declarative ClusterConfig <-> key=value text, and ClusterResult ->
 * ResultWriter records.
 *
 * The cluster key space extends the single-host schema
 * (harness/config_io.hh): any key the cluster layer does not claim is
 * applied to ClusterConfig::base through setConfigValue(), so every
 * experiment key (`app`, `cores`, `freq_policy`, `nmap.*`, ...) works
 * unchanged. Cluster-claimed keys:
 *
 *   hosts                       host count
 *   dispatch                    DispatchRegistry policy name
 *   cluster.client_groups       independent client machines
 *   cluster.drain               post-load drain time (duration)
 *   cluster.fabric_bandwidth    switch fabric capacity, bits/s
 *   cluster.fabric_latency      forwarding pipeline latency (duration)
 *   cluster.port_bandwidth      egress-port link rate, bits/s
 *   cluster.port_propagation    egress-port propagation (duration)
 *   cluster.port_queue          egress-port queue bound, packets
 *   host<i>.freq_policy         per-host frequency-policy override
 *   host<i>.idle_policy         per-host sleep-policy override
 *   host<i>.weight              per-host dispatch weight
 *   host<i>.<param>             per-host tunable overlay (any dotted
 *                               params key, e.g. host0.nmap.ni_th)
 *
 * Dispatch tunables (`dispatch.vnodes`, `dispatch.pack_limit`) travel
 * in the base params blob like any policy tunable.
 */

#ifndef NMAPSIM_HARNESS_CLUSTER_IO_HH_
#define NMAPSIM_HARNESS_CLUSTER_IO_HH_

#include <string>

#include "harness/cluster.hh"
#include "stats/result_writer.hh"

namespace nmapsim {

/** Serialise every schema field as `key=value` lines. */
std::string printClusterConfig(const ClusterConfig &config);

/** Parse `key=value` lines onto a default config; fatal() on unknown
 *  keys or malformed values. */
ClusterConfig parseClusterConfig(const std::string &text);

/** Apply one key/value onto @p config; cluster-claimed keys are
 *  handled here, everything else lands on config.base. Returns true
 *  when the key was cluster-claimed (the CLI keys cluster mode off
 *  this). */
bool setClusterConfigValue(ClusterConfig &config, const std::string &key,
                           const std::string &value);

/** Append one cluster-level record (dims, aggregates and a per-host
 *  summary in host<i>_-prefixed columns) for (config, result). */
ResultWriter::Record &
appendClusterResultRecord(ResultWriter &writer,
                          const ClusterConfig &config,
                          const ClusterResult &result);

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_CLUSTER_IO_HH_
