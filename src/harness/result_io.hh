/**
 * @file
 * ExperimentResult -> ResultWriter record mapping.
 *
 * One flat record per run: the config dimensions that identify the
 * point (app, load, policies, cores, seed, ...) followed by every
 * scalar metric of the result. All harness/bench JSON and CSV output
 * goes through this one mapping so field names stay consistent across
 * the CLI, the benches and the test suite. Durations are integer
 * nanoseconds. Traces and CDFs are not serialised.
 */

#ifndef NMAPSIM_HARNESS_RESULT_IO_HH_
#define NMAPSIM_HARNESS_RESULT_IO_HH_

#include "harness/experiment.hh"
#include "stats/result_writer.hh"

namespace nmapsim {

/** Append one record for (config, result) to @p writer. */
ResultWriter::Record &appendResultRecord(ResultWriter &writer,
                                         const ExperimentConfig &config,
                                         const ExperimentResult &result);

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_RESULT_IO_HH_
