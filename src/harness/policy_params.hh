/**
 * @file
 * Per-policy configuration blob: an ordered string key/value map with
 * typed accessors.
 *
 * Policies registered with the PolicyRegistry read their tunables from
 * here instead of from dedicated ExperimentConfig members, so adding a
 * governor never touches the harness config struct. Keys are dotted
 * and policy-scoped by convention (`nmap.ni_th`, `parties.interval`,
 * `userspace.pstate`); values are stored as strings so the blob
 * round-trips through the key=value config format losslessly.
 *
 * Durations accept an optional ns/us/ms/s suffix ("10ms", "500us");
 * ticks written programmatically are stored as integer nanoseconds.
 * Doubles are stored in shortest-round-trip form.
 */

#ifndef NMAPSIM_HARNESS_POLICY_PARAMS_HH_
#define NMAPSIM_HARNESS_POLICY_PARAMS_HH_

#include <charconv>
#include <cstdint>
#include <map>
#include <string>
#include <system_error>

#include "sim/logging.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Ordered, string-typed per-policy parameter blob. */
class PolicyParams
{
  public:
    PolicyParams() = default;

    bool operator==(const PolicyParams &) const = default;

    bool empty() const { return values_.empty(); }
    std::size_t size() const { return values_.size(); }
    bool has(const std::string &key) const { return values_.count(key) != 0; }
    void erase(const std::string &key) { values_.erase(key); }

    /** Raw value; empty string when absent. */
    std::string
    raw(const std::string &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? std::string() : it->second;
    }

    PolicyParams &
    set(const std::string &key, const std::string &value)
    {
        values_[key] = value;
        return *this;
    }

    PolicyParams &
    set(const std::string &key, const char *value)
    {
        values_[key] = value;
        return *this;
    }

    PolicyParams &
    set(const std::string &key, double value)
    {
        values_[key] = formatDouble(value);
        return *this;
    }

    PolicyParams &
    set(const std::string &key, int value)
    {
        values_[key] = std::to_string(value);
        return *this;
    }

    PolicyParams &
    set(const std::string &key, bool value)
    {
        values_[key] = value ? "true" : "false";
        return *this;
    }

    /** Store a duration as integer nanoseconds. */
    PolicyParams &
    setTick(const std::string &key, Tick value)
    {
        values_[key] = std::to_string(value) + "ns";
        return *this;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        return parseDouble(it->second, key);
    }

    int
    getInt(const std::string &key, int fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        int v = 0;
        const char *b = it->second.data();
        const char *e = b + it->second.size();
        auto res = std::from_chars(b, e, v);
        if (res.ec != std::errc() || res.ptr != e)
            fatal("param '" + key + "': not an integer: '" +
                  it->second + "'");
        return v;
    }

    bool
    getBool(const std::string &key, bool fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        const std::string &v = it->second;
        if (v == "true" || v == "1")
            return true;
        if (v == "false" || v == "0")
            return false;
        fatal("param '" + key + "': not a bool: '" + v + "'");
        return fallback; // unreachable
    }

    /** Duration with optional ns/us/ms/s suffix; bare numbers are ns. */
    Tick
    getTick(const std::string &key, Tick fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        return parseTick(it->second, key);
    }

    auto begin() const { return values_.begin(); }
    auto end() const { return values_.end(); }

    /** Shortest string that parses back to exactly @p value. */
    static std::string
    formatDouble(double value)
    {
        char buf[64];
        auto res = std::to_chars(buf, buf + sizeof(buf), value);
        return std::string(buf, res.ptr);
    }

    static double
    parseDouble(const std::string &text, const std::string &key)
    {
        double v = 0.0;
        const char *b = text.data();
        const char *e = b + text.size();
        auto res = std::from_chars(b, e, v);
        if (res.ec != std::errc() || res.ptr != e)
            fatal("param '" + key + "': not a number: '" + text + "'");
        return v;
    }

    static Tick
    parseTick(const std::string &text, const std::string &key)
    {
        double v = 0.0;
        const char *b = text.data();
        const char *e = b + text.size();
        auto res = std::from_chars(b, e, v);
        if (res.ec != std::errc())
            fatal("param '" + key + "': not a duration: '" + text +
                  "'");
        std::string suffix(res.ptr, e);
        double mult = 1.0;
        if (suffix == "" || suffix == "ns")
            mult = 1.0;
        else if (suffix == "us")
            mult = 1e3;
        else if (suffix == "ms")
            mult = 1e6;
        else if (suffix == "s")
            mult = 1e9;
        else
            fatal("param '" + key + "': bad duration suffix: '" + text +
                  "' (use ns/us/ms/s)");
        return static_cast<Tick>(v * mult);
    }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_POLICY_PARAMS_HH_
