/**
 * @file
 * Self-registering policy registry: string-keyed factories for
 * frequency (P-state) and sleep (C-state) policies.
 *
 * The harness resolves `ExperimentConfig::freqPolicy` /
 * `::idlePolicy` by name here and never mentions a concrete governor
 * class. Policy modules register themselves:
 *
 *     // in src/<module>/<policy>.cc
 *     namespace {
 *     FreqPolicyInstance
 *     makeMyPolicy(PolicyContext &ctx)
 *     {
 *         auto gov = std::make_unique<MyGovernor>(
 *             ctx.eq, ctx.cores,
 *             ctx.params.getDouble("mine.knob", 1.0), ctx.gov);
 *         ctx.addObserver(gov.get()); // declare your own hookups
 *         return {std::move(gov), nullptr};
 *     }
 *     REGISTER_FREQ_POLICY("my-policy", &makeMyPolicy,
 *                          "one-line help");
 *     } // namespace
 *
 * and the name is immediately usable from configs, the sweep runner,
 * every bench and the nmapsim_run CLI — no harness edits.
 *
 * Each factory receives a PolicyContext carrying everything the
 * harness wired: the event queue, the cores (DVFS actuators hang off
 * them), the NIC, the OS observer bus, the client latency feed, the
 * per-policy parameter blob and an offline-profiling callback. The
 * factory declares its own hookups (observer attachment, sleep-state
 * override, auto-profiling) instead of the harness special-casing
 * them.
 *
 * The registry is header-only (a Meyers singleton) so policy libraries
 * can register without linking against the harness; the harness side
 * calls ensureBuiltinPolicies() (policy_registry.cc) to force the
 * registering translation units out of their static archives.
 */

#ifndef NMAPSIM_HARNESS_POLICY_REGISTRY_HH_
#define NMAPSIM_HARNESS_POLICY_REGISTRY_HH_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "governors/freq_governor.hh"
#include "governors/switchable_idle.hh"
#include "harness/policy_params.hh"
#include "os/cpuidle.hh"
#include "os/server_os.hh"
#include "sim/logging.hh"
#include "workload/app_profile.hh"

namespace nmapsim {

class Client;
class CpuProfile;
class EventQueue;
class Nic;
class Rng;
struct ExperimentResult;

/**
 * Everything a frequency-policy factory may wire against. Pointers are
 * null when the hosting harness cannot provide the facility (e.g. the
 * colocation harness has no single client latency feed and no single
 * application to profile); factories that need a missing facility
 * fatal() with a policy-specific message.
 */
struct PolicyContext
{
    EventQueue &eq;
    const std::vector<Core *> &cores;
    Nic &nic;
    ServerOs &os;
    const AppProfile &app;
    Rng &rng;
    GovernorConfig gov;
    const PolicyParams &params;

    /** Client latency feed (Parties); null in colocation. */
    Client *client = nullptr;

    /** Offline Section-4.2 threshold profiling (NI_TH, CU_TH); null
     *  when there is no single application to profile. */
    std::function<std::pair<double, double>()> profileThresholds;

    /** Attach a NAPI observer to the OS bus (borrowed; the governor
     *  owns it and outlives the run). */
    void
    addObserver(NapiObserver *obs)
    {
        os.addObserver(obs);
    }

    /**
     * Request control of the run's sleep states: the harness installs
     * the returned wrapper (around the configured sleep policy) as the
     * OS idle governor, and the frequency policy may force-awake it.
     */
    SwitchableIdleGovernor &
    requestSwitchableIdle()
    {
        switchableRequested_ = true;
        return *switchable_;
    }

    bool switchableRequested() const { return switchableRequested_; }

    /** Harness-side: the wrapper handed out on request. */
    SwitchableIdleGovernor *switchable_ = nullptr;
    bool switchableRequested_ = false;
};

/** What a frequency-policy factory returns. */
struct FreqPolicyInstance
{
    std::unique_ptr<FreqGovernor> governor;

    /** Optional post-run hook: report policy-specific outputs (e.g.
     *  the thresholds NMAP ran with) into the result. Only invoked by
     *  harnesses producing an ExperimentResult. */
    std::function<void(ExperimentResult &)> finalize;
};

/** Everything a sleep-policy factory may depend on. */
struct IdleContext
{
    const CpuProfile &profile;
    int numCores;
    const PolicyParams &params;
};

/** String-keyed factories for frequency and sleep policies. */
class PolicyRegistry
{
  public:
    using FreqFactory = std::function<FreqPolicyInstance(PolicyContext &)>;
    using IdleFactory =
        std::function<std::unique_ptr<CpuIdleGovernor>(const IdleContext &)>;

    static PolicyRegistry &
    instance()
    {
        static PolicyRegistry registry;
        return registry;
    }

    void
    registerFreq(const std::string &name, FreqFactory factory,
                 std::string help = "")
    {
        if (!freq_.emplace(name, Entry<FreqFactory>{std::move(factory),
                                                    std::move(help)})
                 .second)
            fatal("duplicate frequency policy registration: '" + name +
                  "'");
    }

    void
    registerIdle(const std::string &name, IdleFactory factory,
                 std::string help = "")
    {
        if (!idle_.emplace(name, Entry<IdleFactory>{std::move(factory),
                                                    std::move(help)})
                 .second)
            fatal("duplicate sleep policy registration: '" + name +
                  "'");
    }

    bool hasFreq(const std::string &name) const
    {
        return resolve(freq_, name) != freq_.end();
    }

    bool hasIdle(const std::string &name) const
    {
        return resolve(idle_, name) != idle_.end();
    }

    /** Instantiate a frequency policy; fatal() on unknown names. */
    FreqPolicyInstance
    makeFreq(const std::string &name, PolicyContext &ctx) const
    {
        auto it = resolve(freq_, name);
        if (it == freq_.end())
            fatal("unknown frequency policy '" + name + "' (known: " +
                  joined(freq_) + ")");
        return it->second.factory(ctx);
    }

    /** Instantiate a sleep policy; fatal() on unknown names. */
    std::unique_ptr<CpuIdleGovernor>
    makeIdle(const std::string &name, const IdleContext &ctx) const
    {
        auto it = resolve(idle_, name);
        if (it == idle_.end())
            fatal("unknown sleep policy '" + name + "' (known: " +
                  joined(idle_) + ")");
        return it->second.factory(ctx);
    }

    /** Registered frequency-policy names, sorted. */
    std::vector<std::string>
    freqNames() const
    {
        return names(freq_);
    }

    /** Registered sleep-policy names, sorted. */
    std::vector<std::string>
    idleNames() const
    {
        return names(idle_);
    }

    std::string
    freqHelp(const std::string &name) const
    {
        auto it = resolve(freq_, name);
        return it == freq_.end() ? std::string() : it->second.help;
    }

    std::string
    idleHelp(const std::string &name) const
    {
        auto it = resolve(idle_, name);
        return it == idle_.end() ? std::string() : it->second.help;
    }

  private:
    template <typename F>
    struct Entry
    {
        F factory;
        std::string help;
    };

    template <typename F>
    using Map = std::map<std::string, Entry<F>>;

    PolicyRegistry() = default;

    /** Exact match first, then a unique case-insensitive match (so
     *  configs and the CLI may say "nmap" for "NMAP"). */
    template <typename F>
    static typename Map<F>::const_iterator
    resolve(const Map<F> &map, const std::string &name)
    {
        auto it = map.find(name);
        if (it != map.end())
            return it;
        auto match = map.end();
        for (auto i = map.begin(); i != map.end(); ++i) {
            if (equalsIgnoreCase(i->first, name)) {
                if (match != map.end())
                    return map.end(); // ambiguous
                match = i;
            }
        }
        return match;
    }

    static bool
    equalsIgnoreCase(const std::string &a, const std::string &b)
    {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (lower(a[i]) != lower(b[i]))
                return false;
        return true;
    }

    static char
    lower(char c)
    {
        return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                    : c;
    }

    template <typename F>
    static std::vector<std::string>
    names(const Map<F> &map)
    {
        std::vector<std::string> out;
        out.reserve(map.size());
        for (const auto &[name, entry] : map)
            out.push_back(name);
        return out;
    }

    template <typename F>
    static std::string
    joined(const Map<F> &map)
    {
        std::string out;
        for (const auto &[name, entry] : map) {
            if (!out.empty())
                out += ", ";
            out += name;
        }
        return out;
    }

    Map<FreqFactory> freq_;
    Map<IdleFactory> idle_;
};

/** Registers a frequency policy at static-initialisation time. */
struct FreqPolicyRegistrar
{
    FreqPolicyRegistrar(const std::string &name,
                        PolicyRegistry::FreqFactory factory,
                        std::string help = "")
    {
        PolicyRegistry::instance().registerFreq(name, std::move(factory),
                                                std::move(help));
    }
};

/** Registers a sleep policy at static-initialisation time. */
struct IdlePolicyRegistrar
{
    IdlePolicyRegistrar(const std::string &name,
                        PolicyRegistry::IdleFactory factory,
                        std::string help = "")
    {
        PolicyRegistry::instance().registerIdle(name, std::move(factory),
                                                std::move(help));
    }
};

/**
 * @name Registration shorthand
 * The canonical way to register a policy from its own TU:
 *
 *     REGISTER_FREQ_POLICY("my-policy", &makeMyPolicy,
 *                          "one-line help");
 *
 * Both the name and the help string must be nonempty string literals:
 * the name is the config/CLI key, the help line surfaces in
 * `nmapsim_run --list-policies`. nmaplint (rule register-hygiene)
 * enforces both.
 */
/**@{*/
#define NMAPSIM_REGISTRAR_CONCAT_(a, b) a##b
#define NMAPSIM_REGISTRAR_CONCAT(a, b) NMAPSIM_REGISTRAR_CONCAT_(a, b)

#define REGISTER_FREQ_POLICY(name, factory, help)                      \
    static const ::nmapsim::FreqPolicyRegistrar                        \
        NMAPSIM_REGISTRAR_CONCAT(nmapsimFreqPolicyRegistrar_,          \
                                 __COUNTER__)(name, factory, help)

#define REGISTER_IDLE_POLICY(name, factory, help)                      \
    static const ::nmapsim::IdlePolicyRegistrar                        \
        NMAPSIM_REGISTRAR_CONCAT(nmapsimIdlePolicyRegistrar_,          \
                                 __COUNTER__)(name, factory, help)
/**@}*/

/**
 * Force the built-in policy modules' registration TUs out of their
 * static archives (an unreferenced object file with only registrar
 * statics would otherwise be dropped by the linker). Idempotent;
 * called by the harness constructors and the CLI.
 */
void ensureBuiltinPolicies();

} // namespace nmapsim

#endif // NMAPSIM_HARNESS_POLICY_REGISTRY_HH_
