#include "harness/config_io.hh"

#include <charconv>
#include <sstream>

#include "sim/logging.hh"

namespace nmapsim {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

int
parseInt(const std::string &text, const std::string &key)
{
    int v = 0;
    const char *b = text.data();
    const char *e = b + text.size();
    auto res = std::from_chars(b, e, v);
    if (res.ec != std::errc() || res.ptr != e)
        fatal("config key '" + key + "': not an integer: '" + text +
              "'");
    return v;
}

std::uint64_t
parseUint(const std::string &text, const std::string &key)
{
    std::uint64_t v = 0;
    const char *b = text.data();
    const char *e = b + text.size();
    auto res = std::from_chars(b, e, v);
    if (res.ec != std::errc() || res.ptr != e)
        fatal("config key '" + key +
              "': not an unsigned integer: '" + text + "'");
    return v;
}

std::size_t
parseSize(const std::string &text, const std::string &key)
{
    return static_cast<std::size_t>(parseUint(text, key));
}

bool
parseBool(const std::string &text, const std::string &key)
{
    if (text == "true" || text == "1")
        return true;
    if (text == "false" || text == "0")
        return false;
    fatal("config key '" + key + "': not a bool: '" + text +
          "' (use true/false)");
}

LoadLevel
parseLoadLevel(const std::string &text, const std::string &key)
{
    if (text == "low")
        return LoadLevel::kLow;
    if (text == "med")
        return LoadLevel::kMed;
    if (text == "high")
        return LoadLevel::kHigh;
    fatal("config key '" + key + "': unknown load level '" + text +
          "' (known: low, med, high)");
}

std::string
formatTick(Tick t)
{
    return std::to_string(t) + "ns";
}

// Reuse the params-blob scalar grammar for doubles and durations.
double
parseDouble(const std::string &text, const std::string &key)
{
    return PolicyParams::parseDouble(text, key);
}

Tick
parseTick(const std::string &text, const std::string &key)
{
    return PolicyParams::parseTick(text, key);
}

} // namespace

std::string
printConfig(const ExperimentConfig &c)
{
    std::ostringstream os;
    auto put = [&os](const std::string &key, const std::string &value) {
        os << key << "=" << value << "\n";
    };
    auto fd = [](double v) { return PolicyParams::formatDouble(v); };

    put("cpu_profile", c.cpuProfile);
    put("cores", std::to_string(c.numCores));
    put("app", c.app.name);
    put("load", loadLevelName(c.load));
    put("rps_override", fd(c.rpsOverride));
    put("train_mean_override", fd(c.trainMeanOverride));
    put("duty_override", fd(c.dutyOverride));
    put("burst.period", formatTick(c.burst.period));
    put("burst.on_time", formatTick(c.burst.onTime));
    put("connection_skew", fd(c.connectionSkew));
    put("freq_policy", c.freqPolicy);
    put("idle_policy", c.idlePolicy);
    put("gov.sample_period", formatTick(c.gov.samplePeriod));
    put("gov.up_threshold", fd(c.gov.upThreshold));
    put("gov.down_threshold", fd(c.gov.downThreshold));
    put("gov.ewma_alpha", fd(c.gov.ewmaAlpha));
    put("os.irq_cycles", fd(c.os.irqCycles));
    put("os.poll_overhead_cycles", fd(c.os.pollOverheadCycles));
    put("os.rx_packet_cycles", fd(c.os.rxPacketCycles));
    put("os.tx_completion_cycles", fd(c.os.txCompletionCycles));
    put("os.napi_weight", std::to_string(c.os.napiWeight));
    put("os.tx_clean_budget", std::to_string(c.os.txCleanBudget));
    put("os.max_softirq_iters", std::to_string(c.os.maxSoftirqIters));
    put("os.jiffy", formatTick(c.os.jiffy));
    put("os.max_softirq_time", formatTick(c.os.maxSoftirqTime));
    put("nic.num_queues", std::to_string(c.nic.numQueues));
    put("nic.rx_ring_size", std::to_string(c.nic.rxRingSize));
    put("nic.itr", formatTick(c.nic.itr));
    put("nic.dma_latency", formatTick(c.nic.dmaLatency));
    put("connections", std::to_string(c.numConnections));
    put("warmup", formatTick(c.warmup));
    put("duration", formatTick(c.duration));
    put("seed", std::to_string(c.seed));
    put("collect_traces", c.collectTraces ? "true" : "false");
    put("trace_bucket", formatTick(c.traceBucket));
    put("collect_latency_trace",
        c.collectLatencyTrace ? "true" : "false");
    put("watch_core", std::to_string(c.watchCore));

    for (const auto &[key, value] : c.params)
        put(key, value);

    return os.str();
}

void
setConfigValue(ExperimentConfig &c, const std::string &key,
               const std::string &value)
{
    // --- Flat keys ----------------------------------------------------
    if (key == "cpu_profile") {
        c.cpuProfile = value;
    } else if (key == "cores") {
        c.numCores = parseInt(value, key);
    } else if (key == "app") {
        c.app = AppProfile::byName(value);
    } else if (key == "load") {
        c.load = parseLoadLevel(value, key);
    } else if (key == "rps_override") {
        c.rpsOverride = parseDouble(value, key);
    } else if (key == "train_mean_override") {
        c.trainMeanOverride = parseDouble(value, key);
    } else if (key == "duty_override") {
        c.dutyOverride = parseDouble(value, key);
    } else if (key == "connection_skew") {
        c.connectionSkew = parseDouble(value, key);
    } else if (key == "freq_policy") {
        c.freqPolicy = value;
    } else if (key == "idle_policy") {
        c.idlePolicy = value;
    } else if (key == "connections") {
        c.numConnections = parseInt(value, key);
    } else if (key == "warmup") {
        c.warmup = parseTick(value, key);
    } else if (key == "duration") {
        c.duration = parseTick(value, key);
    } else if (key == "seed") {
        c.seed = parseUint(value, key);
    } else if (key == "collect_traces") {
        c.collectTraces = parseBool(value, key);
    } else if (key == "trace_bucket") {
        c.traceBucket = parseTick(value, key);
    } else if (key == "collect_latency_trace") {
        c.collectLatencyTrace = parseBool(value, key);
    } else if (key == "watch_core") {
        c.watchCore = parseInt(value, key);

        // --- burst.* --------------------------------------------------
    } else if (key == "burst.period") {
        c.burst.period = parseTick(value, key);
    } else if (key == "burst.on_time") {
        c.burst.onTime = parseTick(value, key);

        // --- gov.* ----------------------------------------------------
    } else if (key == "gov.sample_period") {
        c.gov.samplePeriod = parseTick(value, key);
    } else if (key == "gov.up_threshold") {
        c.gov.upThreshold = parseDouble(value, key);
    } else if (key == "gov.down_threshold") {
        c.gov.downThreshold = parseDouble(value, key);
    } else if (key == "gov.ewma_alpha") {
        c.gov.ewmaAlpha = parseDouble(value, key);

        // --- os.* -----------------------------------------------------
    } else if (key == "os.irq_cycles") {
        c.os.irqCycles = parseDouble(value, key);
    } else if (key == "os.poll_overhead_cycles") {
        c.os.pollOverheadCycles = parseDouble(value, key);
    } else if (key == "os.rx_packet_cycles") {
        c.os.rxPacketCycles = parseDouble(value, key);
    } else if (key == "os.tx_completion_cycles") {
        c.os.txCompletionCycles = parseDouble(value, key);
    } else if (key == "os.napi_weight") {
        c.os.napiWeight = parseInt(value, key);
    } else if (key == "os.tx_clean_budget") {
        c.os.txCleanBudget = parseInt(value, key);
    } else if (key == "os.max_softirq_iters") {
        c.os.maxSoftirqIters = parseInt(value, key);
    } else if (key == "os.jiffy") {
        c.os.jiffy = parseTick(value, key);
    } else if (key == "os.max_softirq_time") {
        c.os.maxSoftirqTime = parseTick(value, key);

        // --- nic.* ----------------------------------------------------
    } else if (key == "nic.num_queues") {
        c.nic.numQueues = parseInt(value, key);
    } else if (key == "nic.rx_ring_size") {
        c.nic.rxRingSize = parseSize(value, key);
    } else if (key == "nic.itr") {
        c.nic.itr = parseTick(value, key);
    } else if (key == "nic.dma_latency") {
        c.nic.dmaLatency = parseTick(value, key);

        // --- Policy params passthrough --------------------------------
    } else {
        std::size_t dot = key.find('.');
        if (dot == std::string::npos || dot == 0)
            fatal("unknown config key '" + key + "'");
        std::string prefix = key.substr(0, dot);
        if (prefix == "gov" || prefix == "burst" || prefix == "os" ||
            prefix == "nic")
            fatal("unknown config key '" + key + "'");
        c.params.set(key, value);
    }
}

ExperimentConfig
parseConfig(const std::string &text)
{
    ExperimentConfig config;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        if (eq == std::string::npos)
            fatal("config line " + std::to_string(lineno) +
                  ": expected key=value, got '" + t + "'");
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            fatal("config line " + std::to_string(lineno) +
                  ": empty key");
        setConfigValue(config, key, value);
    }
    return config;
}

} // namespace nmapsim
