#include "harness/experiment.hh"

#include <algorithm>

#include "cpu/core.hh"
#include "cpu/cpu_profile.hh"
#include "cpu/package_power.hh"
#include "governors/cpuidle_policies.hh"
#include "governors/ondemand.hh"
#include "governors/static_governors.hh"
#include "net/wire.hh"
#include "nmap/nmap_governor.hh"
#include "nmap/profiler.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/energy_meter.hh"
#include "workload/client.hh"
#include "workload/server_app.hh"

namespace nmapsim {

const char *
freqPolicyName(FreqPolicy policy)
{
    switch (policy) {
      case FreqPolicy::kPerformance:
        return "performance";
      case FreqPolicy::kPowersave:
        return "powersave";
      case FreqPolicy::kUserspace:
        return "userspace";
      case FreqPolicy::kOndemand:
        return "ondemand";
      case FreqPolicy::kConservative:
        return "conservative";
      case FreqPolicy::kIntelPowersave:
        return "intel_powersave";
      case FreqPolicy::kNmap:
        return "NMAP";
      case FreqPolicy::kNmapSimpl:
        return "NMAP-simpl";
      case FreqPolicy::kNmapAdaptive:
        return "NMAP-adaptive";
      case FreqPolicy::kNmapChipWide:
        return "NMAP-chipwide";
      case FreqPolicy::kNcap:
        return "NCAP";
      case FreqPolicy::kNcapMenu:
        return "NCAP-menu";
      case FreqPolicy::kParties:
        return "Parties";
    }
    return "?";
}

const char *
idlePolicyName(IdlePolicy policy)
{
    switch (policy) {
      case IdlePolicy::kMenu:
        return "menu";
      case IdlePolicy::kDisable:
        return "disable";
      case IdlePolicy::kC6Only:
        return "c6only";
      case IdlePolicy::kTeo:
        return "teo";
    }
    return "?";
}

namespace {

/** Counts ksoftirqd wake-ups across all cores. */
class KsoftirqdCounter : public NapiObserver
{
  public:
    void
    onKsoftirqdWake(int core) override
    {
        (void)core;
        ++wakes_;
    }

    std::uint64_t wakes() const { return wakes_; }

  private:
    std::uint64_t wakes_ = 0;
};

} // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config))
{
    if (config_.numCores < 1)
        fatal("Experiment requires at least one core");
    if (config_.duration <= 0)
        fatal("Experiment duration must be positive");
}

std::pair<double, double>
Experiment::profileThresholds(const ExperimentConfig &config)
{
    // Section 4.2: profile one request burst at the load used to set
    // the SLO (the latency-load inflection point == the high load) with
    // a fixed maximum V/F so the thresholds describe a healthy core.
    ExperimentConfig pcfg = config;
    pcfg.freqPolicy = FreqPolicy::kPerformance;
    pcfg.idlePolicy = IdlePolicy::kMenu;
    pcfg.load = LoadLevel::kHigh;
    pcfg.rpsOverride = 0.0;
    pcfg.trainMeanOverride = 0.0;
    pcfg.loadSchedule.clear();
    pcfg.warmup = 0;
    pcfg.duration = pcfg.burst.period; // one burst + its drain
    pcfg.collectTraces = false;
    pcfg.collectLatencyTrace = false;

    ThresholdProfiler profiler(pcfg.numCores);
    profiler.beginBurst();
    pcfg.extraObservers.push_back(&profiler);
    Experiment(pcfg).run();
    profiler.endBurst();
    return {profiler.niThreshold(), profiler.cuThreshold()};
}

ExperimentResult
Experiment::run()
{
    const CpuProfile &profile = CpuProfile::byName(config_.cpuProfile);
    EventQueue eq;
    Rng rng(config_.seed);

    // --- Hardware -------------------------------------------------
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> core_ptrs;
    for (int i = 0; i < config_.numCores; ++i) {
        cores.push_back(std::make_unique<Core>(
            i, eq, profile, rng, config_.app.cacheTouch));
        core_ptrs.push_back(cores.back().get());
    }

    NicConfig nic_config = config_.nic;
    nic_config.numQueues = config_.numCores;
    Nic nic(eq, nic_config);

    Wire client_to_server(eq);
    Wire server_to_client(eq);
    client_to_server.setSink(
        [&nic](const Packet &pkt) { nic.receive(pkt); });
    nic.setTxWire(&server_to_client);

    // --- OS + application + client ---------------------------------
    ServerOs os(core_ptrs, nic, config_.os);
    ServerApp app(os, nic, config_.app, rng.fork());
    Client client(eq, client_to_server, config_.app,
                  config_.numConnections);
    server_to_client.setSink(
        [&client](const Packet &pkt) { client.onResponse(pkt); });
    LoadGenerator gen(eq, client, config_.burst, rng.fork());

    // --- Sleep policy ----------------------------------------------
    MenuIdleGovernor menu(profile, config_.numCores);
    DisableIdleGovernor disable;
    C6OnlyIdleGovernor c6only;
    TeoIdleGovernor teo(profile, config_.numCores);
    CpuIdleGovernor *idle = nullptr;
    switch (config_.idlePolicy) {
      case IdlePolicy::kMenu:
        idle = &menu;
        break;
      case IdlePolicy::kDisable:
        idle = &disable;
        break;
      case IdlePolicy::kC6Only:
        idle = &c6only;
        break;
      case IdlePolicy::kTeo:
        idle = &teo;
        break;
    }
    SwitchableIdleGovernor switchable(*idle);

    // --- Frequency policy -------------------------------------------
    ExperimentResult result;
    std::unique_ptr<FreqGovernor> governor;
    AdaptiveNmapGovernor *adaptiveGov = nullptr;
    bool use_switchable_idle = false;
    switch (config_.freqPolicy) {
      case FreqPolicy::kPerformance:
        governor = std::make_unique<PerformanceGovernor>(core_ptrs);
        break;
      case FreqPolicy::kPowersave:
        governor = std::make_unique<PowersaveGovernor>(core_ptrs);
        break;
      case FreqPolicy::kUserspace:
        governor = std::make_unique<UserspaceGovernor>(
            core_ptrs, config_.userspacePState);
        break;
      case FreqPolicy::kOndemand:
        governor = std::make_unique<OndemandGovernor>(eq, core_ptrs,
                                                      config_.gov);
        break;
      case FreqPolicy::kConservative:
        governor = std::make_unique<ConservativeGovernor>(
            eq, core_ptrs, config_.gov);
        break;
      case FreqPolicy::kIntelPowersave:
        governor = std::make_unique<IntelPowersaveGovernor>(
            eq, core_ptrs, config_.gov);
        break;
      case FreqPolicy::kNmap:
      case FreqPolicy::kNmapChipWide: {
        NmapConfig nmap_config = config_.nmap;
        nmap_config.chipWide =
            config_.freqPolicy == FreqPolicy::kNmapChipWide;
        if (nmap_config.niThreshold <= 0.0 && config_.autoProfileNmap) {
            auto [ni, cu] = profileThresholds(config_);
            nmap_config.niThreshold = ni;
            nmap_config.cuThreshold = cu;
        }
        result.niThresholdUsed = nmap_config.niThreshold;
        result.cuThresholdUsed = nmap_config.cuThreshold;
        auto nmap = std::make_unique<NmapGovernor>(
            eq, core_ptrs, nmap_config, config_.gov);
        os.addObserver(nmap.get());
        governor = std::move(nmap);
        break;
      }
      case FreqPolicy::kNmapAdaptive: {
        auto adaptive = std::make_unique<AdaptiveNmapGovernor>(
            eq, core_ptrs, config_.adaptive, rng.fork(), config_.gov);
        os.addObserver(adaptive.get());
        AdaptiveNmapGovernor *raw = adaptive.get();
        governor = std::move(adaptive);
        // Report the converged thresholds after the run via a hack-free
        // path: read them at collection time below.
        adaptiveGov = raw;
        break;
      }
      case FreqPolicy::kNmapSimpl: {
        auto simpl = std::make_unique<NmapSimplGovernor>(eq, core_ptrs,
                                                         config_.gov);
        os.addObserver(simpl.get());
        governor = std::move(simpl);
        break;
      }
      case FreqPolicy::kNcap:
      case FreqPolicy::kNcapMenu: {
        NcapConfig ncap_config = config_.ncap;
        ncap_config.disableSleepOnBurst =
            config_.freqPolicy == FreqPolicy::kNcap;
        auto ncap = std::make_unique<NcapGovernor>(
            eq, core_ptrs, nic, ncap_config, config_.gov);
        ncap->setIdleOverride(&switchable);
        use_switchable_idle = true;
        governor = std::move(ncap);
        break;
      }
      case FreqPolicy::kParties: {
        PartiesConfig parties_config = config_.parties;
        if (parties_config.slo <= 0)
            parties_config.slo = config_.app.slo;
        governor = std::make_unique<PartiesGovernor>(
            eq, core_ptrs, client, parties_config);
        break;
      }
    }

    os.setIdleGovernor(use_switchable_idle
                           ? static_cast<CpuIdleGovernor *>(&switchable)
                           : idle);

    // --- Observers ---------------------------------------------------
    KsoftirqdCounter ksoft_counter;
    os.addObserver(&ksoft_counter);
    for (NapiObserver *obs : config_.extraObservers)
        os.addObserver(obs);

    std::shared_ptr<TraceCollector> traces;
    if (config_.collectTraces) {
        traces = std::make_shared<TraceCollector>(
            eq, config_.watchCore, config_.traceBucket);
        traces->attachPStateTrace(*core_ptrs[static_cast<std::size_t>(
            config_.watchCore)]);
        os.addObserver(traces.get());
    }

    // --- Energy ------------------------------------------------------
    PackagePower uncore(eq, core_ptrs);
    PackageEnergyMeter package(0.0);
    package.addMeter(&uncore.meter());
    for (Core *core : core_ptrs)
        package.addMeter(&core->meter());

    // --- Load --------------------------------------------------------
    LoadLevelSpec spec = config_.app.level(config_.load);
    if (config_.rpsOverride > 0.0)
        spec.rps = config_.rpsOverride;
    if (config_.trainMeanOverride > 0.0)
        spec.trainMean = config_.trainMeanOverride;
    if (config_.dutyOverride > 0.0)
        spec.duty = config_.dutyOverride;

    std::vector<std::unique_ptr<EventFunctionWrapper>> load_events;
    for (const LoadChange &change : config_.loadSchedule) {
        load_events.push_back(std::make_unique<EventFunctionWrapper>(
            [&gen, change] { gen.setLoad(change.spec); },
            "experiment.loadChange"));
        eq.schedule(load_events.back().get(), change.at);
    }

    // --- Run -----------------------------------------------------------
    os.start();
    governor->start();
    gen.setConnectionSkew(config_.connectionSkew);
    gen.setLoad(spec);
    gen.start();

    eq.runUntil(config_.warmup);
    Tick measure_start = eq.now();
    package.startMeasurement(measure_start);
    client.latencies().clear();

    Tick end = config_.warmup + config_.duration;
    eq.runUntil(end);
    gen.stop();
    for (auto &ev : load_events)
        eq.deschedule(ev.get());

    // --- Collect ---------------------------------------------------------
    const LatencyRecorder &lat = client.latencies();
    result.slo = config_.app.slo;
    result.p50 = lat.percentile(50.0);
    result.p99 = lat.percentile(99.0);
    result.maxLatency = lat.max();
    result.meanLatency = lat.mean();
    result.fracOverSlo = lat.fractionAbove(config_.app.slo);

    result.energyJoules = package.energyJoules(end);
    result.avgPowerWatts =
        result.energyJoules / toSeconds(end - measure_start);

    result.requestsSent = client.requestsSent();
    result.responsesReceived = client.responsesReceived();
    result.nicDrops = nic.packetsDropped();
    result.nicRxHarvested = nic.rxHarvested();
    result.nicTxConsumed = nic.txConsumed();
    result.ksoftirqdWakes = ksoft_counter.wakes();

    for (int i = 0; i < config_.numCores; ++i) {
        Core *core = core_ptrs[static_cast<std::size_t>(i)];
        result.pktsIntrMode += os.napi(i).pktsInterruptMode();
        result.pktsPollMode += os.napi(i).pktsPollingMode();
        result.pstateTransitions += core->dvfs().numTransitions();
        result.cc6Wakes += core->cstates().wakeCount(CState::kC6);
        result.cc1Wakes += core->cstates().wakeCount(CState::kC1);
        result.busyFraction += static_cast<double>(core->busyTime()) /
                               static_cast<double>(end) /
                               static_cast<double>(config_.numCores);
    }

    if (adaptiveGov) {
        result.niThresholdUsed = adaptiveGov->currentNiThreshold();
        result.cuThresholdUsed = adaptiveGov->currentCuThreshold();
    }
    result.traces = traces;
    if (config_.collectTraces) {
        const EventMarkSeries &cc6 =
            core_ptrs[static_cast<std::size_t>(config_.watchCore)]
                ->cstates()
                .cc6Entries();
        result.cc6Entries = cc6.marks();
    }
    if (config_.collectLatencyTrace)
        result.latencyTrace = lat.trace();
    result.cdf = lat.cdf(200);

    return result;
}

} // namespace nmapsim
