#include "harness/experiment.hh"

#include <algorithm>

#include "cpu/core.hh"
#include "cpu/cpu_profile.hh"
#include "cpu/package_power.hh"
#include "dataplane/bypass.hh"
#include "dataplane/plan.hh"
#include "dataplane/policy.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "governors/switchable_idle.hh"
#include "harness/policy_registry.hh"
#include "net/wire.hh"
#include "nmap/profiler.hh"
#include "os/server_os.hh"
#include "resilience/admission.hh"
#include "resilience/plan.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/energy_meter.hh"
#include "workload/client.hh"
#include "workload/server_app.hh"

namespace nmapsim {

namespace {

/** Counts ksoftirqd wake-ups across all cores. */
class KsoftirqdCounter : public NapiObserver
{
  public:
    void
    onKsoftirqdWake(int core) override
    {
        (void)core;
        ++wakes_;
    }

    std::uint64_t wakes() const { return wakes_; }

  private:
    std::uint64_t wakes_ = 0;
};

} // namespace

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config))
{
    ensureBuiltinPolicies();
    if (config_.numCores < 1)
        fatal("Experiment requires at least one core");
    if (config_.duration <= 0)
        fatal("Experiment duration must be positive");

    // Surface fault/retry config errors here, like every other config
    // error; host-indexed faults only make sense behind a switch.
    const FaultPlan plan = FaultPlan::fromParams(config_.params);
    if (plan.wantsCrash())
        fatal("fault.crash_host requires a cluster run");
    if (plan.flapHost >= 0)
        fatal("fault.flap_host requires a cluster run");

    // Service topologies only exist behind the cluster switch.
    for (const auto &[key, value] : config_.params)
        if (key.rfind("topology.", 0) == 0)
            fatal("'" + key + "' requires a cluster run");

    // Same early surfacing for resilience config errors. Circuit
    // breakers and mid-chain deadlines live in the switch, so breaker
    // keys only make sense behind one.
    const ResiliencePlan resilience =
        ResiliencePlan::fromParams(config_.params);
    if (resilience.wantsBreakers())
        fatal("resilience.breaker_window requires a cluster run");
    if (resilience.wantsAdmission()) {
        ensureBuiltinAdmissionPolicies();
        (void)AdmissionPolicyRegistry::instance().make(
            resilience.admission, AdmissionContext{resilience});
    }
    const ClientRetryPolicy retry =
        ClientRetryPolicy::fromParams(config_.params);
    if (resilience.wantsRetryBudget() && !retry.enabled())
        fatal("resilience.retry_budget requires client retry "
              "(client.timeout)");

    // Same early surfacing for dataplane config errors.
    const DataplanePlan dplan = DataplanePlan::fromParams(config_.params);
    if (dplan.bypass()) {
        ensureBuiltinDataplanePolicies();
        if (!DataplanePolicyRegistry::instance().has(dplan.policy))
            fatal("unknown dataplane policy '" + dplan.policy + "'");
        if (dplan.pollCores >= config_.numCores)
            fatal("dataplane.poll_cores must leave at least one worker "
                  "core (poll_cores=" +
                  std::to_string(dplan.pollCores) +
                  ", cores=" + std::to_string(config_.numCores) + ")");
    }
}

std::pair<double, double>
Experiment::profileThresholds(const ExperimentConfig &config)
{
    // Section 4.2: profile one request burst at the load used to set
    // the SLO (the latency-load inflection point == the high load) with
    // a fixed maximum V/F so the thresholds describe a healthy core.
    ExperimentConfig pcfg = config;
    pcfg.freqPolicy = "performance";
    pcfg.idlePolicy = "menu";
    pcfg.load = LoadLevel::kHigh;
    pcfg.rpsOverride = 0.0;
    pcfg.trainMeanOverride = 0.0;
    pcfg.loadSchedule.clear();
    pcfg.warmup = 0;
    pcfg.duration = pcfg.burst.period; // one burst + its drain
    pcfg.collectTraces = false;
    pcfg.collectLatencyTrace = false;

    // Thresholds describe a *healthy* system: profile without any
    // injected faults or client retries (also keeps cluster-derived
    // configs from tripping the cluster-only fault key checks).
    // ... and without the bypass dataplane: NMAP's NI/CU thresholds
    // describe the NAPI mode-transition signal, which only exists on
    // the interrupt path.
    std::vector<std::string> stripped;
    for (const auto &[key, value] : pcfg.params)
        if (key.rfind("fault.", 0) == 0 ||
            key.rfind("client.", 0) == 0 ||
            key.rfind("dataplane.", 0) == 0 ||
            key.rfind("metronome.", 0) == 0 ||
            key.rfind("resilience.", 0) == 0)
            stripped.push_back(key);
    for (const std::string &key : stripped)
        pcfg.params.erase(key);

    ThresholdProfiler profiler(pcfg.numCores);
    profiler.beginBurst();
    pcfg.extraObservers.push_back(&profiler);
    Experiment(pcfg).run();
    profiler.endBurst();
    return {profiler.niThreshold(), profiler.cuThreshold()};
}

ExperimentResult
Experiment::run()
{
    const CpuProfile &profile = CpuProfile::byName(config_.cpuProfile);
    EventQueue eq;
    Rng rng(config_.seed);

    // --- Hardware -------------------------------------------------
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> core_ptrs;
    for (int i = 0; i < config_.numCores; ++i) {
        cores.push_back(std::make_unique<Core>(
            i, eq, profile, rng, config_.app.cacheTouch));
        core_ptrs.push_back(cores.back().get());
    }

    NicConfig nic_config = config_.nic;
    nic_config.numQueues = config_.numCores;
    Nic nic(eq, nic_config);

    Wire client_to_server(eq);
    Wire server_to_client(eq);
    client_to_server.setLabel("client->server");
    server_to_client.setLabel("server->client");
    client_to_server.setSink(
        [&nic](const Packet &pkt) { nic.receive(pkt); });
    nic.setTxWire(&server_to_client);

    // --- OS + application + client ---------------------------------
    ServerOs os(core_ptrs, nic, config_.os);
    ServerApp app(os, nic, config_.app, rng.fork());
    Client client(eq, client_to_server, config_.app,
                  config_.numConnections);
    // Overload control: a disabled plan arms nothing and keeps the run
    // byte-identical (the subsystem forks no random stream).
    const ResiliencePlan resilience =
        ResiliencePlan::fromParams(config_.params);
    if (resilience.wantsAdmission() || resilience.wantsDeadline())
        app.setResilience(resilience);
    if (resilience.wantsDeadline())
        client.setDeadlineBudget(resilience.deadline);
    server_to_client.setSink(
        [&client](const Packet &pkt) { client.onResponse(pkt); });
    LoadGenerator gen(eq, client, config_.burst, rng.fork());

    // --- Policies (resolved by name via the registry) ----------------
    IdleContext idle_ctx{profile, config_.numCores, config_.params};
    std::unique_ptr<CpuIdleGovernor> idle =
        PolicyRegistry::instance().makeIdle(config_.idlePolicy,
                                            idle_ctx);
    SwitchableIdleGovernor switchable(*idle);

    PolicyContext policy_ctx{
        eq,
        core_ptrs,
        nic,
        os,
        config_.app,
        rng,
        config_.gov,
        config_.params,
        &client,
        [this] { return profileThresholds(config_); },
        &switchable,
        /*switchableRequested_=*/false};
    FreqPolicyInstance policy =
        PolicyRegistry::instance().makeFreq(config_.freqPolicy,
                                            policy_ctx);

    os.setIdleGovernor(policy_ctx.switchableRequested()
                           ? static_cast<CpuIdleGovernor *>(&switchable)
                           : idle.get());

    // --- Observers ---------------------------------------------------
    KsoftirqdCounter ksoft_counter;
    os.addObserver(&ksoft_counter);
    for (NapiObserver *obs : config_.extraObservers)
        os.addObserver(obs);

    std::shared_ptr<TraceCollector> traces;
    if (config_.collectTraces) {
        traces = std::make_shared<TraceCollector>(
            eq, config_.watchCore, config_.traceBucket);
        traces->attachPStateTrace(*core_ptrs[static_cast<std::size_t>(
            config_.watchCore)]);
        os.addObserver(traces.get());
    }

    // --- Energy ------------------------------------------------------
    PackagePower uncore(eq, core_ptrs);
    PackageEnergyMeter package(0.0);
    package.addMeter(&uncore.meter());
    for (Core *core : core_ptrs)
        package.addMeter(&core->meter());

    // --- Load --------------------------------------------------------
    LoadLevelSpec spec = config_.app.level(config_.load);
    if (config_.rpsOverride > 0.0)
        spec.rps = config_.rpsOverride;
    if (config_.trainMeanOverride > 0.0)
        spec.trainMean = config_.trainMeanOverride;
    if (config_.dutyOverride > 0.0)
        spec.duty = config_.dutyOverride;

    std::vector<std::unique_ptr<EventFunctionWrapper>> load_events;
    for (const LoadChange &change : config_.loadSchedule) {
        load_events.push_back(std::make_unique<EventFunctionWrapper>(
            [&gen, change] { gen.setLoad(change.spec); },
            "experiment.loadChange"));
        eq.schedule(load_events.back().get(), change.at);
    }

    // --- Fault injection ----------------------------------------------
    // Built after every pre-existing component so the injector's Rng
    // fork is the last one taken: a disabled plan leaves all other
    // streams untouched and the run byte-identical to a fault-free
    // build.
    const FaultPlan fault_plan = FaultPlan::fromParams(config_.params);
    const ClientRetryPolicy retry =
        ClientRetryPolicy::fromParams(config_.params);
    if (retry.enabled())
        client.setRetryPolicy(retry);
    if (resilience.wantsRetryBudget())
        client.setRetryBudget(resilience.retryBudget,
                              resilience.retryMin,
                              resilience.retryCap);

    std::unique_ptr<FaultInjector> injector;
    if (fault_plan.enabled()) {
        injector = std::make_unique<FaultInjector>(eq, fault_plan,
                                                   rng.fork());
        injector->addLossyWire(client_to_server);
        injector->addLossyWire(server_to_client);
        if (fault_plan.wantsFlap())
            injector->addFlapGroup(
                {&client_to_server, &server_to_client});
        if (fault_plan.wantsRingDegrade())
            injector->addDegradableNic(nic);
    }

    // --- Dataplane ------------------------------------------------------
    // The default NAPI plan constructs nothing: no engine, no events,
    // no Rng fork — byte-identical to the pre-dataplane simulator. The
    // engine may be built after the injector because it forks no
    // random stream.
    const DataplanePlan dataplane_plan =
        DataplanePlan::fromParams(config_.params);
    std::unique_ptr<BypassEngine> bypass;
    if (dataplane_plan.bypass())
        bypass = std::make_unique<BypassEngine>(os, nic, dataplane_plan,
                                                config_.params);

    // --- Run -----------------------------------------------------------
    os.start();
    if (bypass)
        bypass->start();
    policy.governor->start();
    gen.setConnectionSkew(config_.connectionSkew);
    gen.setLoad(spec);
    gen.start();

    eq.runUntil(config_.warmup);
    Tick measure_start = eq.now();
    package.startMeasurement(measure_start);
    if (bypass)
        bypass->startMeasurement(measure_start);
    client.latencies().clear();
    client.attemptLatencies().clear();

    Tick end = config_.warmup + config_.duration;
    eq.runUntil(end);
    gen.stop();
    for (auto &ev : load_events)
        eq.deschedule(ev.get());

    // --- Collect ---------------------------------------------------------
    ExperimentResult result;
    const LatencyRecorder &lat = client.latencies();
    result.slo = config_.app.slo;
    result.p50 = lat.percentile(50.0);
    result.p99 = lat.percentile(99.0);
    result.maxLatency = lat.max();
    result.meanLatency = lat.mean();
    result.fracOverSlo = lat.fractionAbove(config_.app.slo);

    result.energyJoules = package.energyJoules(end);
    result.avgPowerWatts =
        result.energyJoules / toSeconds(end - measure_start);

    result.requestsSent = client.requestsSent();
    result.responsesReceived = client.responsesReceived();
    result.requestsTimedOut = client.requestsTimedOut();
    result.retransmits = client.retransmits();
    result.requestsInFlight = client.requestsInFlight();
    result.duplicateResponses = client.duplicateResponses();
    result.requestsShed = client.requestsShed();
    result.retryBudgetExhausted = client.retryBudgetExhausted();
    result.shedAdmission = app.shedAdmission();
    result.shedSojourn = app.shedSojourn();
    result.shedDeadline = app.shedDeadline();
    if (injector) {
        result.faultPacketsLost = injector->packetsFaultLost();
        result.faultPacketsCorrupted = injector->packetsCorrupted();
        result.linkDownDrops = injector->packetsLinkDownLost();
    }
    result.availability =
        result.requestsSent == 0
            ? 1.0
            : static_cast<double>(result.responsesReceived) /
                  static_cast<double>(result.requestsSent);
    result.attemptP99 = client.attemptLatencies().percentile(99.0);
    result.nicDrops = nic.packetsDropped();
    result.nicRxHarvested = nic.rxHarvested();
    result.nicTxConsumed = nic.txConsumed();
    result.ksoftirqdWakes = ksoft_counter.wakes();

    for (int i = 0; i < config_.numCores; ++i) {
        Core *core = core_ptrs[static_cast<std::size_t>(i)];
        result.pktsIntrMode += os.napi(i).pktsInterruptMode();
        result.pktsPollMode += os.napi(i).pktsPollingMode();
        result.pstateTransitions += core->dvfs().numTransitions();
        result.cc6Wakes += core->cstates().wakeCount(CState::kC6);
        result.cc1Wakes += core->cstates().wakeCount(CState::kC1);
        result.busyFraction += static_cast<double>(core->busyTime()) /
                               static_cast<double>(end) /
                               static_cast<double>(config_.numCores);
    }

    if (bypass) {
        // Bypass harvests are polling-mode work by definition; the NAPI
        // contexts stayed dormant, so pktsIntrMode is zero and the
        // NAPI conservation identity (intr + poll == rx harvested + tx
        // consumed) carries over unchanged.
        BypassEngine::Stats dp = bypass->stats();
        result.pktsPollMode += dp.pktsHarvested;
        result.bypassPollLoops = dp.pollLoops;
        result.bypassEmptyPolls = dp.emptyPolls;
        result.bypassSleeps = dp.sleeps;
        result.bypassSleepResidency = dp.sleepResidency;
        result.bypassWastedPollEnergy =
            bypass->wastedPollEnergyJoules(end);
    }

    result.eventsProcessed = eq.numProcessed();
    result.simulatedTicks = eq.now();

    if (policy.finalize)
        policy.finalize(result);
    result.traces = traces;
    if (config_.collectTraces) {
        const EventMarkSeries &cc6 =
            core_ptrs[static_cast<std::size_t>(config_.watchCore)]
                ->cstates()
                .cc6Entries();
        result.cc6Entries = cc6.marks();
    }
    if (config_.collectLatencyTrace)
        result.latencyTrace = lat.trace();
    result.cdf = lat.cdf(200);

    return result;
}

} // namespace nmapsim
