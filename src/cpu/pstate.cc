#include "cpu/pstate.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

PStateTable::PStateTable(std::vector<PState> states)
    : states_(std::move(states))
{
    if (states_.empty())
        fatal("PStateTable requires at least one state");
    for (std::size_t i = 1; i < states_.size(); ++i) {
        if (states_[i].freqHz >= states_[i - 1].freqHz)
            fatal("PStateTable frequencies must strictly descend");
    }
}

PStateTable
PStateTable::linear(double fmax_hz, double fmin_hz, double vmax,
                    double vmin, int n)
{
    if (n < 2)
        fatal("PStateTable::linear requires at least two states");
    std::vector<PState> states;
    states.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double t = static_cast<double>(i) / static_cast<double>(n - 1);
        states.push_back({fmax_hz + (fmin_hz - fmax_hz) * t,
                          vmax + (vmin - vmax) * t});
    }
    return PStateTable(std::move(states));
}

int
PStateTable::clampIndex(int idx) const
{
    return std::clamp(idx, 0, maxIndex());
}

int
PStateTable::indexForFreq(double freq_hz) const
{
    // States descend; find the slowest state still >= freq_hz.
    int best = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].freqHz >= freq_hz)
            best = static_cast<int>(i);
        else
            break;
    }
    return best;
}

int
PStateTable::indexForUtil(double util, double up_threshold) const
{
    if (util >= up_threshold)
        return 0;
    double target = states_[0].freqHz * util / up_threshold;
    return indexForFreq(target);
}

} // namespace nmapsim
