/**
 * @file
 * P-state (voltage/frequency operating point) tables.
 *
 * Index 0 is the highest-performance state (P0), matching Intel and the
 * paper's convention; larger indices are slower and lower-voltage.
 */

#ifndef NMAPSIM_CPU_PSTATE_HH_
#define NMAPSIM_CPU_PSTATE_HH_

#include <cstddef>
#include <vector>

namespace nmapsim {

/** One voltage/frequency operating point. */
struct PState
{
    double freqHz;  //!< core clock frequency
    double voltage; //!< supply voltage in volts
};

/** Ordered set of P-states, P0 (fastest) first. */
class PStateTable
{
  public:
    /** Build from explicit states; must be non-empty and descending. */
    explicit PStateTable(std::vector<PState> states);

    /**
     * Build @p n evenly spaced states from (fmax, vmax) at P0 down to
     * (fmin, vmin) at P(n-1). Voltage scales linearly with frequency,
     * the usual first-order DVFS model.
     */
    static PStateTable linear(double fmax_hz, double fmin_hz, double vmax,
                              double vmin, int n);

    std::size_t numStates() const { return states_.size(); }
    const PState &state(std::size_t idx) const { return states_[idx]; }

    int maxIndex() const { return static_cast<int>(states_.size()) - 1; }

    /** Clamp an index into the valid range. */
    int clampIndex(int idx) const;

    /**
     * Smallest (fastest) index whose frequency is <= @p freq_hz; used by
     * utilisation governors to map a target frequency to a state. Falls
     * back to P0 if @p freq_hz exceeds the table maximum.
     */
    int indexForFreq(double freq_hz) const;

    /**
     * State a utilisation-proportional governor picks: target frequency
     * is util / up_threshold of fmax (ondemand's scaling rule), then
     * rounded up to the next faster state.
     */
    int indexForUtil(double util, double up_threshold) const;

  private:
    std::vector<PState> states_;
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_PSTATE_HH_
