/**
 * @file
 * One CPU core: frequency domain + sleep states + power accounting.
 *
 * Core is the hardware-facing facade the OS scheduler and the governors
 * talk to. It owns the DVFS actuator (per-core DVFS as on the paper's
 * Xeon Gold 6134), the C-state controller, and an integrating energy
 * meter driven by the analytic power model. The OS layer reports
 * busy/idle; governors read busy-time and C0-residency deltas and issue
 * P-state requests through dvfs().
 */

#ifndef NMAPSIM_CPU_CORE_HH_
#define NMAPSIM_CPU_CORE_HH_

#include <functional>
#include <vector>

#include "cpu/cpu_profile.hh"
#include "cpu/cstate.hh"
#include "cpu/dvfs_actuator.hh"
#include "cpu/power_model.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/energy_meter.hh"

namespace nmapsim {

/** A single core of the simulated processor. */
class Core
{
  public:
    /**
     * @param id           core number (also the NIC queue it serves)
     * @param eq           simulation event queue
     * @param profile      processor calibration
     * @param rng          parent stream; the core forks private streams
     * @param cache_touch  CC6 refill fraction (see CStateController)
     */
    Core(int id, EventQueue &eq, const CpuProfile &profile, Rng &rng,
         double cache_touch = 0.3);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    int id() const { return id_; }
    const CpuProfile &profile() const { return profile_; }
    EventQueue &eventQueue() { return eq_; }

    /** @name Frequency domain */
    /**@{*/
    DvfsActuator &dvfs() { return dvfs_; }
    int pstateIndex() const { return dvfs_.currentPState(); }
    const PState &
    pstate() const
    {
        return profile_.pstates.state(
            static_cast<std::size_t>(dvfs_.currentPState()));
    }
    double freqHz() const { return pstate().freqHz; }

    /** Register an observer invoked when the effective frequency
     *  changes; listeners fire in registration order. */
    void
    addFreqListener(std::function<void(double)> cb)
    {
        freqListeners_.push_back(std::move(cb));
    }
    /**@}*/

    /** @name Sleep states */
    /**@{*/
    CStateController &cstates() { return cstates_; }
    const CStateController &cstates() const { return cstates_; }

    /** Put the core to sleep (scheduler calls this when idle). */
    void enterSleep(CState s);

    /** Deepen an ongoing sleep (cpuidle promotion). */
    void deepenSleep(CState s);

    /** Wake the core; returns the wake-up penalty to charge. */
    Tick wake();
    /**@}*/

    /** @name Busy accounting */
    /**@{*/
    /** Report whether the core is executing work right now. */
    void setBusy(bool busy);
    bool busy() const { return busy_; }

    /** Report that the core is paying a C-state exit penalty. */
    void setWaking(bool waking);
    bool waking() const { return waking_; }

    /** Cumulative busy time since boot. */
    Tick busyTime() const;
    /**@}*/

    /** Energy meter integrating this core's power. */
    EnergyMeter &meter() { return meter_; }
    const EnergyMeter &meter() const { return meter_; }

  private:
    void onPStateApplied(int idx);
    void updatePower();

    int id_;
    EventQueue &eq_;
    const CpuProfile &profile_;
    DvfsActuator dvfs_;
    CStateController cstates_;
    CorePowerModel powerModel_;
    EnergyMeter meter_;
    std::vector<std::function<void(double)>> freqListeners_;

    bool busy_ = false;
    bool waking_ = false;
    Tick busyAccum_ = 0;
    Tick lastBusyChange_ = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_CORE_HH_
