#include "cpu/core.hh"

namespace nmapsim {

Core::Core(int id, EventQueue &eq, const CpuProfile &profile, Rng &rng,
           double cache_touch)
    : id_(id), eq_(eq), profile_(profile),
      dvfs_(eq, profile, rng.fork(), 0),
      cstates_(profile, rng.fork(), cache_touch),
      powerModel_(profile.power)
{
    dvfs_.setApplyCallback([this](int idx) { onPStateApplied(idx); });
    updatePower();
}

void
Core::onPStateApplied(int idx)
{
    updatePower();
    double freq =
        profile_.pstates.state(static_cast<std::size_t>(idx)).freqHz;
    for (const auto &cb : freqListeners_)
        cb(freq);
}

void
Core::updatePower()
{
    meter_.setPower(eq_.now(),
                    powerModel_.power(cstates_.state(), busy_, waking_,
                                      pstate()));
}

void
Core::setWaking(bool waking)
{
    if (waking == waking_)
        return;
    waking_ = waking;
    updatePower();
}

void
Core::enterSleep(CState s)
{
    cstates_.enterSleep(s, eq_.now());
    updatePower();
}

void
Core::deepenSleep(CState s)
{
    cstates_.deepen(s, eq_.now());
    updatePower();
}

Tick
Core::wake()
{
    Tick penalty = cstates_.wake(eq_.now());
    updatePower();
    return penalty;
}

void
Core::setBusy(bool busy)
{
    if (busy == busy_)
        return;
    Tick now = eq_.now();
    if (busy_)
        busyAccum_ += now - lastBusyChange_;
    lastBusyChange_ = now;
    busy_ = busy;
    updatePower();
}

Tick
Core::busyTime() const
{
    Tick t = busyAccum_;
    if (busy_)
        t += eq_.now() - lastBusyChange_;
    return t;
}

} // namespace nmapsim
