/**
 * @file
 * Calibrated per-processor hardware profiles.
 *
 * Each profile bundles the P-state table, the re-transition latency
 * anchors measured in the paper's Table 1, the C-state wake-up latencies
 * of Table 2 (plus the Section 5.2 CC6 cache-refill penalty), and the
 * power-model coefficients. The four processors the paper characterises
 * are provided; Xeon Gold 6134 is the evaluation machine.
 */

#ifndef NMAPSIM_CPU_CPU_PROFILE_HH_
#define NMAPSIM_CPU_CPU_PROFILE_HH_

#include <string>

#include "cpu/pstate.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Mean/stdev (in microseconds) of one measured transition class. */
struct TransitionAnchor
{
    double meanUs;
    double stdevUs;
};

/**
 * The six transition classes of Table 1. "High"/"low" refer to which end
 * of the P-state range the one-step transition happens at; "far" is the
 * full Pmax<->Pmin swing. Arbitrary transitions interpolate.
 */
struct ReTransitionProfile
{
    TransitionAnchor smallDownHigh; //!< Pmax -> Pmax-1
    TransitionAnchor smallUpHigh;   //!< Pmax-1 -> Pmax
    TransitionAnchor farDown;       //!< Pmax -> Pmin
    TransitionAnchor farUp;         //!< Pmin -> Pmax
    TransitionAnchor smallDownLow;  //!< Pmin+1 -> Pmin
    TransitionAnchor smallUpLow;    //!< Pmin -> Pmin+1
};

/** C-state exit latencies (Table 2) and menu-governor residency targets. */
struct CStateProfile
{
    TransitionAnchor c1Exit; //!< CC1 -> CC0 wake-up latency
    TransitionAnchor c6Exit; //!< CC6 -> CC0 wake-up latency
    Tick c6CacheRefillWorst; //!< worst-case private-cache refill (5.2)
    Tick c1TargetResidency;  //!< menu: min idle span worth entering CC1
    Tick c6TargetResidency;  //!< menu: min idle span worth entering CC6
};

/** Coefficients of the analytic core/package power model. */
struct PowerParams
{
    double dynCoeff;       //!< W per (V^2 * GHz) at activity 1.0
    double staticCoeff;    //!< W per V (leakage, present in C0/C1)
    double c1StaticFactor; //!< fraction of static power left in CC1
    double c6Watts;        //!< residual power in CC6
    double idleActivity;   //!< activity factor when idling in C0
    double busyActivity;   //!< activity factor when executing
    double uncoreWatts;    //!< constant part of package/uncore power
    double uncoreVoltCoeff; //!< uncore watts per volt of mean core V
};

/** Everything the simulator needs to know about one processor. */
struct CpuProfile
{
    std::string name;
    PStateTable pstates;
    Tick nominalTransition; //!< ACPI-advertised V/F switch latency
    Tick settleWindow;      //!< window after a switch in which another
                            //!< request pays re-transition latency
    ReTransitionProfile retrans;
    CStateProfile cstates;
    PowerParams power;

    /** Intel i7-6700 desktop part (Table 1/2 row 1). */
    static const CpuProfile &i76700();
    /** Intel i7-7700 desktop part (Table 1/2 row 2). */
    static const CpuProfile &i77700();
    /** Intel Xeon E5-2620 v4 server part (256 KB L2). */
    static const CpuProfile &xeonE52620v4();
    /** Intel Xeon Gold 6134 — the paper's evaluation machine:
     *  8 cores, per-core DVFS, 16 P-states 1.2-3.2 GHz, 1 MB L2. */
    static const CpuProfile &xeonGold6134();

    /**
     * Hypothetical Gold 6134 with the fast on-chip regulators the
     * short-term DVFS literature assumes (Section 5.1's discussion):
     * every transition costs the nominal 10 us, no re-transition
     * penalty. Used by bench/ablation_retransition to quantify how
     * much of NMAP-simpl's high-load failure is the ~520 us
     * re-transition latency.
     */
    static const CpuProfile &xeonGold6134FastVr();

    /** Look up a profile by name(); fatal() on unknown names. */
    static const CpuProfile &byName(const std::string &name);
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_CPU_PROFILE_HH_
