#include "cpu/power_model.hh"

namespace nmapsim {

double
CorePowerModel::power(CState s, bool busy, bool waking,
                      const PState &p) const
{
    switch (s) {
      case CState::kC6:
        return params_.c6Watts;
      case CState::kC1:
        return params_.c1StaticFactor * params_.staticCoeff * p.voltage;
      case CState::kC0:
      default: {
        if (waking)
            return params_.c1StaticFactor * params_.staticCoeff *
                   p.voltage;
        double activity =
            busy ? params_.busyActivity : params_.idleActivity;
        double ghz = p.freqHz / 1e9;
        double dyn = params_.dynCoeff * activity * p.voltage * p.voltage *
                     ghz;
        double stat = params_.staticCoeff * p.voltage;
        return dyn + stat;
      }
    }
}

} // namespace nmapsim
