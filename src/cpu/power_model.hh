/**
 * @file
 * Analytic core power model.
 *
 * First-order CMOS model: dynamic power proportional to activity * V^2 *
 * f, static (leakage) power proportional to V, gated by the C-state.
 * CC1 stops the clock (no dynamic power), CC6 power-gates the core down
 * to a small residual. Idling in C0 (the "disable" sleep policy) still
 * burns a configurable activity fraction — that is what makes `disable`
 * expensive in Fig. 8/13.
 */

#ifndef NMAPSIM_CPU_POWER_MODEL_HH_
#define NMAPSIM_CPU_POWER_MODEL_HH_

#include "cpu/cpu_profile.hh"
#include "cpu/cstate.hh"
#include "cpu/pstate.hh"

namespace nmapsim {

/** Computes instantaneous core power from (C-state, busy, P-state). */
class CorePowerModel
{
  public:
    explicit CorePowerModel(const PowerParams &params)
        : params_(params)
    {
    }

    /**
     * Instantaneous power in watts.
     *
     * @param s      current C-state
     * @param busy   true when the core is executing work (only
     *               meaningful in C0)
     * @param waking true while the core is paying a C-state exit
     *               penalty: the clock is not yet running, so only
     *               leakage-level power is drawn
     * @param p      operating point of the core's frequency domain
     */
    double power(CState s, bool busy, bool waking,
                 const PState &p) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_POWER_MODEL_HH_
