/**
 * @file
 * Core sleep-state (C-state) controller.
 *
 * Models CC0 (active), CC1 (clock gated) and CC6 (deep sleep, private
 * caches flushed). Waking from a state costs the Table 2 exit latency;
 * waking from CC6 additionally costs a private-cache refill penalty
 * (Section 5.2), scaled by how much of the cache the workload actually
 * touches. The controller also tracks per-state residency, which both the
 * power model and the intel_powersave governor (C0-residency based
 * utilisation) consume.
 */

#ifndef NMAPSIM_CPU_CSTATE_HH_
#define NMAPSIM_CPU_CSTATE_HH_

#include <array>
#include <cstdint>

#include "cpu/cpu_profile.hh"
#include "sim/rng.hh"
#include "sim/time.hh"
#include "stats/timeseries.hh"

namespace nmapsim {

/** Core sleep states, shallow to deep. */
enum class CState : int
{
    kC0 = 0, //!< active
    kC1 = 1, //!< halted / clock gated
    kC6 = 2, //!< powered off, private caches flushed
};

/** Tracks one core's sleep state, wake latencies and residencies. */
class CStateController
{
  public:
    /**
     * @param profile       processor calibration (exit latencies, refill)
     * @param rng           private random stream for latency noise
     * @param cache_touch   fraction of the flushed private cache the
     *                      workload re-reads after a CC6 wake ([0, 1])
     */
    CStateController(const CpuProfile &profile, Rng rng,
                     double cache_touch = 1.0);

    /** Enter sleep state @p s at time @p now; must currently be in C0. */
    void enterSleep(CState s, Tick now);

    /**
     * Deepen the current sleep state to @p s without waking (cpuidle
     * promotion: an idle period outlasting the shallow prediction is
     * re-evaluated and demoted into a deeper state). No-op unless the
     * core is asleep in a shallower state than @p s.
     */
    void deepen(CState s, Tick now);

    /**
     * Wake the core at @p now; returns the wake-up penalty in ticks
     * (exit latency, plus the cache-refill share after CC6). The core is
     * in C0 once the caller has charged the returned penalty.
     */
    Tick wake(Tick now);

    CState state() const { return state_; }
    bool sleeping() const { return state_ != CState::kC0; }

    /** Cumulative residency of state @p s up to @p now. */
    Tick residency(CState s, Tick now) const;

    /** Ticks at which the core entered CC6 (Fig. 7 trace). */
    const EventMarkSeries &cc6Entries() const { return cc6Entries_; }

    /** Number of wake-ups from each state. */
    std::uint64_t wakeCount(CState s) const;

    /** Most recent wake penalty charged. */
    Tick lastWakeLatency() const { return lastWakeLatency_; }

  private:
    void accumulate(Tick now);

    const CpuProfile &profile_;
    Rng rng_;
    double cacheTouch_;

    CState state_ = CState::kC0;
    Tick lastChange_ = 0;
    Tick lastWakeLatency_ = 0;
    std::array<Tick, 3> residency_{};
    std::array<std::uint64_t, 3> wakes_{};
    EventMarkSeries cc6Entries_;
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_CSTATE_HH_
