#include "cpu/cstate.hh"

#include "sim/logging.hh"

namespace nmapsim {

CStateController::CStateController(const CpuProfile &profile, Rng rng,
                                   double cache_touch)
    : profile_(profile), rng_(rng), cacheTouch_(cache_touch)
{
    if (cache_touch < 0.0 || cache_touch > 1.0)
        fatal("cache_touch fraction must be within [0, 1]");
}

void
CStateController::accumulate(Tick now)
{
    residency_[static_cast<int>(state_)] += now - lastChange_;
    lastChange_ = now;
}

void
CStateController::enterSleep(CState s, Tick now)
{
    if (state_ != CState::kC0)
        panic("enterSleep: core is already sleeping");
    if (s == CState::kC0)
        return; // governors may legitimately pick "stay awake"
    accumulate(now);
    state_ = s;
    if (s == CState::kC6)
        cc6Entries_.mark(now);
}

void
CStateController::deepen(CState s, Tick now)
{
    if (state_ == CState::kC0 ||
        static_cast<int>(s) <= static_cast<int>(state_))
        return;
    accumulate(now);
    state_ = s;
    if (s == CState::kC6)
        cc6Entries_.mark(now);
}

Tick
CStateController::wake(Tick now)
{
    if (state_ == CState::kC0)
        return 0;
    accumulate(now);
    CState from = state_;
    state_ = CState::kC0;
    ++wakes_[static_cast<int>(from)];

    const TransitionAnchor &a = from == CState::kC6
                                    ? profile_.cstates.c6Exit
                                    : profile_.cstates.c1Exit;
    double us = rng_.truncatedNormal(a.meanUs, a.stdevUs, 0.05);
    Tick penalty = static_cast<Tick>(us * kMicrosecond);
    if (from == CState::kC6) {
        penalty += static_cast<Tick>(
            cacheTouch_ *
            static_cast<double>(profile_.cstates.c6CacheRefillWorst));
    }
    lastWakeLatency_ = penalty;
    return penalty;
}

Tick
CStateController::residency(CState s, Tick now) const
{
    Tick r = residency_[static_cast<int>(s)];
    if (s == state_)
        r += now - lastChange_;
    return r;
}

std::uint64_t
CStateController::wakeCount(CState s) const
{
    return wakes_[static_cast<int>(s)];
}

} // namespace nmapsim
