#include "cpu/package_power.hh"

#include "sim/logging.hh"

namespace nmapsim {

PackagePower::PackagePower(EventQueue &eq, std::vector<Core *> cores)
    : eq_(eq), cores_(std::move(cores))
{
    if (cores_.empty())
        fatal("PackagePower requires at least one core");
    for (Core *core : cores_)
        core->addFreqListener([this](double) { update(); });
    update();
}

void
PackagePower::update()
{
    double mean_v = 0.0;
    for (Core *core : cores_)
        mean_v += core->pstate().voltage;
    mean_v /= static_cast<double>(cores_.size());

    const PowerParams &p = cores_.front()->profile().power;
    meter_.setPower(eq_.now(),
                    p.uncoreWatts + p.uncoreVoltCoeff * mean_v);
}

} // namespace nmapsim
