#include "cpu/cpu_profile.hh"

#include "sim/logging.hh"

namespace nmapsim {

namespace {

constexpr double kGHz = 1e9;

PowerParams
desktopPower()
{
    return PowerParams{
        /*dynCoeff=*/1.6,
        /*staticCoeff=*/2.0,
        /*c1StaticFactor=*/1.0,
        /*c6Watts=*/0.05,
        /*idleActivity=*/0.15,
        /*busyActivity=*/1.0,
        /*uncoreWatts=*/2.0,
        /*uncoreVoltCoeff=*/5.0,
    };
}

PowerParams
serverPower()
{
    return PowerParams{
        /*dynCoeff=*/1.75,
        /*staticCoeff=*/2.5,
        /*c1StaticFactor=*/1.0,
        /*c6Watts=*/0.05,
        /*idleActivity=*/0.15,
        /*busyActivity=*/1.0,
        /*uncoreWatts=*/2.0,
        /*uncoreVoltCoeff=*/9.0,
    };
}

CStateProfile
makeCStates(TransitionAnchor c1, TransitionAnchor c6, Tick refill)
{
    return CStateProfile{
        c1,
        c6,
        refill,
        /*c1TargetResidency=*/microseconds(2),
        /*c6TargetResidency=*/microseconds(600),
    };
}

} // namespace

const CpuProfile &
CpuProfile::i76700()
{
    static const CpuProfile profile{
        "i7-6700",
        PStateTable::linear(4.0 * kGHz, 0.8 * kGHz, 1.25, 0.65, 16),
        microseconds(10),
        milliseconds(1),
        ReTransitionProfile{
            {21.0, 2.2}, {34.6, 2.2}, {27.2, 5.5},
            {45.1, 6.5}, {25.3, 1.4}, {35.8, 2.2},
        },
        makeCStates({0.35, 0.48}, {27.70, 3.00}, microseconds(7)),
        desktopPower(),
    };
    return profile;
}

const CpuProfile &
CpuProfile::i77700()
{
    static const CpuProfile profile{
        "i7-7700",
        PStateTable::linear(4.2 * kGHz, 0.8 * kGHz, 1.25, 0.65, 16),
        microseconds(10),
        milliseconds(1),
        ReTransitionProfile{
            {21.7, 3.8}, {31.3, 2.1}, {25.9, 3.1},
            {50.7, 6.6}, {26.3, 2.9}, {33.8, 2.3},
        },
        makeCStates({0.40, 0.49}, {27.56, 4.15}, microseconds(7)),
        desktopPower(),
    };
    return profile;
}

const CpuProfile &
CpuProfile::xeonE52620v4()
{
    static const CpuProfile profile{
        "Xeon E5-2620v4",
        PStateTable::linear(2.1 * kGHz, 1.2 * kGHz, 1.1, 0.75, 9),
        microseconds(10),
        milliseconds(1),
        ReTransitionProfile{
            {516.1, 3.4}, {516.2, 3.5}, {520.9, 5.6},
            {520.3, 5.9}, {517.2, 4.3}, {517.2, 4.2},
        },
        // 256 KB L2: 7 us worst-case refill (Section 5.2).
        makeCStates({0.50, 0.50}, {27.25, 4.77}, microseconds(7)),
        serverPower(),
    };
    return profile;
}

const CpuProfile &
CpuProfile::xeonGold6134()
{
    static const CpuProfile profile{
        "Xeon Gold 6134",
        // 16 P-states from 3.2 GHz (P0) down to 1.2 GHz (P15), 6.1.
        PStateTable::linear(3.2 * kGHz, 1.2 * kGHz, 1.2, 0.7, 16),
        microseconds(10),
        milliseconds(1),
        ReTransitionProfile{
            {525.7, 5.7}, {525.6, 5.7}, {528.4, 7.0},
            {527.3, 7.1}, {526.3, 6.4}, {526.9, 6.8},
        },
        // 1 MB L2: 26.4 us worst-case refill (Section 5.2).
        makeCStates({0.56, 0.50}, {27.43, 4.05},
                static_cast<Tick>(26.4 * kMicrosecond)),
        serverPower(),
    };
    return profile;
}

const CpuProfile &
CpuProfile::xeonGold6134FastVr()
{
    static const CpuProfile profile = [] {
        CpuProfile p = xeonGold6134();
        p.name = "Xeon Gold 6134 (fast VR)";
        // No settle window: every request pays only the ACPI nominal
        // latency, i.e. the idealised regulators prior short-term DVFS
        // work assumes.
        p.settleWindow = 0;
        return p;
    }();
    return profile;
}

const CpuProfile &
CpuProfile::byName(const std::string &name)
{
    if (name == "i7-6700")
        return i76700();
    if (name == "i7-7700")
        return i77700();
    if (name == "Xeon E5-2620v4")
        return xeonE52620v4();
    if (name == "Xeon Gold 6134")
        return xeonGold6134();
    if (name == "Xeon Gold 6134 (fast VR)")
        return xeonGold6134FastVr();
    fatal("unknown CPU profile: " + name);
}

} // namespace nmapsim
