/**
 * @file
 * Per-core DVFS actuator with the paper's re-transition latency model.
 *
 * Section 5.1 of the paper shows that the latency between writing the
 * P-state control register and the change taking effect is the ACPI
 * nominal (~10 us) only for isolated writes; a write issued while the
 * previous transition is still settling pays a much larger
 * "re-transition" latency — hundreds of microseconds on server parts.
 * The actuator reproduces exactly that: requests within settleWindow of
 * the previous transition (or while one is in flight) sample their
 * latency from the Table 1 anchors of the configured CpuProfile.
 */

#ifndef NMAPSIM_CPU_DVFS_ACTUATOR_HH_
#define NMAPSIM_CPU_DVFS_ACTUATOR_HH_

#include <functional>

#include "cpu/cpu_profile.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace nmapsim {

/** Applies P-state change requests after a modelled hardware latency. */
class DvfsActuator
{
  public:
    /** Called when a transition completes, with the new P-state index. */
    using ApplyCallback = std::function<void(int)>;

    /**
     * @param eq       simulation event queue
     * @param profile  processor calibration (latency anchors, table size)
     * @param rng      private random stream for latency noise
     * @param initial  P-state the core boots in
     */
    DvfsActuator(EventQueue &eq, const CpuProfile &profile, Rng rng,
                 int initial = 0);

    ~DvfsActuator();

    DvfsActuator(const DvfsActuator &) = delete;
    DvfsActuator &operator=(const DvfsActuator &) = delete;

    /** Register the observer notified when a transition lands. */
    void setApplyCallback(ApplyCallback cb) { applyCb_ = std::move(cb); }

    /**
     * Request a change to P-state @p idx (clamped). The latest request
     * wins: a request issued while another is in flight re-targets the
     * chain and pays re-transition latency. Requesting the currently
     * effective state with nothing in flight is a no-op.
     */
    void requestPState(int idx);

    /** Currently effective P-state (what the core actually runs at). */
    int currentPState() const { return current_; }

    /** Most recently requested target. */
    int targetPState() const { return target_; }

    /** True while a transition is in flight. */
    bool transitionPending() const { return transitionEvent_.scheduled(); }

    /** Latency of the most recently *completed* transition. */
    Tick lastTransitionLatency() const { return lastLatency_; }

    /** Number of transitions that have completed. */
    std::uint64_t numTransitions() const { return numTransitions_; }

    /**
     * Latency a request from state @p from to state @p to would pay right
     * now (exposed for the Table 1 micro-benchmark). @p retransition
     * selects between the nominal and the re-transition model.
     */
    Tick sampleLatency(int from, int to, bool retransition);

  private:
    void startTransition();
    void completeTransition();
    bool inSettleWindow() const;

    EventQueue &eq_;
    const CpuProfile &profile_;
    Rng rng_;
    ApplyCallback applyCb_;

    int current_;
    int target_;
    int inFlightTarget_ = -1;
    Tick lastCompletion_;
    Tick lastLatency_ = 0;
    std::uint64_t numTransitions_ = 0;

    EventFunctionWrapper transitionEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_DVFS_ACTUATOR_HH_
