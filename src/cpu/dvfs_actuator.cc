#include "cpu/dvfs_actuator.hh"

#include <cmath>

#include "sim/logging.hh"

namespace nmapsim {

namespace {

/** Linear interpolation between anchors by a fraction in [0, 1]. */
TransitionAnchor
lerp(const TransitionAnchor &a, const TransitionAnchor &b, double t)
{
    return {a.meanUs + (b.meanUs - a.meanUs) * t,
            a.stdevUs + (b.stdevUs - a.stdevUs) * t};
}

} // namespace

DvfsActuator::DvfsActuator(EventQueue &eq, const CpuProfile &profile,
                           Rng rng, int initial)
    : eq_(eq), profile_(profile), rng_(rng),
      current_(profile.pstates.clampIndex(initial)), target_(current_),
      // Boot counts as a long-completed transition so the first request
      // pays only the nominal latency.
      lastCompletion_(-profile.settleWindow * 2),
      transitionEvent_([this] { completeTransition(); },
                       "dvfs.transition")
{
}

DvfsActuator::~DvfsActuator()
{
    eq_.deschedule(&transitionEvent_);
}

bool
DvfsActuator::inSettleWindow() const
{
    return eq_.now() - lastCompletion_ < profile_.settleWindow;
}

Tick
DvfsActuator::sampleLatency(int from, int to, bool retransition)
{
    if (!retransition)
        return profile_.nominalTransition;

    const ReTransitionProfile &r = profile_.retrans;
    int n = profile_.pstates.maxIndex();
    if (n <= 0)
        return profile_.nominalTransition;

    bool up = to < from; // lower index means higher V/F
    double dist = std::abs(to - from) / static_cast<double>(n);
    // Position of the one-step anchor to blend with: 0 at the Pmin end
    // of the table, 1 at the Pmax end.
    double mid = (from + to) / 2.0 / static_cast<double>(n);
    double pos_high = 1.0 - mid;

    TransitionAnchor small =
        up ? lerp(r.smallUpLow, r.smallUpHigh, pos_high)
           : lerp(r.smallDownLow, r.smallDownHigh, pos_high);
    TransitionAnchor far = up ? r.farUp : r.farDown;

    // One-step transitions use the small anchor; the full swing uses the
    // far anchor; everything between interpolates by distance.
    double small_dist = 1.0 / static_cast<double>(n);
    double t = dist <= small_dist
                   ? 0.0
                   : (dist - small_dist) / (1.0 - small_dist);
    TransitionAnchor a = lerp(small, far, t);

    double us = rng_.truncatedNormal(a.meanUs, a.stdevUs, 1.0);
    return static_cast<Tick>(us * kMicrosecond);
}

void
DvfsActuator::requestPState(int idx)
{
    idx = profile_.pstates.clampIndex(idx);
    if (idx == target_)
        return;
    target_ = idx;
    if (!transitionEvent_.scheduled()) {
        startTransition();
    }
    // Otherwise the in-flight transition completes first and the chain
    // continues toward the new target from completeTransition().
}

void
DvfsActuator::startTransition()
{
    bool retrans = inSettleWindow();
    Tick latency = sampleLatency(current_, target_, retrans);
    inFlightTarget_ = target_;
    lastLatency_ = latency;
    eq_.scheduleIn(&transitionEvent_, latency);
}

void
DvfsActuator::completeTransition()
{
    current_ = inFlightTarget_;
    inFlightTarget_ = -1;
    lastCompletion_ = eq_.now();
    ++numTransitions_;
    if (applyCb_)
        applyCb_(current_);
    // A request that arrived mid-flight re-targeted target_; chase it.
    if (target_ != current_)
        startTransition();
}

} // namespace nmapsim
