/**
 * @file
 * Package-shared (uncore) power model.
 *
 * Beyond the per-core power, a package draws power in the shared mesh,
 * LLC, memory controller and voltage-regulation path. A large part of
 * that tracks the core supply voltages: keeping any core's rail at
 * V_max raises shared-rail leakage and VR losses even when the core
 * itself idles. We model uncore power as
 *
 *     P_uncore = base + coeff * mean(core voltage)
 *
 * which reproduces the package-level RAPL behaviour the paper relies
 * on: the performance governor's high voltage costs energy around the
 * clock, while per-core DVFS policies recover it whenever they drop the
 * V/F state.
 */

#ifndef NMAPSIM_CPU_PACKAGE_POWER_HH_
#define NMAPSIM_CPU_PACKAGE_POWER_HH_

#include <vector>

#include "cpu/core.hh"
#include "sim/event_queue.hh"
#include "stats/energy_meter.hh"

namespace nmapsim {

/** Voltage-tracking uncore power, integrated into an EnergyMeter. */
class PackagePower
{
  public:
    /**
     * @param cores the package's cores; subscribes to their frequency
     *              changes. Borrowed, must outlive this object.
     */
    PackagePower(EventQueue &eq, std::vector<Core *> cores);

    /** Meter integrating the uncore power. */
    EnergyMeter &meter() { return meter_; }
    const EnergyMeter &meter() const { return meter_; }

    /** Current uncore power in watts. */
    double watts() const { return meter_.power(); }

  private:
    void update();

    EventQueue &eq_;
    std::vector<Core *> cores_;
    EnergyMeter meter_;
};

} // namespace nmapsim

#endif // NMAPSIM_CPU_PACKAGE_POWER_HH_
