/**
 * @file
 * Kernel-bypass busy-poll dataplane: dedicated PMD poll cores that
 * harvest the NIC rings directly, no interrupts, no softirq.
 *
 * The BypassEngine repartitions a host's cores: cores [0, poll_cores)
 * each run one PollThread in a constant-rate poll loop (DPDK's PMD
 * model, grounded in "Enabling Kernel Bypass Networking on gem5" —
 * the poll loop is cycle-priced work on an ordinary core, so DVFS and
 * C-states keep their meaning), and the remaining cores serve the
 * application. Every NIC queue is owned by exactly one poll core
 * (queue q → poll core q % poll_cores), so worker-core Tx completions
 * are reaped by the pollers too and the NAPI conservation identity
 * carries over: in bypass mode every harvested descriptor counts as
 * polling-mode work and interrupt-mode counts stay zero.
 *
 * After each poll the thread consults its DataplanePolicy: 0 means
 * keep spinning; a positive sleep lets the core idle through the
 * ordinary scheduler path, so cpuidle governors, C-state residency and
 * wake penalties apply to poll cores exactly as to worker cores. With
 * `dataplane.sleep_armed_irq=true` the owned queues' interrupts are
 * re-armed for the duration of the sleep, and an arrival ends the
 * sleep early through the normal hardirq path (CoreScheduler's IRQ
 * delegate routes it here instead of into NAPI).
 *
 * The engine claims the NIC's interrupt handler and the poll cores'
 * IRQ delegates at construction; nothing here runs — and no state
 * changes — unless the engine is constructed, which is what keeps
 * `dataplane.mode=napi` byte-identical to the pre-subsystem simulator.
 */

#ifndef NMAPSIM_DATAPLANE_BYPASS_HH_
#define NMAPSIM_DATAPLANE_BYPASS_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "dataplane/plan.hh"
#include "dataplane/policy.hh"
#include "net/nic.hh"
#include "os/server_os.hh"
#include "os/thread.hh"
#include "sim/event_queue.hh"
#include "stats/energy_meter.hh"

namespace nmapsim {

class BypassEngine;

/** One poll core's PMD loop, scheduled as an ordinary SimThread. */
class PollThread : public SimThread
{
  public:
    PollThread(BypassEngine &engine, ServerOs &os, Nic &nic,
               int poll_core, std::vector<int> queues,
               const DataplanePlan &plan,
               std::unique_ptr<DataplanePolicy> policy);
    ~PollThread() override;

    /** @name SimThread interface */
    /**@{*/
    bool runnable() const override { return !sleeping_; }
    double beginSlice() override;
    void completeSlice() override;
    std::string name() const override { return "pmd-poll"; }
    /**@}*/

    /** IRQ delegate: an armed queue interrupt fired on our core. */
    void onIrqWake();

    /** @name Counters */
    /**@{*/
    std::uint64_t pollLoops() const { return pollLoops_; }
    std::uint64_t emptyPolls() const { return emptyPolls_; }
    std::uint64_t sleeps() const { return sleeps_; }
    Tick sleepResidency() const { return sleepResidency_; }
    std::uint64_t harvested() const { return harvestedRx_ + harvestedTx_; }
    double totalPollCycles() const { return totalCycles_; }
    double emptyPollCycles() const { return emptyCycles_; }
    /**@}*/

  private:
    void sleepExpired();
    void goToSleep(Tick duration);
    /** End the sleep now: residency, irq disarm; caller re-enqueues. */
    void wakeFromSleep();
    void armOwnedIrqs();
    void disarmOwnedIrqs();

    BypassEngine &engine_;
    ServerOs &os_;
    Nic &nic_;
    EventQueue &eq_;
    const int core_;
    const std::vector<int> queues_;
    const int pollBatch_;
    const bool armIrq_;
    const double rxCycles_;
    const double txCycles_;
    std::unique_ptr<DataplanePolicy> policy_;

    // Harvest staging; same ping-pong protocol as NapiContext so
    // delivery re-entrancy can never clobber an in-flight batch.
    std::vector<Packet> stash_;
    std::vector<Packet> delivering_;
    std::uint32_t stashTx_ = 0;
    bool pollInFlight_ = false;
    bool deliveryInFlight_ = false;

    bool sleeping_ = false;
    Tick sleepStart_ = 0;

    std::uint64_t pollLoops_ = 0;
    std::uint64_t emptyPolls_ = 0;
    std::uint64_t sleeps_ = 0;
    Tick sleepResidency_ = 0;
    std::uint64_t harvestedRx_ = 0;
    std::uint64_t harvestedTx_ = 0;
    double totalCycles_ = 0.0;
    double emptyCycles_ = 0.0;

    MemberEvent<PollThread, &PollThread::sleepExpired> sleepEvent_;
};

/** Assembles and owns the bypass dataplane of one host. */
class BypassEngine
{
  public:
    /** Aggregated poll-core metrics for result records. */
    struct Stats
    {
        std::uint64_t pollLoops = 0;     //!< poll iterations run
        std::uint64_t emptyPolls = 0;    //!< iterations harvesting nothing
        std::uint64_t sleeps = 0;        //!< policy-initiated sleeps
        Tick sleepResidency = 0;         //!< total time spent in sleeps
        std::uint64_t pktsHarvested = 0; //!< Rx + Tx taken off the NIC
        double wastedPollCycleShare = 0; //!< empty-poll cycle fraction
    };

    /**
     * Claims @p nic's interrupt handler and the poll cores' IRQ
     * delegates. @p plan must have mode=bypass and leave at least one
     * worker core. Construction takes no RNG fork and schedules no
     * events; nothing runs until start().
     */
    BypassEngine(ServerOs &os, Nic &nic, const DataplanePlan &plan,
                 const PolicyParams &params);

    /** Mask every queue interrupt and launch the poll loops; call
     *  after ServerOs::start(). */
    void start();

    /** Deliver a harvested request to its worker core's application. */
    void deliver(const Packet &pkt);

    /** Restart the poll-core energy window (warm-up trimming). */
    void startMeasurement(Tick now);

    /** Poll-core-only energy since startMeasurement(), in joules. */
    double pollEnergyJoules(Tick now) const;

    /**
     * Poll-core energy spent on polls that harvested nothing — the
     * busy-poll tax Metronome's sleeps reclaim. Prorated over the
     * measurement window by cumulative empty-poll cycle share.
     */
    double wastedPollEnergyJoules(Tick now) const;

    int pollCores() const { return static_cast<int>(pollers_.size()); }
    int workerCores() const { return os_.numCores() - pollCores(); }

    Stats stats() const;

  private:
    ServerOs &os_;
    Nic &nic_;
    DataplanePlan plan_;
    std::vector<std::unique_ptr<PollThread>> pollers_;
    PackageEnergyMeter pollMeter_;
};

} // namespace nmapsim

#endif // NMAPSIM_DATAPLANE_BYPASS_HH_
