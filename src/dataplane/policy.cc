#include "dataplane/policy.hh"

namespace nmapsim {

// Defined in policies.cc; referencing it forces that TU's static
// registrars to run even when the subsystem is consumed from a static
// archive (same idiom as ensureBuiltinPolicies()).
void linkDataplanePolicies();

void
ensureBuiltinDataplanePolicies()
{
    linkDataplanePolicies();
}

} // namespace nmapsim
