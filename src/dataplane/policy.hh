/**
 * @file
 * Self-registering dataplane-policy registry: string-keyed factories
 * for the sleep controller a bypass poll core consults after every
 * poll iteration.
 *
 * The harness resolves `dataplane.policy` by name here and never
 * mentions a concrete policy class. Policy modules register
 * themselves:
 *
 *     // in src/dataplane/<policy>.cc
 *     namespace {
 *     std::unique_ptr<DataplanePolicy>
 *     makeMyPolicy(const DataplaneContext &ctx)
 *     {
 *         return std::make_unique<MyPolicy>(
 *             ctx.params.getTick("mine.period", microseconds(5)));
 *     }
 *     REGISTER_DATAPLANE_POLICY("my-policy", &makeMyPolicy,
 *                               "one-line help");
 *     } // namespace
 *
 * and the name is immediately usable from configs, every bench and the
 * nmapsim_run CLI — no harness edits. One policy instance is created
 * per poll thread, so stateful controllers (Metronome's adaptive sleep)
 * need no cross-thread care.
 */

#ifndef NMAPSIM_DATAPLANE_POLICY_HH_
#define NMAPSIM_DATAPLANE_POLICY_HH_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/policy_params.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace nmapsim {

/** What one completed poll iteration looked like. */
struct DataplanePollStats
{
    Tick now = 0;                   //!< when the poll completed
    std::uint32_t harvestedRx = 0;  //!< Rx packets this poll took
    std::uint32_t harvestedTx = 0;  //!< Tx completions this poll reaped
    std::size_t ringOccupancy = 0;  //!< Rx backlog left on owned queues
    int pollBatch = 0;              //!< per-queue Rx budget of the poll
};

/** Per-poll-thread sleep controller for the bypass dataplane. */
class DataplanePolicy
{
  public:
    virtual ~DataplanePolicy() = default;

    /**
     * Decide what the poll core does next: return 0 to poll again
     * immediately (busy spin), or a positive duration to sleep before
     * the next poll (an armed interrupt may cut the sleep short).
     */
    virtual Tick sleepAfterPoll(const DataplanePollStats &stats) = 0;
};

/** Everything a dataplane-policy factory may depend on. */
struct DataplaneContext
{
    const PolicyParams &params;
};

/** String-keyed factories for dataplane sleep policies. */
class DataplanePolicyRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<DataplanePolicy>(
        const DataplaneContext &)>;

    static DataplanePolicyRegistry &
    instance()
    {
        static DataplanePolicyRegistry registry;
        return registry;
    }

    void
    registerPolicy(const std::string &name, Factory factory,
                   std::string help = "")
    {
        if (!policies_
                 .emplace(name, Entry{std::move(factory),
                                      std::move(help)})
                 .second)
            fatal("duplicate dataplane policy registration: '" + name +
                  "'");
    }

    bool
    has(const std::string &name) const
    {
        return policies_.count(name) != 0;
    }

    /** Instantiate a policy; fatal() on unknown names. */
    std::unique_ptr<DataplanePolicy>
    make(const std::string &name, const DataplaneContext &ctx) const
    {
        auto it = policies_.find(name);
        if (it == policies_.end())
            fatal("unknown dataplane policy '" + name + "' (known: " +
                  joined() + ")");
        return it->second.factory(ctx);
    }

    /** Registered policy names, sorted. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(policies_.size());
        for (const auto &[name, entry] : policies_)
            out.push_back(name);
        return out;
    }

    std::string
    help(const std::string &name) const
    {
        auto it = policies_.find(name);
        return it == policies_.end() ? std::string()
                                     : it->second.help;
    }

  private:
    struct Entry
    {
        Factory factory;
        std::string help;
    };

    DataplanePolicyRegistry() = default;

    std::string
    joined() const
    {
        std::string out;
        for (const auto &[name, entry] : policies_) {
            if (!out.empty())
                out += ", ";
            out += name;
        }
        return out;
    }

    std::map<std::string, Entry> policies_;
};

/** Registers a dataplane policy at static-initialisation time. */
struct DataplanePolicyRegistrar
{
    DataplanePolicyRegistrar(const std::string &name,
                             DataplanePolicyRegistry::Factory factory,
                             std::string help = "")
    {
        DataplanePolicyRegistry::instance().registerPolicy(
            name, std::move(factory), std::move(help));
    }
};

/**
 * Registration shorthand, mirroring REGISTER_FREQ_POLICY
 * (harness/policy_registry.hh). Both the name and the help string must
 * be nonempty string literals; nmaplint (rule register-hygiene)
 * enforces both.
 */
#define NMAPSIM_REGISTRAR_CONCAT_(a, b) a##b
#define NMAPSIM_REGISTRAR_CONCAT(a, b) NMAPSIM_REGISTRAR_CONCAT_(a, b)

#define REGISTER_DATAPLANE_POLICY(name, factory, help)                 \
    static const ::nmapsim::DataplanePolicyRegistrar                   \
        NMAPSIM_REGISTRAR_CONCAT(nmapsimDataplanePolicyRegistrar_,     \
                                 __COUNTER__)(name, factory, help)

/**
 * Force the built-in dataplane-policy TUs out of their static archive
 * (see ensureBuiltinPolicies() for the idiom). Idempotent.
 */
void ensureBuiltinDataplanePolicies();

} // namespace nmapsim

#endif // NMAPSIM_DATAPLANE_POLICY_HH_
