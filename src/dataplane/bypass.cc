#include "dataplane/bypass.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

PollThread::PollThread(BypassEngine &engine, ServerOs &os, Nic &nic,
                       int poll_core, std::vector<int> queues,
                       const DataplanePlan &plan,
                       std::unique_ptr<DataplanePolicy> policy)
    : engine_(engine), os_(os), nic_(nic),
      eq_(os.core(poll_core).eventQueue()), core_(poll_core),
      queues_(std::move(queues)), pollBatch_(plan.pollBatch),
      armIrq_(plan.sleepArmedIrq), rxCycles_(plan.rxPacketCycles),
      txCycles_(plan.txCompletionCycles), policy_(std::move(policy)),
      sleepEvent_(this, "pmd.sleepExpired")
{
}

PollThread::~PollThread()
{
    // The run can end mid-sleep; release the pending timer.
    eq_.deschedule(&sleepEvent_);
}

double
PollThread::beginSlice()
{
    if (pollInFlight_)
        panic("beginSlice while a poll batch is in flight");
    pollInFlight_ = true;

    stash_.clear();
    stashTx_ = 0;
    Packet pkt;
    const OsConfig &cfg = os_.config();
    for (int q : queues_) {
        // One burst can never carry more descriptors than the ring
        // holds, so a ring_degrade fault shrinking the ring between
        // polls bounds the very next harvest.
        std::size_t budget = std::min<std::size_t>(
            static_cast<std::size_t>(pollBatch_), nic_.rxRingSize());
        while (budget > 0 && nic_.popRx(q, pkt)) {
            stash_.push_back(pkt);
            --budget;
        }
        stashTx_ += nic_.consumeTx(
            q, static_cast<std::uint32_t>(cfg.txCleanBudget));
    }

    // Count at harvest time (the popRx/consumeTx accounting NAPI also
    // uses), so every descriptor taken off the NIC is attributed even
    // if the run — or a ring fault — lands mid-poll.
    std::uint32_t rx = static_cast<std::uint32_t>(stash_.size());
    harvestedRx_ += rx;
    harvestedTx_ += stashTx_;

    // Bypass per-packet pricing (DataplanePlan), not the kernel
    // stack's: the user-space datapath is what makes one poll core
    // worth several NAPI cores.
    double cycles = cfg.pollOverheadCycles;
    cycles += static_cast<double>(rx) * rxCycles_;
    cycles += static_cast<double>(stashTx_) * txCycles_;

    ++pollLoops_;
    totalCycles_ += cycles;
    if (rx == 0 && stashTx_ == 0) {
        ++emptyPolls_;
        emptyCycles_ += cycles;
    }
    return cycles;
}

void
PollThread::completeSlice()
{
    if (!pollInFlight_)
        panic("completeSlice without a poll batch in flight");
    pollInFlight_ = false;

    // Same ping-pong as NapiContext::completePoll(): delivery can
    // re-enter the scheduler, and a re-entrant beginSlice must not
    // clobber the batch being delivered.
    if (deliveryInFlight_)
        panic("re-entrant poll delivery");
    deliveryInFlight_ = true;
    delivering_.clear();
    delivering_.swap(stash_);
    std::uint32_t batch_tx = stashTx_;
    stashTx_ = 0;

    for (const Packet &p : delivering_) {
        if (p.kind == Packet::Kind::kRequest)
            engine_.deliver(p);
    }
    deliveryInFlight_ = false;

    DataplanePollStats stats;
    stats.now = eq_.now();
    stats.harvestedRx = static_cast<std::uint32_t>(delivering_.size());
    stats.harvestedTx = batch_tx;
    stats.pollBatch = pollBatch_;
    for (int q : queues_)
        stats.ringOccupancy += nic_.rxDepth(q);

    Tick sleep = policy_->sleepAfterPoll(stats);
    if (sleep > 0)
        goToSleep(sleep);
    // sleep == 0: still runnable; the scheduler re-enqueues us and the
    // PMD loop continues back to back.
}

void
PollThread::goToSleep(Tick duration)
{
    sleeping_ = true;
    sleepStart_ = eq_.now();
    ++sleeps_;
    // Schedule the timer before arming: arming can wake us
    // synchronously (pending work raises the interrupt at once), and
    // the wake path must find the timer to cancel.
    eq_.scheduleIn(&sleepEvent_, duration);
    if (armIrq_)
        armOwnedIrqs();
}

void
PollThread::sleepExpired()
{
    if (!sleeping_)
        return;
    wakeFromSleep();
    os_.sched(core_).threadRunnable(this);
}

void
PollThread::onIrqWake()
{
    // Spurious when a second armed queue's interrupt lands after the
    // first already woke us; the hardirq's cycle cost is still charged
    // by the scheduler, which is exactly the real-hardware penalty.
    if (!sleeping_)
        return;
    eq_.deschedule(&sleepEvent_);
    wakeFromSleep();
    os_.sched(core_).threadRunnable(this);
}

void
PollThread::wakeFromSleep()
{
    sleepResidency_ += eq_.now() - sleepStart_;
    sleeping_ = false;
    if (armIrq_)
        disarmOwnedIrqs();
}

void
PollThread::armOwnedIrqs()
{
    for (int q : queues_) {
        // enableIrq can synchronously raise and wake us mid-loop;
        // once awake, arming the rest would leak enabled interrupts
        // into the poll phase.
        if (!sleeping_)
            return;
        nic_.enableIrq(q);
    }
}

void
PollThread::disarmOwnedIrqs()
{
    for (int q : queues_)
        nic_.disableIrq(q);
}

BypassEngine::BypassEngine(ServerOs &os, Nic &nic,
                           const DataplanePlan &plan,
                           const PolicyParams &params)
    : os_(os), nic_(nic), plan_(plan), pollMeter_(0.0)
{
    if (!plan_.bypass())
        fatal("BypassEngine requires dataplane.mode=bypass");
    if (plan_.pollCores >= os_.numCores())
        fatal("dataplane.poll_cores must leave at least one worker "
              "core (poll_cores=" + std::to_string(plan_.pollCores) +
              ", cores=" + std::to_string(os_.numCores()) + ")");

    ensureBuiltinDataplanePolicies();
    DataplaneContext ctx{params};
    const int K = plan_.pollCores;
    for (int p = 0; p < K; ++p) {
        std::vector<int> queues;
        for (int q = p; q < nic_.numQueues(); q += K)
            queues.push_back(q);
        pollers_.push_back(std::make_unique<PollThread>(
            *this, os_, nic_, p, std::move(queues), plan_,
            DataplanePolicyRegistry::instance().make(plan_.policy,
                                                     ctx)));
        pollMeter_.addMeter(&os_.core(p).meter());
    }

    // Take over the interrupt plumbing: queue interrupts (only ever
    // armed during sleeps) land on the owning poll core, and that
    // core's hardirq wakes its poller instead of scheduling NAPI.
    nic_.setIrqHandler([this, K](int q) { os_.sched(q % K).handleIrq(); });
    for (int p = 0; p < K; ++p)
        os_.sched(p).setIrqDelegate(
            [t = pollers_[static_cast<std::size_t>(p)].get()] {
                t->onIrqWake();
            });
}

void
BypassEngine::start()
{
    for (int q = 0; q < nic_.numQueues(); ++q)
        nic_.disableIrq(q);
    // Kicks each idle poll core awake; the PMD loops run from t=0.
    for (int p = 0; p < pollCores(); ++p)
        os_.sched(p).threadRunnable(
            pollers_[static_cast<std::size_t>(p)].get());
}

void
BypassEngine::deliver(const Packet &pkt)
{
    int workers = workerCores();
    int worker =
        pollCores() +
        static_cast<int>(pkt.flowHash %
                         static_cast<std::uint32_t>(workers));
    os_.deliverToApp(worker, pkt);
}

void
BypassEngine::startMeasurement(Tick now)
{
    pollMeter_.startMeasurement(now);
}

double
BypassEngine::pollEnergyJoules(Tick now) const
{
    return pollMeter_.energyJoules(now);
}

double
BypassEngine::wastedPollEnergyJoules(Tick now) const
{
    double total = 0.0;
    double empty = 0.0;
    for (const auto &poller : pollers_) {
        total += poller->totalPollCycles();
        empty += poller->emptyPollCycles();
    }
    if (total <= 0.0)
        return 0.0;
    return pollEnergyJoules(now) * (empty / total);
}

BypassEngine::Stats
BypassEngine::stats() const
{
    Stats s;
    double total = 0.0;
    double empty = 0.0;
    for (const auto &poller : pollers_) {
        s.pollLoops += poller->pollLoops();
        s.emptyPolls += poller->emptyPolls();
        s.sleeps += poller->sleeps();
        s.sleepResidency += poller->sleepResidency();
        s.pktsHarvested += poller->harvested();
        total += poller->totalPollCycles();
        empty += poller->emptyPollCycles();
    }
    s.wastedPollCycleShare = total > 0.0 ? empty / total : 0.0;
    return s;
}

} // namespace nmapsim
