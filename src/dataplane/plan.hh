/**
 * @file
 * Declarative dataplane modality: how packets get from the NIC rings
 * into the application.
 *
 * A DataplanePlan is parsed from the ordinary key=value config pipeline
 * (`dataplane.*` namespace in ExperimentConfig::params), validated
 * once, and consulted by the harness when assembling a rig. The default
 * plan (`mode = napi`) is the zero-config bypass: no engine is
 * constructed, the NIC interrupt path stays exactly as ServerOs wired
 * it, and the simulation is bit-for-bit the same as before the
 * dataplane subsystem existed.
 *
 * `mode = bypass` dedicates the first `poll_cores` cores to a DPDK-style
 * PMD loop: interrupts are masked, each poll core harvests its share of
 * the NIC queues directly with a per-poll batch limit, and a registered
 * dataplane policy (see dataplane/policy.hh) decides after every poll
 * whether to keep spinning or sleep — optionally with the queue
 * interrupts re-armed so a packet arrival cuts the sleep short.
 */

#ifndef NMAPSIM_DATAPLANE_PLAN_HH_
#define NMAPSIM_DATAPLANE_PLAN_HH_

#include <string>

#include "harness/policy_params.hh"

namespace nmapsim {

/** Validated dataplane configuration (see `dataplane.*` config keys). */
struct DataplanePlan
{
    enum class Mode
    {
        kNapi,   //!< kernel interrupt/NAPI path (the default)
        kBypass, //!< dedicated busy-poll cores, no interrupts
    };

    Mode mode = Mode::kNapi;

    /** Dedicated poll cores (ids [0, pollCores)); bypass only. Must
     *  leave at least one worker core — checked where the core count
     *  is known (Experiment / ClusterHost construction). */
    int pollCores = 1;

    /** Max Rx packets harvested per queue per poll iteration. */
    int pollBatch = 32;

    /** Sleep policy consulted after every poll, by
     *  DataplanePolicyRegistry name ("spin", "metronome"). */
    std::string policy = "spin";

    /** Re-arm the queue interrupts while a poll core sleeps, so an
     *  arrival wakes it early instead of waiting out the sleep. */
    bool sleepArmedIrq = false;

    /** Per-Rx-packet poll-core cost in cycles. The kernel path charges
     *  OsConfig::rxPacketCycles (5600: driver + IP + TCP + socket); a
     *  user-space stack over mapped rings does the same work in a
     *  fraction of that — the cycle savings kernel-bypass papers
     *  measure ("Enabling Kernel Bypass Networking on gem5"). */
    double rxPacketCycles = 1400;

    /** Per-Tx-completion poll-core cost in cycles (kernel: 250). */
    double txCompletionCycles = 100;

    bool bypass() const { return mode == Mode::kBypass; }

    /**
     * Build a plan from the `dataplane.*` keys in @p params. Unknown
     * `dataplane.*` keys and out-of-range values are fatal (config
     * errors); non-dataplane keys are ignored. A params blob without
     * dataplane keys yields the default NAPI plan.
     */
    static DataplanePlan fromParams(const PolicyParams &params);
};

} // namespace nmapsim

#endif // NMAPSIM_DATAPLANE_PLAN_HH_
