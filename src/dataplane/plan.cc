#include "dataplane/plan.hh"

#include "sim/logging.hh"

namespace nmapsim {
namespace {

constexpr const char *kKnownKeys[] = {
    "dataplane.mode",
    "dataplane.poll_cores",
    "dataplane.poll_batch",
    "dataplane.policy",
    "dataplane.sleep_armed_irq",
    "dataplane.rx_packet_cycles",
    "dataplane.tx_completion_cycles",
};

bool
isKnownDataplaneKey(const std::string &key)
{
    for (const char *known : kKnownKeys)
        if (key == known)
            return true;
    return false;
}

} // namespace

DataplanePlan
DataplanePlan::fromParams(const PolicyParams &params)
{
    for (const auto &[key, value] : params) {
        if (key.rfind("dataplane.", 0) == 0 &&
            !isKnownDataplaneKey(key))
            fatal("unknown dataplane key '" + key + "'");
    }

    DataplanePlan plan;
    const std::string mode = params.raw("dataplane.mode");
    if (mode.empty() || mode == "napi")
        plan.mode = Mode::kNapi;
    else if (mode == "bypass")
        plan.mode = Mode::kBypass;
    else
        fatal("dataplane.mode must be 'napi' or 'bypass', got '" +
              mode + "'");

    plan.pollCores = params.getInt("dataplane.poll_cores", 1);
    plan.pollBatch = params.getInt("dataplane.poll_batch", 32);
    if (params.has("dataplane.policy"))
        plan.policy = params.raw("dataplane.policy");
    plan.sleepArmedIrq =
        params.getBool("dataplane.sleep_armed_irq", false);
    plan.rxPacketCycles =
        params.getDouble("dataplane.rx_packet_cycles", 1400);
    plan.txCompletionCycles =
        params.getDouble("dataplane.tx_completion_cycles", 100);

    if (plan.pollCores < 1)
        fatal("dataplane.poll_cores must be >= 1");
    if (plan.pollBatch < 1)
        fatal("dataplane.poll_batch must be >= 1");
    if (plan.policy.empty())
        fatal("dataplane.policy must name a registered policy");
    if (plan.rxPacketCycles <= 0)
        fatal("dataplane.rx_packet_cycles must be > 0");
    if (plan.txCompletionCycles <= 0)
        fatal("dataplane.tx_completion_cycles must be > 0");

    // The non-mode keys only steer the bypass engine; rejecting them
    // under NAPI catches configs that meant to flip the mode.
    if (!plan.bypass()) {
        for (const char *key :
             {"dataplane.poll_cores", "dataplane.poll_batch",
              "dataplane.policy", "dataplane.sleep_armed_irq",
              "dataplane.rx_packet_cycles",
              "dataplane.tx_completion_cycles"}) {
            if (params.has(key))
                fatal(std::string("'") + key +
                      "' requires dataplane.mode=bypass");
        }
    }
    return plan;
}

} // namespace nmapsim
