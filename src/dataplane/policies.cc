/**
 * @file
 * Built-in dataplane sleep policies.
 *
 * `spin` is the DPDK default: the poll core never sleeps, burning a
 * full core per poll thread for the lowest possible latency. It is the
 * upper anchor of the energy-vs-latency frontier.
 *
 * `metronome` models Metronome's intermittent sleep-based packet
 * retrieval (arxiv 2103.13263): instead of busy-waiting between
 * arrivals, the poll thread sleeps for an adaptively-controlled
 * duration and harvests whatever accumulated when it wakes. The
 * controller targets a ring-occupancy setpoint — backlog above the
 * setpoint shrinks the sleep multiplicatively (catch up), backlog at
 * or below it grows the sleep (save energy), both clamped to
 * [min_sleep, max_sleep]. The paper's multi-thread variant hands out
 * "tickets" so N threads share the polling duty; with the duty rotated
 * the effective gap between polls is sleep/tickets, which is how the
 * `metronome.tickets` tunable enters the model.
 *
 * Both policies are pure functions of poll history — no RNG, no wall
 * clock — so bypass runs stay byte-reproducible.
 */

#include <algorithm>
#include <memory>

#include "dataplane/policy.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace nmapsim {
namespace {

/** Pure busy polling: never sleep, poll again immediately. */
class SpinPolicy : public DataplanePolicy
{
  public:
    Tick
    sleepAfterPoll(const DataplanePollStats &) override
    {
        return 0;
    }
};

std::unique_ptr<DataplanePolicy>
makeSpinPolicy(const DataplaneContext &)
{
    return std::make_unique<SpinPolicy>();
}

REGISTER_DATAPLANE_POLICY(
    "spin", &makeSpinPolicy,
    "DPDK-style pure busy poll; poll cores never sleep");

/** Metronome's adaptive intermittent sleep (arxiv 2103.13263). */
class MetronomePolicy : public DataplanePolicy
{
  public:
    MetronomePolicy(Tick min_sleep, Tick max_sleep, double setpoint,
                    double grow, double shrink, int tickets)
        : minSleep_(min_sleep), maxSleep_(max_sleep),
          setpoint_(setpoint), grow_(grow), shrink_(shrink),
          tickets_(tickets), sleep_(static_cast<double>(max_sleep))
    {
    }

    Tick
    sleepAfterPoll(const DataplanePollStats &stats) override
    {
        // Multiplicative control toward the occupancy setpoint: leftover
        // backlog means we slept too long, an under-full batch means we
        // can afford a longer nap.
        double occupancy = static_cast<double>(stats.ringOccupancy) +
                           static_cast<double>(stats.harvestedRx);
        if (occupancy > setpoint_)
            sleep_ *= shrink_;
        else
            sleep_ *= grow_;
        sleep_ = std::clamp(sleep_, static_cast<double>(minSleep_),
                            static_cast<double>(maxSleep_));
        // With N ticket-holding threads rotating the polling duty, the
        // per-thread sleep stays `sleep_` but the ring is visited every
        // sleep_/N — model the visit rate, which is what latency sees.
        return std::max<Tick>(
            1, static_cast<Tick>(sleep_) / static_cast<Tick>(tickets_));
    }

  private:
    const Tick minSleep_;
    const Tick maxSleep_;
    const double setpoint_;
    const double grow_;
    const double shrink_;
    const int tickets_;
    double sleep_;
};

std::unique_ptr<DataplanePolicy>
makeMetronomePolicy(const DataplaneContext &ctx)
{
    Tick min_sleep =
        ctx.params.getTick("metronome.min_sleep", microseconds(1));
    Tick max_sleep =
        ctx.params.getTick("metronome.max_sleep", microseconds(64));
    double setpoint = ctx.params.getDouble("metronome.setpoint", 16.0);
    double grow = ctx.params.getDouble("metronome.grow", 1.5);
    double shrink = ctx.params.getDouble("metronome.shrink", 0.5);
    int tickets = ctx.params.getInt("metronome.tickets", 1);

    if (min_sleep <= 0)
        fatal("metronome.min_sleep must be > 0");
    if (max_sleep < min_sleep)
        fatal("metronome.max_sleep must be >= metronome.min_sleep");
    if (setpoint <= 0.0)
        fatal("metronome.setpoint must be > 0");
    if (grow <= 1.0)
        fatal("metronome.grow must be > 1");
    if (shrink <= 0.0 || shrink >= 1.0)
        fatal("metronome.shrink must be in (0, 1)");
    if (tickets < 1)
        fatal("metronome.tickets must be >= 1");

    return std::make_unique<MetronomePolicy>(min_sleep, max_sleep,
                                             setpoint, grow, shrink,
                                             tickets);
}

REGISTER_DATAPLANE_POLICY(
    "metronome", &makeMetronomePolicy,
    "Metronome intermittent sleep: adaptive sleep toward a "
    "ring-occupancy setpoint (arxiv 2103.13263)");

} // namespace

// Anchor so ensureBuiltinDataplanePolicies() can force this TU (and its
// static registrars) out of the archive; see policy.cc.
void
linkDataplanePolicies()
{
}

} // namespace nmapsim
