/**
 * @file
 * The DVFS controller of Parties (Chen et al., ASPLOS 2019), as used in
 * the paper's Section 6.3 long-term comparison (Fig. 16).
 *
 * Parties is a feedback controller: every 500 ms it obtains the tail
 * latency measured at the clients and computes the slack against the
 * SLO. Negative slack raises the chip-wide V/F (more steps the worse
 * the violation); comfortable slack lowers it one step. The long
 * decision interval is inherent — tail latency must be accumulated from
 * clients — and is exactly why it cannot track 100 ms-scale bursts.
 */

#ifndef NMAPSIM_BASELINES_PARTIES_HH_
#define NMAPSIM_BASELINES_PARTIES_HH_

#include "governors/freq_governor.hh"
#include "sim/event_queue.hh"
#include "workload/client.hh"

namespace nmapsim {

/** Parties tunables. */
struct PartiesConfig
{
    Tick interval = milliseconds(500); //!< decision period (paper 6.3)
    Tick slo = milliseconds(1);        //!< target P99
    double downSlack = 0.35; //!< slack above which V/F steps down
    double upAggression = 1.0; //!< extra up-steps per unit of violation
};

/** Slack-driven chip-wide DVFS controller. */
class PartiesGovernor : public FreqGovernor
{
  public:
    PartiesGovernor(EventQueue &eq, std::vector<Core *> cores,
                    Client &client, const PartiesConfig &config);
    ~PartiesGovernor() override;

    void start() override;
    std::string name() const override { return "Parties"; }

    int chipPState() const { return chipIdx_; }

    /** Slack computed at the last decision, in fractions of the SLO. */
    double lastSlack() const { return lastSlack_; }

  private:
    void tick();
    void applyChipWide(int idx);

    EventQueue &eq_;
    std::vector<Core *> cores_;
    Client &client_;
    PartiesConfig config_;

    int chipIdx_ = 0;
    double lastSlack_ = 0.0;

    EventFunctionWrapper tickEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_BASELINES_PARTIES_HH_
