/**
 * @file
 * Software re-implementation of NCAP (Alian et al., HPCA 2017), the
 * paper's main state-of-the-art comparison (Section 6.3).
 *
 * NCAP watches the NIC: it classifies latency-critical request packets
 * and measures their arrival rate each monitoring period. When the rate
 * exceeds a threshold it maximises the V/F of *all* cores (chip-wide
 * DVFS) and — in the original variant — disables the sleep states;
 * when the rate falls it steps the chip-wide V/F down gradually until
 * it reaches the utilisation governor's level, then hands control back.
 * The paper's software version uses a slightly longer monitoring period
 * than the HPCA hardware, which we default to 1 ms.
 *
 * NCAP-menu is the same policy with the sleep-state override turned
 * off (menu governor stays active).
 */

#ifndef NMAPSIM_BASELINES_NCAP_HH_
#define NMAPSIM_BASELINES_NCAP_HH_

#include <memory>

#include "governors/freq_governor.hh"
#include "governors/ondemand.hh"
#include "governors/switchable_idle.hh"
#include "net/nic.hh"
#include "os/cpuidle.hh"
#include "sim/event_queue.hh"

namespace nmapsim {

/** NCAP tunables. */
struct NcapConfig
{
    Tick monitorPeriod = microseconds(500); //!< software-version period
                                            //!< (tuned to meet the SLO
                                            //!< at high load, 6.3)
    double rpsThreshold = 10e3; //!< latency-critical RPS burst trigger
    bool disableSleepOnBurst = true; //!< false for NCAP-menu
};

/** Chip-wide, NIC-driven power manager. */
class NcapGovernor : public FreqGovernor
{
  public:
    NcapGovernor(EventQueue &eq, std::vector<Core *> cores, Nic &nic,
                 const NcapConfig &config,
                 const GovernorConfig &gov_config = {});
    ~NcapGovernor() override;

    void start() override;

    std::string
    name() const override
    {
        return config_.disableSleepOnBurst ? "NCAP" : "NCAP-menu";
    }

    /** The sleep-state override NCAP drives; attach it as the OS's
     *  idle governor (wrap your menu instance). May stay null for
     *  NCAP-menu. */
    void setIdleOverride(SwitchableIdleGovernor *ovr) { idleOvr_ = ovr; }

    bool burstMode() const { return burstMode_; }
    int chipPState() const { return chipIdx_; }

    OndemandGovernor &fallback() { return *fallback_; }

  private:
    void onPacket();
    void tick();
    void applyChipWide(int idx);

    EventQueue &eq_;
    std::vector<Core *> cores_;
    NcapConfig config_;
    std::unique_ptr<OndemandGovernor> fallback_;
    SwitchableIdleGovernor *idleOvr_ = nullptr;

    std::uint64_t windowCount_ = 0;
    bool burstMode_ = false;
    int chipIdx_ = 0;

    EventFunctionWrapper tickEvent_;
};

} // namespace nmapsim

#endif // NMAPSIM_BASELINES_NCAP_HH_
