#include "baselines/parties.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace nmapsim {

PartiesGovernor::PartiesGovernor(EventQueue &eq,
                                 std::vector<Core *> cores,
                                 Client &client,
                                 const PartiesConfig &config)
    : eq_(eq), cores_(std::move(cores)), client_(client),
      config_(config), tickEvent_([this] { tick(); }, "parties.tick")
{
    if (cores_.empty())
        fatal("PartiesGovernor requires at least one core");
}

PartiesGovernor::~PartiesGovernor()
{
    eq_.deschedule(&tickEvent_);
}

void
PartiesGovernor::start()
{
    // Parties begins from a mid-range allocation and lets feedback
    // settle it.
    applyChipWide(cores_.front()->profile().pstates.maxIndex() / 2);
    eq_.scheduleIn(&tickEvent_, config_.interval);
}

void
PartiesGovernor::applyChipWide(int idx)
{
    chipIdx_ = cores_.front()->profile().pstates.clampIndex(idx);
    for (Core *core : cores_)
        core->dvfs().requestPState(chipIdx_);
}

void
PartiesGovernor::tick()
{
    Tick p99 = client_.windowP99AndReset();
    if (p99 > 0) {
        double slack = static_cast<double>(config_.slo - p99) /
                       static_cast<double>(config_.slo);
        lastSlack_ = slack;
        if (slack < 0.0) {
            int steps = 1 + static_cast<int>(std::ceil(
                                -slack * config_.upAggression));
            applyChipWide(chipIdx_ - steps);
        } else if (slack > config_.downSlack) {
            applyChipWide(chipIdx_ + 1);
        }
    } else {
        // No completed requests this window: idle, drift down.
        applyChipWide(chipIdx_ + 1);
    }
    eq_.scheduleIn(&tickEvent_, config_.interval);
}

} // namespace nmapsim

// --- Policy-registry entry ---------------------------------------------

#include "harness/policy_registry.hh"
#include "workload/client.hh"

namespace nmapsim {

void
linkPartiesPolicy()
{
}

namespace {

FreqPolicyInstance
makeParties(PolicyContext &ctx)
{
    if (!ctx.client)
        fatal("Parties needs a client-side tail-latency feed, which "
              "this harness does not provide");
    PartiesConfig config;
    config.interval =
        ctx.params.getTick("parties.interval", config.interval);
    config.slo = ctx.params.getTick("parties.slo", 0);
    if (config.slo <= 0)
        config.slo = ctx.app.slo;
    config.downSlack =
        ctx.params.getDouble("parties.down_slack", config.downSlack);
    config.upAggression = ctx.params.getDouble("parties.up_aggression",
                                               config.upAggression);
    return {std::make_unique<PartiesGovernor>(ctx.eq, ctx.cores,
                                              *ctx.client, config),
            nullptr};
}

REGISTER_FREQ_POLICY(
    "Parties", &makeParties,
    "Parties (ASPLOS'19) slack-driven chip-wide DVFS controller");

} // namespace
} // namespace nmapsim
