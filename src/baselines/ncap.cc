#include "baselines/ncap.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace nmapsim {

NcapGovernor::NcapGovernor(EventQueue &eq, std::vector<Core *> cores,
                           Nic &nic, const NcapConfig &config,
                           const GovernorConfig &gov_config)
    : eq_(eq), cores_(std::move(cores)), config_(config),
      tickEvent_([this] { tick(); }, "ncap.tick")
{
    if (cores_.empty())
        fatal("NcapGovernor requires at least one core");
    fallback_ =
        std::make_unique<OndemandGovernor>(eq, cores_, gov_config);
    // NCAP classifies latency-critical requests at the (programmable)
    // NIC; here that is the packet observer hook.
    nic.addPacketObserver([this](const Packet &pkt) {
        if (pkt.latencyCritical && pkt.kind == Packet::Kind::kRequest)
            onPacket();
    });
}

NcapGovernor::~NcapGovernor()
{
    eq_.deschedule(&tickEvent_);
}

void
NcapGovernor::start()
{
    fallback_->start();
    eq_.scheduleIn(&tickEvent_, config_.monitorPeriod);
}

void
NcapGovernor::onPacket()
{
    ++windowCount_;
}

void
NcapGovernor::applyChipWide(int idx)
{
    chipIdx_ = cores_.front()->profile().pstates.clampIndex(idx);
    for (Core *core : cores_)
        core->dvfs().requestPState(chipIdx_);
}

void
NcapGovernor::tick()
{
    double rps = static_cast<double>(windowCount_) /
                 toSeconds(config_.monitorPeriod);
    windowCount_ = 0;

    if (rps > config_.rpsThreshold) {
        if (!burstMode_) {
            burstMode_ = true;
            for (std::size_t i = 0; i < cores_.size(); ++i)
                fallback_->setEnabled(static_cast<int>(i), false);
            if (config_.disableSleepOnBurst && idleOvr_)
                idleOvr_->setForceAwake(true);
        }
        applyChipWide(0);
    } else if (burstMode_) {
        // Gradual decrease: one chip-wide state per period until the
        // utilisation governor's own choice is reached.
        int od_idx = 0;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            int core = static_cast<int>(i);
            od_idx = std::max(
                od_idx, fallback_->stateForUtil(
                            core, fallback_->lastUtil(core)));
        }
        int next = chipIdx_ + 1;
        if (next >= od_idx) {
            burstMode_ = false;
            if (config_.disableSleepOnBurst && idleOvr_)
                idleOvr_->setForceAwake(false);
            for (std::size_t i = 0; i < cores_.size(); ++i) {
                int core = static_cast<int>(i);
                fallback_->enforceNow(core);
                fallback_->setEnabled(core, true);
            }
        } else {
            applyChipWide(next);
        }
    }
    eq_.scheduleIn(&tickEvent_, config_.monitorPeriod);
}

} // namespace nmapsim

// --- Policy-registry entries -------------------------------------------

#include "harness/policy_registry.hh"

namespace nmapsim {

void
linkNcapPolicies()
{
}

namespace {

FreqPolicyInstance
makeNcapVariant(PolicyContext &ctx, bool disable_sleep_on_burst)
{
    NcapConfig config;
    config.monitorPeriod =
        ctx.params.getTick("ncap.monitor_period", config.monitorPeriod);
    config.rpsThreshold =
        ctx.params.getDouble("ncap.rps_threshold", config.rpsThreshold);
    config.disableSleepOnBurst = disable_sleep_on_burst;
    auto ncap = std::make_unique<NcapGovernor>(ctx.eq, ctx.cores,
                                               ctx.nic, config, ctx.gov);
    if (disable_sleep_on_burst)
        ncap->setIdleOverride(&ctx.requestSwitchableIdle());
    return {std::move(ncap), nullptr};
}

REGISTER_FREQ_POLICY(
    "NCAP",
    [](PolicyContext &ctx) { return makeNcapVariant(ctx, true); },
    "NCAP (HPCA'17): NIC-rate chip-wide DVFS, sleep disabled on burst");
REGISTER_FREQ_POLICY(
    "NCAP-menu",
    [](PolicyContext &ctx) { return makeNcapVariant(ctx, false); },
    "NCAP without the sleep-state override");

} // namespace
} // namespace nmapsim
