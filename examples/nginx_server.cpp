/**
 * @file
 * Example: an nginx-like web server with a latency-load sweep.
 *
 * Sweeps the offered load and compares three governors on the
 * latency-load curve — the view used to pick an SLO at the inflection
 * point (Section 3 / Fig. 8 methodology), here for the heavier
 * 10 ms-SLO web workload.
 *
 * Run: ./build/examples/nginx_server
 */

#include <iostream>

#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    AppProfile app = AppProfile::nginx();
    std::cout << "nginx on a Xeon Gold 6134, SLO: P99 < 10 ms\n"
              << "latency-load curve, 3 governors\n\n";

    ExperimentConfig base;
    base.app = app;
    auto [ni_th, cu_th] = Experiment::profileThresholds(base);

    Table table({"avg RPS", "ondemand P99 (ms)", "NMAP P99 (ms)",
                 "performance P99 (ms)", "NMAP energy vs perf"});
    for (double avg : {14e3, 28e3, 42e3, 48e3, 56e3}) {
        std::vector<std::string> row{
            Table::num(avg / 1e3, 0) + "K"};
        double nmap_energy = 0.0;
        double perf_energy = 0.0;
        for (const char *policyName : {"ondemand", "NMAP",
                                       "performance"}) {
            const std::string policy = policyName;
            ExperimentConfig cfg = base;
            cfg.freqPolicy = policy;
            cfg.load = LoadLevel::kHigh; // duty/train shape of high
            cfg.rpsOverride = avg / app.high.duty;
            cfg.duration = seconds(1);
            cfg.params.set("nmap.ni_th", ni_th);
            cfg.params.set("nmap.cu_th", cu_th);
            ExperimentResult r = Experiment(cfg).run();
            row.push_back(Table::num(toMilliseconds(r.p99), 2));
            if (policy == "NMAP")
                nmap_energy = r.energyJoules;
            if (policy == "performance")
                perf_energy = r.energyJoules;
        }
        row.push_back(Table::pct(nmap_energy / perf_energy - 1.0));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nThe ondemand curve crosses the 10 ms SLO well "
                 "before the performance curve does; NMAP follows the "
                 "performance curve at a fraction of its energy.\n";
    return 0;
}
