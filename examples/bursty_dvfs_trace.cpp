/**
 * @file
 * Example: watch a governor ride a traffic burst, millisecond by
 * millisecond — the NAPI mode counters, the ksoftirqd activity and the
 * P-state, side by side (the view behind the paper's Fig. 2 and 9).
 *
 * Usage: ./build/examples/bursty_dvfs_trace [ondemand|nmap|nmap-simpl|
 *        performance|ncap]
 */

#include <cstring>
#include <iostream>

#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

std::string
parsePolicy(const char *arg)
{
    if (std::strcmp(arg, "nmap") == 0)
        return "NMAP";
    if (std::strcmp(arg, "nmap-simpl") == 0)
        return "NMAP-simpl";
    if (std::strcmp(arg, "performance") == 0)
        return "performance";
    if (std::strcmp(arg, "ncap") == 0)
        return "NCAP";
    return "ondemand";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string policy =
        argc > 1 ? parsePolicy(argv[1]) : "ondemand";
    AppProfile app = AppProfile::memcached();

    ExperimentConfig cfg;
    cfg.app = app;
    cfg.freqPolicy = policy;
    cfg.load = LoadLevel::kHigh;
    cfg.collectTraces = true;
    cfg.duration = milliseconds(120); // a full burst + the idle tail
    ExperimentResult r = Experiment(cfg).run();

    std::cout << "one burst under the " << policy.c_str()
              << " governor (memcached, high load; P-state 0 = "
                 "3.2 GHz, 15 = 1.2 GHz)\n\n";
    Table table({"t (ms)", "pkts intr", "pkts poll", "ksoftirqd",
                 "P-state(core0)"});
    const TraceCollector &tc = *r.traces;
    for (Tick t = cfg.warmup; t < cfg.warmup + milliseconds(110);
         t += milliseconds(2)) {
        table.addRow({
            Table::num(toMilliseconds(t - cfg.warmup), 0),
            Table::num(tc.intrSeries().at(t) +
                           tc.intrSeries().at(t + milliseconds(1)),
                       0),
            Table::num(tc.pollSeries().at(t) +
                           tc.pollSeries().at(t + milliseconds(1)),
                       0),
            std::to_string(tc.ksoftirqdWakes().countInWindow(
                t, t + milliseconds(2))),
            Table::num(tc.pstateSeries().at(t), 0),
        });
    }
    table.print(std::cout);
    std::cout << "\nrun P99 = " << toMicroseconds(r.p99)
              << " us; V/F transitions = " << r.pstateTransitions
              << "\nTry: bursty_dvfs_trace nmap   (early-burst P0, "
                 "quick fallback)\n";
    return 0;
}
