/**
 * @file
 * Command-line experiment driver: run any configuration of the
 * simulator from flags, without writing C++.
 *
 * Usage examples:
 *     run_experiment --policy nmap --app memcached --load high
 *     run_experiment --policy ondemand --app nginx --load med \
 *                    --idle c6only --duration-ms 2000 --seed 7
 *     run_experiment --policy nmap-adaptive --rps 1.2e6 --duty 0.3 \
 *                    --trains 16 --skew 2 --cores 8 --trace
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "harness/policy_registry.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
usage()
{
    std::printf(
        "run_experiment — drive one nmapsim experiment from flags\n\n"
        "  --policy NAME      frequency policy (default nmap):\n"
        "                     ");
    for (const std::string &name :
         PolicyRegistry::instance().freqNames())
        std::printf("%s ", name.c_str());
    std::printf(
        "\n"
        "  --idle NAME        sleep policy: ");
    for (const std::string &name :
         PolicyRegistry::instance().idleNames())
        std::printf("%s ", name.c_str());
    std::printf(
        "\n"
        "  --app NAME         memcached | nginx (default memcached)\n"
        "  --load LEVEL       low | med | high (default high)\n"
        "  --rps X            override burst height (RPS during burst)\n"
        "  --duty X           override burst duty cycle (0..1]\n"
        "  --trains X         override mean train size\n"
        "  --skew X           connection skew (0 = even RSS)\n"
        "  --cores N          number of cores (default 8)\n"
        "  --duration-ms N    measurement window (default 1000)\n"
        "  --seed N           RNG seed (default 42)\n"
        "  --ni-th X          NMAP NI_TH (default: offline profiling)\n"
        "  --cu-th X          NMAP CU_TH (default: offline profiling)\n"
        "  --pstate N         userspace policy's pinned P-state\n"
        "  --trace            print a 1 ms trace of the run\n"
        "  --help             this text\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ensureBuiltinPolicies();
    ExperimentConfig cfg;
    cfg.freqPolicy = "NMAP";
    bool trace = false;

    auto next_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(arg, "--policy") == 0) {
            std::string v = next_value(i);
            // Pre-registry spelling of intel_powersave.
            if (v == "intel-powersave")
                v = "intel_powersave";
            if (!PolicyRegistry::instance().hasFreq(v)) {
                std::fprintf(stderr, "unknown policy: %s\n",
                             v.c_str());
                return 2;
            }
            cfg.freqPolicy = v;
        } else if (std::strcmp(arg, "--idle") == 0) {
            std::string v = next_value(i);
            if (!PolicyRegistry::instance().hasIdle(v)) {
                std::fprintf(stderr, "unknown idle policy: %s\n",
                             v.c_str());
                return 2;
            }
            cfg.idlePolicy = v;
        } else if (std::strcmp(arg, "--app") == 0) {
            const char *v = next_value(i);
            if (std::strcmp(v, "nginx") == 0) {
                cfg.app = AppProfile::nginx();
            } else if (std::strcmp(v, "memcached") == 0) {
                cfg.app = AppProfile::memcached();
            } else {
                std::fprintf(stderr, "unknown app: %s\n", v);
                return 2;
            }
        } else if (std::strcmp(arg, "--load") == 0) {
            const char *v = next_value(i);
            if (std::strcmp(v, "low") == 0)
                cfg.load = LoadLevel::kLow;
            else if (std::strcmp(v, "med") == 0)
                cfg.load = LoadLevel::kMed;
            else if (std::strcmp(v, "high") == 0)
                cfg.load = LoadLevel::kHigh;
            else {
                std::fprintf(stderr, "unknown load: %s\n", v);
                return 2;
            }
        } else if (std::strcmp(arg, "--rps") == 0) {
            cfg.rpsOverride = std::atof(next_value(i));
        } else if (std::strcmp(arg, "--duty") == 0) {
            cfg.dutyOverride = std::atof(next_value(i));
        } else if (std::strcmp(arg, "--trains") == 0) {
            cfg.trainMeanOverride = std::atof(next_value(i));
        } else if (std::strcmp(arg, "--skew") == 0) {
            cfg.connectionSkew = std::atof(next_value(i));
        } else if (std::strcmp(arg, "--cores") == 0) {
            cfg.numCores = std::atoi(next_value(i));
        } else if (std::strcmp(arg, "--duration-ms") == 0) {
            cfg.duration = milliseconds(std::atof(next_value(i)));
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.seed =
                static_cast<std::uint64_t>(std::atoll(next_value(i)));
        } else if (std::strcmp(arg, "--ni-th") == 0) {
            cfg.params.set("nmap.ni_th", std::atof(next_value(i)));
        } else if (std::strcmp(arg, "--cu-th") == 0) {
            cfg.params.set("nmap.cu_th", std::atof(next_value(i)));
        } else if (std::strcmp(arg, "--pstate") == 0) {
            cfg.params.set("userspace.pstate",
                           std::atoi(next_value(i)));
        } else if (std::strcmp(arg, "--trace") == 0) {
            trace = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s (see --help)\n",
                         arg);
            return 2;
        }
    }
    cfg.collectTraces = trace;

    std::printf("app=%s policy=%s idle=%s load=%s cores=%d "
                "duration=%.0fms seed=%llu\n",
                cfg.app.name.c_str(), cfg.freqPolicy.c_str(),
                cfg.idlePolicy.c_str(),
                loadLevelName(cfg.load), cfg.numCores,
                toMilliseconds(cfg.duration),
                static_cast<unsigned long long>(cfg.seed));

    ExperimentResult r = Experiment(cfg).run();

    Table table({"metric", "value"});
    table.addRow({"P50 latency (us)",
                  Table::num(toMicroseconds(r.p50), 1)});
    table.addRow({"P99 latency (us)",
                  Table::num(toMicroseconds(r.p99), 1)});
    table.addRow({"P99 / SLO", Table::num(static_cast<double>(r.p99) /
                                              static_cast<double>(
                                                  r.slo),
                                          3)});
    table.addRow({"requests over SLO (%)",
                  Table::num(r.fracOverSlo * 100.0, 3)});
    table.addRow({"energy (J)", Table::num(r.energyJoules, 2)});
    table.addRow({"avg package power (W)",
                  Table::num(r.avgPowerWatts, 2)});
    table.addRow({"requests sent", std::to_string(r.requestsSent)});
    table.addRow(
        {"responses received", std::to_string(r.responsesReceived)});
    table.addRow({"NIC drops", std::to_string(r.nicDrops)});
    table.addRow(
        {"pkts interrupt mode", std::to_string(r.pktsIntrMode)});
    table.addRow({"pkts polling mode", std::to_string(r.pktsPollMode)});
    table.addRow(
        {"ksoftirqd wakes", std::to_string(r.ksoftirqdWakes)});
    table.addRow(
        {"V/F transitions", std::to_string(r.pstateTransitions)});
    table.addRow({"CC6 wakes", std::to_string(r.cc6Wakes)});
    table.addRow({"mean core busy fraction",
                  Table::num(r.busyFraction, 3)});
    if (r.niThresholdUsed > 0.0) {
        table.addRow({"NI_TH used", Table::num(r.niThresholdUsed, 1)});
        table.addRow({"CU_TH used", Table::num(r.cuThresholdUsed, 2)});
    }
    table.print(std::cout);

    if (trace && r.traces) {
        std::printf("\nper-ms trace (first 100 ms of measurement):\n");
        Table tr({"t (ms)", "pkts intr", "pkts poll",
                  "P-state(core0)"});
        for (Tick t = cfg.warmup;
             t < cfg.warmup + milliseconds(100) &&
             t < cfg.warmup + cfg.duration;
             t += milliseconds(1)) {
            tr.addRow({
                Table::num(toMilliseconds(t - cfg.warmup), 0),
                Table::num(r.traces->intrSeries().at(t), 0),
                Table::num(r.traces->pollSeries().at(t), 0),
                Table::num(r.traces->pstateSeries().at(t), 0),
            });
        }
        tr.print(std::cout);
    }
    return 0;
}
