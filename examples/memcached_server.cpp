/**
 * @file
 * Example: an 8-core memcached deployment under NMAP.
 *
 * Walks through the full workflow a user of the library follows:
 *  1. profile the NMAP thresholds offline (Section 4.2),
 *  2. run the server at each load level,
 *  3. inspect tail latency, SLO compliance, energy and the NAPI-level
 *     signals NMAP acted on.
 *
 * Run: ./build/examples/memcached_server
 */

#include <iostream>

#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    AppProfile app = AppProfile::memcached();
    std::cout << "memcached on a Xeon Gold 6134 (8 cores, per-core "
                 "DVFS), SLO: P99 < 1 ms\n\n";

    // Step 1: offline threshold profiling at the SLO-inflection load.
    ExperimentConfig base;
    base.app = app;
    base.freqPolicy = "NMAP";
    auto [ni_th, cu_th] = Experiment::profileThresholds(base);
    std::cout << "profiled thresholds: NI_TH = " << ni_th
              << " polling pkts/interrupt, CU_TH = " << cu_th
              << " poll/intr ratio\n\n";

    // Step 2: run each load level with the profiled thresholds.
    Table table({"load", "avg RPS", "P99 (us)", "> SLO (%)",
                 "energy (J)", "poll/intr ratio", "ksoftirqd wakes",
                 "NI entries"});
    for (LoadLevel load :
         {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
        ExperimentConfig cfg = base;
        cfg.load = load;
        cfg.duration = seconds(1);
        cfg.params.set("nmap.ni_th", ni_th);
        cfg.params.set("nmap.cu_th", cu_th);
        ExperimentResult r = Experiment(cfg).run();

        double ratio =
            r.pktsIntrMode
                ? static_cast<double>(r.pktsPollMode) /
                      static_cast<double>(r.pktsIntrMode)
                : 0.0;
        table.addRow({
            loadLevelName(load),
            Table::num(app.level(load).avgRps() / 1e3, 0) + "K",
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(r.fracOverSlo * 100.0, 2),
            Table::num(r.energyJoules, 1),
            Table::num(ratio, 2),
            std::to_string(r.ksoftirqdWakes),
            std::to_string(r.pstateTransitions),
        });
    }
    table.print(std::cout);

    std::cout << "\nNMAP meets the 1 ms SLO at every load level while "
                 "the polling/interrupt ratio — its only input — "
                 "tracks the load.\n";
    return 0;
}
