/**
 * @file
 * Quickstart: run the memcached workload at high load under three
 * frequency policies and compare tail latency and energy.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <iostream>

#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main()
{
    std::cout << "nmapsim quickstart: memcached @ high load (750K RPS "
                 "bursts), Xeon Gold 6134, 8 cores\n\n";

    Table table({"policy", "P99 (ms)", "> SLO (%)", "energy (J)",
                 "avg power (W)", "ksoftirqd wakes", "P-state trans."});

    for (const char *policy : {"ondemand", "performance", "NMAP"}) {
        ExperimentConfig config;
        config.app = AppProfile::memcached();
        config.load = LoadLevel::kHigh;
        config.freqPolicy = policy;
        config.idlePolicy = "menu";
        config.duration = seconds(1);

        ExperimentResult r = Experiment(config).run();
        table.addRow({
            policy,
            Table::num(toMilliseconds(r.p99), 3),
            Table::num(r.fracOverSlo * 100.0, 2),
            Table::num(r.energyJoules, 1),
            Table::num(r.avgPowerWatts, 1),
            std::to_string(r.ksoftirqdWakes),
            std::to_string(r.pstateTransitions),
        });
    }

    table.print(std::cout);
    std::cout << "\nSLO (P99 target) = 1 ms. NMAP should meet the SLO "
                 "at a fraction of the performance governor's energy.\n";
    return 0;
}
