/**
 * @file
 * Example: compare every frequency policy in the library on one
 * workload — the library's governor zoo in a single table. The ten
 * policies run concurrently on the sweep pool (NMAPSIM_JOBS wide).
 *
 * Usage: ./build/examples/governor_shootout [memcached|nginx]
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main(int argc, char **argv)
{
    AppProfile app = (argc > 1 && std::strcmp(argv[1], "nginx") == 0)
                         ? AppProfile::nginx()
                         : AppProfile::memcached();
    std::cout << "governor shootout: " << app.name << " (SLO "
              << toMilliseconds(app.slo) << " ms), high load, menu "
              << "sleep policy\n\n";

    ExperimentConfig base;
    base.app = app;
    auto [ni_th, cu_th] = Experiment::profileThresholds(base);

    const std::vector<std::string> policies = {
        "powersave",   "intel_powersave",
        "ondemand",    "conservative",
        "performance", "Parties",
        "NCAP-menu",    "NCAP",
        "NMAP-simpl",   "NMAP"};

    base.load = LoadLevel::kHigh;
    base.duration = seconds(1);
    base.params.set("nmap.ni_th", ni_th);
    base.params.set("nmap.cu_th", cu_th);
    SweepSpec spec(base);
    spec.policies(policies);

    SweepOptions opts;
    opts.tag = "shootout";
    std::vector<SweepOutcome> outcomes =
        SweepRunner(opts).run(spec.build());

    Table table({"policy", "P99 (us)", "xSLO", "> SLO (%)",
                 "energy (J)", "avg power (W)", "V/F transitions"});
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const ExperimentResult &r = outcomes[spec.index(pi)].value();
        table.addRow({
            policies[pi].c_str(),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.p99) /
                           static_cast<double>(app.slo),
                       2),
            Table::num(r.fracOverSlo * 100.0, 2),
            Table::num(r.energyJoules, 1),
            Table::num(r.avgPowerWatts, 1),
            std::to_string(r.pstateTransitions),
        });
    }
    table.print(std::cout);

    std::cout << "\nReading guide: a policy must keep xSLO <= 1.0; "
                 "among those, lower energy wins. At high load NMAP "
                 "ties the tuned NCAP variants; its energy advantage "
                 "grows at lower loads (see bench/fig15).\n";
    return 0;
}
