/**
 * @file
 * Example: compare every frequency policy in the library on one
 * workload — the library's governor zoo in a single table.
 *
 * Usage: ./build/examples/governor_shootout [memcached|nginx]
 */

#include <cstring>
#include <iostream>

#include "harness/experiment.hh"
#include "stats/table.hh"

using namespace nmapsim;

int
main(int argc, char **argv)
{
    AppProfile app = (argc > 1 && std::strcmp(argv[1], "nginx") == 0)
                         ? AppProfile::nginx()
                         : AppProfile::memcached();
    std::cout << "governor shootout: " << app.name << " (SLO "
              << toMilliseconds(app.slo) << " ms), high load, menu "
              << "sleep policy\n\n";

    ExperimentConfig base;
    base.app = app;
    auto [ni_th, cu_th] = Experiment::profileThresholds(base);

    Table table({"policy", "P99 (us)", "xSLO", "> SLO (%)",
                 "energy (J)", "avg power (W)", "V/F transitions"});
    for (FreqPolicy policy :
         {FreqPolicy::kPowersave, FreqPolicy::kIntelPowersave,
          FreqPolicy::kOndemand, FreqPolicy::kConservative,
          FreqPolicy::kPerformance, FreqPolicy::kParties,
          FreqPolicy::kNcapMenu, FreqPolicy::kNcap,
          FreqPolicy::kNmapSimpl, FreqPolicy::kNmap}) {
        ExperimentConfig cfg = base;
        cfg.freqPolicy = policy;
        cfg.load = LoadLevel::kHigh;
        cfg.duration = seconds(1);
        cfg.nmap.niThreshold = ni_th;
        cfg.nmap.cuThreshold = cu_th;
        ExperimentResult r = Experiment(cfg).run();
        table.addRow({
            freqPolicyName(policy),
            Table::num(toMicroseconds(r.p99), 0),
            Table::num(static_cast<double>(r.p99) /
                           static_cast<double>(app.slo),
                       2),
            Table::num(r.fracOverSlo * 100.0, 2),
            Table::num(r.energyJoules, 1),
            Table::num(r.avgPowerWatts, 1),
            std::to_string(r.pstateTransitions),
        });
    }
    table.print(std::cout);

    std::cout << "\nReading guide: a policy must keep xSLO <= 1.0; "
                 "among those, lower energy wins. At high load NMAP "
                 "ties the tuned NCAP variants; its energy advantage "
                 "grows at lower loads (see bench/fig15).\n";
    return 0;
}
