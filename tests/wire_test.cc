/**
 * @file
 * Unit tests for the link model (serialisation + propagation).
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/wire.hh"
#include "sim/event_queue.hh"

namespace nmapsim {
namespace {

Packet
makePacket(std::uint64_t id, std::uint32_t bytes)
{
    Packet p;
    p.requestId = id;
    p.sizeBytes = bytes;
    return p;
}

TEST(WireTest, DeliversAfterSerializationAndPropagation)
{
    EventQueue eq;
    Wire wire(eq, 10e9, microseconds(5));
    std::vector<Tick> arrivals;
    wire.setSink([&](const Packet &) { arrivals.push_back(eq.now()); });

    wire.send(makePacket(1, 1250)); // 1250 B at 10 Gb/s = 1 us
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], microseconds(6));
}

TEST(WireTest, SerializesBackToBackAtLineRate)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    std::vector<Tick> arrivals;
    wire.setSink([&](const Packet &) { arrivals.push_back(eq.now()); });

    // A train of 4 packets sent at the same instant leaves the wire
    // spaced by the serialisation time.
    for (int i = 0; i < 4; ++i)
        wire.send(makePacket(static_cast<std::uint64_t>(i), 1250));
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(arrivals[static_cast<std::size_t>(i)],
                  microseconds(i + 1));
}

TEST(WireTest, PreservesFifoOrder)
{
    EventQueue eq;
    Wire wire(eq, 10e9, microseconds(2));
    std::vector<std::uint64_t> ids;
    wire.setSink([&](const Packet &p) { ids.push_back(p.requestId); });
    for (std::uint64_t i = 0; i < 10; ++i)
        wire.send(makePacket(i, 100));
    eq.runAll();
    ASSERT_EQ(ids.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(ids[i], i);
}

TEST(WireTest, IdleGapResetsPipeline)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    std::vector<Tick> arrivals;
    wire.setSink([&](const Packet &) { arrivals.push_back(eq.now()); });
    wire.send(makePacket(1, 1250));
    eq.runAll();
    // Second send long after the first: full serialisation again,
    // starting from the send instant.
    Tick gap_start = eq.now() + milliseconds(1);
    EventFunctionWrapper sender(
        [&] { wire.send(makePacket(2, 1250)); }, "sender");
    eq.schedule(&sender, gap_start);
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1], gap_start + microseconds(1));
}

TEST(WireTest, CountsDeliveredPackets)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    wire.setSink([](const Packet &) {});
    for (int i = 0; i < 7; ++i)
        wire.send(makePacket(static_cast<std::uint64_t>(i), 64));
    eq.runAll();
    EXPECT_EQ(wire.packetsDelivered(), 7u);
}

TEST(WireTest, TinyPacketStillTakesTime)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    Tick arrival = -1;
    wire.setSink([&](const Packet &) { arrival = eq.now(); });
    wire.send(makePacket(1, 1));
    eq.runAll();
    EXPECT_GE(arrival, 1);
}

} // namespace
} // namespace nmapsim
