/**
 * @file
 * Unit tests for the link model (serialisation + propagation).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

Packet
makePacket(std::uint64_t id, std::uint32_t bytes)
{
    Packet p;
    p.requestId = id;
    p.sizeBytes = bytes;
    return p;
}

TEST(WireTest, DeliversAfterSerializationAndPropagation)
{
    EventQueue eq;
    Wire wire(eq, 10e9, microseconds(5));
    std::vector<Tick> arrivals;
    wire.setSink([&](const Packet &) { arrivals.push_back(eq.now()); });

    wire.send(makePacket(1, 1250)); // 1250 B at 10 Gb/s = 1 us
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], microseconds(6));
}

TEST(WireTest, SerializesBackToBackAtLineRate)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    std::vector<Tick> arrivals;
    wire.setSink([&](const Packet &) { arrivals.push_back(eq.now()); });

    // A train of 4 packets sent at the same instant leaves the wire
    // spaced by the serialisation time.
    for (int i = 0; i < 4; ++i)
        wire.send(makePacket(static_cast<std::uint64_t>(i), 1250));
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(arrivals[static_cast<std::size_t>(i)],
                  microseconds(i + 1));
}

TEST(WireTest, PreservesFifoOrder)
{
    EventQueue eq;
    Wire wire(eq, 10e9, microseconds(2));
    std::vector<std::uint64_t> ids;
    wire.setSink([&](const Packet &p) { ids.push_back(p.requestId); });
    for (std::uint64_t i = 0; i < 10; ++i)
        wire.send(makePacket(i, 100));
    eq.runAll();
    ASSERT_EQ(ids.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(ids[i], i);
}

TEST(WireTest, IdleGapResetsPipeline)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    std::vector<Tick> arrivals;
    wire.setSink([&](const Packet &) { arrivals.push_back(eq.now()); });
    wire.send(makePacket(1, 1250));
    eq.runAll();
    // Second send long after the first: full serialisation again,
    // starting from the send instant.
    Tick gap_start = eq.now() + milliseconds(1);
    EventFunctionWrapper sender(
        [&] { wire.send(makePacket(2, 1250)); }, "sender");
    eq.schedule(&sender, gap_start);
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1], gap_start + microseconds(1));
}

TEST(WireTest, CountsDeliveredPackets)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    wire.setSink([](const Packet &) {});
    for (int i = 0; i < 7; ++i)
        wire.send(makePacket(static_cast<std::uint64_t>(i), 64));
    eq.runAll();
    EXPECT_EQ(wire.packetsDelivered(), 7u);
}

TEST(WireTest, AccountsDeliveredBytes)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    wire.setSink([](const Packet &) {});
    wire.send(makePacket(1, 100));
    wire.send(makePacket(2, 1250));
    eq.runAll();
    EXPECT_EQ(wire.packetsDelivered(), 2u);
    EXPECT_EQ(wire.bytesDelivered(), 1350u);
    EXPECT_EQ(wire.packetsDropped(), 0u);
    EXPECT_EQ(wire.bytesDropped(), 0u);
}

TEST(WireTest, QueueLimitDropsOverflowAndAccountsIt)
{
    EventQueue eq;
    Wire wire(eq, 10e9, microseconds(5));
    wire.setQueueLimit(3);
    wire.setSink([](const Packet &) {});
    // Five sends at the same instant against a 3-deep queue: the last
    // two are dropped (counted, never delivered).
    for (int i = 0; i < 5; ++i)
        wire.send(makePacket(static_cast<std::uint64_t>(i), 200));
    eq.runAll();
    EXPECT_EQ(wire.packetsDelivered(), 3u);
    EXPECT_EQ(wire.bytesDelivered(), 600u);
    EXPECT_EQ(wire.packetsDropped(), 2u);
    EXPECT_EQ(wire.bytesDropped(), 400u);
    // Once the queue drained, later traffic flows again.
    wire.send(makePacket(9, 200));
    eq.runAll();
    EXPECT_EQ(wire.packetsDelivered(), 4u);
    EXPECT_EQ(wire.packetsDropped(), 2u);
}

TEST(WireTest, SendBeforeSinkIsAFatalNamingTheWire)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    wire.setLabel("switch->host3");
    // A dangling wire is a rig misconfiguration (config error), not a
    // model invariant violation: FatalError, naming the wire.
    try {
        wire.send(makePacket(1, 64));
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("switch->host3"),
                  std::string::npos)
            << err.what();
    }
}

TEST(WireTest, DownedLinkCountsSendsAsDropsNotErrors)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    std::uint64_t delivered = 0;
    wire.setSink([&](const Packet &) { ++delivered; });
    wire.setLinkDown(true);
    wire.send(makePacket(1, 200));
    wire.send(makePacket(2, 200));
    eq.runAll();
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(wire.packetsLinkDownLost(), 2u);
    EXPECT_EQ(wire.packetsDropped(), 0u); // distinct from queue drops

    wire.setLinkDown(false);
    wire.send(makePacket(3, 200));
    eq.runAll();
    EXPECT_EQ(delivered, 1u);
}

TEST(WireTest, DowningFlushesInFlightPackets)
{
    EventQueue eq;
    Wire wire(eq, 10e9, microseconds(5));
    std::uint64_t delivered = 0;
    wire.setSink([&](const Packet &) { ++delivered; });
    wire.send(makePacket(1, 1250));
    wire.send(makePacket(2, 1250));
    // Cut the link while both packets are still on it.
    EventFunctionWrapper cut([&] { wire.setLinkDown(true); }, "cut");
    eq.schedule(&cut, microseconds(1));
    eq.runAll();
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(wire.packetsLinkDownLost(), 2u);
    EXPECT_EQ(wire.packetsInFlight(), 0u);
}

TEST(WireTest, FaultFilterDropsAndCorrupts)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    std::uint64_t delivered = 0;
    wire.setSink([&](const Packet &) { ++delivered; });
    // Drop odd ids at ingress, corrupt id 2, deliver the rest.
    wire.setFaultFilter([](const Packet &p) {
        if (p.requestId % 2 == 1)
            return WireFault::kDrop;
        if (p.requestId == 2)
            return WireFault::kCorrupt;
        return WireFault::kNone;
    });
    for (std::uint64_t id = 1; id <= 4; ++id)
        wire.send(makePacket(id, 200));
    eq.runAll();
    EXPECT_EQ(delivered, 1u); // only id 4
    EXPECT_EQ(wire.packetsFaultLost(), 2u);    // ids 1, 3
    EXPECT_EQ(wire.packetsCorrupted(), 1u);    // id 2
    EXPECT_EQ(wire.packetsDelivered(), 1u);
    // Removing the filter restores clean delivery.
    wire.setFaultFilter(nullptr);
    wire.send(makePacket(5, 200));
    eq.runAll();
    EXPECT_EQ(delivered, 2u);
}

TEST(WireTest, TinyPacketStillTakesTime)
{
    EventQueue eq;
    Wire wire(eq, 10e9, 0);
    Tick arrival = -1;
    wire.setSink([&](const Packet &) { arrival = eq.now(); });
    wire.send(makePacket(1, 1));
    eq.runAll();
    EXPECT_GE(arrival, 1);
}

} // namespace
} // namespace nmapsim
