/**
 * @file
 * Unit and property tests for the analytic power models.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "cpu/package_power.hh"
#include "cpu/power_model.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class PowerModelTest : public ::testing::Test
{
  protected:
    const CpuProfile &profile_ = CpuProfile::xeonGold6134();
    CorePowerModel model_{profile_.power};

    const PState &p0() { return profile_.pstates.state(0); }
    const PState &
    pmin()
    {
        return profile_.pstates.state(
            static_cast<std::size_t>(profile_.pstates.maxIndex()));
    }
};

TEST_F(PowerModelTest, BusyExceedsIdleExceedsSleep)
{
    double busy = model_.power(CState::kC0, true, false, p0());
    double idle = model_.power(CState::kC0, false, false, p0());
    double c1 = model_.power(CState::kC1, false, false, p0());
    double c6 = model_.power(CState::kC6, false, false, p0());
    EXPECT_GT(busy, idle);
    EXPECT_GT(idle, c1);
    EXPECT_GT(c1, c6);
    EXPECT_GT(c6, 0.0);
}

TEST_F(PowerModelTest, PowerMonotoneInPState)
{
    // Busy power strictly decreases from P0 to Pmin.
    double prev = 1e9;
    for (std::size_t i = 0; i < profile_.pstates.numStates(); ++i) {
        double w = model_.power(CState::kC0, true, false,
                                profile_.pstates.state(i));
        EXPECT_LT(w, prev);
        prev = w;
    }
}

TEST_F(PowerModelTest, VoltageSquaredScaling)
{
    // Dynamic component scales with V^2 f: busy delta between P0 and
    // Pmin should exceed the frequency ratio alone.
    double hi = model_.power(CState::kC0, true, false, p0());
    double lo = model_.power(CState::kC0, true, false, pmin());
    double freq_ratio = p0().freqHz / pmin().freqHz;
    EXPECT_GT(hi / lo, freq_ratio * 0.9);
}

TEST_F(PowerModelTest, WakingDrawsLeakageOnly)
{
    double waking = model_.power(CState::kC0, true, true, p0());
    double c1 = model_.power(CState::kC1, false, false, p0());
    EXPECT_DOUBLE_EQ(waking, c1);
}

TEST_F(PowerModelTest, C6IndependentOfPState)
{
    EXPECT_DOUBLE_EQ(model_.power(CState::kC6, false, false, p0()),
                     model_.power(CState::kC6, false, false, pmin()));
}

TEST(CoreEnergyTest, BusyCoreAccumulatesMoreEnergy)
{
    const CpuProfile &profile = CpuProfile::xeonGold6134();
    EventQueue eq;
    Rng rng(1);
    Core busy(0, eq, profile, rng);
    Core idle(1, eq, profile, rng);
    busy.setBusy(true);

    // Advance simulated time with a dummy event.
    EventFunctionWrapper done([] {}, "done");
    eq.schedule(&done, seconds(1));
    eq.runAll();

    EXPECT_GT(busy.meter().energyJoules(eq.now()),
              idle.meter().energyJoules(eq.now()));
}

TEST(CoreEnergyTest, LowerPStateUsesLessEnergy)
{
    const CpuProfile &profile = CpuProfile::xeonGold6134();
    EventQueue eq;
    Rng rng(1);
    Core fast(0, eq, profile, rng);
    Core slow(1, eq, profile, rng);
    fast.setBusy(true);
    slow.setBusy(true);
    slow.dvfs().requestPState(profile.pstates.maxIndex());

    EventFunctionWrapper done([] {}, "done");
    eq.schedule(&done, seconds(1));
    eq.runAll();

    EXPECT_GT(fast.meter().energyJoules(eq.now()),
              slow.meter().energyJoules(eq.now()) * 2.0);
}

TEST(PackagePowerTest, TracksMeanVoltage)
{
    const CpuProfile &profile = CpuProfile::xeonGold6134();
    EventQueue eq;
    Rng rng(1);
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> ptrs;
    for (int i = 0; i < 2; ++i) {
        cores.push_back(std::make_unique<Core>(i, eq, profile, rng));
        ptrs.push_back(cores.back().get());
    }
    PackagePower pkg(eq, ptrs);
    double at_p0 = pkg.watts();

    for (Core *c : ptrs)
        c->dvfs().requestPState(profile.pstates.maxIndex());
    eq.runAll();
    double at_pmin = pkg.watts();

    EXPECT_GT(at_p0, at_pmin);
    double vmax = profile.pstates.state(0).voltage;
    double vmin =
        profile.pstates
            .state(static_cast<std::size_t>(profile.pstates.maxIndex()))
            .voltage;
    EXPECT_NEAR(at_p0 - at_pmin,
                profile.power.uncoreVoltCoeff * (vmax - vmin), 1e-9);
}

TEST(PackagePowerTest, MixedVoltagesAverage)
{
    const CpuProfile &profile = CpuProfile::xeonGold6134();
    EventQueue eq;
    Rng rng(1);
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> ptrs;
    for (int i = 0; i < 2; ++i) {
        cores.push_back(std::make_unique<Core>(i, eq, profile, rng));
        ptrs.push_back(cores.back().get());
    }
    PackagePower pkg(eq, ptrs);
    double both_p0 = pkg.watts();
    ptrs[0]->dvfs().requestPState(profile.pstates.maxIndex());
    eq.runAll();
    double mixed = pkg.watts();

    ptrs[1]->dvfs().requestPState(profile.pstates.maxIndex());
    eq.runAll();
    double both_pmin = pkg.watts();

    EXPECT_NEAR(mixed, (both_p0 + both_pmin) / 2.0, 1e-9);
}

} // namespace
} // namespace nmapsim
