/**
 * @file
 * Unit tests for the streaming summary statistics.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"

namespace nmapsim {
namespace {

TEST(SummaryTest, EmptyIsZero)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryTest, SingleSample)
{
    SummaryStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
    EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
}

TEST(SummaryTest, KnownMoments)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, NegativeValues)
{
    SummaryStats s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SummaryTest, ResetClearsState)
{
    SummaryStats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(SummaryTest, NumericallyStableForLargeOffsets)
{
    // Welford should not lose the variance of values around 1e9.
    SummaryStats s;
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(s.variance(), 1.0, 0.01);
}

} // namespace
} // namespace nmapsim
