/**
 * @file
 * Unit tests for the integrating energy meters.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/time.hh"
#include "stats/energy_meter.hh"

namespace nmapsim {
namespace {

TEST(EnergyMeterTest, ConstantPowerIntegratesLinearly)
{
    EnergyMeter m;
    m.setPower(0, 10.0); // 10 W
    EXPECT_DOUBLE_EQ(m.energyJoules(seconds(1)), 10.0);
    EXPECT_DOUBLE_EQ(m.energyJoules(seconds(2.5)), 25.0);
}

TEST(EnergyMeterTest, PiecewiseConstantPower)
{
    EnergyMeter m;
    m.setPower(0, 10.0);
    m.setPower(seconds(1), 2.0);
    // 10 J in the first second, then 2 W.
    EXPECT_DOUBLE_EQ(m.energyJoules(seconds(1)), 10.0);
    EXPECT_DOUBLE_EQ(m.energyJoules(seconds(3)), 14.0);
}

TEST(EnergyMeterTest, PowerReadback)
{
    EnergyMeter m;
    m.setPower(0, 7.5);
    EXPECT_DOUBLE_EQ(m.power(), 7.5);
}

TEST(EnergyMeterTest, TimeGoingBackwardsPanics)
{
    EnergyMeter m;
    m.setPower(seconds(1), 5.0);
    EXPECT_THROW(m.setPower(0, 1.0), PanicError);
}

TEST(EnergyMeterTest, ResetAtZeroesAccumulation)
{
    EnergyMeter m;
    m.setPower(0, 10.0);
    m.resetAt(seconds(2));
    EXPECT_DOUBLE_EQ(m.energyJoules(seconds(2)), 0.0);
    EXPECT_DOUBLE_EQ(m.energyJoules(seconds(3)), 10.0);
}

TEST(PackageEnergyMeterTest, SumsCoresPlusUncore)
{
    EnergyMeter core0;
    EnergyMeter core1;
    core0.setPower(0, 5.0);
    core1.setPower(0, 3.0);

    PackageEnergyMeter pkg(2.0); // 2 W uncore
    pkg.addMeter(&core0);
    pkg.addMeter(&core1);
    pkg.startMeasurement(0);
    EXPECT_DOUBLE_EQ(pkg.energyJoules(seconds(1)), 10.0);
}

TEST(PackageEnergyMeterTest, StartMeasurementDiscardsHistory)
{
    EnergyMeter core0;
    core0.setPower(0, 100.0); // expensive warm-up

    PackageEnergyMeter pkg(0.0);
    pkg.addMeter(&core0);
    pkg.startMeasurement(seconds(1));
    core0.setPower(seconds(1), 1.0);
    EXPECT_DOUBLE_EQ(pkg.energyJoules(seconds(2)), 1.0);
}

TEST(PackageEnergyMeterTest, UncoreAccruesFromMeasureStart)
{
    PackageEnergyMeter pkg(4.0);
    pkg.startMeasurement(seconds(10));
    EXPECT_DOUBLE_EQ(pkg.energyJoules(seconds(12)), 8.0);
}

} // namespace
} // namespace nmapsim
