/**
 * @file
 * Unit tests for the cpuidle policies (menu, disable, c6only) and the
 * switchable wrapper NCAP uses.
 */

#include <gtest/gtest.h>

#include "baselines/ncap.hh"
#include "governors/cpuidle_policies.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

const CpuProfile &profile()
{
    return CpuProfile::xeonGold6134();
}

TEST(DisableIdleTest, AlwaysC0)
{
    DisableIdleGovernor gov;
    EXPECT_EQ(gov.selectState(0, 0), CState::kC0);
    EXPECT_EQ(gov.selectState(3, milliseconds(5)), CState::kC0);
    EXPECT_EQ(gov.name(), "disable");
}

TEST(C6OnlyIdleTest, AlwaysC6)
{
    C6OnlyIdleGovernor gov;
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
    EXPECT_EQ(gov.name(), "c6only");
}

TEST(MenuIdleTest, NoHistoryPicksDeepState)
{
    MenuIdleGovernor gov(profile(), 2);
    // Like menu with a far next-timer: optimistic deep sleep.
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
}

TEST(MenuIdleTest, ShortIdleHistoryPicksC1)
{
    MenuIdleGovernor gov(profile(), 1);
    for (int i = 0; i < 8; ++i)
        gov.recordIdle(0, microseconds(20));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
    EXPECT_EQ(gov.predictedIdle(0), microseconds(20));
}

TEST(MenuIdleTest, LongIdleHistoryPicksC6)
{
    MenuIdleGovernor gov(profile(), 1);
    for (int i = 0; i < 8; ++i)
        gov.recordIdle(0, milliseconds(5));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
}

TEST(MenuIdleTest, MedianIsRobustToOutliers)
{
    MenuIdleGovernor gov(profile(), 1);
    // Mostly short idles with one long outlier: prediction stays short.
    for (int i = 0; i < 7; ++i)
        gov.recordIdle(0, microseconds(30));
    gov.recordIdle(0, seconds(1));
    EXPECT_EQ(gov.predictedIdle(0), microseconds(30));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
}

TEST(MenuIdleTest, HistoryIsPerCore)
{
    MenuIdleGovernor gov(profile(), 2);
    for (int i = 0; i < 8; ++i)
        gov.recordIdle(0, microseconds(10));
    // Core 1 has no history: still optimistic.
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
    EXPECT_EQ(gov.selectState(1, 0), CState::kC6);
}

TEST(MenuIdleTest, WindowSlides)
{
    MenuIdleGovernor gov(profile(), 1);
    for (int i = 0; i < 8; ++i)
        gov.recordIdle(0, milliseconds(10));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
    // Eight fresh short samples displace the old ones.
    for (int i = 0; i < 8; ++i)
        gov.recordIdle(0, microseconds(5));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
}

TEST(MenuIdleTest, PromotionHorizonMatchesProfile)
{
    MenuIdleGovernor gov(profile(), 1);
    EXPECT_EQ(gov.promoteToC6After(0),
              profile().cstates.c6TargetResidency);
}

TEST(MenuIdleTest, ZeroCoresIsFatal)
{
    EXPECT_THROW(MenuIdleGovernor(profile(), 0), FatalError);
}

TEST(SwitchableIdleTest, ForwardsWhenNotForced)
{
    C6OnlyIdleGovernor inner;
    SwitchableIdleGovernor gov(inner);
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
    EXPECT_FALSE(gov.forceAwake());
}

TEST(SwitchableIdleTest, ForceAwakeOverrides)
{
    C6OnlyIdleGovernor inner;
    SwitchableIdleGovernor gov(inner);
    gov.setForceAwake(true);
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
    EXPECT_EQ(gov.promoteToC6After(0), 0);
    gov.setForceAwake(false);
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
}

TEST(TeoIdleTest, OptimisticWithoutHistory)
{
    TeoIdleGovernor gov(profile(), 1);
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
    EXPECT_DOUBLE_EQ(gov.c6HitRate(0), 1.0);
}

TEST(TeoIdleTest, ShortIdleMajorityPicksC1)
{
    TeoIdleGovernor gov(profile(), 1);
    for (int i = 0; i < 12; ++i)
        gov.recordIdle(0, microseconds(50));
    for (int i = 0; i < 4; ++i)
        gov.recordIdle(0, milliseconds(5));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
    EXPECT_NEAR(gov.c6HitRate(0), 0.25, 1e-9);
}

TEST(TeoIdleTest, LongIdleMajorityPicksC6)
{
    TeoIdleGovernor gov(profile(), 1);
    for (int i = 0; i < 4; ++i)
        gov.recordIdle(0, microseconds(50));
    for (int i = 0; i < 12; ++i)
        gov.recordIdle(0, milliseconds(5));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
}

TEST(TeoIdleTest, WindowForgetsOldBehaviour)
{
    TeoIdleGovernor gov(profile(), 1);
    for (int i = 0; i < 16; ++i)
        gov.recordIdle(0, microseconds(10));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
    for (int i = 0; i < 16; ++i)
        gov.recordIdle(0, milliseconds(2));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC6);
}

TEST(TeoIdleTest, PerCoreHistories)
{
    TeoIdleGovernor gov(profile(), 2);
    for (int i = 0; i < 16; ++i)
        gov.recordIdle(0, microseconds(10));
    EXPECT_EQ(gov.selectState(0, 0), CState::kC1);
    EXPECT_EQ(gov.selectState(1, 0), CState::kC6);
}

TEST(TeoIdleTest, PromotionHorizonMatchesProfile)
{
    TeoIdleGovernor gov(profile(), 1);
    EXPECT_EQ(gov.promoteToC6After(0),
              profile().cstates.c6TargetResidency);
}

TEST(TeoIdleTest, ZeroCoresIsFatal)
{
    EXPECT_THROW(TeoIdleGovernor(profile(), 0), FatalError);
}

TEST(SwitchableIdleTest, RecordIdleForwardsToInner)
{
    MenuIdleGovernor inner(profile(), 1);
    SwitchableIdleGovernor gov(inner);
    for (int i = 0; i < 8; ++i)
        gov.recordIdle(0, microseconds(10));
    EXPECT_EQ(inner.predictedIdle(0), microseconds(10));
}

} // namespace
} // namespace nmapsim
