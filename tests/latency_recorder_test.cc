/**
 * @file
 * Unit tests for the latency recorder (percentiles, CDF, traces).
 */

#include <gtest/gtest.h>

#include "sim/time.hh"
#include "stats/latency_recorder.hh"

namespace nmapsim {
namespace {

LatencyRecorder
makeUniformRecorder(int n)
{
    LatencyRecorder r;
    // Latencies 1..n us, completion times in reverse order to exercise
    // sorting.
    for (int i = n; i >= 1; --i)
        r.record(microseconds(i), microseconds(i));
    return r;
}

TEST(LatencyRecorderTest, EmptyRecorder)
{
    LatencyRecorder r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.percentile(99.0), 0);
    EXPECT_DOUBLE_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.max(), 0);
    EXPECT_DOUBLE_EQ(r.fractionAbove(0), 0.0);
    EXPECT_TRUE(r.cdf(10).empty());
}

TEST(LatencyRecorderTest, PercentilesOfUniformRamp)
{
    LatencyRecorder r = makeUniformRecorder(100);
    EXPECT_EQ(r.count(), 100u);
    // P50 of 1..100 us (linear interpolation over order statistics).
    EXPECT_NEAR(toMicroseconds(r.percentile(50.0)), 50.5, 0.01);
    EXPECT_NEAR(toMicroseconds(r.percentile(99.0)), 99.01, 0.05);
    EXPECT_EQ(r.percentile(100.0), microseconds(100));
    EXPECT_EQ(r.percentile(0.0), microseconds(1));
}

TEST(LatencyRecorderTest, MeanAndMax)
{
    LatencyRecorder r = makeUniformRecorder(100);
    EXPECT_NEAR(r.mean(), static_cast<double>(microseconds(50.5)), 1.0);
    EXPECT_EQ(r.max(), microseconds(100));
}

TEST(LatencyRecorderTest, FractionAboveSlo)
{
    LatencyRecorder r = makeUniformRecorder(100);
    // 10 of 100 samples exceed 90 us (91..100).
    EXPECT_DOUBLE_EQ(r.fractionAbove(microseconds(90)), 0.10);
    EXPECT_DOUBLE_EQ(r.fractionAbove(microseconds(100)), 0.0);
    EXPECT_DOUBLE_EQ(r.fractionAbove(0), 1.0);
}

TEST(LatencyRecorderTest, CdfIsMonotone)
{
    LatencyRecorder r = makeUniformRecorder(1000);
    auto cdf = r.cdf(50);
    ASSERT_EQ(cdf.size(), 50u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LatencyRecorderTest, TraceSortedByCompletionTime)
{
    LatencyRecorder r = makeUniformRecorder(10);
    auto trace = r.trace();
    ASSERT_EQ(trace.size(), 10u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_LE(trace[i - 1].completionTime, trace[i].completionTime);
}

TEST(LatencyRecorderTest, DiscardBeforeDropsWarmup)
{
    LatencyRecorder r;
    r.record(milliseconds(1), microseconds(10));
    r.record(milliseconds(2), microseconds(20));
    r.record(milliseconds(3), microseconds(30));
    r.discardBefore(milliseconds(2));
    EXPECT_EQ(r.count(), 2u);
    EXPECT_EQ(r.percentile(0.0), microseconds(20));
}

TEST(LatencyRecorderTest, ClearEmptiesRecorder)
{
    LatencyRecorder r = makeUniformRecorder(5);
    r.clear();
    EXPECT_TRUE(r.empty());
}

TEST(LatencyRecorderTest, RecordAfterQueryKeepsConsistency)
{
    LatencyRecorder r;
    r.record(1, microseconds(5));
    EXPECT_EQ(r.percentile(50.0), microseconds(5));
    r.record(2, microseconds(15));
    EXPECT_EQ(r.percentile(100.0), microseconds(15));
    EXPECT_EQ(r.count(), 2u);
}

} // namespace
} // namespace nmapsim
