/**
 * @file
 * Unit tests for the time-series accumulators.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/time.hh"
#include "stats/timeseries.hh"

namespace nmapsim {
namespace {

TEST(TimeSeriesTest, AccumulatesIntoBuckets)
{
    TimeSeries ts(milliseconds(1));
    ts.add(microseconds(100), 2.0);
    ts.add(microseconds(900), 3.0);
    ts.add(milliseconds(1), 7.0);
    EXPECT_DOUBLE_EQ(ts.bucket(0), 5.0);
    EXPECT_DOUBLE_EQ(ts.bucket(1), 7.0);
    EXPECT_DOUBLE_EQ(ts.total(), 12.0);
}

TEST(TimeSeriesTest, EmptyBucketsReadZero)
{
    TimeSeries ts(milliseconds(1));
    ts.add(milliseconds(5), 1.0);
    EXPECT_DOUBLE_EQ(ts.bucket(0), 0.0);
    EXPECT_DOUBLE_EQ(ts.bucket(3), 0.0);
    EXPECT_DOUBLE_EQ(ts.bucket(5), 1.0);
    EXPECT_DOUBLE_EQ(ts.bucket(100), 0.0); // past the end
}

TEST(TimeSeriesTest, AtQueriesByTime)
{
    TimeSeries ts(milliseconds(1));
    ts.add(milliseconds(2.5), 4.0);
    EXPECT_DOUBLE_EQ(ts.at(milliseconds(2.1)), 4.0);
    EXPECT_DOUBLE_EQ(ts.at(milliseconds(3.0)), 0.0);
}

TEST(TimeSeriesTest, StartOffsetShiftsBuckets)
{
    TimeSeries ts(milliseconds(1), milliseconds(10));
    ts.add(milliseconds(10.5), 1.0);
    EXPECT_DOUBLE_EQ(ts.bucket(0), 1.0);
    EXPECT_EQ(ts.bucketTime(0), milliseconds(10.5));
}

TEST(TimeSeriesTest, LevelSeriesFillsForward)
{
    TimeSeries ts(milliseconds(1));
    ts.setLevel(0, 15.0);
    ts.setLevel(milliseconds(3), 2.0);
    EXPECT_DOUBLE_EQ(ts.bucket(0), 15.0);
    EXPECT_DOUBLE_EQ(ts.bucket(1), 15.0); // fill forward
    EXPECT_DOUBLE_EQ(ts.bucket(2), 15.0);
    EXPECT_DOUBLE_EQ(ts.bucket(3), 2.0);
    EXPECT_DOUBLE_EQ(ts.bucket(10), 2.0); // beyond the end holds level
}

TEST(TimeSeriesTest, LevelOverwrittenWithinBucket)
{
    TimeSeries ts(milliseconds(1));
    ts.setLevel(microseconds(100), 5.0);
    ts.setLevel(microseconds(800), 9.0);
    EXPECT_DOUBLE_EQ(ts.bucket(0), 9.0);
}

TEST(TimeSeriesTest, InvalidBucketWidthIsFatal)
{
    EXPECT_THROW(TimeSeries(0), FatalError);
    EXPECT_THROW(TimeSeries(-5), FatalError);
}

TEST(EventMarkSeriesTest, RecordsAndCounts)
{
    EventMarkSeries marks;
    marks.mark(10);
    marks.mark(20);
    marks.mark(30);
    EXPECT_EQ(marks.count(), 3u);
    EXPECT_EQ(marks.countInWindow(10, 30), 2u); // [10, 30)
    EXPECT_EQ(marks.countInWindow(0, 100), 3u);
    EXPECT_EQ(marks.countInWindow(31, 100), 0u);
}

} // namespace
} // namespace nmapsim
