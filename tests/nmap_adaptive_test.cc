/**
 * @file
 * Unit tests for the online threshold adaptation extension (the
 * paper's Section 4.2 future work) and the chip-wide NMAP variant.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "nmap/adaptive.hh"
#include "nmap/nmap_governor.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

TEST(EstimatorTest, BootstrapUntilMinSamples)
{
    AdaptiveConfig cfg;
    cfg.minSamples = 4;
    OnlineThresholdEstimator est(cfg, Rng(1));
    EXPECT_DOUBLE_EQ(est.niThreshold(), cfg.bootstrapNiTh);
    EXPECT_DOUBLE_EQ(est.cuThreshold(), cfg.bootstrapCuTh);

    for (int i = 0; i < 3; ++i)
        est.recordNiSession(100);
    EXPECT_DOUBLE_EQ(est.niThreshold(), cfg.bootstrapNiTh);
    est.recordNiSession(100);
    EXPECT_NE(est.niThreshold(), cfg.bootstrapNiTh);
}

TEST(EstimatorTest, NiThresholdIsQuantileOfSessions)
{
    AdaptiveConfig cfg;
    cfg.minSamples = 10;
    cfg.niQuantile = 1.0;
    cfg.niMargin = 1.0;
    OnlineThresholdEstimator est(cfg, Rng(1));
    for (std::uint64_t v = 1; v <= 100; ++v)
        est.recordNiSession(v);
    EXPECT_DOUBLE_EQ(est.niThreshold(), 100.0);
    EXPECT_EQ(est.sessionsSeen(), 100u);
}

TEST(EstimatorTest, ReservoirTracksWorkloadChange)
{
    AdaptiveConfig cfg;
    cfg.minSamples = 10;
    cfg.reservoirSize = 64;
    cfg.niQuantile = 0.5;
    OnlineThresholdEstimator est(cfg, Rng(2));
    for (int i = 0; i < 200; ++i)
        est.recordNiSession(10);
    double before = est.niThreshold();
    // The workload changes: sessions now ten times larger. The decayed
    // reservoir must follow.
    for (int i = 0; i < 500; ++i)
        est.recordNiSession(100);
    double after = est.niThreshold();
    EXPECT_NEAR(before, 10.0, 1.0);
    EXPECT_GT(after, 50.0);
}

TEST(EstimatorTest, CuThresholdTracksRatioEwma)
{
    AdaptiveConfig cfg;
    cfg.cuMargin = 0.5;
    cfg.ratioAlpha = 0.5;
    OnlineThresholdEstimator est(cfg, Rng(3));
    est.recordNiWindowRatio(4.0);
    EXPECT_DOUBLE_EQ(est.cuThreshold(), 2.0); // first sample seeds EWMA
    est.recordNiWindowRatio(8.0);
    EXPECT_DOUBLE_EQ(est.cuThreshold(), 3.0); // 0.5*(4+8)/... -> 6*0.5
}

TEST(EstimatorTest, CuThresholdHasFloor)
{
    AdaptiveConfig cfg;
    OnlineThresholdEstimator est(cfg, Rng(4));
    est.recordNiWindowRatio(0.0);
    EXPECT_GE(est.cuThreshold(), 0.05);
}

TEST(EstimatorTest, EmptyReservoirIsFatal)
{
    AdaptiveConfig cfg;
    cfg.reservoirSize = 0;
    EXPECT_THROW(OnlineThresholdEstimator(cfg, Rng(5)), FatalError);
}

class AdaptiveGovernorTest : public ::testing::Test
{
  protected:
    AdaptiveGovernorTest()
    {
        for (int i = 0; i < 2; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        config_.bootstrapNiTh = 20.0;
        config_.minSamples = 4;
    }

    AdaptiveConfig config_;
    EventQueue eq_;
    Rng rng_{31};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
};

TEST_F(AdaptiveGovernorTest, BootstrapThresholdTriggersNi)
{
    AdaptiveNmapGovernor gov(eq_, ptrs_, config_, rng_.fork());
    gov.start();
    gov.onHardIrq(0);
    gov.onPollProcessed(0, 0, 25); // > bootstrap 20
    EXPECT_TRUE(gov.networkIntensive(0));
}

TEST_F(AdaptiveGovernorTest, LearnsFromNiSessions)
{
    AdaptiveNmapGovernor gov(eq_, ptrs_, config_, rng_.fork());
    gov.start();
    // Trigger NI mode, then feed several P0 sessions of ~64 polling
    // packets; the learned NI_TH should move toward that scale.
    gov.onHardIrq(0);
    gov.onPollProcessed(0, 0, 25);
    ASSERT_TRUE(gov.networkIntensive(0));
    eq_.runUntil(milliseconds(1)); // let the P0 transition land
    ASSERT_EQ(ptrs_[0]->pstateIndex(), 0);
    for (int s = 0; s < 8; ++s) {
        gov.onHardIrq(0); // closes the previous session
        gov.onPollProcessed(0, 8, 64);
    }
    gov.onHardIrq(0);
    eq_.runUntil(milliseconds(12)); // timer refreshes thresholds
    EXPECT_GT(gov.currentNiThreshold(), config_.bootstrapNiTh);
    EXPECT_GT(gov.estimator().sessionsSeen(), 4u);
}

TEST_F(AdaptiveGovernorTest, SessionsAtLowFreqNotLearned)
{
    AdaptiveNmapGovernor gov(eq_, ptrs_, config_, rng_.fork());
    gov.start();
    // Keep the core at Pmin (CPU mode): sessions must not be recorded,
    // since thresholds describe healthy P0 processing.
    eq_.runUntil(milliseconds(25));
    ASSERT_FALSE(gov.networkIntensive(0));
    for (int s = 0; s < 8; ++s) {
        gov.onHardIrq(0);
        gov.onPollProcessed(0, 4, 10); // below bootstrap threshold
    }
    gov.onHardIrq(0);
    EXPECT_EQ(gov.estimator().sessionsSeen(), 0u);
}

TEST_F(AdaptiveGovernorTest, CuThresholdLearnedFromNiWindows)
{
    AdaptiveNmapGovernor gov(eq_, ptrs_, config_, rng_.fork());
    gov.start();
    gov.onHardIrq(0);
    gov.onPollProcessed(0, 10, 80); // NI + window ratio 8
    eq_.runUntil(milliseconds(12)); // timer evaluates the window
    EXPECT_GT(gov.currentCuThreshold(), config_.bootstrapCuTh);
}

class ChipWideTest : public ::testing::Test
{
  protected:
    ChipWideTest()
    {
        for (int i = 0; i < 3; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        config_.niThreshold = 20.0;
        config_.cuThreshold = 1.0;
        config_.chipWide = true;
    }

    NmapConfig config_;
    EventQueue eq_;
    Rng rng_{41};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
};

TEST_F(ChipWideTest, OneCoreDragsWholeChipToP0)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    eq_.runUntil(milliseconds(25));
    nmap.onHardIrq(1);
    nmap.onPollProcessed(1, 0, 50);
    for (int c = 0; c < 3; ++c)
        EXPECT_TRUE(nmap.networkIntensive(c)) << c;
    eq_.runUntil(milliseconds(26));
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(ptrs_[static_cast<std::size_t>(c)]->pstateIndex(), 0)
            << c;
}

TEST_F(ChipWideTest, FallbackIsCollective)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onHardIrq(1);
    nmap.onPollProcessed(1, 0, 50);
    ASSERT_TRUE(nmap.networkIntensive(0));
    // Quiet window: aggregate ratio 0 -> everyone falls back together.
    eq_.runUntil(milliseconds(25));
    for (int c = 0; c < 3; ++c)
        EXPECT_FALSE(nmap.networkIntensive(c)) << c;
}

TEST_F(ChipWideTest, AggregateRatioKeepsChipUp)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onHardIrq(1);
    nmap.onPollProcessed(1, 0, 50);
    // Other cores are interrupt-dominated, but the aggregate ratio is
    // still above CU_TH: the chip must stay in NI mode.
    nmap.onPollProcessed(0, 10, 0);
    nmap.onPollProcessed(2, 10, 0);
    nmap.onPollProcessed(1, 0, 40); // aggregate 90 poll / 20 intr
    eq_.runUntil(milliseconds(12));
    EXPECT_TRUE(nmap.networkIntensive(0));
}

} // namespace
} // namespace nmapsim
