/**
 * @file
 * Unit tests for the ServerOs assembly: RSS queue/core binding,
 * observer fan-out, deliver routing and configuration validation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "governors/cpuidle_policies.hh"
#include "net/nic.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class ServerOsTest : public ::testing::Test
{
  protected:
    ServerOsTest()
    {
        for (int i = 0; i < 4; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        nic_config_.numQueues = 4;
        nic_ = std::make_unique<Nic>(eq_, nic_config_);
        os_ = std::make_unique<ServerOs>(ptrs_, *nic_, OsConfig{});
    }

    void
    sendToFlow(std::uint32_t flow)
    {
        Packet p;
        p.kind = Packet::Kind::kRequest;
        p.flowHash = flow;
        p.sizeBytes = 128;
        nic_->receive(p);
    }

    EventQueue eq_;
    Rng rng_{55};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
    NicConfig nic_config_;
    std::unique_ptr<Nic> nic_;
    std::unique_ptr<ServerOs> os_;
};

TEST_F(ServerOsTest, DeliverReportsOwningCore)
{
    std::vector<std::pair<int, std::uint32_t>> delivered;
    os_->setDeliver([&](int core, const Packet &p) {
        delivered.push_back({core, p.flowHash});
    });
    os_->start();
    sendToFlow(1); // queue 1 -> core 1
    sendToFlow(6); // queue 2 -> core 2
    eq_.runUntil(milliseconds(1));
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0].first, 1);
    EXPECT_EQ(delivered[1].first, 2);
}

TEST_F(ServerOsTest, ObserversSeeHardIrqAndPolls)
{
    struct Recorder : NapiObserver
    {
        int irqs = 0;
        std::uint32_t pkts = 0;
        void onHardIrq(int) override { ++irqs; }
        void
        onPollProcessed(int, std::uint32_t i, std::uint32_t p) override
        {
            pkts += i + p;
        }
    } rec;
    os_->addObserver(&rec);
    os_->start();
    for (int i = 0; i < 5; ++i)
        sendToFlow(0);
    eq_.runUntil(milliseconds(1));
    EXPECT_GE(rec.irqs, 1);
    // 5 rx + later tx completions would need a tx wire; rx only here.
    EXPECT_GE(rec.pkts, 5u);
}

TEST_F(ServerOsTest, MultipleObserversAllNotified)
{
    struct Counter : NapiObserver
    {
        int irqs = 0;
        void onHardIrq(int) override { ++irqs; }
    } a, b;
    os_->addObserver(&a);
    os_->addObserver(&b);
    os_->start();
    sendToFlow(3);
    eq_.runUntil(milliseconds(1));
    EXPECT_EQ(a.irqs, b.irqs);
    EXPECT_GE(a.irqs, 1);
}

TEST_F(ServerOsTest, SharedIdleGovernorAppliesToAllCores)
{
    C6OnlyIdleGovernor c6;
    os_->setIdleGovernor(&c6);
    os_->start();
    for (Core *core : ptrs_)
        EXPECT_EQ(core->cstates().state(), CState::kC6);
}

TEST_F(ServerOsTest, AccessorsExposePerCoreMachinery)
{
    EXPECT_EQ(os_->numCores(), 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(&os_->core(i), ptrs_[static_cast<std::size_t>(i)]);
        EXPECT_FALSE(os_->napi(i).active());
    }
}

TEST_F(ServerOsTest, CoreQueueCountMismatchIsFatal)
{
    NicConfig wrong;
    wrong.numQueues = 2; // 4 cores, 2 queues
    Nic nic(eq_, wrong);
    EXPECT_THROW(ServerOs(ptrs_, nic, OsConfig{}), FatalError);
}

TEST_F(ServerOsTest, NoCoresIsFatal)
{
    NicConfig cfg;
    cfg.numQueues = 1;
    Nic nic(eq_, cfg);
    std::vector<Core *> none;
    EXPECT_THROW(ServerOs(none, nic, OsConfig{}), FatalError);
}

TEST_F(ServerOsTest, CoresProcessIndependently)
{
    os_->setDeliver([](int, const Packet &) {});
    os_->start();
    // Saturate core 0's queue with a big backlog while core 3 gets a
    // single packet: core 3 must finish long before core 0 drains.
    for (int i = 0; i < 500; ++i)
        sendToFlow(0);
    sendToFlow(3);
    eq_.runUntil(milliseconds(1));
    EXPECT_TRUE(os_->sched(3).idle());
    EXPECT_GT(os_->napi(0).pktsPollingMode(), 0u);
}

} // namespace
} // namespace nmapsim
