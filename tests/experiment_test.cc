/**
 * @file
 * Integration tests for the end-to-end experiment harness. These spin
 * up the full rig (cores + NIC + OS + app + client) for short runs and
 * assert the cross-module invariants the paper's evaluation relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hh"
#include "harness/policy_registry.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

ExperimentConfig
shortConfig(const std::string &policy, LoadLevel load)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = policy;
    cfg.load = load;
    cfg.warmup = milliseconds(100);
    cfg.duration = milliseconds(300);
    cfg.seed = 7;
    return cfg;
}

TEST(ExperimentTest, RequestsAreConserved)
{
    ExperimentResult r =
        Experiment(shortConfig("performance",
                               LoadLevel::kMed))
            .run();
    EXPECT_GT(r.requestsSent, 10000u);
    EXPECT_EQ(r.nicDrops, 0u);
    // Open loop: a few requests may still be in flight at the end.
    EXPECT_GE(r.requestsSent, r.responsesReceived);
    EXPECT_LT(r.requestsSent - r.responsesReceived, 2000u);
}

TEST(ExperimentTest, DeterministicForSameSeed)
{
    ExperimentConfig cfg =
        shortConfig("ondemand", LoadLevel::kMed);
    ExperimentResult a = Experiment(cfg).run();
    ExperimentResult b = Experiment(cfg).run();
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.requestsSent, b.requestsSent);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.ksoftirqdWakes, b.ksoftirqdWakes);
}

TEST(ExperimentTest, DifferentSeedsDiffer)
{
    ExperimentConfig cfg =
        shortConfig("ondemand", LoadLevel::kMed);
    ExperimentResult a = Experiment(cfg).run();
    cfg.seed = 8;
    ExperimentResult b = Experiment(cfg).run();
    EXPECT_NE(a.requestsSent, b.requestsSent);
}

TEST(ExperimentTest, PerformanceGovernorNeverChangesStates)
{
    ExperimentResult r =
        Experiment(shortConfig("performance",
                               LoadLevel::kHigh))
            .run();
    EXPECT_EQ(r.pstateTransitions, 0u);
}

TEST(ExperimentTest, PowersaveSlowerButCheaperThanPerformance)
{
    ExperimentResult slow =
        Experiment(shortConfig("powersave", LoadLevel::kLow))
            .run();
    ExperimentResult fast =
        Experiment(
            shortConfig("performance", LoadLevel::kLow))
            .run();
    EXPECT_GT(slow.p99, fast.p99);
    EXPECT_LT(slow.energyJoules, fast.energyJoules);
}

TEST(ExperimentTest, HigherLoadRaisesTailLatency)
{
    ExperimentResult low =
        Experiment(
            shortConfig("performance", LoadLevel::kLow))
            .run();
    ExperimentResult high =
        Experiment(
            shortConfig("performance", LoadLevel::kHigh))
            .run();
    EXPECT_GT(high.p99, low.p99);
    EXPECT_GT(high.energyJoules, low.energyJoules);
}

TEST(ExperimentTest, TracesCollectedOnDemand)
{
    ExperimentConfig cfg =
        shortConfig("ondemand", LoadLevel::kHigh);
    cfg.collectTraces = true;
    cfg.collectLatencyTrace = true;
    ExperimentResult r = Experiment(cfg).run();
    ASSERT_NE(r.traces, nullptr);
    EXPECT_GT(r.traces->intrSeries().total(), 0.0);
    EXPECT_GT(r.traces->pollSeries().total(), 0.0);
    EXPECT_FALSE(r.latencyTrace.empty());
    EXPECT_FALSE(r.cdf.empty());
    // The P-state trace moves under ondemand at high load.
    bool moved = false;
    const TimeSeries &ps = r.traces->pstateSeries();
    for (std::size_t i = 1; i < ps.numBuckets(); ++i)
        moved |= ps.bucket(i) != ps.bucket(0);
    EXPECT_TRUE(moved);
}

TEST(ExperimentTest, TracesAbsentByDefault)
{
    ExperimentResult r =
        Experiment(shortConfig("ondemand", LoadLevel::kLow))
            .run();
    EXPECT_EQ(r.traces, nullptr);
    EXPECT_TRUE(r.latencyTrace.empty());
}

TEST(ExperimentTest, ThresholdProfilingProducesSaneValues)
{
    ExperimentConfig cfg =
        shortConfig("NMAP", LoadLevel::kHigh);
    auto [ni, cu] = Experiment::profileThresholds(cfg);
    EXPECT_GE(ni, 1.0);
    EXPECT_LT(ni, 10000.0);
    EXPECT_GT(cu, 0.0);
    EXPECT_LT(cu, 100.0);
}

TEST(ExperimentTest, ThresholdProfilingFiniteAndDeterministic)
{
    // Section 4.2: the profiling pass runs under the performance
    // governor regardless of the config's requested policy, and must
    // yield finite, positive thresholds with NI_TH > 0.
    ExperimentConfig cfg =
        shortConfig("ondemand", LoadLevel::kLow);
    auto [ni, cu] = Experiment::profileThresholds(cfg);
    EXPECT_TRUE(std::isfinite(ni));
    EXPECT_TRUE(std::isfinite(cu));
    EXPECT_GT(ni, 0.0);
    EXPECT_GT(cu, 0.0);

    // Profiling is itself a deterministic simulation.
    auto [ni2, cu2] = Experiment::profileThresholds(cfg);
    EXPECT_DOUBLE_EQ(ni, ni2);
    EXPECT_DOUBLE_EQ(cu, cu2);

    // Both apps profile successfully, to different values.
    ExperimentConfig ng = cfg;
    ng.app = AppProfile::nginx();
    auto [ng_ni, ng_cu] = Experiment::profileThresholds(ng);
    EXPECT_TRUE(std::isfinite(ng_ni));
    EXPECT_GT(ng_ni, 0.0);
    EXPECT_NE(ng_ni, ni);
}

TEST(ExperimentTest, AutoProfileWiresThresholdsIntoNmapRun)
{
    // nmap.auto_profile (the default) must install exactly the values
    // profileThresholds reports into the subsequent NMAP run.
    ExperimentConfig cfg =
        shortConfig("NMAP", LoadLevel::kMed);
    ASSERT_TRUE(cfg.params.getBool("nmap.auto_profile", true));
    ASSERT_LE(cfg.params.getDouble("nmap.ni_th", 0.0), 0.0);
    auto [ni, cu] = Experiment::profileThresholds(cfg);
    ExperimentResult r = Experiment(cfg).run();
    EXPECT_DOUBLE_EQ(r.niThresholdUsed, ni);
    EXPECT_DOUBLE_EQ(r.cuThresholdUsed, cu);
}

TEST(ExperimentTest, AutoProfileDisabledLeavesThresholdsUnset)
{
    ExperimentConfig cfg =
        shortConfig("NMAP", LoadLevel::kMed);
    cfg.params.set("nmap.auto_profile", false);
    ExperimentResult r = Experiment(cfg).run();
    EXPECT_LE(r.niThresholdUsed, 0.0);
}

TEST(ExperimentTest, NmapUsesProfiledThresholds)
{
    ExperimentConfig cfg =
        shortConfig("NMAP", LoadLevel::kMed);
    ExperimentResult r = Experiment(cfg).run();
    EXPECT_GT(r.niThresholdUsed, 0.0);
    EXPECT_GT(r.cuThresholdUsed, 0.0);
}

TEST(ExperimentTest, ExplicitNmapThresholdsSkipProfiling)
{
    ExperimentConfig cfg =
        shortConfig("NMAP", LoadLevel::kMed);
    cfg.params.set("nmap.ni_th", 25.0);
    cfg.params.set("nmap.cu_th", 0.5);
    ExperimentResult r = Experiment(cfg).run();
    EXPECT_DOUBLE_EQ(r.niThresholdUsed, 25.0);
    EXPECT_DOUBLE_EQ(r.cuThresholdUsed, 0.5);
}

TEST(ExperimentTest, LoadScheduleChangesRate)
{
    ExperimentConfig cfg =
        shortConfig("performance", LoadLevel::kLow);
    cfg.duration = milliseconds(400);
    // Jump to the high load halfway through.
    cfg.loadSchedule.push_back(
        {cfg.warmup + milliseconds(200),
         cfg.app.level(LoadLevel::kHigh)});
    ExperimentResult with_jump = Experiment(cfg).run();

    ExperimentConfig flat =
        shortConfig("performance", LoadLevel::kLow);
    flat.duration = milliseconds(400);
    ExperimentResult without = Experiment(flat).run();
    EXPECT_GT(with_jump.requestsSent, without.requestsSent * 3);
}

TEST(ExperimentTest, DutyOverrideScalesAverageLoad)
{
    ExperimentConfig cfg =
        shortConfig("performance", LoadLevel::kLow);
    cfg.dutyOverride = 1.0; // steady instead of 10% duty
    ExperimentResult steady = Experiment(cfg).run();
    ExperimentResult bursty =
        Experiment(
            shortConfig("performance", LoadLevel::kLow))
            .run();
    EXPECT_GT(steady.requestsSent, bursty.requestsSent * 5);
}

TEST(ExperimentTest, InvalidConfigRejected)
{
    ExperimentConfig cfg;
    cfg.numCores = 0;
    EXPECT_THROW(Experiment{cfg}, FatalError);
    ExperimentConfig cfg2;
    cfg2.duration = 0;
    EXPECT_THROW(Experiment{cfg2}, FatalError);
}

TEST(ExperimentTest, BuiltinPolicyNamesRegistered)
{
    ensureBuiltinPolicies();
    const PolicyRegistry &reg = PolicyRegistry::instance();
    for (const char *name :
         {"performance", "powersave", "userspace", "ondemand",
          "conservative", "intel_powersave", "NMAP", "NMAP-simpl",
          "NMAP-adaptive", "NMAP-chipwide", "NCAP", "NCAP-menu",
          "Parties"})
        EXPECT_TRUE(reg.hasFreq(name)) << name;
    for (const char *name : {"menu", "disable", "c6only", "teo"})
        EXPECT_TRUE(reg.hasIdle(name)) << name;
}

} // namespace
} // namespace nmapsim
