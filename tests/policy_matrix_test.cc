/**
 * @file
 * Smoke matrix over the policy registry: every registered frequency
 * policy crossed with every registered sleep policy gets a short run,
 * and each cell must satisfy packet conservation and answer traffic.
 *
 * The file also registers a governor of its own ("test-dummy") with no
 * harness edits whatsoever — the registry picks it up, the matrix
 * covers it, and the config pipeline accepts its name. That is the
 * extension contract the registry promises to out-of-tree policies.
 *
 * The matrix doubles as a bench artefact: every cell's record goes
 * through the shared ResultWriter into BENCH_policy_matrix.json.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/policy_registry.hh"
#include "harness/result_io.hh"
#include "sim/logging.hh"
#include "stats/result_writer.hh"

namespace nmapsim {
namespace {

/**
 * An out-of-tree governor: pins every core one P-state below P0. Lives
 * entirely in this test file; only the registrar below makes it
 * reachable, by name, from configs and the harness.
 */
class DummyGovernor : public FreqGovernor
{
  public:
    explicit DummyGovernor(std::vector<Core *> cores)
        : cores_(std::move(cores))
    {
    }

    void
    start() override
    {
        for (Core *core : cores_)
            core->dvfs().requestPState(1);
    }

    std::string name() const override { return "test-dummy"; }

  private:
    std::vector<Core *> cores_;
};

FreqPolicyInstance
makeDummy(PolicyContext &ctx)
{
    return {std::make_unique<DummyGovernor>(ctx.cores), nullptr};
}

REGISTER_FREQ_POLICY("test-dummy", &makeDummy,
                     "test-only governor pinning P1");

ExperimentConfig
cellConfig(const std::string &policy, const std::string &idle)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.load = LoadLevel::kMed;
    cfg.freqPolicy = policy;
    cfg.idlePolicy = idle;
    cfg.warmup = milliseconds(20);
    cfg.duration = milliseconds(50);
    cfg.seed = 42;
    // Explicit NMAP thresholds so no cell runs offline profiling.
    cfg.params.set("nmap.ni_th", 13.0);
    cfg.params.set("nmap.cu_th", 0.49);
    return cfg;
}

TEST(PolicyMatrixTest, DummyGovernorIsRegistered)
{
    ensureBuiltinPolicies();
    PolicyRegistry &reg = PolicyRegistry::instance();
    EXPECT_TRUE(reg.hasFreq("test-dummy"));
    EXPECT_EQ(reg.freqHelp("test-dummy"),
              "test-only governor pinning P1");
}

TEST(PolicyMatrixTest, DummyGovernorRunsThroughUnmodifiedHarness)
{
    ExperimentResult r =
        Experiment(cellConfig("test-dummy", "menu")).run();
    EXPECT_GT(r.responsesReceived, 0u);
    // P1 for the whole run: exactly one transition per core at start.
    EXPECT_EQ(r.pstateTransitions, 8u);
}

TEST(PolicyMatrixTest, EveryRegisteredPairRuns)
{
    ensureBuiltinPolicies();
    PolicyRegistry &reg = PolicyRegistry::instance();
    ResultWriter writer;

    for (const std::string &policy : reg.freqNames()) {
        for (const std::string &idle : reg.idleNames()) {
            SCOPED_TRACE(policy + " x " + idle);
            ExperimentConfig cfg = cellConfig(policy, idle);
            ExperimentResult r = Experiment(cfg).run();

            // Liveness: every policy pair answers traffic.
            EXPECT_GT(r.requestsSent, 0u);
            EXPECT_GT(r.responsesReceived, 0u);

            // Client-side packet conservation.
            EXPECT_GE(r.requestsSent,
                      r.responsesReceived + r.nicDrops);

            // OS-side conservation: the NAPI mode counters partition
            // exactly what the OS pulled off the NIC.
            EXPECT_EQ(r.pktsIntrMode + r.pktsPollMode,
                      r.nicRxHarvested + r.nicTxConsumed);

            appendResultRecord(writer, cfg, r);
        }
    }

    EXPECT_EQ(writer.size(),
              reg.freqNames().size() * reg.idleNames().size());
    writer.writeJsonFile("BENCH_policy_matrix.json");
}

} // namespace
} // namespace nmapsim
