/**
 * @file
 * Unit tests for the NAPI context: poll sessions, interrupt/polling
 * mode accounting, budget handling and ksoftirqd handoff rules.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/nic.hh"
#include "os/napi.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

Packet
requestPacket(std::uint64_t id = 1)
{
    Packet p;
    p.requestId = id;
    p.kind = Packet::Kind::kRequest;
    p.flowHash = 0;
    p.sizeBytes = 128;
    return p;
}

class NapiTest : public ::testing::Test
{
  protected:
    NapiTest()
    {
        nic_config_.numQueues = 1;
        nic_ = std::make_unique<Nic>(eq_, nic_config_);
        nic_->setIrqHandler([this](int) { ++raised_; });
        napi_ = std::make_unique<NapiContext>(eq_, *nic_, 0, os_config_);
        napi_->setDeliver(
            [this](const Packet &p) { delivered_.push_back(p); });
    }

    /** Inject n packets into the (masked or unmasked) Rx ring. */
    void
    inject(int n)
    {
        for (int i = 0; i < n; ++i)
            nic_->receive(requestPacket(static_cast<std::uint64_t>(i)));
    }

    EventQueue eq_;
    NicConfig nic_config_;
    OsConfig os_config_;
    std::unique_ptr<Nic> nic_;
    std::unique_ptr<NapiContext> napi_;
    std::vector<Packet> delivered_;
    int raised_ = 0;
};

TEST_F(NapiTest, ScheduleOpensSessionAndMasksIrq)
{
    inject(1);
    EXPECT_EQ(raised_, 1);
    napi_->napiSchedule();
    EXPECT_TRUE(napi_->active());
    EXPECT_TRUE(napi_->softirqPending());
    EXPECT_FALSE(nic_->irqEnabled(0));
    EXPECT_EQ(napi_->pollSessions(), 1u);
}

TEST_F(NapiTest, SpuriousScheduleIgnored)
{
    inject(1);
    napi_->napiSchedule();
    napi_->napiSchedule();
    EXPECT_EQ(napi_->pollSessions(), 1u);
}

TEST_F(NapiTest, SinglePollEmptiesSmallQueueAndCompletes)
{
    inject(3);
    napi_->napiSchedule();
    double cycles = napi_->beginPoll();
    EXPECT_GT(cycles, os_config_.pollOverheadCycles);
    auto out = napi_->completePoll(false);
    EXPECT_EQ(out, NapiContext::Outcome::kComplete);
    EXPECT_FALSE(napi_->active());
    EXPECT_TRUE(nic_->irqEnabled(0));
    EXPECT_EQ(delivered_.size(), 3u);
    // First poll of the session counts as interrupt mode.
    EXPECT_EQ(napi_->pktsInterruptMode(), 3u);
    EXPECT_EQ(napi_->pktsPollingMode(), 0u);
}

TEST_F(NapiTest, PollRespectsWeightBudget)
{
    inject(os_config_.napiWeight * 2);
    napi_->napiSchedule();
    napi_->beginPoll();
    auto out = napi_->completePoll(false);
    EXPECT_EQ(out, NapiContext::Outcome::kRepoll);
    EXPECT_EQ(delivered_.size(),
              static_cast<std::size_t>(os_config_.napiWeight));
    EXPECT_TRUE(napi_->active());
    EXPECT_FALSE(nic_->irqEnabled(0)); // still masked while polling
}

TEST_F(NapiTest, RepollsCountAsPollingMode)
{
    inject(os_config_.napiWeight + 5);
    napi_->napiSchedule();
    napi_->beginPoll();
    napi_->completePoll(false); // first: interrupt mode
    napi_->beginPoll();
    auto out = napi_->completePoll(false); // second: polling mode
    EXPECT_EQ(out, NapiContext::Outcome::kComplete);
    EXPECT_EQ(napi_->pktsInterruptMode(),
              static_cast<std::uint64_t>(os_config_.napiWeight));
    EXPECT_EQ(napi_->pktsPollingMode(), 5u);
}

TEST_F(NapiTest, HandoffAfterTooManyIterations)
{
    // Enough backlog that maxSoftirqIters polls cannot empty it.
    inject(os_config_.napiWeight * (os_config_.maxSoftirqIters + 3));
    napi_->napiSchedule();
    NapiContext::Outcome out = NapiContext::Outcome::kRepoll;
    int polls = 0;
    while (out == NapiContext::Outcome::kRepoll) {
        napi_->beginPoll();
        out = napi_->completePoll(false);
        ++polls;
    }
    EXPECT_EQ(out, NapiContext::Outcome::kHandoff);
    EXPECT_EQ(polls, os_config_.maxSoftirqIters);

    napi_->handoffToKsoftirqd();
    EXPECT_TRUE(napi_->ksoftirqdOwned());
    EXPECT_FALSE(napi_->softirqPending());
}

TEST_F(NapiTest, KsoftirqdPollsUntilEmpty)
{
    inject(os_config_.napiWeight * (os_config_.maxSoftirqIters + 2));
    napi_->napiSchedule();
    NapiContext::Outcome out = NapiContext::Outcome::kRepoll;
    while (out == NapiContext::Outcome::kRepoll) {
        napi_->beginPoll();
        out = napi_->completePoll(false);
    }
    napi_->handoffToKsoftirqd();
    // ksoftirqd context: no iteration limit, runs until empty.
    out = NapiContext::Outcome::kRepoll;
    int polls = 0;
    while (out == NapiContext::Outcome::kRepoll) {
        napi_->beginPoll();
        out = napi_->completePoll(true);
        ++polls;
    }
    EXPECT_EQ(out, NapiContext::Outcome::kComplete);
    EXPECT_GT(polls, 1);
    EXPECT_FALSE(napi_->ksoftirqdOwned());
    EXPECT_TRUE(nic_->irqEnabled(0));
}

TEST_F(NapiTest, TimeBudgetTriggersHandoff)
{
    // Keep the queue non-empty and advance simulated time past the
    // softirq budget between polls.
    inject(os_config_.napiWeight * 2);
    napi_->napiSchedule();
    napi_->beginPoll();
    napi_->completePoll(false);

    inject(os_config_.napiWeight * 2); // keep it busy
    EventFunctionWrapper advance([] {}, "advance");
    eq_.schedule(&advance, eq_.now() + os_config_.maxSoftirqTime + 1);
    eq_.runAll();

    napi_->beginPoll();
    auto out = napi_->completePoll(false);
    EXPECT_EQ(out, NapiContext::Outcome::kHandoff);
}

TEST_F(NapiTest, TxCompletionsCountTowardModes)
{
    Wire tx(eq_, 10e9, 0);
    tx.setSink([](const Packet &) {});
    nic_->setTxWire(&tx);
    nic_->disableIrq(0);
    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    resp.sizeBytes = 64;
    nic_->transmit(0, resp);
    eq_.runAll(); // DMA completes

    nic_->enableIrq(0); // completion raises irq through handler
    napi_->napiSchedule();
    napi_->beginPoll();
    auto out = napi_->completePoll(false);
    EXPECT_EQ(out, NapiContext::Outcome::kComplete);
    EXPECT_EQ(napi_->pktsInterruptMode(), 1u); // the tx completion
    EXPECT_TRUE(delivered_.empty());           // responses not delivered
}

TEST_F(NapiTest, PollHookReportsPerCall)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> calls;
    napi_->setPollHook([&](std::uint32_t i, std::uint32_t p) {
        calls.push_back({i, p});
    });
    inject(os_config_.napiWeight + 2);
    napi_->napiSchedule();
    napi_->beginPoll();
    napi_->completePoll(false);
    napi_->beginPoll();
    napi_->completePoll(false);
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0].first,
              static_cast<std::uint32_t>(os_config_.napiWeight));
    EXPECT_EQ(calls[0].second, 0u);
    EXPECT_EQ(calls[1].first, 0u);
    EXPECT_EQ(calls[1].second, 2u);
}

TEST_F(NapiTest, BeginPollTwicePanics)
{
    inject(1);
    napi_->napiSchedule();
    napi_->beginPoll();
    EXPECT_THROW(napi_->beginPoll(), PanicError);
}

TEST_F(NapiTest, CompleteWithoutBeginPanics)
{
    inject(1);
    napi_->napiSchedule();
    EXPECT_THROW(napi_->completePoll(false), PanicError);
}

TEST_F(NapiTest, NewSessionAfterCompleteRestartsModeCounting)
{
    inject(2);
    napi_->napiSchedule();
    napi_->beginPoll();
    napi_->completePoll(false);
    EXPECT_EQ(napi_->pollSessions(), 1u);

    inject(3);
    napi_->napiSchedule();
    napi_->beginPoll();
    napi_->completePoll(false);
    EXPECT_EQ(napi_->pollSessions(), 2u);
    EXPECT_EQ(napi_->pktsInterruptMode(), 5u); // both first polls
}

} // namespace
} // namespace nmapsim
