/**
 * @file
 * Unit tests for the offline threshold profiler (Section 4.2).
 */

#include <gtest/gtest.h>

#include "nmap/profiler.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

TEST(ProfilerTest, InactiveUntilBurstBegins)
{
    ThresholdProfiler p(1);
    p.onHardIrq(0);
    p.onPollProcessed(0, 10, 100);
    EXPECT_EQ(p.sessionsObserved(), 0u);
    EXPECT_DOUBLE_EQ(p.niThreshold(), 1.0);
}

TEST(ProfilerTest, NiThresholdFromSessionPollCounts)
{
    ThresholdProfiler p(1, 100, 1.0, /*ni_quantile=*/1.0);
    p.beginBurst();
    // Three sessions with polling counts 10, 40, 20.
    for (std::uint32_t polls : {10u, 40u, 20u}) {
        p.onHardIrq(0);
        p.onPollProcessed(0, 5, polls);
    }
    p.endBurst();
    EXPECT_EQ(p.sessionsObserved(), 3u);
    // Max quantile -> NI_TH is the max session polling count.
    EXPECT_DOUBLE_EQ(p.niThreshold(), 40.0);
}

TEST(ProfilerTest, QuantileTrimsOutliers)
{
    ThresholdProfiler p(1, 100, 1.0, /*ni_quantile=*/0.5);
    p.beginBurst();
    for (std::uint32_t polls : {10u, 20u, 30u, 40u, 1000u}) {
        p.onHardIrq(0);
        p.onPollProcessed(0, 1, polls);
    }
    p.endBurst();
    EXPECT_DOUBLE_EQ(p.niThreshold(), 30.0); // median
}

TEST(ProfilerTest, OnlyEarlySessionsCount)
{
    // Observe only the first 2 sessions (the burst's early part).
    ThresholdProfiler p(1, 2, 1.0, 1.0);
    p.beginBurst();
    for (std::uint32_t polls : {10u, 20u, 500u}) {
        p.onHardIrq(0);
        p.onPollProcessed(0, 1, polls);
    }
    p.endBurst();
    EXPECT_DOUBLE_EQ(p.niThreshold(), 20.0);
}

TEST(ProfilerTest, CuThresholdIsScaledAverageRatio)
{
    ThresholdProfiler p(1, 100, /*cu_margin=*/0.5);
    p.beginBurst();
    p.onHardIrq(0);
    p.onPollProcessed(0, 10, 40); // ratio 4
    p.endBurst();
    EXPECT_DOUBLE_EQ(p.cuThreshold(), 2.0);
}

TEST(ProfilerTest, CuThresholdHasFloor)
{
    ThresholdProfiler p(1);
    p.beginBurst();
    p.onHardIrq(0);
    p.onPollProcessed(0, 100, 0); // ratio 0
    p.endBurst();
    EXPECT_GE(p.cuThreshold(), 0.05);
}

TEST(ProfilerTest, NiThresholdHasFloor)
{
    ThresholdProfiler p(1);
    p.beginBurst();
    p.onHardIrq(0);
    p.onPollProcessed(0, 5, 0);
    p.endBurst();
    EXPECT_GE(p.niThreshold(), 1.0);
}

TEST(ProfilerTest, EndBurstClosesOpenSessions)
{
    ThresholdProfiler p(2, 100, 1.0, 1.0);
    p.beginBurst();
    p.onHardIrq(0);
    p.onPollProcessed(0, 0, 33);
    p.onHardIrq(1);
    p.onPollProcessed(1, 0, 11);
    p.endBurst(); // both sessions still open
    EXPECT_EQ(p.sessionsObserved(), 2u);
    EXPECT_DOUBLE_EQ(p.niThreshold(), 33.0);
}

TEST(ProfilerTest, InvalidArgumentsAreFatal)
{
    EXPECT_THROW(ThresholdProfiler(0), FatalError);
    EXPECT_THROW(ThresholdProfiler(1, 0), FatalError);
}

} // namespace
} // namespace nmapsim
