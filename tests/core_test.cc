/**
 * @file
 * Unit tests for the Core facade (busy accounting, freq listeners,
 * sleep/wake integration).
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class CoreTest : public ::testing::Test
{
  protected:
    const CpuProfile &profile_ = CpuProfile::xeonGold6134();
    EventQueue eq_;
    Rng rng_{5};

    void
    advanceTo(Tick t)
    {
        EventFunctionWrapper done([] {}, "done");
        eq_.schedule(&done, t);
        eq_.runAll();
    }
};

TEST_F(CoreTest, BootsAtP0)
{
    Core core(0, eq_, profile_, rng_);
    EXPECT_EQ(core.pstateIndex(), 0);
    EXPECT_DOUBLE_EQ(core.freqHz(), 3.2e9);
    EXPECT_EQ(core.id(), 0);
}

TEST_F(CoreTest, BusyTimeAccumulates)
{
    Core core(0, eq_, profile_, rng_);
    core.setBusy(true);
    advanceTo(milliseconds(10));
    core.setBusy(false);
    advanceTo(milliseconds(20));
    core.setBusy(true);
    advanceTo(milliseconds(25));
    EXPECT_EQ(core.busyTime(), milliseconds(15));
}

TEST_F(CoreTest, RedundantBusyTransitionsIgnored)
{
    Core core(0, eq_, profile_, rng_);
    core.setBusy(true);
    core.setBusy(true);
    advanceTo(milliseconds(5));
    EXPECT_EQ(core.busyTime(), milliseconds(5));
}

TEST_F(CoreTest, FreqListenersFireInOrder)
{
    Core core(0, eq_, profile_, rng_);
    std::vector<int> order;
    core.addFreqListener([&](double) { order.push_back(1); });
    core.addFreqListener([&](double) { order.push_back(2); });
    core.dvfs().requestPState(5);
    eq_.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(CoreTest, FreqListenerReceivesNewFrequency)
{
    Core core(0, eq_, profile_, rng_);
    double seen = 0.0;
    core.addFreqListener([&](double f) { seen = f; });
    core.dvfs().requestPState(profile_.pstates.maxIndex());
    eq_.runAll();
    EXPECT_DOUBLE_EQ(seen, 1.2e9);
    EXPECT_DOUBLE_EQ(core.freqHz(), 1.2e9);
}

TEST_F(CoreTest, SleepWakeRoundTrip)
{
    Core core(0, eq_, profile_, rng_);
    advanceTo(milliseconds(1));
    core.enterSleep(CState::kC6);
    EXPECT_TRUE(core.cstates().sleeping());
    advanceTo(milliseconds(2));
    Tick penalty = core.wake();
    EXPECT_FALSE(core.cstates().sleeping());
    EXPECT_GT(penalty, microseconds(20));
}

TEST_F(CoreTest, DeepenSleepFromCore)
{
    Core core(0, eq_, profile_, rng_);
    core.enterSleep(CState::kC1);
    advanceTo(milliseconds(1));
    core.deepenSleep(CState::kC6);
    EXPECT_EQ(core.cstates().state(), CState::kC6);
}

TEST_F(CoreTest, PowerDropsWhileSleeping)
{
    Core core(0, eq_, profile_, rng_);
    double awake = core.meter().power();
    core.enterSleep(CState::kC6);
    EXPECT_LT(core.meter().power(), awake);
    core.wake();
    EXPECT_DOUBLE_EQ(core.meter().power(), awake);
}

TEST_F(CoreTest, WakingStateHasReducedPower)
{
    Core core(0, eq_, profile_, rng_);
    core.setBusy(true);
    double busy = core.meter().power();
    core.setWaking(true);
    EXPECT_LT(core.meter().power(), busy);
    core.setWaking(false);
    EXPECT_DOUBLE_EQ(core.meter().power(), busy);
}

} // namespace
} // namespace nmapsim
