// Fixture: a well-formed, reasoned waiver whose rule fires nowhere
// near it — project rule `stale-waiver`.
namespace nmapsim {

// lint: nondet-ok(left behind after the clock read moved elsewhere)
int
staleAnswer()
{
    return 42;
}

} // namespace nmapsim
