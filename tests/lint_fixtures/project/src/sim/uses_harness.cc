// Fixture: module `sim` (the bottom layer) reaching up into
// `harness` (the top layer) — project rule `layering`.
#include "harness/above.hh"

namespace nmapsim {

int
bottomUsesTop()
{
    return 1;
}

} // namespace nmapsim
