// Fixture: include cycle with cycle_a.hh (project rule `layering`).
#ifndef NMAPSIM_TESTS_LINT_FIXTURES_PROJECT_SRC_SIM_CYCLE_B_HH_
#define NMAPSIM_TESTS_LINT_FIXTURES_PROJECT_SRC_SIM_CYCLE_B_HH_

#include "sim/cycle_a.hh"

namespace nmapsim {

struct CycleB
{
    int value = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_TESTS_LINT_FIXTURES_PROJECT_SRC_SIM_CYCLE_B_HH_
