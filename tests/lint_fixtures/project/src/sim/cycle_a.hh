// Fixture: include cycle with cycle_b.hh (project rule `layering`).
#ifndef NMAPSIM_TESTS_LINT_FIXTURES_PROJECT_SRC_SIM_CYCLE_A_HH_
#define NMAPSIM_TESTS_LINT_FIXTURES_PROJECT_SRC_SIM_CYCLE_A_HH_

#include "sim/cycle_b.hh"

namespace nmapsim {

struct CycleA
{
    int value = 0;
};

} // namespace nmapsim

#endif // NMAPSIM_TESTS_LINT_FIXTURES_PROJECT_SRC_SIM_CYCLE_A_HH_
