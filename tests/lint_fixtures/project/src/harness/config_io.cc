// Fixture: parses one key the fixture README documents and one it
// does not — project rule `config-doc-sync`, code->doc direction.
#include <string>

namespace nmapsim {

bool
setConfigValue(const std::string &key, const std::string &value)
{
    if (key == "documented_key")
        return !value.empty();
    if (key == "undocumented_key")
        return true;
    return false;
}

} // namespace nmapsim
