// Fixture: a mutable namespace-scope global and a non-const
// function-local static — project rule `shared-mutable-state`.
namespace nmapsim {

int g_packetsSeen = 0;

int
nextSequence()
{
    static int counter = 0;
    return ++counter;
}

} // namespace nmapsim
