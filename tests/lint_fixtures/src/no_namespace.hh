// Fixture: trips header-hygiene (guard present, namespace missing).
#ifndef NMAPSIM_LINT_FIXTURE_NO_NAMESPACE_HH_
#define NMAPSIM_LINT_FIXTURE_NO_NAMESPACE_HH_

inline int
leakyGlobal()
{
    return 42;
}

#endif // NMAPSIM_LINT_FIXTURE_NO_NAMESPACE_HH_
