// Fixture: trips raw-output (and only that rule).
#include <iostream>

namespace nmapsim {

void
announce()
{
    std::cout << "hello" << '\n';
}

} // namespace nmapsim
