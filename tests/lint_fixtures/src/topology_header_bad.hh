// Fixture: trips header-hygiene (no include guard; only that rule).

namespace nmapsim {

struct FixtureTierSpec
{
    int hosts = 1;
};

} // namespace nmapsim
