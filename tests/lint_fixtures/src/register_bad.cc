// Fixture: trips register-hygiene (empty doc string; only that rule).

namespace nmapsim {
namespace {

struct Ctx
{
};

int
makeThing(const Ctx &)
{
    return 0;
}

REGISTER_FREQ_POLICY("fixture-policy", &makeThing, "");

} // namespace
} // namespace nmapsim
