// Fixture: trips assert-in-model (and only that rule).
#include <cassert>

namespace nmapsim {

void
checkInvariant(int depth)
{
    assert(depth >= 0);
}

} // namespace nmapsim
