// Fixture: trips bad-waiver (and only that rule).

namespace nmapsim {

// lint: ordered-ok()
inline int
reasonlessWaiver()
{
    return 1;
}

} // namespace nmapsim
