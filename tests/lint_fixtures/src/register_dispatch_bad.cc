// Fixture: trips register-hygiene (REGISTER_DISPATCH_POLICY with a
// non-literal name; only that rule).

namespace nmapsim {
namespace {

struct Ctx
{
};

int
makeChainPolicy(const Ctx &)
{
    return 0;
}

const char *kPolicyName = "fixture-dispatch";

REGISTER_DISPATCH_POLICY(kPolicyName, &makeChainPolicy,
                         "steering fixture");

} // namespace
} // namespace nmapsim
