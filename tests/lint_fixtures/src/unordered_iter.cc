// Fixture: trips unordered-iter (and only that rule).
#include <string>
#include <unordered_map>

namespace nmapsim {

int
sumCounts(const std::unordered_map<std::string, int> &counts)
{
    std::unordered_map<std::string, int> local = counts;
    int total = 0;
    for (const auto &[key, value] : local)
        total += value;
    return total;
}

} // namespace nmapsim
