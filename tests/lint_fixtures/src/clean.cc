// Fixture: violates nothing.
#include <map>
#include <string>

namespace nmapsim {

int
sumCounts(const std::map<std::string, int> &counts)
{
    int total = 0;
    for (const auto &[key, value] : counts)
        total += value;
    return total;
}

} // namespace nmapsim
