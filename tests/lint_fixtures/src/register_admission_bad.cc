// Fixture: trips register-hygiene (REGISTER_ADMISSION_POLICY with a
// non-literal name; only that rule).

namespace nmapsim {
namespace {

struct Ctx
{
};

int
makeShedPolicy(const Ctx &)
{
    return 0;
}

const char *kPolicyName = "fixture-admission";

REGISTER_ADMISSION_POLICY(kPolicyName, &makeShedPolicy,
                          "admission-policy fixture");

} // namespace
} // namespace nmapsim
