// Fixture: trips register-hygiene (REGISTER_DATAPLANE_POLICY with a
// non-literal name; only that rule).

namespace nmapsim {
namespace {

struct Ctx
{
};

int
makeNapPolicy(const Ctx &)
{
    return 0;
}

const char *kPolicyName = "fixture-dataplane";

REGISTER_DATAPLANE_POLICY(kPolicyName, &makeNapPolicy,
                          "sleep-policy fixture");

} // namespace
} // namespace nmapsim
