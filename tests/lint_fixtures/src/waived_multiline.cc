// Fixture: the violating token lands on the *continuation* line of a
// wrapped statement; the waiver trails the statement's first line and
// must still suppress -> clean.
#include <cstdlib>

namespace nmapsim {

double
jitterBias(double x)
{
    const double bias = // lint: nondet-ok(fixture: waiver trails the statement head)
        static_cast<double>(std::rand()) / RAND_MAX;
    return x + bias;
}

} // namespace nmapsim
