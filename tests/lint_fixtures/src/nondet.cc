// Fixture: trips nondet-source (and only that rule).
#include <random>

namespace nmapsim {

unsigned
hardwareEntropy()
{
    std::random_device rd;
    return rd();
}

} // namespace nmapsim
