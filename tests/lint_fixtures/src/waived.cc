// Fixture: a real violation carrying a well-formed waiver -> clean.
#include <string>
#include <unordered_map>

namespace nmapsim {

int
sumCounts(const std::unordered_map<std::string, int> &counts)
{
    int total = 0;
    // lint: ordered-ok(sum is order-independent; fixture exercises waiver suppression)
    for (const auto &[key, value] : counts)
        total += value;
    return total;
}

} // namespace nmapsim
