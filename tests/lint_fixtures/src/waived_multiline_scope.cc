// Fixture: a statement-head waiver covers only its own statement; the
// identical violation in the next statement still fires -> exit 1
// with exactly one nondet-source finding.
#include <cstdlib>

namespace nmapsim {

double
doubleBias(double x)
{
    const double a = // lint: nondet-ok(fixture: covers only this statement)
        static_cast<double>(std::rand()) / RAND_MAX;
    const double b =
        static_cast<double>(std::rand()) / RAND_MAX;
    return x + a + b;
}

} // namespace nmapsim
