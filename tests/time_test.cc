/**
 * @file
 * Unit tests for the simulated time helpers.
 */

#include <gtest/gtest.h>

#include "sim/time.hh"

namespace nmapsim {
namespace {

TEST(TimeTest, UnitConstants)
{
    EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
    EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
    EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(TimeTest, Conversions)
{
    EXPECT_EQ(microseconds(10), 10000);
    EXPECT_EQ(milliseconds(1.5), 1500000);
    EXPECT_EQ(seconds(2), 2 * kSecond);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(kMillisecond), 1.0);
    EXPECT_DOUBLE_EQ(toMicroseconds(kMicrosecond), 1.0);
}

TEST(TimeTest, RoundTripThroughSeconds)
{
    Tick t = 123456789;
    EXPECT_NEAR(seconds(toSeconds(t)), t, 1);
}

TEST(TimeTest, CyclesIn)
{
    // 1 us at 1 GHz is 1000 cycles.
    EXPECT_DOUBLE_EQ(cyclesIn(microseconds(1), 1e9), 1000.0);
    // 1 ms at 3.2 GHz.
    EXPECT_DOUBLE_EQ(cyclesIn(milliseconds(1), 3.2e9), 3.2e6);
}

TEST(TimeTest, TicksForCyclesRoundsUp)
{
    // 1 cycle at 3 GHz is 1/3 ns; must round up to 1 tick so work
    // never finishes early.
    EXPECT_EQ(ticksForCycles(1.0, 3e9), 1);
    // Exact division does not round up.
    EXPECT_EQ(ticksForCycles(1000.0, 1e9), 1000);
    // Large job at 1.2 GHz.
    Tick t = ticksForCycles(1.2e9, 1.2e9);
    EXPECT_EQ(t, kSecond);
}

TEST(TimeTest, TicksForCyclesZero)
{
    EXPECT_EQ(ticksForCycles(0.0, 1e9), 0);
}

TEST(TimeTest, WorkDurationScalesInverselyWithFrequency)
{
    double cycles = 5e6;
    Tick fast = ticksForCycles(cycles, 3.2e9);
    Tick slow = ticksForCycles(cycles, 1.2e9);
    EXPECT_NEAR(static_cast<double>(slow) / static_cast<double>(fast),
                3.2 / 1.2, 0.001);
}

} // namespace
} // namespace nmapsim
