/**
 * @file
 * Unit tests for the DVFS actuator and the Section 5.1 re-transition
 * latency model.
 */

#include <gtest/gtest.h>

#include "cpu/dvfs_actuator.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/summary.hh"

namespace nmapsim {
namespace {

class DvfsActuatorTest : public ::testing::Test
{
  protected:
    const CpuProfile &profile_ = CpuProfile::xeonGold6134();
    EventQueue eq_;
    Rng rng_{42};
};

TEST_F(DvfsActuatorTest, BootsInRequestedState)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 5);
    EXPECT_EQ(a.currentPState(), 5);
    EXPECT_EQ(a.targetPState(), 5);
    EXPECT_FALSE(a.transitionPending());
}

TEST_F(DvfsActuatorTest, IsolatedRequestPaysNominalLatency)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    a.requestPState(0);
    EXPECT_TRUE(a.transitionPending());
    EXPECT_EQ(a.currentPState(), 15); // not yet effective
    eq_.runAll();
    EXPECT_EQ(a.currentPState(), 0);
    // First transition after a long quiet period: ACPI nominal 10 us.
    EXPECT_EQ(a.lastTransitionLatency(), profile_.nominalTransition);
}

TEST_F(DvfsActuatorTest, ApplyCallbackFires)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    int applied = -1;
    a.setApplyCallback([&](int idx) { applied = idx; });
    a.requestPState(3);
    eq_.runAll();
    EXPECT_EQ(applied, 3);
}

TEST_F(DvfsActuatorTest, BackToBackRequestsPayRetransitionLatency)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    a.requestPState(0);
    eq_.runAll();
    // Within the settle window: server parts pay ~520+ us (Table 1).
    a.requestPState(15);
    eq_.runAll();
    EXPECT_GT(a.lastTransitionLatency(), microseconds(400));
    EXPECT_LT(a.lastTransitionLatency(), microseconds(700));
}

TEST_F(DvfsActuatorTest, QuietPeriodRestoresNominalLatency)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    a.requestPState(0);
    eq_.runAll();
    // Wait out the settle window.
    EventFunctionWrapper idle([] {}, "idle");
    eq_.schedule(&idle, eq_.now() + profile_.settleWindow * 2);
    eq_.runAll();
    a.requestPState(15);
    eq_.runAll();
    EXPECT_EQ(a.lastTransitionLatency(), profile_.nominalTransition);
}

TEST_F(DvfsActuatorTest, LatestRequestWinsWhileInFlight)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    a.requestPState(0);
    a.requestPState(8); // supersedes before the first lands
    EXPECT_EQ(a.targetPState(), 8);
    eq_.runAll();
    EXPECT_EQ(a.currentPState(), 8);
    EXPECT_EQ(a.numTransitions(), 2u); // chained through 0 then 8
}

TEST_F(DvfsActuatorTest, RedundantRequestIsNoOp)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 4);
    a.requestPState(4);
    EXPECT_FALSE(a.transitionPending());
    EXPECT_EQ(a.numTransitions(), 0u);
}

TEST_F(DvfsActuatorTest, RequestsClampToTable)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 0);
    a.requestPState(99);
    eq_.runAll();
    EXPECT_EQ(a.currentPState(), profile_.pstates.maxIndex());
    a.requestPState(-7);
    eq_.runAll();
    EXPECT_EQ(a.currentPState(), 0);
}

TEST_F(DvfsActuatorTest, ServerRetransitionMatchesTable1Statistics)
{
    // Reproduce the Table 1 measurement loop: repetitive Pmax <-> Pmax-1
    // toggles on the Gold 6134 should average ~525.7 us.
    DvfsActuator a(eq_, profile_, rng_.fork(), 0);
    // Prime the settle window.
    a.requestPState(1);
    eq_.runAll();
    SummaryStats stats;
    bool down = false;
    for (int i = 0; i < 2000; ++i) {
        a.requestPState(down ? 1 : 0);
        down = !down;
        eq_.runAll();
        stats.add(toMicroseconds(a.lastTransitionLatency()));
    }
    EXPECT_NEAR(stats.mean(), 525.65, 2.0);
    EXPECT_NEAR(stats.stdev(), 5.7, 1.0);
}

TEST_F(DvfsActuatorTest, DesktopFarUpSlowerThanSmallUp)
{
    // Table 1 (i7-6700): Pmin->Pmax (45.1 us) is slower than
    // Pmax-1->Pmax (34.6 us).
    const CpuProfile &i7 = CpuProfile::i76700();
    DvfsActuator a(eq_, i7, rng_.fork(), 0);
    int pmin = i7.pstates.maxIndex();

    SummaryStats far_up;
    SummaryStats small_up;
    // Prime re-transition mode.
    a.requestPState(1);
    eq_.runAll();
    for (int i = 0; i < 500; ++i) {
        a.requestPState(pmin);
        eq_.runAll();
        a.requestPState(0);
        eq_.runAll();
        far_up.add(toMicroseconds(a.lastTransitionLatency()));
        a.requestPState(1);
        eq_.runAll();
        a.requestPState(0);
        eq_.runAll();
        small_up.add(toMicroseconds(a.lastTransitionLatency()));
    }
    EXPECT_NEAR(far_up.mean(), 45.1, 2.0);
    EXPECT_NEAR(small_up.mean(), 34.6, 2.0);
    EXPECT_GT(far_up.mean(), small_up.mean());
}

TEST_F(DvfsActuatorTest, ThreeRequestChainLandsOnLastTarget)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    a.requestPState(0);
    a.requestPState(8);
    a.requestPState(12);
    EXPECT_EQ(a.targetPState(), 12);
    eq_.runAll();
    EXPECT_EQ(a.currentPState(), 12);
    // Chain: 15->0 in flight completes, then one transition to the
    // final target (intermediate 8 was superseded before starting).
    EXPECT_EQ(a.numTransitions(), 2u);
}

TEST_F(DvfsActuatorTest, CallbackFiresPerCompletedTransition)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    std::vector<int> applied;
    a.setApplyCallback([&](int idx) { applied.push_back(idx); });
    a.requestPState(0);
    eq_.runAll();
    a.requestPState(15);
    eq_.runAll();
    EXPECT_EQ(applied, (std::vector<int>{0, 15}));
}

TEST_F(DvfsActuatorTest, ExactlyAtSettleWindowBoundaryIsNominal)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 15);
    a.requestPState(0);
    eq_.runAll();
    Tick completion = eq_.now();
    EventFunctionWrapper wait([] {}, "wait");
    // Exactly settleWindow after the completion: outside the window
    // (the check is strict "<"), so the next request is nominal.
    eq_.schedule(&wait, completion + profile_.settleWindow);
    eq_.runAll();
    a.requestPState(15);
    eq_.runAll();
    EXPECT_EQ(a.lastTransitionLatency(), profile_.nominalTransition);
}

TEST_F(DvfsActuatorTest, FastVrProfileNeverPaysRetransition)
{
    const CpuProfile &fast = CpuProfile::xeonGold6134FastVr();
    DvfsActuator a(eq_, fast, rng_.fork(), 0);
    for (int i = 0; i < 50; ++i) {
        a.requestPState(i % 2 == 0 ? 15 : 0);
        eq_.runAll();
        EXPECT_EQ(a.lastTransitionLatency(), fast.nominalTransition);
    }
}

TEST_F(DvfsActuatorTest, SampleLatencyNonRetransitionIsNominal)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 0);
    EXPECT_EQ(a.sampleLatency(0, 15, false),
              profile_.nominalTransition);
}

TEST_F(DvfsActuatorTest, SampleLatencyAlwaysPositive)
{
    DvfsActuator a(eq_, profile_, rng_.fork(), 0);
    for (int from = 0; from <= profile_.pstates.maxIndex(); from += 3) {
        for (int to = 0; to <= profile_.pstates.maxIndex(); to += 3) {
            if (from == to)
                continue;
            EXPECT_GE(a.sampleLatency(from, to, true), microseconds(1));
        }
    }
}

} // namespace
} // namespace nmapsim
