/**
 * @file
 * Dynamic backstop for the determinism contract nmaplint enforces
 * statically, in two layers:
 *
 *  1. Rerun identity: run each pinned config (golden_configs.hh) twice
 *     in-process and assert the serialised ResultWriter output — the
 *     artefact benches pin and figures are built from — is
 *     byte-for-byte identical, in both JSON and CSV. This catches what
 *     a source linter cannot: hash-order leaks through containers the
 *     rules miss, uninitialised reads that happen to differ between
 *     runs, static state carried across runs, or a policy sampling an
 *     unseeded RNG. It runs under ASan/UBSan and TSan in CI.
 *
 *  2. Golden pins: the same output must match the checked-in
 *     .golden files under tests/golden byte for byte. This extends the
 *     contract across *engine rewrites* — the calendar event queue and
 *     pooled containers replaced the heap/deque engine under these
 *     pins. A legitimate format or config change regenerates them with
 *     golden_gen (see golden_configs.hh); an engine change never does.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "golden_configs.hh"

namespace nmapsim {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing golden file: " << path
                    << " (regenerate with golden_gen — see "
                       "golden_configs.hh)";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
goldenPath(const std::string &name)
{
    return std::string(NMAPSIM_GOLDEN_DIR) + "/" + name + ".golden";
}

TEST(DeterminismTest, SingleHostOutputByteIdenticalAcrossRuns)
{
    const ExperimentConfig cfg = golden::smallSingleHost();
    const std::string first = golden::renderSingleHost(cfg);
    const std::string second = golden::renderSingleHost(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(DeterminismTest, ClusterOutputByteIdenticalAcrossRuns)
{
    const ClusterConfig cfg = golden::smallCluster();
    const std::string first = golden::renderCluster(cfg);
    const std::string second = golden::renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** Same seed + same FaultPlan ⇒ byte-identical output: injected loss
 *  and client retries draw only from their own forked streams. */
TEST(DeterminismTest, FaultySingleHostOutputByteIdenticalAcrossRuns)
{
    const ExperimentConfig cfg = golden::faultedSingleHost();
    const std::string first = golden::renderSingleHost(cfg);
    const std::string second = golden::renderSingleHost(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** The hardest path: whole-host crash + recovery, failure-detector
 *  ejection/readmission and retries, twice, byte-identical. */
TEST(DeterminismTest, FaultyClusterOutputByteIdenticalAcrossRuns)
{
    const ClusterConfig cfg = golden::faultedCluster();
    const std::string first = golden::renderCluster(cfg);
    const std::string second = golden::renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** Bypass dataplane + ring-degrade fault: the PMD poll loops, armed
 *  sleeps and mid-run ring shrink replay byte-identically — sleep
 *  durations come from the deterministic Metronome controller, never
 *  from an unseeded source. */
TEST(DeterminismTest, FaultedBypassOutputByteIdenticalAcrossRuns)
{
    const ExperimentConfig cfg = golden::faultedBypassHost();
    const std::string first = golden::renderSingleHost(cfg);
    const std::string second = golden::renderSingleHost(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** 3-tier LB -> app -> cache chain: east-west forwarding, per-tier
 *  dispatch and hop attribution replay byte-identically. */
TEST(DeterminismTest, TieredClusterOutputByteIdenticalAcrossRuns)
{
    const ClusterConfig cfg = golden::tieredCluster();
    const std::string first = golden::renderCluster(cfg);
    const std::string second = golden::renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** 4-stage NFV service-function chain, twice, byte-identical. */
TEST(DeterminismTest, NfvChainOutputByteIdenticalAcrossRuns)
{
    const ClusterConfig cfg = golden::nfvChain();
    const std::string first = golden::renderCluster(cfg);
    const std::string second = golden::renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** Full resilience stack (admission + budgets + breakers + deadline
 *  propagation) riding a mid-chain crash: every shed and breaker
 *  transition must land on the same tick in a rerun. */
TEST(DeterminismTest, ResilientCascadeOutputByteIdenticalAcrossRuns)
{
    const ClusterConfig cfg = golden::resilientCascade();
    const std::string first = golden::renderCluster(cfg);
    const std::string second = golden::renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(GoldenOutputTest, SingleHostMatchesGolden)
{
    const std::string expected = readFile(goldenPath("single_host"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderSingleHost(golden::smallSingleHost()),
              expected);
}

TEST(GoldenOutputTest, ClusterMatchesGolden)
{
    const std::string expected = readFile(goldenPath("cluster"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderCluster(golden::smallCluster()), expected);
}

TEST(GoldenOutputTest, FaultedSingleHostMatchesGolden)
{
    const std::string expected =
        readFile(goldenPath("faulted_single_host"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderSingleHost(golden::faultedSingleHost()),
              expected);
}

TEST(GoldenOutputTest, FaultedClusterMatchesGolden)
{
    const std::string expected = readFile(goldenPath("faulted_cluster"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderCluster(golden::faultedCluster()), expected);
}

TEST(GoldenOutputTest, FaultedBypassMatchesGolden)
{
    const std::string expected =
        readFile(goldenPath("faulted_bypass"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderSingleHost(golden::faultedBypassHost()),
              expected);
}

TEST(GoldenOutputTest, TieredClusterMatchesGolden)
{
    const std::string expected = readFile(goldenPath("tiered_cluster"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderCluster(golden::tieredCluster()), expected);
}

TEST(GoldenOutputTest, NfvChainMatchesGolden)
{
    const std::string expected = readFile(goldenPath("nfv_chain"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderCluster(golden::nfvChain()), expected);
}

TEST(GoldenOutputTest, ResilientCascadeMatchesGolden)
{
    const std::string expected =
        readFile(goldenPath("resilient_cascade"));
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(golden::renderCluster(golden::resilientCascade()),
              expected);
}

} // namespace
} // namespace nmapsim
