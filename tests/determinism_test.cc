/**
 * @file
 * Dynamic backstop for the determinism contract nmaplint enforces
 * statically: run a small single-host experiment and a small cluster
 * experiment twice in-process and assert the serialised ResultWriter
 * output — the artefact benches pin and figures are built from — is
 * byte-for-byte identical, in both JSON and CSV.
 *
 * This catches what a source linter cannot: hash-order leaks through
 * containers the rules miss, uninitialised reads that happen to
 * differ between runs, static state carried across runs, or a policy
 * sampling an unseeded RNG. It runs under ASan/UBSan and TSan in CI.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "harness/experiment.hh"
#include "harness/result_io.hh"
#include "stats/result_writer.hh"

namespace nmapsim {
namespace {

/** Small but policy-rich: NMAP exercises the monitor/decision path,
 *  menu exercises idle prediction. Thresholds are pinned so the run
 *  does not profile (keeps the test fast). */
ExperimentConfig
smallSingleHost()
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.load = LoadLevel::kMed;
    cfg.freqPolicy = "NMAP";
    cfg.idlePolicy = "menu";
    cfg.params.set("nmap.ni_th", "400");
    cfg.params.set("nmap.cu_th", "0.7");
    cfg.numCores = 4;
    cfg.warmup = milliseconds(10);
    cfg.duration = milliseconds(40);
    cfg.seed = 1234;
    return cfg;
}

ClusterConfig
smallCluster()
{
    ClusterConfig cfg;
    cfg.base = smallSingleHost();
    cfg.base.freqPolicy = "ondemand";
    cfg.numHosts = 2;
    cfg.dispatch = "flow-hash";
    cfg.drain = milliseconds(5);
    return cfg;
}

/** Serialised (JSON + CSV) ResultWriter output for one fresh run. */
std::string
renderSingleHost(const ExperimentConfig &cfg)
{
    const ExperimentResult result = Experiment(cfg).run();
    ResultWriter writer;
    appendResultRecord(writer, cfg, result);
    std::ostringstream out;
    writer.writeJson(out);
    out << '\n';
    writer.writeCsv(out);
    return out.str();
}

std::string
renderCluster(const ClusterConfig &cfg)
{
    const ClusterResult result = ClusterExperiment(cfg).run();
    ResultWriter writer;
    appendClusterResultRecord(writer, cfg, result);
    std::ostringstream out;
    writer.writeJson(out);
    out << '\n';
    writer.writeCsv(out);
    return out.str();
}

TEST(DeterminismTest, SingleHostOutputByteIdenticalAcrossRuns)
{
    const ExperimentConfig cfg = smallSingleHost();
    const std::string first = renderSingleHost(cfg);
    const std::string second = renderSingleHost(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(DeterminismTest, ClusterOutputByteIdenticalAcrossRuns)
{
    const ClusterConfig cfg = smallCluster();
    const std::string first = renderCluster(cfg);
    const std::string second = renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** Same seed + same FaultPlan ⇒ byte-identical output: injected loss
 *  and client retries draw only from their own forked streams. */
TEST(DeterminismTest, FaultySingleHostOutputByteIdenticalAcrossRuns)
{
    ExperimentConfig cfg = smallSingleHost();
    cfg.params.set("fault.wire_loss", "0.02");
    cfg.params.set("fault.wire_corrupt", "0.01");
    cfg.params.setTick("client.timeout", milliseconds(2));
    cfg.params.set("client.retries", 3);
    const std::string first = renderSingleHost(cfg);
    const std::string second = renderSingleHost(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

/** The hardest path: whole-host crash + recovery, failure-detector
 *  ejection/readmission and retries, twice, byte-identical. */
TEST(DeterminismTest, FaultyClusterOutputByteIdenticalAcrossRuns)
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "least-outstanding";
    cfg.fabric.healthInterval = milliseconds(1);
    cfg.fabric.healthTimeout = milliseconds(3);
    cfg.fabric.ejectDuration = milliseconds(5);
    cfg.base.params.set("fault.wire_loss", "0.01");
    cfg.base.params.set("fault.crash_host", 1);
    cfg.base.params.setTick("fault.crash_at", milliseconds(15));
    cfg.base.params.setTick("fault.recover_at", milliseconds(30));
    cfg.base.params.setTick("client.timeout", milliseconds(2));
    cfg.base.params.set("client.retries", 2);
    const std::string first = renderCluster(cfg);
    const std::string second = renderCluster(cfg);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace nmapsim
