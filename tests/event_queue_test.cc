/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace nmapsim {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(&c, 30);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueueTest, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(1); }, "low",
                             Event::kLowPriority);
    EventFunctionWrapper high([&] { order.push_back(2); }, "high",
                              Event::kHighPriority);
    eq.schedule(&low, 5);
    eq.schedule(&high, 5);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueTest, DescheduleCancelsEvent)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "ev");
    eq.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueueTest, DescheduleIsIdempotent)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "ev");
    eq.deschedule(&ev); // never scheduled: no-op
    eq.schedule(&ev, 10);
    eq.deschedule(&ev);
    eq.deschedule(&ev);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick fired_at = -1;
    EventFunctionWrapper ev([&] { fired_at = eq.now(); }, "ev");
    eq.schedule(&ev, 10);
    eq.reschedule(&ev, 50);
    eq.runAll();
    EXPECT_EQ(fired_at, 50);
    EXPECT_EQ(eq.numProcessed(), 1u);
}

TEST(EventQueueTest, ReschedulingManyTimesFiresOnce)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "ev");
    eq.schedule(&ev, 10);
    for (Tick t = 11; t < 200; ++t)
        eq.reschedule(&ev, t);
    eq.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, ScheduleInThePastThrows)
{
    EventQueue eq;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    eq.schedule(&a, 100);
    eq.runAll();
    EXPECT_EQ(eq.now(), 100);
    EXPECT_THROW(eq.schedule(&b, 50), std::logic_error);
}

TEST(EventQueueTest, DoubleScheduleThrows)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "ev");
    eq.schedule(&ev, 10);
    EXPECT_THROW(eq.schedule(&ev, 20), std::logic_error);
    eq.deschedule(&ev);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    std::vector<Tick> fired;
    EventFunctionWrapper a([&] { fired.push_back(eq.now()); }, "a");
    EventFunctionWrapper b([&] { fired.push_back(eq.now()); }, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.runUntil(50);
    EXPECT_EQ(fired, (std::vector<Tick>{10}));
    EXPECT_EQ(eq.now(), 50);
    eq.runUntil(200);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 100}));
    EXPECT_EQ(eq.now(), 200);
}

TEST(EventQueueTest, RunUntilProcessesEventAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "ev");
    eq.schedule(&ev, 50);
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue eq;
    int chain = 0;
    EventFunctionWrapper second([&] { chain = 2; }, "second");
    EventFunctionWrapper first(
        [&] {
            chain = 1;
            eq.scheduleIn(&second, 5);
        },
        "first");
    eq.schedule(&first, 10);
    eq.runAll();
    EXPECT_EQ(chain, 2);
    EXPECT_EQ(eq.now(), 15);
}

TEST(EventQueueTest, SelfReschedulingEvent)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper tick(
        [&] {
            if (++count < 5)
                eq.scheduleIn(&tick, 10);
        },
        "tick");
    // Note: capturing the wrapper by reference inside its own lambda.
    eq.schedule(&tick, 0);
    eq.runAll();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueueTest, PendingCountTracksState)
{
    EventQueue eq;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.numPending(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.runAll();
    EXPECT_EQ(eq.numPending(), 0u);
    EXPECT_EQ(eq.numProcessed(), 1u);
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue eq;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    Tick last = -1;
    bool monotone = true;
    for (int i = 0; i < 1000; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&] {
                if (eq.now() < last)
                    monotone = false;
                last = eq.now();
            },
            "stress"));
        // Pseudo-scrambled times.
        eq.schedule(events.back().get(), (i * 7919) % 1000);
    }
    eq.runAll();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.numProcessed(), 1000u);
}

} // namespace
} // namespace nmapsim
