/**
 * @file
 * End-to-end reproduction checks of the paper's headline claims, run
 * at reduced duration so the suite stays fast. The full-length numbers
 * live in the bench/ binaries; these tests pin the *orderings* the
 * paper reports so a regression in any module trips them.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace nmapsim {
namespace {

ExperimentResult
run(const std::string &policy, LoadLevel load,
    AppProfile app = AppProfile::memcached(),
    const std::string &idle = "menu")
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.freqPolicy = policy;
    cfg.idlePolicy = idle;
    cfg.load = load;
    cfg.warmup = milliseconds(100);
    cfg.duration = milliseconds(600);
    cfg.seed = 42;
    // Memcached thresholds from the Section 4.2 profiling pass, frozen
    // here to keep the suite deterministic and fast.
    cfg.params.set("nmap.ni_th", 13.0);
    cfg.params.set("nmap.cu_th", 0.49);
    return Experiment(cfg).run();
}

TEST(PaperClaims, PerformanceMeetsSloAtAllLoads)
{
    // Section 3.1/6.2: the performance governor always satisfies the
    // SLO (it is the latency-optimal baseline).
    for (LoadLevel l :
         {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
        ExperimentResult r = run("performance", l);
        EXPECT_LE(r.p99, r.slo) << loadLevelName(l);
    }
}

TEST(PaperClaims, OndemandViolatesSloAtMedAndHigh)
{
    // Section 6.2: CPU-utilisation governors violate the SLO at medium
    // and high loads (paper: up to 7.4x for memcached).
    ExperimentResult med = run("ondemand", LoadLevel::kMed);
    ExperimentResult high =
        run("ondemand", LoadLevel::kHigh);
    EXPECT_GT(med.p99, med.slo * 2);
    EXPECT_GT(high.p99, high.slo * 4);
}

TEST(PaperClaims, IntelPowersaveWorseThanOndemand)
{
    // Section 6.2: intel_powersave shows even longer P99 than ondemand
    // (13.1x vs 7.4x for memcached).
    ExperimentResult ip =
        run("intel_powersave", LoadLevel::kHigh);
    ExperimentResult od = run("ondemand", LoadLevel::kHigh);
    EXPECT_GT(ip.p99, od.p99);
}

TEST(PaperClaims, NmapMeetsSloAtAllLoads)
{
    // The headline: NMAP never violates the SLO.
    for (LoadLevel l :
         {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
        ExperimentResult r = run("NMAP", l);
        EXPECT_LE(r.p99, r.slo * 11 / 10) << loadLevelName(l);
        EXPECT_LT(r.fracOverSlo, 0.02) << loadLevelName(l);
    }
}

TEST(PaperClaims, NmapSimplFailsOnlyAtHighLoad)
{
    // Section 6.2: NMAP-simpl satisfies the SLO at low and medium but
    // reacting on ksoftirqd alone is too slow/unstable at high load.
    ExperimentResult low = run("NMAP-simpl", LoadLevel::kLow);
    ExperimentResult med = run("NMAP-simpl", LoadLevel::kMed);
    ExperimentResult high =
        run("NMAP-simpl", LoadLevel::kHigh);
    EXPECT_LE(low.p99, low.slo);
    EXPECT_LE(med.p99, med.slo * 23 / 20);
    EXPECT_GT(high.p99, high.slo * 2);
}

TEST(PaperClaims, NmapSavesEnergyVersusPerformance)
{
    // Fig. 13: NMAP reduces energy at every load, most at low load.
    double savings[3];
    int i = 0;
    for (LoadLevel l :
         {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
        ExperimentResult nmap = run("NMAP", l);
        ExperimentResult perf = run("performance", l);
        savings[i] = 1.0 - nmap.energyJoules / perf.energyJoules;
        EXPECT_GT(savings[i], 0.0) << loadLevelName(l);
        ++i;
    }
    // Savings shrink as load grows (35.7% -> 9.1% in the paper).
    EXPECT_GT(savings[0], savings[2]);
}

TEST(PaperClaims, NmapCheaperThanNcap)
{
    // Fig. 15: NMAP reduces energy vs NCAP at every load (per-core
    // DVFS + no sleep-state disable).
    for (LoadLevel l :
         {LoadLevel::kLow, LoadLevel::kMed, LoadLevel::kHigh}) {
        ExperimentResult nmap = run("NMAP", l);
        ExperimentResult ncap = run("NCAP", l);
        EXPECT_LT(nmap.energyJoules, ncap.energyJoules)
            << loadLevelName(l);
        // NCAP (tuned) also meets the SLO.
        EXPECT_LE(ncap.p99, ncap.slo * 11 / 10) << loadLevelName(l);
    }
}

TEST(PaperClaims, NcapVariantsSimilarLatency)
{
    // Fig. 14: NCAP and NCAP-menu show no notable P99 difference.
    ExperimentResult a = run("NCAP", LoadLevel::kHigh);
    ExperimentResult b = run("NCAP-menu", LoadLevel::kHigh);
    EXPECT_LT(std::abs(toMicroseconds(a.p99) - toMicroseconds(b.p99)),
              0.35 * toMicroseconds(a.p99));
}

TEST(PaperClaims, SleepPoliciesBarelyMoveTailLatency)
{
    // Fig. 8 / Section 5.2: menu vs disable vs c6only P99 within noise
    // at a 1 ms SLO.
    ExperimentResult menu = run("performance",
                                LoadLevel::kHigh,
                                AppProfile::memcached(),
                                "menu");
    ExperimentResult dis = run("performance",
                               LoadLevel::kHigh,
                               AppProfile::memcached(),
                               "disable");
    ExperimentResult c6 = run("performance",
                              LoadLevel::kHigh,
                              AppProfile::memcached(),
                              "c6only");
    EXPECT_LT(toMicroseconds(dis.p99 - menu.p99),
              0.2 * toMicroseconds(menu.p99));
    EXPECT_LT(toMicroseconds(c6.p99 - menu.p99),
              0.2 * toMicroseconds(menu.p99));
}

TEST(PaperClaims, SleepPoliciesMoveEnergyALot)
{
    // Fig. 8: disable costs much more energy than menu; c6only saves.
    ExperimentResult menu = run("performance",
                                LoadLevel::kMed,
                                AppProfile::memcached(),
                                "menu");
    ExperimentResult dis = run("performance",
                               LoadLevel::kMed,
                               AppProfile::memcached(),
                               "disable");
    ExperimentResult c6 = run("performance",
                              LoadLevel::kMed,
                              AppProfile::memcached(),
                              "c6only");
    EXPECT_GT(dis.energyJoules, menu.energyJoules * 1.3);
    EXPECT_LT(c6.energyJoules, menu.energyJoules);
}

TEST(PaperClaims, PollingRatioGrowsWithLoad)
{
    // Section 3.1: the polling-to-interrupt ratio rises with load —
    // the signal NMAP is built on.
    ExperimentResult low = run("performance",
                               LoadLevel::kLow);
    ExperimentResult high =
        run("performance", LoadLevel::kHigh);
    double ratio_low = static_cast<double>(low.pktsPollMode) /
                       static_cast<double>(low.pktsIntrMode);
    double ratio_high = static_cast<double>(high.pktsPollMode) /
                        static_cast<double>(high.pktsIntrMode);
    EXPECT_GT(ratio_high, ratio_low * 1.5);
}

TEST(PaperClaims, KsoftirqdActivityGrowsWithLoad)
{
    ExperimentResult low = run("performance",
                               LoadLevel::kLow);
    ExperimentResult high =
        run("performance", LoadLevel::kHigh);
    EXPECT_GT(high.ksoftirqdWakes, low.ksoftirqdWakes * 5);
}

TEST(PaperClaims, NginxOrderingsReproduce)
{
    // The nginx columns of Fig. 12/14: performance and NMAP compliant
    // at high load, ondemand violating, NMAP-simpl in between.
    AppProfile ng = AppProfile::nginx();
    ExperimentResult perf =
        run("performance", LoadLevel::kHigh, ng);
    ExperimentResult od =
        run("ondemand", LoadLevel::kHigh, ng);
    // nginx profiling differs from the frozen memcached thresholds;
    // profile properly for the NMAP row.
    ExperimentConfig cfg;
    cfg.app = ng;
    cfg.freqPolicy = "NMAP";
    cfg.load = LoadLevel::kHigh;
    cfg.warmup = milliseconds(100);
    cfg.duration = milliseconds(600);
    ExperimentResult nmap = Experiment(cfg).run();

    EXPECT_LE(perf.p99, perf.slo);
    EXPECT_GT(od.p99, od.slo);
    EXPECT_LE(nmap.p99, nmap.slo);
    EXPECT_LT(nmap.energyJoules, perf.energyJoules);
}

TEST(PaperClaims, AdaptiveNmapMeetsSloWithoutProfiling)
{
    // Extension: the online-threshold variant must hold the paper's
    // headline property with no offline profiling pass at all.
    for (LoadLevel l : {LoadLevel::kMed, LoadLevel::kHigh}) {
        ExperimentResult r = run("NMAP-adaptive", l);
        EXPECT_LE(r.p99, r.slo * 11 / 10) << loadLevelName(l);
    }
}

TEST(PaperClaims, NmapMakesFewTransitions)
{
    // NMAP's design goal: react fast *without* repetitive V/F
    // transitions (which would hit the ~520 us re-transition latency).
    ExperimentResult nmap = run("NMAP", LoadLevel::kHigh);
    ExperimentResult simpl =
        run("NMAP-simpl", LoadLevel::kHigh);
    EXPECT_LT(nmap.pstateTransitions, simpl.pstateTransitions / 2);
}

} // namespace
} // namespace nmapsim
