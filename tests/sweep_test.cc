/**
 * @file
 * Determinism-equivalence tests for the parallel sweep runner: a sweep
 * must produce bit-identical scalar results regardless of the worker
 * count, in submission order, and a throwing point must surface its
 * error without poisoning sibling points.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "harness/sweep.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

ExperimentConfig
shortConfig(const std::string &policy, LoadLevel load,
            std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = policy;
    cfg.load = load;
    cfg.seed = seed;
    cfg.warmup = milliseconds(20);
    cfg.duration = milliseconds(60);
    // Explicit thresholds: no nested profiling run per point.
    cfg.params.set("nmap.ni_th", 14.0);
    cfg.params.set("nmap.cu_th", 0.5);
    return cfg;
}

SweepOptions
quiet(int jobs = 0)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

/** Every scalar field of ExperimentResult must match exactly. */
void
expectSameScalars(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.maxLatency, b.maxLatency);
    EXPECT_DOUBLE_EQ(a.meanLatency, b.meanLatency);
    EXPECT_DOUBLE_EQ(a.fracOverSlo, b.fracOverSlo);
    EXPECT_EQ(a.slo, b.slo);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
    EXPECT_DOUBLE_EQ(a.avgPowerWatts, b.avgPowerWatts);
    EXPECT_EQ(a.requestsSent, b.requestsSent);
    EXPECT_EQ(a.responsesReceived, b.responsesReceived);
    EXPECT_EQ(a.nicDrops, b.nicDrops);
    EXPECT_EQ(a.nicRxHarvested, b.nicRxHarvested);
    EXPECT_EQ(a.nicTxConsumed, b.nicTxConsumed);
    EXPECT_EQ(a.pktsIntrMode, b.pktsIntrMode);
    EXPECT_EQ(a.pktsPollMode, b.pktsPollMode);
    EXPECT_EQ(a.ksoftirqdWakes, b.ksoftirqdWakes);
    EXPECT_EQ(a.pstateTransitions, b.pstateTransitions);
    EXPECT_EQ(a.cc6Wakes, b.cc6Wakes);
    EXPECT_EQ(a.cc1Wakes, b.cc1Wakes);
    EXPECT_DOUBLE_EQ(a.busyFraction, b.busyFraction);
    EXPECT_DOUBLE_EQ(a.niThresholdUsed, b.niThresholdUsed);
    EXPECT_DOUBLE_EQ(a.cuThresholdUsed, b.cuThresholdUsed);
}

TEST(SweepTest, SameConfigAndSeedRunTwiceIsIdentical)
{
    ExperimentConfig cfg =
        shortConfig("ondemand", LoadLevel::kMed, 7);
    std::vector<SweepOutcome> first =
        SweepRunner(quiet()).run({cfg});
    std::vector<SweepOutcome> second =
        SweepRunner(quiet()).run({cfg});
    ASSERT_TRUE(first[0].ok());
    ASSERT_TRUE(second[0].ok());
    expectSameScalars(first[0].value(), second[0].value());
}

TEST(SweepTest, OneThreadAndEightThreadsAgreeInOrder)
{
    // 12-point grid: 2 policies x 2 loads x 3 seeds.
    std::vector<ExperimentConfig> points =
        SweepSpec(shortConfig("ondemand", LoadLevel::kLow,
                              1))
            .policies({"ondemand", "NMAP"})
            .loads({LoadLevel::kLow, LoadLevel::kHigh})
            .seeds({1, 2, 3})
            .build();
    ASSERT_EQ(points.size(), 12u);

    std::vector<SweepOutcome> serial =
        SweepRunner(quiet(1)).run(points);
    std::vector<SweepOutcome> parallel =
        SweepRunner(quiet(8)).run(points);

    ASSERT_EQ(serial.size(), 12u);
    ASSERT_EQ(parallel.size(), 12u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        ASSERT_TRUE(serial[i].ok());
        ASSERT_TRUE(parallel[i].ok());
        expectSameScalars(serial[i].value(), parallel[i].value());
    }

    // Order check: distinct loads must land at their submission slot,
    // not in completion order (the low-load point finishes first).
    EXPECT_LT(parallel[0].value().requestsSent,
              parallel[3].value().requestsSent);
}

TEST(SweepTest, ThrowingPointDoesNotPoisonSiblings)
{
    ExperimentConfig good =
        shortConfig("performance", LoadLevel::kLow, 5);
    ExperimentConfig bad = good;
    bad.duration = 0; // Experiment() rejects this with FatalError
    std::vector<ExperimentConfig> points{good, bad, good};

    std::vector<SweepOutcome> outcomes =
        SweepRunner(quiet(4)).run(points);
    ASSERT_EQ(outcomes.size(), 3u);

    ASSERT_TRUE(outcomes[0].ok());
    ASSERT_TRUE(outcomes[2].ok());
    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_NE(outcomes[1].error().find("duration"), std::string::npos);
    EXPECT_THROW(outcomes[1].value(), FatalError);

    // The sibling points are exactly what a solo run produces.
    ExperimentResult solo = Experiment(good).run();
    expectSameScalars(outcomes[0].value(), solo);
    expectSameScalars(outcomes[2].value(), solo);
}

TEST(SweepTest, GenericEngineRunsNonExperimentTasks)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.emplace_back([i] { return i * i; });
    tasks.emplace_back(
        []() -> int { throw FatalError("boom"); });

    SweepOptions opts = quiet(4);
    std::vector<SweepSlot<int>> slots = runParallel(tasks, opts);
    ASSERT_EQ(slots.size(), 17u);
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(slots[static_cast<std::size_t>(i)].ok());
        EXPECT_EQ(slots[static_cast<std::size_t>(i)].value(), i * i);
        EXPECT_GE(slots[static_cast<std::size_t>(i)].wallSeconds(),
                  0.0);
    }
    EXPECT_FALSE(slots[16].ok());
    EXPECT_EQ(slots[16].error(), "boom");
    EXPECT_THROW(slots[16].value(), FatalError);
}

TEST(SweepTest, ProfileFanOutMatchesSerialProfiling)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    std::vector<SweepSlot<std::pair<double, double>>> slots =
        SweepRunner(quiet(2)).profile({cfg, cfg});
    ASSERT_TRUE(slots[0].ok());
    ASSERT_TRUE(slots[1].ok());
    auto [ni, cu] = Experiment::profileThresholds(cfg);
    EXPECT_DOUBLE_EQ(slots[0].value().first, ni);
    EXPECT_DOUBLE_EQ(slots[0].value().second, cu);
    EXPECT_DOUBLE_EQ(slots[1].value().first, ni);
    EXPECT_DOUBLE_EQ(slots[1].value().second, cu);
}

TEST(SweepTest, SpecEnumeratesPoliciesOuterSeedsInner)
{
    SweepSpec spec =
        SweepSpec(shortConfig("ondemand", LoadLevel::kLow,
                              0))
            .policies({"performance", "NMAP"})
            .seeds({10, 20, 30});
    EXPECT_EQ(spec.numPoints(), 6u);

    std::vector<ExperimentConfig> points = spec.build();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].freqPolicy, "performance");
    EXPECT_EQ(points[0].seed, 10u);
    EXPECT_EQ(points[2].seed, 30u);
    EXPECT_EQ(points[3].freqPolicy, "NMAP");
    EXPECT_EQ(points[3].seed, 10u);
    EXPECT_EQ(spec.index(1, 0, 0, 0, 0), 3u);
    EXPECT_EQ(spec.index(1, 0, 0, 0, 2), 5u);

    // Unset dimensions inherit the base config.
    EXPECT_EQ(points[5].load, LoadLevel::kLow);
    EXPECT_EQ(points[5].idlePolicy, "menu");
}

TEST(SweepTest, RpsListInstallsOverrides)
{
    std::vector<ExperimentConfig> points =
        SweepSpec(shortConfig("performance",
                              LoadLevel::kHigh, 42))
            .rpsList({100e3, 500e3})
            .build();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].rpsOverride, 100e3);
    EXPECT_DOUBLE_EQ(points[1].rpsOverride, 500e3);
}

TEST(SweepTest, JobsResolutionHonoursEnvAndPointCount)
{
    // Explicit request wins.
    EXPECT_EQ(resolveJobs(3, 100), 3);
    // Capped at the point count.
    EXPECT_EQ(resolveJobs(8, 2), 2);
    EXPECT_EQ(resolveJobs(8, 0), 8);

    ::setenv("NMAPSIM_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0, 100), 5);
    EXPECT_EQ(resolveJobs(2, 100), 2); // explicit beats env
    ::setenv("NMAPSIM_JOBS", "0", 1);  // invalid: fall through
    EXPECT_GE(resolveJobs(0, 100), 1);
    ::unsetenv("NMAPSIM_JOBS");
    EXPECT_GE(resolveJobs(0, 100), 1);
}

TEST(SweepTest, EmptySweepReturnsNoOutcomes)
{
    std::vector<SweepOutcome> outcomes =
        SweepRunner(quiet()).run({});
    EXPECT_TRUE(outcomes.empty());
}

} // namespace
} // namespace nmapsim
