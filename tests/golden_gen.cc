/**
 * @file
 * Regenerates the golden-output files determinism_test pins
 * (the .golden files under tests/golden/). Run it only when the record
 * format or a pinned config intentionally changes, and review the
 * golden diff as part of that change:
 *
 *   ./build/tests/golden_gen tests/golden
 *
 * An engine change must NOT need a regeneration — byte-identical
 * output across engine rewrites is the whole point of the pin.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "golden_configs.hh"

namespace {

int
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "golden_gen: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    out << contents;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: golden_gen <output-dir>\n");
        return 2;
    }
    const std::string dir = argv[1];
    using namespace nmapsim;

    int rc = 0;
    rc |= writeFile(dir + "/single_host.golden",
                    golden::renderSingleHost(golden::smallSingleHost()));
    rc |= writeFile(dir + "/cluster.golden",
                    golden::renderCluster(golden::smallCluster()));
    rc |= writeFile(dir + "/faulted_single_host.golden",
                    golden::renderSingleHost(golden::faultedSingleHost()));
    rc |= writeFile(dir + "/faulted_cluster.golden",
                    golden::renderCluster(golden::faultedCluster()));
    rc |= writeFile(dir + "/faulted_bypass.golden",
                    golden::renderSingleHost(golden::faultedBypassHost()));
    rc |= writeFile(dir + "/tiered_cluster.golden",
                    golden::renderCluster(golden::tieredCluster()));
    rc |= writeFile(dir + "/nfv_chain.golden",
                    golden::renderCluster(golden::nfvChain()));
    rc |= writeFile(dir + "/resilient_cascade.golden",
                    golden::renderCluster(golden::resilientCascade()));
    if (rc == 0)
        std::printf("golden_gen: wrote 8 goldens to %s\n", dir.c_str());
    return rc;
}
